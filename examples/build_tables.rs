//! Pre-computation walkthrough: the Fig. 2 pipeline, table by table.
//!
//! Builds every FM-index table for a small reference and prints them:
//! suffix array, BWT, Count, full Occ, the sampled Occ (bucket width d),
//! and the Marker Table, then shows one `LFM` evaluated from the tables.
//!
//! Run with: `cargo run --example build_tables`

use bioseq::{Base, DnaSeq};
use fmindex::{suffix_array, Bwt, CountTable, MarkerTable, OccTable, SampledOcc, Text};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reference: DnaSeq = "TGCTAGCATG".parse()?;
    let d = 4;
    println!("reference S = {reference}, bucket width d = {d}\n");

    let text = Text::from_reference(&reference);
    let sa = suffix_array(&text);
    println!("suffix array (sorted suffixes of {text}):");
    for (row, &pos) in sa.iter().enumerate() {
        let suffix: String = text.to_string().chars().skip(pos).collect();
        println!("  SA[{row}] = {pos:>2}  {suffix}");
    }

    let bwt = Bwt::from_sa(&text, &sa);
    println!(
        "\nBWT = {bwt} (reversible: inverts back to {})",
        bwt.invert()
    );

    let count = CountTable::from_bwt(&bwt);
    println!(
        "Count(nt): A:{} C:{} G:{} T:{}",
        count.get(Base::A),
        count.get(Base::C),
        count.get(Base::G),
        count.get(Base::T)
    );

    let occ = OccTable::from_bwt(&bwt);
    println!("\nOcc table (occurrences of nt in BWT[0..i)):");
    print!("  i:   ");
    for i in 0..=bwt.len() {
        print!("{i:>3}");
    }
    println!();
    for base in Base::ALL {
        print!("  {base}:   ");
        for i in 0..=bwt.len() {
            print!("{:>3}", occ.occ(base, i));
        }
        println!();
    }

    let sampled = SampledOcc::from_occ(&occ, d);
    println!(
        "\nsampled Occ: {} buckets (size reduced by d = {d})",
        sampled.buckets()
    );

    let mt = MarkerTable::new(&count, &sampled);
    println!("marker table MT[bucket][nt] = Count(nt) + SampledOcc[bucket][nt]:");
    for bucket in 0..mt.buckets() {
        print!("  bucket {bucket} (checkpoint {:>2}):", bucket * d);
        for base in Base::ALL {
            print!(" {base}:{:>2}", mt.marker(base, bucket));
        }
        println!();
    }

    // One LFM evaluated from the tables (Algorithm 1 line 9).
    let (nt, id) = (Base::G, 7);
    println!(
        "\nLFM(MT, {nt}, {id}) = MT[{}][{nt}] + count({nt}, BWT[{}..{id}]) = {}",
        id / d,
        (id / d) * d,
        mt.lfm(&bwt, nt, id)
    );
    assert_eq!(mt.lfm(&bwt, nt, id), count.get(nt) + occ.occ(nt, id));
    Ok(())
}
