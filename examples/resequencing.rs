//! Resequencing scenario: the paper's evaluation workload at laptop
//! scale.
//!
//! Simulates an ART-like read set (100 bp, 0.2 % sequencing error, 0.1 %
//! population variation) against a synthetic genome, aligns it on the
//! simulated platform with the two-stage algorithm, and reports mapping
//! accuracy against the simulator's ground truth plus the platform
//! performance figures.
//!
//! Run with: `cargo run --release --example resequencing`

use pim_aligner::{AlignmentOutcome, PimAligner, PimAlignerConfig};
use readsim::{genome, ReadSimulator, SimProfile, Strand};

fn main() {
    let genome_len = 100_000;
    let read_count = 200;
    let reference = genome::uniform(genome_len, 2024);
    let profile = SimProfile::paper_defaults().read_count(read_count);
    let sim = ReadSimulator::new(profile, 7).simulate(&reference);

    println!(
        "genome {genome_len} bp, {read_count} x 100 bp reads, {} variants in donor",
        sim.donor.variants.len()
    );

    let mut aligner = PimAligner::new(&reference, PimAlignerConfig::pipelined());
    let mut exact = 0usize;
    let mut inexact = 0usize;
    let mut unmapped = 0usize;
    let mut correct = 0usize;

    for read in &sim.reads {
        // Reads come from both strands; align the read as-is and, if that
        // fails, its reverse complement (standard practice — the index
        // covers the forward strand only).
        let (outcome, flipped) = match aligner.align_read(&read.seq) {
            AlignmentOutcome::Unmapped => {
                (aligner.align_read(&read.seq.reverse_complement()), true)
            }
            hit => (hit, false),
        };
        match &outcome {
            AlignmentOutcome::Exact { .. } => exact += 1,
            AlignmentOutcome::Inexact { .. } => inexact += 1,
            AlignmentOutcome::Unmapped => unmapped += 1,
        }
        // Accuracy vs ground truth: a hit is correct when one reported
        // position is near the true donor position (indel variants shift
        // coordinates slightly, so allow a small window).
        if let Some(positions) = outcome.positions() {
            let expected_forward = (read.strand == Strand::Forward) != flipped;
            if expected_forward && positions.iter().any(|&p| p.abs_diff(read.donor_pos) <= 5) {
                correct += 1;
            } else if !expected_forward {
                // Reverse-strand read aligned via its reverse complement:
                // position maps back to the same window.
                if positions.iter().any(|&p| p.abs_diff(read.donor_pos) <= 5) {
                    correct += 1;
                }
            }
        }
    }

    let total = sim.reads.len();
    println!("\nalignment outcomes:");
    println!(
        "  exact    : {exact} ({:.1} %)",
        100.0 * exact as f64 / total as f64
    );
    println!(
        "  inexact  : {inexact} ({:.1} %)",
        100.0 * inexact as f64 / total as f64
    );
    println!(
        "  unmapped : {unmapped} ({:.1} %)",
        100.0 * unmapped as f64 / total as f64
    );
    println!(
        "  correct origin among mapped: {:.1} %",
        100.0 * correct as f64 / (total - unmapped).max(1) as f64
    );

    let report = aligner.report();
    println!("\nplatform performance (PIM-Aligner-p):");
    println!("  throughput : {:.3e} queries/s", report.throughput_qps);
    println!("  power      : {:.1} W", report.total_power_w);
    println!("  energy     : {:.2e} J/query", report.energy_per_query_j);
    println!(
        "  at paper scale (10 M reads): {:.1} s of device time",
        report.scaled_to_queries(10_000_000).time_s
    );
}
