//! Quickstart: the paper's Fig. 1 running example, end to end.
//!
//! Builds the FM-index over the toy reference `TGCTA`, shows the
//! pre-computed tables, aligns the read `CTA` both in software and on the
//! simulated SOT-MRAM platform, and prints the platform's performance
//! report.
//!
//! Run with: `cargo run --example quickstart`

use bioseq::{Base, DnaSeq};
use fmindex::FmIndex;
use pim_aligner::{PimAligner, PimAlignerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Fig. 1: reference, BWT, suffix array ---
    let reference: DnaSeq = "TGCTA".parse()?;
    let read: DnaSeq = "CTA".parse()?;
    println!("reference S = {reference}$   read R = {read}");

    let index = FmIndex::builder().bucket_width(2).build(&reference);
    println!("BWT(S$)     = {}", index.bwt());
    println!(
        "Count(nt)   = A:{} C:{} G:{} T:{}",
        index.count_table().get(Base::A),
        index.count_table().get(Base::C),
        index.count_table().get(Base::G),
        index.count_table().get(Base::T),
    );

    // --- Software backward search (the §II algorithm) ---
    let interval = index.backward_search(&read).expect("CTA occurs in TGCTA");
    println!(
        "software search: SA interval {interval} -> positions {:?}",
        index.locate(interval)
    );

    // --- The same alignment on the simulated PIM platform ---
    let mut aligner = PimAligner::new(&reference, PimAlignerConfig::pipelined());
    let outcome = aligner.align_read(&read);
    println!("platform search: {outcome:?}");
    assert_eq!(outcome.positions(), Some(&[2usize][..]));

    // --- Performance report (Figs. 8-10 quantities) ---
    let report = aligner.report();
    println!("\nplatform report (PIM-Aligner-p, Pd = 2):");
    println!("  LFM invocations : {}", report.lfm_calls);
    println!(
        "  throughput      : {:.3e} queries/s",
        report.throughput_qps
    );
    println!("  total power     : {:.1} W", report.total_power_w);
    println!("  MBR             : {:.1} %", report.mbr_pct);
    println!("  RUR             : {:.1} %", report.rur_pct);
    Ok(())
}
