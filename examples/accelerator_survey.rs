//! Accelerator survey: regenerates the paper's ten-platform comparison
//! (Figs. 8–10) by combining the published-platform catalogue with two
//! freshly simulated PIM-Aligner rows.
//!
//! Run with: `cargo run --release --example accelerator_survey`

use accel::{catalog, figure_series, Figure, Platform, PlatformClass};
use bioseq::DnaSeq;
use pim_aligner::{PimAligner, PimAlignerConfig};
use readsim::variant::VariantProfile;
use readsim::{genome, ReadSimulator, SimProfile};

fn simulate(
    name: &str,
    config: PimAlignerConfig,
    reference: &DnaSeq,
    reads: &[DnaSeq],
) -> Platform {
    let mut aligner = PimAligner::new(reference, config);
    let report = aligner.align_batch(reads).report;
    Platform::from_measurements(
        name,
        PlatformClass::FmIndex,
        report.total_power_w,
        report.throughput_qps,
        report.area_mm2,
        report.offchip_gb,
        report.mbr_pct,
        report.rur_pct,
    )
}

fn main() {
    // Exact-stage workload (the paper's O(m) throughput model — see
    // EXPERIMENTS.md "figure-row workload").
    let reference = genome::uniform(120_000, 99);
    let profile = SimProfile::paper_defaults()
        .read_count(120)
        .error_rate(0.0)
        .variants(VariantProfile {
            rate: 0.0,
            ..Default::default()
        })
        .forward_only();
    let sim = ReadSimulator::new(profile, 5).simulate(&reference);
    let reads: Vec<DnaSeq> = sim.reads.into_iter().map(|r| r.seq).collect();

    let mut platforms = catalog();
    platforms.push(simulate(
        "PIM-Aligner-n",
        PimAlignerConfig::baseline(),
        &reference,
        &reads,
    ));
    platforms.push(simulate(
        "PIM-Aligner-p",
        PimAlignerConfig::pipelined(),
        &reference,
        &reads,
    ));

    for figure in Figure::ALL {
        println!("{}", figure.label());
        for (name, value) in figure_series(figure, &platforms) {
            println!("  {name:<14} {value:>12.4e}");
        }
        println!();
    }

    // The paper's headline claims, recomputed.
    let tpw = |name: &str| {
        platforms
            .iter()
            .find(|p| p.name == name)
            .map(Platform::throughput_per_watt)
            .expect("platform present")
    };
    let per_mm2 = |name: &str| {
        platforms
            .iter()
            .find(|p| p.name == name)
            .map(Platform::throughput_per_watt_mm2)
            .expect("platform present")
    };
    println!("headline ratios (PIM-Aligner-n vs ...):");
    println!(
        "  RaceLogic T/W      : {:.2}x (paper ~3.1x)",
        tpw("PIM-Aligner-n") / tpw("RaceLogic")
    );
    println!(
        "  ASIC      T/W      : {:.2}x (paper ~2x)",
        tpw("PIM-Aligner-n") / tpw("ASIC")
    );
    println!(
        "  FPGA      T/W      : {:.1}x (paper ~43.8x)",
        tpw("PIM-Aligner-n") / tpw("FPGA")
    );
    println!(
        "  GPU       T/W      : {:.0}x (paper ~458x)",
        tpw("PIM-Aligner-n") / tpw("GPU")
    );
    println!(
        "  ASIC      T/W/mm^2 : {:.2}x (paper ~9x)",
        per_mm2("PIM-Aligner-n") / per_mm2("ASIC")
    );
    println!(
        "  AligneR   T/W/mm^2 : {:.2}x (paper ~1.9x)",
        per_mm2("PIM-Aligner-n") / per_mm2("AligneR")
    );
}
