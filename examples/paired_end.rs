//! Paired-end alignment with hybrid rescue (the beyond-paper extensions
//! of DESIGN.md §8 working together).
//!
//! Simulates Illumina-style read pairs, aligns them with insert-size
//! constrained pairing, shows how pairing disambiguates repeats, and
//! rescues a heavily damaged read with seed-and-extend.
//!
//! Run with: `cargo run --release --example paired_end`

use bioseq::{Base, DnaSeq};
use pim_aligner::{
    align_pair, seed_and_extend, PairConstraints, PairOutcome, PimAligner, PimAlignerConfig,
    SeedExtendConfig,
};
use readsim::paired::{simulate_pairs, InsertProfile};
use readsim::{genome, SimProfile};

fn main() {
    // --- Paired-end workload ---
    let reference = genome::uniform(80_000, 777);
    let profile = SimProfile::paper_defaults().read_count(60).read_len(75);
    let insert = InsertProfile {
        mean: 350.0,
        std_dev: 40.0,
    };
    let sim = simulate_pairs(&reference, profile, insert, 778);
    let constraints = PairConstraints::new(150, 600);

    let mut aligner = PimAligner::new(&reference, PimAlignerConfig::pipelined());
    let mut proper = 0usize;
    let mut correct_fragment = 0usize;
    let mut other = 0usize;
    for pair in &sim.pairs {
        match align_pair(&mut aligner, &pair.r1, &pair.r2, constraints) {
            PairOutcome::ProperPair {
                fragment_start,
                fragment_len,
                ..
            } => {
                proper += 1;
                if fragment_start.abs_diff(pair.fragment_start) <= 5
                    && fragment_len.abs_diff(pair.fragment_len) <= 10
                {
                    correct_fragment += 1;
                }
            }
            _ => other += 1,
        }
    }
    println!(
        "paired-end alignment ({} pairs, 350±40 bp inserts):",
        sim.pairs.len()
    );
    println!("  proper pairs        : {proper}");
    println!("  correct fragment    : {correct_fragment}");
    println!("  discordant/partial  : {other}");

    // --- Hybrid rescue of a read beyond the backtracking budget ---
    let template = reference.subseq(40_000..40_100);
    let mut bases = template.into_bases();
    for &p in &[10usize, 30, 50, 95] {
        bases[p] = Base::from_rank((bases[p].rank() + 1) % 4);
    }
    bases.drain(70..76); // a 6-bp deletion on top
    let damaged = DnaSeq::from_bases(bases);
    let direct = aligner.align_read(&damaged);
    println!("\nheavily damaged read (4 substitutions + 6-bp deletion):");
    println!("  two-stage pipeline  : {direct:?}");
    // Seeds must be short enough to fall between damage sites; 12 bp
    // leaves two clean seeds in this read where the default 20 bp has
    // none.
    let rescue = SeedExtendConfig {
        seed_len: 12,
        ..SeedExtendConfig::default()
    };
    match seed_and_extend(&mut aligner, &damaged, rescue) {
        Some(hit) => println!(
            "  seed-and-extend     : position {} score {} cigar {}",
            hit.ref_start, hit.score, hit.alignment.cigar
        ),
        None => println!("  seed-and-extend     : no hit"),
    }

    let report = aligner.report();
    println!(
        "\nplatform totals: {} queries, {:.3e} q/s, {:.1} W",
        report.queries, report.throughput_qps, report.total_power_w
    );
}
