//! Sub-array walkthrough: the Fig. 6 example, executed step by step.
//!
//! Loads a BWT bucket and the CRef rows into one simulated 512×256
//! SOT-MRAM sub-array, then walks one `LFM` by hand: `XNOR_Match`
//! against CRef-T, DPU popcount, vertical marker `MEM`, and `IM_ADD` —
//! printing what each primitive sees and costs.
//!
//! Run with: `cargo run --example subarray_walkthrough`

use bioseq::{Base, DnaSeq};
use mram::array::ArrayModel;
use pimsim::{CycleLedger, Dpu, SubArray};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ArrayModel::default();
    let mut sub = SubArray::new(model);
    let mut ledger = CycleLedger::new();
    let mut dpu = Dpu::new(model);

    let layout = sub.layout().clone();
    println!("sub-array zones (Fig. 6a):");
    println!(
        "  BWT rows      : {:?} ({} buckets x 128 bp)",
        layout.bwt_rows,
        layout.buckets()
    );
    println!("  CRef rows     : {:?}", layout.cref_rows);
    println!(
        "  MT rows       : {:?} (4 x 32-bit words per column)",
        layout.mt_rows
    );
    println!(
        "  reserved rows : {:?} (IM_ADD scratch)",
        layout.reserved_rows
    );

    // Load a small BWT segment (the Fig. 6b example compares against T).
    let segment: DnaSeq = "TAGCTTACGT".parse()?;
    let codes: Vec<u8> = segment.iter().map(|b| b.code()).collect();
    sub.load_cref_rows(&mut ledger);
    sub.load_bwt_row(0, &codes, &mut ledger);
    println!("\nBWT bucket 0 <- {segment} (2-bit codes {codes:?})");

    // XNOR_Match against CRef-T: a stack-allocated packed mask, one bit
    // per base position.
    let matches = sub.xnor_match(0, Base::T, &mut ledger);
    let shown: Vec<u8> = (0..segment.len()).map(|j| matches.get(j) as u8).collect();
    println!("XNOR_Match vs CRef-T -> match vector {shown:?}");

    // DPU popcount over a prefix (id within the bucket).
    let id_within = 7;
    let count = dpu.count_mask_matches(&matches, id_within, &mut ledger);
    println!("DPU popcount over first {id_within} positions -> count_match = {count}");

    // Vertical marker storage and MEM read.
    sub.store_marker(0, Base::T, 4, &mut ledger);
    let marker = sub.read_marker(0, Base::T, &mut ledger);
    println!("MEM marker[bucket 0][T] = {marker}");

    // IM_ADD: marker + count, in-memory.
    let sum = sub.im_add32(marker, count, &mut ledger);
    println!("IM_ADD: {marker} + {count} = {sum} (the updated bound)");

    // What it all cost.
    println!("\nledger:");
    for resource in pimsim::Resource::ALL {
        println!(
            "  {resource:?} busy cycles: {}",
            ledger.busy_cycles(resource)
        );
    }
    println!("  dynamic energy: {:.1} pJ", ledger.energy_pj());
    Ok(())
}
