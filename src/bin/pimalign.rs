//! `pimalign` — command-line short-read aligner on the simulated
//! PIM-Aligner platform.
//!
//! ```text
//! pimalign <reference.fasta> <reads.fastq> [options] > out.sam
//!
//! options:
//!   --pipelined           use PIM-Aligner-p (Pd = 2) instead of the baseline
//!   --pd <N>              parallelism degree (implies method-II for N >= 2)
//!   --max-diffs <Z>       inexact-stage difference budget (default 2, max 8)
//!   --no-indels           substitutions only in the inexact stage
//!   --single-strand       skip the reverse-complement retry
//!   --threads <N>         host worker threads for the batch (default 1)
//!   --fault-seed <S>      seed for the fault-injection campaign
//!   --fault-xnor <P>      per-bit XNOR sense-misread probability
//!   --fault-stuck <R>     stuck-at cell rate in the data zones
//!   --fault-transient <R> transient row-read fault rate per marker read
//!   --fault-carry <P>     IM_ADD carry-chain fault probability per add
//!   --no-recover          disable verify-and-recover under fault injection
//! ```
//!
//! SAM goes to stdout; the platform performance report goes to stderr.
//! Any `--fault-*` rate makes the campaign active; recovery (verify each
//! locus, retry, escalate the budget, fall back to the host) is then on
//! unless `--no-recover` is given.

use std::process::ExitCode;

use pim_aligner_suite::bioseq::{fasta, fastq};
use pim_aligner_suite::mram::faults::{FaultCampaign, FaultModel};
use pim_aligner_suite::pim_aligner::{
    align_batch_parallel, align_batch_parallel_both_strands, sam, MappedStrand, PimAligner,
    PimAlignerConfig, RecoveryPolicy,
};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pimalign: {msg}");
            ExitCode::from(2)
        }
    }
}

struct Cli {
    positional: Vec<String>,
    pd: usize,
    max_diffs: u8,
    indels: bool,
    both_strands: bool,
    threads: usize,
    fault_seed: u64,
    fault_xnor: f64,
    fault_stuck: f64,
    fault_transient: f64,
    fault_carry: f64,
    recover: bool,
}

fn parse_flag<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    *i += 1;
    args.get(*i)
        .ok_or(format!("{flag} needs a value"))?
        .parse()
        .map_err(|e| format!("invalid {flag}: {e}"))
}

fn parse_prob(args: &[String], i: &mut usize, flag: &str) -> Result<f64, String> {
    let p: f64 = parse_flag(args, i, flag)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("invalid {flag}: {p} is not a probability in [0, 1]"));
    }
    Ok(p)
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        positional: Vec::new(),
        pd: 1,
        max_diffs: 2,
        indels: true,
        both_strands: true,
        threads: 1,
        fault_seed: 0x5eed,
        fault_xnor: 0.0,
        fault_stuck: 0.0,
        fault_transient: 0.0,
        fault_carry: 0.0,
        recover: true,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--pipelined" => cli.pd = cli.pd.max(2),
            "--pd" => cli.pd = parse_flag(args, &mut i, "--pd")?,
            "--max-diffs" => {
                cli.max_diffs = parse_flag(args, &mut i, "--max-diffs")?;
                if cli.max_diffs > 8 {
                    return Err(format!(
                        "invalid --max-diffs: {} exceeds the platform maximum of 8",
                        cli.max_diffs
                    ));
                }
            }
            "--no-indels" => cli.indels = false,
            "--single-strand" => cli.both_strands = false,
            "--threads" => {
                cli.threads = parse_flag(args, &mut i, "--threads")?;
                if cli.threads == 0 {
                    return Err("invalid --threads: at least one worker thread required".into());
                }
            }
            "--fault-seed" => cli.fault_seed = parse_flag(args, &mut i, "--fault-seed")?,
            "--fault-xnor" => cli.fault_xnor = parse_prob(args, &mut i, "--fault-xnor")?,
            "--fault-stuck" => cli.fault_stuck = parse_prob(args, &mut i, "--fault-stuck")?,
            "--fault-transient" => {
                cli.fault_transient = parse_prob(args, &mut i, "--fault-transient")?;
            }
            "--fault-carry" => cli.fault_carry = parse_prob(args, &mut i, "--fault-carry")?,
            "--no-recover" => cli.recover = false,
            flag if flag.starts_with("--") => return Err(format!("unknown option {flag}")),
            _ => cli.positional.push(args[i].clone()),
        }
        i += 1;
    }
    Ok(cli)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_cli(&args)?;
    let [ref_path, reads_path] = cli.positional.as_slice() else {
        return Err("usage: pimalign <reference.fasta> <reads.fastq> [options]".to_owned());
    };

    let ref_text = std::fs::read_to_string(ref_path)
        .map_err(|e| format!("cannot read {ref_path}: {e}"))?;
    let references = fasta::parse(&ref_text).map_err(|e| format!("{ref_path}: {e}"))?;
    let [reference] = references.as_slice() else {
        return Err(format!(
            "{ref_path}: expected exactly one reference record, found {}",
            references.len()
        ));
    };
    let reads_text = std::fs::read_to_string(reads_path)
        .map_err(|e| format!("cannot read {reads_path}: {e}"))?;
    let reads = fastq::parse(&reads_text).map_err(|e| format!("{reads_path}: {e}"))?;
    if reads.is_empty() {
        return Err(format!("{reads_path}: no reads"));
    }

    let campaign = FaultCampaign::seeded(cli.fault_seed)
        .with_model(FaultModel::with_probabilities(cli.fault_xnor, cli.fault_xnor))
        .with_stuck_at_rate(cli.fault_stuck)
        .with_transient_row_rate(cli.fault_transient)
        .with_carry_fault_prob(cli.fault_carry);
    let mut config = PimAlignerConfig::baseline()
        .with_max_diffs(cli.max_diffs)
        .with_indels(cli.indels)
        .with_fault_campaign(campaign);
    if cli.pd >= 2 {
        config = config.with_pd(cli.pd);
    }
    if campaign.is_active() && cli.recover {
        config = config.with_recovery(RecoveryPolicy::standard());
    }

    print!("{}", sam::header(reference.id(), reference.seq().len()));
    let (outcomes, strands, report) = if cli.threads > 1 {
        let read_seqs: Vec<_> = reads.iter().map(|r| r.seq().clone()).collect();
        let (batch, strands) = if cli.both_strands {
            align_batch_parallel_both_strands(reference.seq(), &config, &read_seqs, cli.threads)
                .map_err(|e| e.to_string())?
        } else {
            let batch =
                align_batch_parallel(reference.seq(), &config, &read_seqs, cli.threads)
                    .map_err(|e| e.to_string())?;
            let strands = vec![MappedStrand::Forward; reads.len()];
            (batch, strands)
        };
        (batch.outcomes, strands, batch.report)
    } else {
        let mut aligner = PimAligner::new(reference.seq(), config);
        let mut outcomes = Vec::with_capacity(reads.len());
        let mut strands = Vec::with_capacity(reads.len());
        for record in &reads {
            let (outcome, strand) = if cli.both_strands {
                aligner.align_read_both_strands(record.seq())
            } else {
                (aligner.align_read(record.seq()), MappedStrand::Forward)
            };
            outcomes.push(outcome);
            strands.push(strand);
        }
        (outcomes, strands, aligner.report())
    };

    let mut mapped = 0usize;
    for ((record, outcome), strand) in reads.iter().zip(&outcomes).zip(&strands) {
        if outcome.is_mapped() {
            mapped += 1;
        }
        let sam_record = sam::record_for(
            record.id(),
            reference.id(),
            record.seq(),
            Some(record.quality()),
            outcome,
            *strand,
        );
        println!("{}", sam_record.to_line());
    }

    eprintln!(
        "pimalign: {} reads, {} mapped ({:.1}%)",
        reads.len(),
        mapped,
        100.0 * mapped as f64 / reads.len() as f64
    );
    eprintln!(
        "pimalign: platform Pd={}: {:.3e} queries/s, {:.1} W, MBR {:.1}%, RUR {:.1}%",
        cli.pd, report.throughput_qps, report.total_power_w, report.mbr_pct, report.rur_pct
    );
    let t = report.faults;
    if campaign.is_active() || !t.is_quiet() {
        eprintln!(
            "pimalign: faults injected: {} stuck cells, {} XNOR flips, {} transient rows, \
             {} carry faults",
            t.stuck_cells, t.xnor_bit_flips, t.transient_row_faults, t.carry_faults
        );
        eprintln!(
            "pimalign: recovery: {} verifications ({} failed), {} retries, {} escalations, \
             {} host fallbacks, {} unrecoverable",
            t.verifications,
            t.verify_failures,
            t.retries,
            t.escalations,
            t.host_fallbacks,
            t.unrecoverable
        );
    }
    Ok(())
}
