//! `pimalign` — command-line short-read aligner on the simulated
//! PIM-Aligner platform.
//!
//! ```text
//! pimalign <reference.fasta> <reads.fastq> [options] > out.sam
//! pimalign --index <artifact> <reads.fastq> [options] > out.sam
//! pimalign index build <reference.fasta> <artifact> [index options]
//! pimalign index inspect <artifact>
//!
//! options:
//!   --index <PATH>        boot the platform from a serialised index
//!                         artifact instead of rebuilding from FASTA
//!                         (the reference comes from the artifact, so no
//!                         reference.fasta positional is given)
//!   --index-memory-budget <BYTES>
//!                         build the in-process index with the densest
//!                         suffix-array sampling rate whose modelled
//!                         footprint fits (suffixes K/M/G = KiB/MiB/GiB)
//!   --pipelined           use PIM-Aligner-p (Pd = 2) instead of the baseline
//!   --pd <N>              parallelism degree (implies method-II for N >= 2)
//!   --max-diffs <Z>       inexact-stage difference budget (default 2, max 8)
//!   --no-indels           substitutions only in the inexact stage
//!   --single-strand       skip the reverse-complement retry
//!   --threads <N>         host worker threads for the batch (default 1)
//!   --batch-size <N>      reads aligned per streamed chunk (default 4096)
//!   --kernel-batch <N>    reads interleaved per LFM kernel batch
//!                         (default 8; 1 = single-read kernel path)
//!   --kernel-simd <P>     host kernel policy: auto (SIMD dispatch +
//!                         rank-checkpoint cache, default) or scalar
//!                         (portable word loop, cache off); simulated
//!                         cycles and SAM output are identical either way
//!   --fault-seed <S>      seed for the fault-injection campaign
//!   --fault-xnor <P>      per-bit XNOR sense-misread probability
//!   --fault-stuck <R>     stuck-at cell rate in the data zones
//!   --fault-transient <R> transient row-read fault rate per marker read
//!   --fault-carry <P>     IM_ADD carry-chain fault probability per add
//!   --no-recover          disable verify-and-recover under fault injection
//!   --metrics <PATH>      write the per-primitive cycle breakdown as JSON
//!   --metrics-out <PATH>  same document, alias kept distinct from --metrics
//!   --trace-out <PATH>    write a Chrome trace-event JSON (wall-clock spans,
//!                         one track per worker; open in Perfetto)
//!   --progress            stream reads/s + ETA to stderr while aligning
//!
//! index options (for `pimalign index build`):
//!   --sa-rate <N>         keep every N-th suffix-array entry (default 1 = full)
//!   --index-memory-budget <BYTES>
//!                         pick the densest rate fitting BYTES instead
//!   --shard-window <N>    owned bases per shard (default 0 = one shard)
//!   --shard-overlap <N>   slice overlap past the owned window; must cover
//!                         read length + difference budget (default 512)
//! ```
//!
//! SAM goes to stdout; the platform performance report goes to stderr.
//! Metrics and trace documents always go to their own files, so machine
//! output never interleaves with the SAM stream. Any `--fault-*` rate
//! makes the campaign active; recovery (verify each locus, retry,
//! escalate the budget, fall back to the host) is then on unless
//! `--no-recover` is given.
//!
//! The index is built exactly once per run; reads stream through in
//! `--batch-size` chunks (bounded memory — SAM records are written as
//! each chunk completes), and every chunk is aligned by the same shared
//! platform across `--threads` worker sessions. The metrics document
//! keeps simulated cycles and host wall-clock in separate sections; the
//! simulated sections are bit-identical whether or not any telemetry
//! flag is given.

use std::io::{BufWriter, Read, Write as _};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use pim_aligner_suite::bioseq::{fasta, fastq, DnaSeq};
use pim_aligner_suite::mram::faults::{FaultCampaign, FaultModel};
use pim_aligner_suite::pim_aligner::{
    sa_rate_for_budget, sam, AlignError, AlignmentOutcome, BatchTotals, HostTraceConfig,
    IndexArtifact, MappedStrand, PimAlignerConfig, Platform, RecoveryPolicy, ShardedPlatform,
    DEFAULT_KERNEL_BATCH,
};
use pim_aligner_suite::pimsim::{
    chrome_trace_json, dispatched_path, HostEpoch, HostSpan, SimdPolicy,
};

/// Wraps the raw reads file and counts bytes consumed, so `--progress`
/// can estimate completion from file position without a pre-pass over
/// the FASTQ (the read count is unknown while streaming).
struct CountingReader<R> {
    inner: R,
    bytes: Arc<AtomicU64>,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

/// Minimum interval between `--progress` lines.
const PROGRESS_INTERVAL_MS: u128 = 500;

/// Fraction of the file below which the ETA extrapolation is noise:
/// with almost nothing consumed, `elapsed * (1 - frac) / frac` divides
/// by a near-zero denominator and swings by orders of magnitude between
/// consecutive progress lines.
const ETA_MIN_FRACTION: f64 = 0.005;

/// Formats one `--progress` line: reads aligned, rate, and an ETA
/// extrapolated from the fraction of the FASTQ consumed so far.
///
/// Pure (no clock, no stderr) so the ETA clamping is unit-testable. An
/// estimate that would be unstable — too little of the file consumed,
/// effectively no throughput yet, or a non-finite division artifact —
/// is printed as the sentinel `eta=?` rather than a multi-hour number
/// that vanishes on the next line.
fn format_progress(reads_done: u64, elapsed_s: f64, bytes_done: u64, bytes_total: u64) -> String {
    let rate = if elapsed_s > 0.0 && elapsed_s.is_finite() {
        reads_done as f64 / elapsed_s
    } else {
        0.0
    };
    // The streaming reader may buffer ahead of the last-aligned read;
    // clamp so the fraction never exceeds 1.
    let frac = if bytes_total > 0 {
        (bytes_done as f64 / bytes_total as f64).min(1.0)
    } else {
        1.0
    };
    let eta = if frac >= 1.0 {
        "eta=0s".to_owned()
    } else if frac >= ETA_MIN_FRACTION && rate >= 0.5 {
        let eta_s = elapsed_s * (1.0 - frac) / frac;
        if eta_s.is_finite() {
            format!("eta={eta_s:.0}s")
        } else {
            "eta=?".to_owned()
        }
    } else {
        "eta=?".to_owned()
    };
    format!("pimalign: progress: {reads_done} reads, {rate:.0} reads/s, {eta}")
}

/// One `--progress` line on stderr.
fn report_progress(reads_done: u64, elapsed_s: f64, bytes_done: u64, bytes_total: u64) {
    eprintln!(
        "{}",
        format_progress(reads_done, elapsed_s, bytes_done, bytes_total)
    );
}

/// A CLI failure, classified so scripts can tell a typo (fix the
/// command) from a bad input file (fix the data) from a runtime fault
/// (look at the environment). Exit codes: usage = 2, input = 3,
/// runtime = 4.
enum CliError {
    /// Bad flags or arguments.
    Usage(String),
    /// Unreadable or malformed input files.
    Input(String),
    /// A failure while the run was underway (write errors, alignment
    /// errors).
    Runtime(String),
}

impl CliError {
    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Input(m) | CliError::Runtime(m) => m,
        }
    }

    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Input(_) => 3,
            CliError::Runtime(_) => 4,
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pimalign: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}

/// Maps one SAM write result: `Ok(true)` = written, `Ok(false)` =
/// stdout's reader went away (`pimalign ... | head`), which is a clean
/// early exit (code 0), not an error.
fn sam_write_ok(result: std::io::Result<()>) -> Result<bool, CliError> {
    match result {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(false),
        Err(e) => Err(CliError::Runtime(format!("cannot write SAM: {e}"))),
    }
}

struct Cli {
    positional: Vec<String>,
    index: Option<String>,
    index_memory_budget: Option<usize>,
    pd: usize,
    max_diffs: u8,
    indels: bool,
    both_strands: bool,
    threads: usize,
    batch_size: usize,
    kernel_batch: usize,
    kernel_simd: SimdPolicy,
    fault_seed: u64,
    fault_xnor: f64,
    fault_stuck: f64,
    fault_transient: f64,
    fault_carry: f64,
    recover: bool,
    metrics: Option<String>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    progress: bool,
}

fn parse_flag<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    *i += 1;
    args.get(*i)
        .ok_or(format!("{flag} needs a value"))?
        .parse()
        .map_err(|e| format!("invalid {flag}: {e}"))
}

/// Parses a byte count with optional binary suffix: `64M` = 64 MiB.
fn parse_bytes(raw: &str, flag: &str) -> Result<usize, String> {
    let (digits, shift) = match raw.as_bytes().last() {
        Some(b'K' | b'k') => (&raw[..raw.len() - 1], 10),
        Some(b'M' | b'm') => (&raw[..raw.len() - 1], 20),
        Some(b'G' | b'g') => (&raw[..raw.len() - 1], 30),
        _ => (raw, 0),
    };
    let n: usize = digits.parse().map_err(|e| format!("invalid {flag}: {e}"))?;
    n.checked_shl(shift)
        .filter(|&b| b >> shift == n)
        .ok_or_else(|| format!("invalid {flag}: {raw} overflows"))
}

fn parse_prob(args: &[String], i: &mut usize, flag: &str) -> Result<f64, String> {
    let p: f64 = parse_flag(args, i, flag)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!(
            "invalid {flag}: {p} is not a probability in [0, 1]"
        ));
    }
    Ok(p)
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        positional: Vec::new(),
        index: None,
        index_memory_budget: None,
        pd: 1,
        max_diffs: 2,
        indels: true,
        both_strands: true,
        threads: 1,
        batch_size: 4_096,
        kernel_batch: DEFAULT_KERNEL_BATCH,
        kernel_simd: SimdPolicy::Auto,
        fault_seed: 0x5eed,
        fault_xnor: 0.0,
        fault_stuck: 0.0,
        fault_transient: 0.0,
        fault_carry: 0.0,
        recover: true,
        metrics: None,
        metrics_out: None,
        trace_out: None,
        progress: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--index" => cli.index = Some(parse_flag(args, &mut i, "--index")?),
            "--index-memory-budget" => {
                let raw: String = parse_flag(args, &mut i, "--index-memory-budget")?;
                cli.index_memory_budget = Some(parse_bytes(&raw, "--index-memory-budget")?);
            }
            "--pipelined" => cli.pd = cli.pd.max(2),
            "--pd" => {
                cli.pd = parse_flag(args, &mut i, "--pd")?;
                if cli.pd == 0 {
                    return Err("invalid --pd: parallelism degree must be at least 1".into());
                }
            }
            "--max-diffs" => {
                cli.max_diffs = parse_flag(args, &mut i, "--max-diffs")?;
                if cli.max_diffs > 8 {
                    return Err(format!(
                        "invalid --max-diffs: {} exceeds the platform maximum of 8",
                        cli.max_diffs
                    ));
                }
            }
            "--no-indels" => cli.indels = false,
            "--single-strand" => cli.both_strands = false,
            "--threads" => {
                cli.threads = parse_flag(args, &mut i, "--threads")?;
                if cli.threads == 0 {
                    return Err("invalid --threads: at least one worker thread required".into());
                }
            }
            "--batch-size" => {
                cli.batch_size = parse_flag(args, &mut i, "--batch-size")?;
                if cli.batch_size == 0 {
                    return Err("invalid --batch-size: must be at least 1".into());
                }
            }
            "--kernel-batch" => {
                cli.kernel_batch = parse_flag(args, &mut i, "--kernel-batch")?;
                if cli.kernel_batch == 0 {
                    return Err(
                        "invalid --kernel-batch: must be at least 1 (1 = single-read kernel)"
                            .into(),
                    );
                }
            }
            "--kernel-simd" => cli.kernel_simd = parse_flag(args, &mut i, "--kernel-simd")?,
            "--fault-seed" => cli.fault_seed = parse_flag(args, &mut i, "--fault-seed")?,
            "--fault-xnor" => cli.fault_xnor = parse_prob(args, &mut i, "--fault-xnor")?,
            "--fault-stuck" => cli.fault_stuck = parse_prob(args, &mut i, "--fault-stuck")?,
            "--fault-transient" => {
                cli.fault_transient = parse_prob(args, &mut i, "--fault-transient")?;
            }
            "--fault-carry" => cli.fault_carry = parse_prob(args, &mut i, "--fault-carry")?,
            "--no-recover" => cli.recover = false,
            "--metrics" => cli.metrics = Some(parse_flag(args, &mut i, "--metrics")?),
            "--metrics-out" => cli.metrics_out = Some(parse_flag(args, &mut i, "--metrics-out")?),
            "--trace-out" => cli.trace_out = Some(parse_flag(args, &mut i, "--trace-out")?),
            "--progress" => cli.progress = true,
            flag if flag.starts_with("--") => return Err(format!("unknown option {flag}")),
            _ => cli.positional.push(args[i].clone()),
        }
        i += 1;
    }
    Ok(cli)
}

/// Reads a FASTA file expected to hold exactly one reference record.
fn load_reference(ref_path: &str) -> Result<(String, DnaSeq), CliError> {
    let ref_text = std::fs::read_to_string(ref_path)
        .map_err(|e| CliError::Input(format!("cannot read {ref_path}: {e}")))?;
    let references =
        fasta::parse(&ref_text).map_err(|e| CliError::Input(format!("{ref_path}: {e}")))?;
    let [reference] = references.as_slice() else {
        return Err(CliError::Input(format!(
            "{ref_path}: expected exactly one reference record, found {}",
            references.len()
        )));
    };
    Ok((reference.id().to_owned(), reference.seq().clone()))
}

/// The alignment engine behind the streaming loop: one flat platform
/// (built in-process) or a sharded platform booted from an artifact.
enum Engine {
    Flat(Platform),
    Sharded(ShardedPlatform),
}

impl Engine {
    fn align_chunk(
        &self,
        seqs: &[DnaSeq],
        threads: usize,
        epoch: u64,
        both_strands: bool,
        trace: Option<&HostTraceConfig>,
    ) -> Result<(Vec<(AlignmentOutcome, MappedStrand)>, BatchTotals), AlignError> {
        match (self, trace) {
            (Engine::Flat(p), Some(t)) => {
                p.align_chunk_parallel_traced(seqs, threads, epoch, both_strands, t)
            }
            (Engine::Flat(p), None) => p.align_chunk_parallel(seqs, threads, epoch, both_strands),
            (Engine::Sharded(s), Some(t)) => s
                .single_platform()
                .expect("multi-shard tracing is rejected at startup")
                .align_chunk_parallel_traced(seqs, threads, epoch, both_strands, t),
            (Engine::Sharded(s), None) => s.align_chunk(seqs, threads, epoch, both_strands),
        }
    }

    fn batch_report(&self, totals: &BatchTotals) -> pim_aligner_suite::pim_aligner::PerfReport {
        match self {
            Engine::Flat(p) => p.batch_report(totals),
            Engine::Sharded(s) => s.batch_report(totals),
        }
    }
}

fn run() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("index") {
        return run_index(&args[1..]);
    }
    let cli = parse_cli(&args).map_err(CliError::Usage)?;
    if cli.index.is_some() && cli.index_memory_budget.is_some() {
        return Err(CliError::Usage(
            "--index-memory-budget applies when building an index; a loaded artifact's \
             sampling rate is already fixed"
                .to_owned(),
        ));
    }
    let (ref_source, reads_path) = match (&cli.index, cli.positional.as_slice()) {
        (Some(_), [reads]) => (None, reads),
        (None, [reference, reads]) => (Some(reference), reads),
        (Some(_), _) => {
            return Err(CliError::Usage(
                "usage: pimalign --index <artifact> <reads.fastq> [options]".to_owned(),
            ));
        }
        (None, _) => {
            return Err(CliError::Usage(
                "usage: pimalign <reference.fasta> <reads.fastq> [options]".to_owned(),
            ));
        }
    };
    let reads_file = std::fs::File::open(reads_path)
        .map_err(|e| CliError::Input(format!("cannot read {reads_path}: {e}")))?;
    let reads_total_bytes = reads_file
        .metadata()
        .map_err(|e| CliError::Input(format!("cannot stat {reads_path}: {e}")))?
        .len();
    let bytes_consumed = Arc::new(AtomicU64::new(0));
    let mut reads = fastq::Reader::new(std::io::BufReader::new(CountingReader {
        inner: reads_file,
        bytes: Arc::clone(&bytes_consumed),
    }));

    let campaign = FaultCampaign::seeded(cli.fault_seed)
        .with_model(FaultModel::with_probabilities(
            cli.fault_xnor,
            cli.fault_xnor,
        ))
        .with_stuck_at_rate(cli.fault_stuck)
        .with_transient_row_rate(cli.fault_transient)
        .with_carry_fault_prob(cli.fault_carry);
    let mut config = PimAlignerConfig::baseline()
        .with_max_diffs(cli.max_diffs)
        .with_indels(cli.indels)
        .with_kernel_batch(cli.kernel_batch)
        .with_kernel_simd(cli.kernel_simd)
        .with_fault_campaign(campaign);
    eprintln!(
        "pimalign: kernel dispatch {} (--kernel-simd {})",
        dispatched_path(cli.kernel_simd),
        cli.kernel_simd.name()
    );
    if cli.pd >= 2 {
        config = config.with_pd(cli.pd);
    }
    if campaign.is_active() && cli.recover {
        config = config.with_recovery(RecoveryPolicy::standard());
    }

    // The run's wall-clock epoch: created before the index build so the
    // build lands at t ≈ 0 on the trace timeline.
    let host_epoch = HostEpoch::new();
    let trace_config = cli
        .trace_out
        .as_ref()
        .map(|_| HostTraceConfig::new(host_epoch));

    // One engine for the whole run: the index is built (or loaded)
    // exactly once here and shared by every chunk and worker thread
    // below.
    let build_start_ns = host_epoch.now_ns();
    let (engine, ref_id, ref_len) = match (&cli.index, ref_source) {
        (Some(artifact_path), None) => {
            let artifact = IndexArtifact::load_from_path(std::path::Path::new(artifact_path))
                .map_err(|e| CliError::Input(format!("{artifact_path}: {e}")))?;
            let ref_id = artifact.reference_name().to_owned();
            let ref_len = artifact.reference().len();
            let sharded = ShardedPlatform::from_artifact(&artifact, config, true);
            if trace_config.is_some() && sharded.shard_count() > 1 {
                return Err(CliError::Usage(
                    "--trace-out is not supported with sharded index artifacts".to_owned(),
                ));
            }
            (Engine::Sharded(sharded), ref_id, ref_len)
        }
        (None, Some(ref_path)) => {
            let (ref_id, reference) = load_reference(ref_path)?;
            let ref_len = reference.len();
            let engine = if let Some(budget) = cli.index_memory_budget {
                let rate = sa_rate_for_budget(ref_len, budget).ok_or_else(|| {
                    CliError::Input(format!(
                        "--index-memory-budget {budget} bytes cannot hold the index for \
                         {ref_len} bases at any supported sampling rate"
                    ))
                })?;
                let artifact = IndexArtifact::build(&ref_id, &reference, rate, 0, 0);
                Engine::Sharded(ShardedPlatform::from_artifact(&artifact, config, false))
            } else {
                Engine::Flat(Platform::new(&reference, config))
            };
            (engine, ref_id, ref_len)
        }
        _ => unreachable!("positional parsing pinned the index/reference combinations"),
    };
    // The index build runs on the main thread; its trace track sits
    // after the worker tracks (tid = --threads).
    let build_span = HostSpan {
        name: "index_build",
        tid: cli.threads as u32,
        start_ns: build_start_ns,
        dur_ns: host_epoch.now_ns().saturating_sub(build_start_ns),
    };

    // Stream chunks: bounded memory in and incremental SAM out, one code
    // path for any thread count (1 thread is a single worker session).
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    if !sam_write_ok(write!(out, "{}", sam::header(&ref_id, ref_len)))? {
        return Ok(());
    }
    let mut totals = BatchTotals::new();
    let mut mapped = 0usize;
    let mut epoch = 0u64;
    let align_start = Instant::now();
    let mut last_progress = Instant::now();
    loop {
        let chunk = reads
            .next_chunk(cli.batch_size)
            .map_err(|e| CliError::Input(format!("{reads_path}: {e}")))?;
        if chunk.is_empty() {
            break;
        }
        let seqs: Vec<_> = chunk.iter().map(|r| r.seq().clone()).collect();
        let (pairs, chunk_totals) = engine
            .align_chunk(
                &seqs,
                cli.threads,
                epoch,
                cli.both_strands,
                trace_config.as_ref(),
            )
            .map_err(|e| match e {
                // A read too long for the artifact's shard overlap is a
                // data problem (pick a different artifact), not a crash.
                AlignError::ReadExceedsShardOverlap { .. } => CliError::Input(e.to_string()),
                other => CliError::Runtime(other.to_string()),
            })?;
        totals.merge(&chunk_totals);
        if cli.progress && last_progress.elapsed().as_millis() >= PROGRESS_INTERVAL_MS {
            last_progress = Instant::now();
            report_progress(
                totals.reads,
                align_start.elapsed().as_secs_f64(),
                bytes_consumed.load(Ordering::Relaxed),
                reads_total_bytes,
            );
        }
        for (record, (outcome, strand)) in chunk.iter().zip(&pairs) {
            if outcome.is_mapped() {
                mapped += 1;
            }
            let sam_record = sam::record_for(
                record.id(),
                &ref_id,
                record.seq(),
                Some(record.quality()),
                outcome,
                *strand,
            );
            if !sam_write_ok(writeln!(out, "{}", sam_record.to_line()))? {
                return Ok(());
            }
        }
        epoch += 1;
    }
    if !sam_write_ok(out.flush())? {
        return Ok(());
    }
    if totals.reads == 0 {
        return Err(CliError::Input(format!("{reads_path}: no reads")));
    }
    let report = engine.batch_report(&totals);
    let mut metrics_paths: Vec<&String> = Vec::new();
    metrics_paths.extend(&cli.metrics);
    if cli.metrics_out.as_ref() != cli.metrics.as_ref() {
        metrics_paths.extend(&cli.metrics_out);
    }
    for path in metrics_paths {
        std::fs::write(path, report.to_metrics_json())
            .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
    }
    if let Some(path) = &cli.trace_out {
        // Every worker gets a labelled track, spans or not: a starved
        // worker showing an empty track is itself a finding. The main
        // track carries the one-time index build.
        let mut tracks: Vec<(u32, String)> = (0..cli.threads as u32)
            .map(|w| (w, format!("worker-{w}")))
            .collect();
        tracks.push((cli.threads as u32, "main".to_owned()));
        let mut spans = totals.host.spans.clone();
        spans.push(build_span);
        std::fs::write(path, chrome_trace_json(&spans, &tracks))
            .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
    }
    let spans_dropped = totals.host.spans_dropped + report.breakdown.spans_dropped;
    if spans_dropped > 0 {
        eprintln!(
            "pimalign: warning: {spans_dropped} trace span(s) dropped (capacity); \
             the trace is truncated, not complete"
        );
    }

    eprintln!(
        "pimalign: {} reads, {} mapped ({:.1}%)",
        totals.reads,
        mapped,
        100.0 * mapped as f64 / totals.reads as f64
    );
    eprintln!(
        "pimalign: platform Pd={}: {:.3e} queries/s, {:.1} W, MBR {:.1}%, RUR {:.1}%",
        cli.pd, report.throughput_qps, report.total_power_w, report.mbr_pct, report.rur_pct
    );
    let ix = report.index;
    eprintln!(
        "pimalign: index: {} ({} shard{}), SA rate {}, {} bytes ({:.2} bytes/bp)",
        if ix.loaded { "loaded" } else { "built" },
        ix.shards,
        if ix.shards == 1 { "" } else { "s" },
        ix.sa_rate,
        ix.actual_bytes,
        ix.actual_bytes as f64 / ref_len as f64,
    );
    let t = report.faults;
    if campaign.is_active() || !t.is_quiet() {
        eprintln!(
            "pimalign: faults injected: {} stuck cells, {} XNOR flips, {} transient rows, \
             {} carry faults",
            t.stuck_cells, t.xnor_bit_flips, t.transient_row_faults, t.carry_faults
        );
        eprintln!(
            "pimalign: recovery: {} verifications ({} failed), {} retries, {} escalations, \
             {} host fallbacks, {} unrecoverable",
            t.verifications,
            t.verify_failures,
            t.retries,
            t.escalations,
            t.host_fallbacks,
            t.unrecoverable
        );
    }
    Ok(())
}

/// Dispatches the `pimalign index <verb>` subcommands.
fn run_index(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("build") => run_index_build(&args[1..]),
        Some("inspect") => run_index_inspect(&args[1..]),
        _ => Err(CliError::Usage(
            "usage: pimalign index build <reference.fasta> <artifact> [options]\n\
             \x20      pimalign index inspect <artifact>"
                .to_owned(),
        )),
    }
}

struct IndexBuildCli {
    positional: Vec<String>,
    sa_rate: u32,
    budget: Option<usize>,
    shard_window: usize,
    shard_overlap: usize,
}

fn parse_index_build_cli(args: &[String]) -> Result<IndexBuildCli, String> {
    let mut cli = IndexBuildCli {
        positional: Vec::new(),
        sa_rate: 1,
        budget: None,
        shard_window: 0,
        shard_overlap: 512,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sa-rate" => {
                cli.sa_rate = parse_flag(args, &mut i, "--sa-rate")?;
                if cli.sa_rate == 0 {
                    return Err("invalid --sa-rate: must be at least 1".into());
                }
            }
            "--index-memory-budget" => {
                let raw: String = parse_flag(args, &mut i, "--index-memory-budget")?;
                cli.budget = Some(parse_bytes(&raw, "--index-memory-budget")?);
            }
            "--shard-window" => cli.shard_window = parse_flag(args, &mut i, "--shard-window")?,
            "--shard-overlap" => {
                cli.shard_overlap = parse_flag(args, &mut i, "--shard-overlap")?;
                if cli.shard_overlap == 0 {
                    return Err(
                        "invalid --shard-overlap: must cover at least one read length".into(),
                    );
                }
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option {flag}")),
            _ => cli.positional.push(args[i].clone()),
        }
        i += 1;
    }
    Ok(cli)
}

/// `pimalign index build`: FASTA in, checksummed `PIMAIX1` artifact out.
fn run_index_build(args: &[String]) -> Result<(), CliError> {
    let cli = parse_index_build_cli(args).map_err(CliError::Usage)?;
    let [ref_path, out_path] = cli.positional.as_slice() else {
        return Err(CliError::Usage(
            "usage: pimalign index build <reference.fasta> <artifact> [options]".to_owned(),
        ));
    };
    let (ref_id, reference) = load_reference(ref_path)?;
    let max_len = pim_aligner_suite::fmindex::FmIndex::MAX_REFERENCE_LEN;
    if reference.len() > max_len {
        return Err(CliError::Input(format!(
            "{ref_path}: {} bases exceeds the u32 position bound ({max_len} bases max); \
             shard the reference across separate artifacts",
            reference.len()
        )));
    }
    let sa_rate = match cli.budget {
        Some(budget) => sa_rate_for_budget(reference.len(), budget).ok_or_else(|| {
            CliError::Input(format!(
                "--index-memory-budget {budget} bytes cannot hold the index for {} bases \
                 at any supported sampling rate",
                reference.len()
            ))
        })?,
        None => cli.sa_rate,
    };
    let build_start = Instant::now();
    let artifact = IndexArtifact::build(
        &ref_id,
        &reference,
        sa_rate,
        cli.shard_window,
        cli.shard_overlap,
    );
    let build_ms = build_start.elapsed().as_secs_f64() * 1e3;
    artifact
        .save_to_path(std::path::Path::new(out_path))
        .map_err(|e| CliError::Runtime(format!("cannot write {out_path}: {e}")))?;
    eprintln!(
        "pimalign: index build: {} bases -> {} shard(s), SA rate {}, {} index bytes \
         ({:.2} bytes/bp), {:.0} ms",
        reference.len(),
        artifact.shards().len(),
        artifact.sa_rate(),
        artifact.index_bytes(),
        artifact.index_bytes() as f64 / reference.len() as f64,
        build_ms,
    );
    Ok(())
}

/// `pimalign index inspect`: loads (and thereby checksum-verifies) an
/// artifact and prints its geometry, one `key: value` per line.
fn run_index_inspect(args: &[String]) -> Result<(), CliError> {
    let [path] = args else {
        return Err(CliError::Usage(
            "usage: pimalign index inspect <artifact>".to_owned(),
        ));
    };
    let artifact = IndexArtifact::load_from_path(std::path::Path::new(path))
        .map_err(|e| CliError::Input(format!("{path}: {e}")))?;
    println!("reference: {}", artifact.reference_name());
    println!("bases: {}", artifact.reference().len());
    println!("sa_rate: {}", artifact.sa_rate());
    println!("shards: {}", artifact.shards().len());
    println!("shard_window: {}", artifact.shard_window());
    println!("shard_overlap: {}", artifact.shard_overlap());
    println!("index_bytes: {}", artifact.index_bytes());
    println!("model_bytes: {}", artifact.model_bytes());
    println!(
        "bytes_per_bp: {:.4}",
        artifact.index_bytes() as f64 / artifact.reference().len() as f64
    );
    println!("checksum: ok");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::format_progress;

    #[test]
    fn progress_eta_is_stable_midway() {
        // Half the file in 10 s: another ~10 s to go.
        let line = format_progress(5_000, 10.0, 500, 1_000);
        assert_eq!(line, "pimalign: progress: 5000 reads, 500 reads/s, eta=10s");
    }

    #[test]
    fn progress_eta_clamps_to_sentinel_early_in_the_run() {
        // Regression: with one byte of a huge file consumed, the old
        // extrapolation printed a multi-hour artifact (here ~28 h).
        let line = format_progress(3, 0.1, 1, 1_000_000);
        assert!(line.ends_with("eta=?"), "unstable estimate leaked: {line}");
    }

    #[test]
    fn progress_eta_clamps_when_rate_is_effectively_zero() {
        // A long stall before the first read: frac is healthy but no
        // throughput means no basis for extrapolation.
        let line = format_progress(0, 30.0, 100, 1_000);
        assert!(line.ends_with("eta=?"), "zero-rate estimate leaked: {line}");
        assert!(line.contains("0 reads/s"));
    }

    #[test]
    fn progress_eta_survives_zero_and_nonfinite_elapsed() {
        // Division artifacts must never reach stderr.
        for elapsed in [0.0, f64::NAN, f64::INFINITY] {
            let line = format_progress(10, elapsed, 500, 1_000);
            assert!(!line.contains("inf") && !line.contains("NaN"), "{line}");
            assert!(line.ends_with("eta=?"), "{line}");
        }
    }

    #[test]
    fn progress_eta_is_zero_at_completion_and_with_unknown_total() {
        assert!(format_progress(9, 2.0, 1_000, 1_000).ends_with("eta=0s"));
        // bytes_total == 0 (unseekable input): fraction defaults to
        // done, not to a divide-by-zero.
        assert!(format_progress(9, 2.0, 123, 0).ends_with("eta=0s"));
    }
}
