//! `pimalign` — command-line short-read aligner on the simulated
//! PIM-Aligner platform.
//!
//! ```text
//! pimalign <reference.fasta> <reads.fastq> [options] > out.sam
//!
//! options:
//!   --pipelined        use PIM-Aligner-p (Pd = 2) instead of the baseline
//!   --pd <N>           parallelism degree (implies method-II for N >= 2)
//!   --max-diffs <Z>    inexact-stage difference budget (default 2, max 8)
//!   --no-indels        substitutions only in the inexact stage
//!   --single-strand    skip the reverse-complement retry
//! ```
//!
//! SAM goes to stdout; the platform performance report goes to stderr.

use std::process::ExitCode;

use pim_aligner_suite::bioseq::{fasta, fastq};
use pim_aligner_suite::pim_aligner::{sam, MappedStrand, PimAligner, PimAlignerConfig};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pimalign: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut pd = 1usize;
    let mut max_diffs = 2u8;
    let mut indels = true;
    let mut both_strands = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--pipelined" => pd = pd.max(2),
            "--pd" => {
                i += 1;
                pd = args
                    .get(i)
                    .ok_or("--pd needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --pd: {e}"))?;
            }
            "--max-diffs" => {
                i += 1;
                max_diffs = args
                    .get(i)
                    .ok_or("--max-diffs needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --max-diffs: {e}"))?;
            }
            "--no-indels" => indels = false,
            "--single-strand" => both_strands = false,
            flag if flag.starts_with("--") => return Err(format!("unknown option {flag}")),
            _ => positional.push(args[i].clone()),
        }
        i += 1;
    }
    let [ref_path, reads_path] = positional.as_slice() else {
        return Err("usage: pimalign <reference.fasta> <reads.fastq> [options]".to_owned());
    };

    let ref_text = std::fs::read_to_string(ref_path)
        .map_err(|e| format!("cannot read {ref_path}: {e}"))?;
    let references = fasta::parse(&ref_text).map_err(|e| format!("{ref_path}: {e}"))?;
    let [reference] = references.as_slice() else {
        return Err(format!(
            "{ref_path}: expected exactly one reference record, found {}",
            references.len()
        ));
    };
    let reads_text = std::fs::read_to_string(reads_path)
        .map_err(|e| format!("cannot read {reads_path}: {e}"))?;
    let reads = fastq::parse(&reads_text).map_err(|e| format!("{reads_path}: {e}"))?;
    if reads.is_empty() {
        return Err(format!("{reads_path}: no reads"));
    }

    let mut config = PimAlignerConfig::baseline()
        .with_max_diffs(max_diffs)
        .with_indels(indels);
    if pd >= 2 {
        config = config.with_pd(pd);
    }
    let mut aligner = PimAligner::new(reference.seq(), config);

    print!("{}", sam::header(reference.id(), reference.seq().len()));
    let mut mapped = 0usize;
    for record in &reads {
        let (outcome, strand) = if both_strands {
            aligner.align_read_both_strands(record.seq())
        } else {
            (aligner.align_read(record.seq()), MappedStrand::Forward)
        };
        if outcome.is_mapped() {
            mapped += 1;
        }
        let sam_record = sam::record_for(
            record.id(),
            reference.id(),
            record.seq(),
            Some(record.quality()),
            &outcome,
            strand,
        );
        println!("{}", sam_record.to_line());
    }

    let report = aligner.report();
    eprintln!(
        "pimalign: {} reads, {} mapped ({:.1}%)",
        reads.len(),
        mapped,
        100.0 * mapped as f64 / reads.len() as f64
    );
    eprintln!(
        "pimalign: platform Pd={pd}: {:.3e} queries/s, {:.1} W, MBR {:.1}%, RUR {:.1}%",
        report.throughput_qps, report.total_power_w, report.mbr_pct, report.rur_pct
    );
    Ok(())
}
