//! `pimserve` — the PIM-Aligner alignment daemon.
//!
//! ```text
//! pimserve <reference.fasta> [options]
//! pimserve --index <artifact> [options]
//!
//! options:
//!   --index <PATH>            boot the warm platform from a serialised
//!                             index artifact (built by `pimalign index
//!                             build`) instead of indexing the FASTA;
//!                             single-shard artifacts only
//!   --addr <HOST:PORT>        listen address (default 127.0.0.1:0)
//!   --port-file <PATH>        write the bound address to PATH once listening
//!   --threads <N>             worker threads per alignment batch (default 2)
//!   --batch-max <N>           most reads coalesced per batch (default 64)
//!   --queue-depth <N>         bounded admission queue depth (default 256)
//!   --max-inflight-bytes <N>  admitted-but-unanswered byte budget (default 8 MiB)
//!   --deadline-ms <N>         default per-request deadline, 0 = none (default 0)
//!   --retry-after-ms <N>      base of the shed retry-after hint (default 20)
//!   --pipelined               use PIM-Aligner-p (Pd = 2) instead of the baseline
//!   --pd <N>                  parallelism degree (implies method-II for N >= 2)
//!   --kernel-batch <N>        reads interleaved per LFM kernel batch
//!                             (default 8; 1 = single-read kernel path)
//!   --kernel-simd <P>         host kernel policy: auto (SIMD dispatch +
//!                             rank-checkpoint cache, default) or scalar;
//!                             simulated cycles and responses identical
//!   --max-diffs <Z>           inexact-stage difference budget (default 2, max 8)
//!   --no-indels               substitutions only in the inexact stage
//!   --single-strand           skip the reverse-complement retry
//!   --metrics-out <PATH>      write the final metrics JSON after drain
//!   --obs-window <SECS>       rolling telemetry window, seconds (default 60)
//!   --watchdog-ms <N>         batcher-stall watchdog threshold, ms;
//!                             0 disables the watchdog (default 1000)
//!   --trace-out <PATH>        write a Chrome-trace JSON of per-request
//!                             stage spans after drain (one Perfetto
//!                             track per request)
//!   --test-faults             enable the deterministic test-fault hooks
//! ```
//!
//! One warm [`Platform`] is built at startup and shared by every
//! connection; the wire protocol, admission control, deadlines, panic
//! quarantine and drain live in `pim_aligner::service` (DESIGN.md §13).
//! The process runs until a client sends the `Drain` opcode, then
//! answers everything already accepted, writes its final metrics, and
//! exits 0. Exit codes mirror `pimalign`: usage = 2, input = 3,
//! runtime = 4.
//!
//! All diagnostics are single-line structured `key=value` records on
//! stderr (`pimserve: event=<name> k=v ...`) so a log scraper never has
//! to guess at prose; stdout stays silent.

use std::io::Write as _;
use std::process::ExitCode;

use pim_aligner_suite::bioseq::fasta;
use pim_aligner_suite::pim_aligner::service::obs::log_kv;
use pim_aligner_suite::pim_aligner::service::{serve, ServiceConfig, ServiceError};
use pim_aligner_suite::pim_aligner::{
    IndexArtifact, PimAlignerConfig, Platform, DEFAULT_KERNEL_BATCH,
};
use pim_aligner_suite::pimsim::{chrome_trace_json, dispatched_path, SimdPolicy};

/// A CLI failure, classified exactly as in `pimalign`: usage = 2,
/// input = 3, runtime = 4.
enum CliError {
    Usage(String),
    Input(String),
    Runtime(String),
}

impl CliError {
    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Input(m) | CliError::Runtime(m) => m,
        }
    }

    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Input(_) => 3,
            CliError::Runtime(_) => 4,
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            log_kv(
                "fatal",
                &[
                    ("exit_code", e.exit_code().to_string()),
                    ("message", e.message().to_owned()),
                ],
            );
            ExitCode::from(e.exit_code())
        }
    }
}

struct Cli {
    positional: Vec<String>,
    index: Option<String>,
    addr: String,
    port_file: Option<String>,
    service: ServiceConfig,
    pd: usize,
    kernel_batch: usize,
    kernel_simd: SimdPolicy,
    max_diffs: u8,
    indels: bool,
    metrics_out: Option<String>,
    trace_out: Option<String>,
}

fn parse_flag<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    *i += 1;
    args.get(*i)
        .ok_or(format!("{flag} needs a value"))?
        .parse()
        .map_err(|e| format!("invalid {flag}: {e}"))
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        positional: Vec::new(),
        index: None,
        addr: "127.0.0.1:0".to_owned(),
        port_file: None,
        service: ServiceConfig::default(),
        pd: 1,
        kernel_batch: DEFAULT_KERNEL_BATCH,
        kernel_simd: SimdPolicy::Auto,
        max_diffs: 2,
        indels: true,
        metrics_out: None,
        trace_out: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--index" => cli.index = Some(parse_flag(args, &mut i, "--index")?),
            "--addr" => cli.addr = parse_flag(args, &mut i, "--addr")?,
            "--port-file" => cli.port_file = Some(parse_flag(args, &mut i, "--port-file")?),
            "--threads" => cli.service.threads = parse_flag(args, &mut i, "--threads")?,
            "--batch-max" => cli.service.batch_max = parse_flag(args, &mut i, "--batch-max")?,
            "--queue-depth" => cli.service.queue_depth = parse_flag(args, &mut i, "--queue-depth")?,
            "--max-inflight-bytes" => {
                cli.service.max_inflight_bytes = parse_flag(args, &mut i, "--max-inflight-bytes")?;
            }
            "--deadline-ms" => {
                cli.service.default_deadline_ms = parse_flag(args, &mut i, "--deadline-ms")?;
            }
            "--retry-after-ms" => {
                cli.service.retry_after_base_ms = parse_flag(args, &mut i, "--retry-after-ms")?;
            }
            "--pipelined" => cli.pd = cli.pd.max(2),
            "--pd" => {
                cli.pd = parse_flag(args, &mut i, "--pd")?;
                if cli.pd == 0 {
                    return Err("invalid --pd: parallelism degree must be at least 1".into());
                }
            }
            "--kernel-batch" => {
                cli.kernel_batch = parse_flag(args, &mut i, "--kernel-batch")?;
                if cli.kernel_batch == 0 {
                    return Err(
                        "invalid --kernel-batch: must be at least 1 (1 = single-read kernel)"
                            .into(),
                    );
                }
            }
            "--kernel-simd" => cli.kernel_simd = parse_flag(args, &mut i, "--kernel-simd")?,
            "--max-diffs" => {
                cli.max_diffs = parse_flag(args, &mut i, "--max-diffs")?;
                if cli.max_diffs > 8 {
                    return Err(format!(
                        "invalid --max-diffs: {} exceeds the platform maximum of 8",
                        cli.max_diffs
                    ));
                }
            }
            "--no-indels" => cli.indels = false,
            "--single-strand" => cli.service.both_strands = false,
            "--metrics-out" => cli.metrics_out = Some(parse_flag(args, &mut i, "--metrics-out")?),
            "--obs-window" => {
                cli.service.obs_window_secs = parse_flag(args, &mut i, "--obs-window")?;
            }
            "--watchdog-ms" => {
                cli.service.watchdog_threshold_ms = parse_flag(args, &mut i, "--watchdog-ms")?;
            }
            "--trace-out" => cli.trace_out = Some(parse_flag(args, &mut i, "--trace-out")?),
            "--test-faults" => cli.service.test_faults = true,
            flag if flag.starts_with("--") => return Err(format!("unknown option {flag}")),
            _ => cli.positional.push(args[i].clone()),
        }
        i += 1;
    }
    Ok(cli)
}

fn run() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_cli(&args).map_err(CliError::Usage)?;
    let ref_path = match (&cli.index, cli.positional.as_slice()) {
        (Some(_), []) => None,
        (None, [ref_path]) => Some(ref_path),
        _ => {
            return Err(CliError::Usage(
                "usage: pimserve <reference.fasta> [options]\n\
                 \x20      pimserve --index <artifact> [options]"
                    .to_owned(),
            ));
        }
    };
    // Reject bad knobs before the (expensive) index build: a zero queue
    // depth is a typo to fix, not a reason to spend seconds indexing.
    cli.service.validate().map_err(|e| match e {
        ServiceError::InvalidConfig(_) => CliError::Usage(e.to_string()),
        ServiceError::Bind { .. } => CliError::Runtime(e.to_string()),
    })?;

    let mut config = PimAlignerConfig::baseline()
        .with_max_diffs(cli.max_diffs)
        .with_indels(cli.indels)
        .with_kernel_batch(cli.kernel_batch)
        .with_kernel_simd(cli.kernel_simd);
    log_kv(
        "kernel_dispatch",
        &[
            ("path", dispatched_path(cli.kernel_simd).to_owned()),
            ("policy", cli.kernel_simd.name().to_owned()),
        ],
    );
    if cli.pd >= 2 {
        config = config.with_pd(cli.pd);
    }
    // The warm platform, shared by every request for the lifetime of the
    // process: indexed from FASTA exactly once, or — with --index —
    // booted from the artifact with only the sub-array mapping run here.
    let platform = match (&cli.index, ref_path) {
        (Some(artifact_path), None) => {
            let artifact = IndexArtifact::load_from_path(std::path::Path::new(artifact_path))
                .map_err(|e| CliError::Input(format!("{artifact_path}: {e}")))?;
            let [shard] = artifact.shards() else {
                return Err(CliError::Input(format!(
                    "{artifact_path}: pimserve needs a single-shard artifact, found {} shards; \
                     rebuild with --shard-window 0",
                    artifact.shards().len()
                )));
            };
            Platform::from_index(artifact.reference().clone(), shard.index().clone(), config)
        }
        (None, Some(ref_path)) => {
            let ref_text = std::fs::read_to_string(ref_path)
                .map_err(|e| CliError::Input(format!("cannot read {ref_path}: {e}")))?;
            let references =
                fasta::parse(&ref_text).map_err(|e| CliError::Input(format!("{ref_path}: {e}")))?;
            let [reference] = references.as_slice() else {
                return Err(CliError::Input(format!(
                    "{ref_path}: expected exactly one reference record, found {}",
                    references.len()
                )));
            };
            Platform::new(reference.seq(), config)
        }
        _ => unreachable!("positional parsing pinned the index/reference combinations"),
    };

    let handle = serve(platform, cli.service, &cli.addr).map_err(|e| match e {
        ServiceError::InvalidConfig(_) => CliError::Usage(e.to_string()),
        ServiceError::Bind { .. } => CliError::Runtime(e.to_string()),
    })?;
    let addr = handle.local_addr();
    log_kv(
        "listening",
        &[
            ("addr", addr.to_string()),
            ("obs_window_secs", cli.service.obs_window_secs.to_string()),
            ("watchdog_ms", cli.service.watchdog_threshold_ms.to_string()),
        ],
    );
    if let Some(path) = &cli.port_file {
        // Write-then-rename so a polling launcher never reads a partial
        // address.
        let tmp = format!("{path}.tmp");
        let write = std::fs::File::create(&tmp)
            .and_then(|mut f| writeln!(f, "{addr}"))
            .and_then(|()| std::fs::rename(&tmp, path));
        write.map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
    }

    // Serve until a client drains us; join returns only after every
    // accepted request has been answered.
    let summary = handle.join();
    if let Some(path) = &cli.metrics_out {
        std::fs::write(path, summary.metrics_json())
            .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
    }
    if let Some(path) = &cli.trace_out {
        // One Perfetto track per request: every stage span carries the
        // request's trace id as its tid, so naming the tracks after the
        // trace ids groups admit/queued/batched/aligned/respond rows.
        let spans = summary
            .report
            .as_ref()
            .map(|r| r.host.spans.as_slice())
            .unwrap_or(&[]);
        let mut tids: Vec<u32> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        let tracks: Vec<(u32, String)> =
            tids.into_iter().map(|t| (t, format!("req-{t}"))).collect();
        std::fs::write(path, chrome_trace_json(spans, &tracks))
            .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
        log_kv(
            "trace_written",
            &[
                ("path", path.clone()),
                ("spans", spans.len().to_string()),
                ("tracks", tracks.len().to_string()),
            ],
        );
    }
    let t = summary.telemetry;
    log_kv(
        "drained",
        &[
            ("received", t.received.to_string()),
            ("accepted", t.accepted.to_string()),
            ("answered", t.responses.to_string()),
            ("shed", t.shed_total().to_string()),
            ("deadline_misses", t.deadline_misses().to_string()),
            ("panics_quarantined", t.panics_quarantined.to_string()),
            ("watchdog_stalls", summary.obs.watchdog_stalls.to_string()),
        ],
    );
    if let Some(report) = &summary.report {
        log_kv(
            "platform_report",
            &[
                ("throughput_qps", format!("{:.3e}", report.throughput_qps)),
                ("total_power_w", format!("{:.1}", report.total_power_w)),
                ("mbr_pct", format!("{:.1}", report.mbr_pct)),
                ("rur_pct", format!("{:.1}", report.rur_pct)),
            ],
        );
    }
    Ok(())
}
