//! Umbrella crate for the PIM-Aligner reproduction workspace.
//!
//! Re-exports every subsystem so the workspace-level examples and
//! integration tests can reach the full stack through one dependency:
//!
//! * [`bioseq`] — DNA alphabet, packed sequences, FASTA/FASTQ;
//! * [`fmindex`] — the software-reference FM-index (ground truth);
//! * [`swalign`] — dynamic-programming baselines (Smith–Waterman class);
//! * [`readsim`] — the ART-like read simulator;
//! * [`mram`] — SOT-MRAM device/circuit/array models;
//! * [`pimsim`] — the computational sub-array simulator;
//! * [`pim_aligner`] — the paper's platform (the core contribution);
//! * [`accel`] — comparison-platform models for the evaluation figures.
//!
//! # Examples
//!
//! ```
//! use pim_aligner_suite::pim_aligner::{PimAligner, PimAlignerConfig};
//!
//! # fn main() -> Result<(), bioseq::ParseSeqError> {
//! let reference: bioseq::DnaSeq = "TGCTA".parse()?;
//! let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline());
//! assert_eq!(
//!     aligner.align_read(&"CTA".parse()?).positions(),
//!     Some(&[2usize][..])
//! );
//! # Ok(())
//! # }
//! ```

pub use accel;
pub use bioseq;
pub use fmindex;
pub use mram;
pub use pim_aligner;
pub use pimsim;
pub use readsim;
pub use swalign;
