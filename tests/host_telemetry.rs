//! Integration: the host-side (wall-clock) telemetry layer.
//!
//! Three properties are load-bearing for the metrics contract:
//!
//! * **Thread invariance of everything simulated.** The zone heatmap and
//!   every cycle counter are derived from simulated charges, so an
//!   8-worker run must merge to exactly the 1-worker result.
//! * **Histogram correctness.** Sharded recording + tree merge must
//!   equal single-stream recording, and the log2-bucket quantile upper
//!   bounds must bracket a sorted-vector oracle within one bucket.
//! * **Trace well-formedness.** The Chrome trace export must parse, name
//!   a track per worker, and carry only complete spans.

use bench::json::{self, Value};
use bioseq::DnaSeq;
use pim_aligner::{HostTraceConfig, PimAlignerConfig, Platform};
use pimsim::{chrome_trace_json, HostEpoch, HostHistogram};

/// Deterministic xorshift64 — identical workloads on every run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn workload(genome_len: usize, read_count: usize) -> (DnaSeq, Vec<DnaSeq>) {
    let mut rng = Rng(0x0517_ace5);
    let genome: String = (0..genome_len)
        .map(|_| ['A', 'C', 'G', 'T'][(rng.next() % 4) as usize])
        .collect();
    let reads = (0..read_count)
        .map(|_| {
            let start = (rng.next() as usize) % (genome_len - 32);
            genome[start..start + 24].parse().expect("read parses")
        })
        .collect();
    (genome.parse().expect("genome parses"), reads)
}

#[test]
fn simulated_totals_and_heatmap_are_thread_invariant() {
    let (reference, reads) = workload(4_000, 64);
    let platform = Platform::new(&reference, PimAlignerConfig::baseline());

    let (_, totals_1) = platform
        .align_chunk_parallel(&reads, 1, 0, false)
        .expect("1-thread run");
    let (_, totals_8) = platform
        .align_chunk_parallel(&reads, 8, 0, false)
        .expect("8-thread run");

    // The merged simulated ledger — heatmap included — is bit-identical
    // across worker counts; only the host section may differ.
    assert_eq!(totals_8.ledger, totals_1.ledger);

    // Kernel-cache counters are host-side (excluded from ledger
    // equality): the hit/miss split depends on how reads partition
    // across per-worker caches, but every lfm lookup still happens
    // exactly once, so the total is thread-invariant.
    let cache_1 = totals_1.ledger.kernel_cache_counters();
    let cache_8 = totals_8.ledger.kernel_cache_counters();
    assert_eq!(
        cache_8.hits + cache_8.misses,
        cache_1.hits + cache_1.misses,
        "cache lookup total must be per-read work"
    );
    assert_eq!(
        totals_8.ledger.zone_activations(),
        totals_1.ledger.zone_activations()
    );
    assert!(
        !totals_1.ledger.zone_activations().is_empty(),
        "the workload must touch at least one zone"
    );
    assert_eq!(totals_8.queries, totals_1.queries);
    assert_eq!(totals_8.lfm_calls, totals_1.lfm_calls);

    // The host layer still accounts for every read in both shapes.
    assert_eq!(totals_1.host.per_read.count(), reads.len() as u64);
    assert_eq!(totals_8.host.per_read.count(), reads.len() as u64);
    let reads_8: u64 = totals_8.host.workers.iter().map(|w| w.reads).sum();
    assert_eq!(reads_8, reads.len() as u64);
}

#[test]
fn sharded_histogram_merge_equals_single_stream() {
    // 4096 deterministic pseudo-random latencies, recorded once into a
    // single histogram and once sharded across 8 + tree-merged.
    let samples: Vec<u64> = (0..4096u64)
        .map(|i| (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 12) % 5_000_000 + 1)
        .collect();

    let mut single = HostHistogram::new();
    for &s in &samples {
        single.record_ns(s);
    }

    let mut shards = vec![HostHistogram::new(); 8];
    for (i, &s) in samples.iter().enumerate() {
        shards[i % 8].record_ns(s);
    }
    while shards.len() > 1 {
        let upper = shards.split_off(shards.len() / 2);
        for (lo, hi) in shards.iter_mut().zip(upper) {
            lo.merge(&hi);
        }
    }

    assert_eq!(shards[0], single);
    assert_eq!(shards[0].count(), samples.len() as u64);
    assert_eq!(shards[0].sum_ns(), samples.iter().sum::<u64>());
}

#[test]
fn quantile_upper_bounds_bracket_the_sorted_oracle() {
    let mut samples: Vec<u64> = (0..4096u64)
        .map(|i| (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 12) % 5_000_000 + 1)
        .collect();
    let mut hist = HostHistogram::new();
    for &s in &samples {
        hist.record_ns(s);
    }
    samples.sort_unstable();

    for q in [0.5, 0.9, 0.99] {
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let oracle = samples[rank - 1];
        let bound = hist.quantile_upper_ns(q);
        // Upper bound of the oracle's bucket: never below the oracle,
        // never more than one log2 bucket above it.
        assert!(bound >= oracle, "p{q}: bound {bound} below oracle {oracle}");
        assert!(
            bound <= oracle.saturating_mul(2),
            "p{q}: bound {bound} beyond one log2 bucket of oracle {oracle}"
        );
    }
    assert_eq!(
        hist.quantile_upper_ns(1.0).min(hist.max_ns()),
        hist.max_ns()
    );
}

#[test]
fn empty_histogram_reports_zeros() {
    let h = HostHistogram::new();
    assert!(h.is_empty());
    assert_eq!(h.quantile_upper_ns(0.5), 0);
    assert_eq!(h.quantile_upper_ns(0.99), 0);
    assert_eq!(h.max_ns(), 0);
    assert_eq!(h.mean_ns(), 0.0);
}

#[test]
fn chrome_trace_export_is_well_formed() {
    let (reference, reads) = workload(4_000, 32);
    let epoch = HostEpoch::new();
    let trace = HostTraceConfig::new(epoch);
    let platform = Platform::new(&reference, PimAlignerConfig::baseline());
    let threads = 4usize;
    let (_, totals) = platform
        .align_chunk_parallel_traced(&reads, threads, 0, false, &trace)
        .expect("traced run");
    assert!(!totals.host.spans.is_empty(), "tracing must record spans");
    assert_eq!(totals.host.spans_dropped, 0, "capacity must suffice here");

    let tracks: Vec<(u32, String)> = (0..threads as u32)
        .map(|w| (w, format!("worker-{w}")))
        .collect();
    let text = chrome_trace_json(&totals.host.spans, &tracks);
    let doc = json::parse(&text).expect("trace parses");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms")
    );

    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    let mut named = Vec::new();
    let mut complete = 0;
    for event in events {
        match event.get("ph").and_then(Value::as_str) {
            Some("M") => {
                assert_eq!(
                    event.get("name").and_then(Value::as_str),
                    Some("thread_name")
                );
                named.push(
                    event
                        .get("args.name")
                        .and_then(Value::as_str)
                        .unwrap()
                        .to_owned(),
                );
            }
            Some("X") => {
                assert!(event.get("name").and_then(Value::as_str).is_some());
                assert!(event.get("tid").and_then(Value::as_u64).is_some());
                assert!(event.get("ts").and_then(Value::as_f64).unwrap() >= 0.0);
                assert!(event.get("dur").and_then(Value::as_f64).unwrap() >= 0.0);
                complete += 1;
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(complete > 0, "no complete spans in the trace");
    // Every requested worker is named, claimed work or not.
    for w in 0..threads {
        assert!(named.contains(&format!("worker-{w}")), "missing worker-{w}");
    }
    // Per-chunk spans exist and each worker's span set nests inside the
    // run (span names are the stable vocabulary of DESIGN.md §12).
    assert!(totals.host.spans.iter().any(|s| s.name == "chunk"));
    assert!(totals.host.spans.iter().all(|s| s.tid < threads as u32));
}
