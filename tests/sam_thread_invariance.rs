//! Regression: with faults off, the worker-thread count must not change
//! a single output byte — an 8-thread run produces SAM identical to the
//! 1-thread run. The parallel engine partitions reads dynamically, so
//! this pins the merge path (per-read results reassembled in input
//! order) against the packed-kernel hot path.

use std::fmt::Write as _;
use std::process::Command;

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("pimalign_inv_{name}_{}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp file");
    path
}

fn run_cli(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_pimalign"))
        .args(args)
        .output()
        .expect("run pimalign");
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
        out.status.success(),
    )
}

/// Deterministic xorshift64 — the test must generate the same workload
/// on every run and platform.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn revcomp(read: &str) -> String {
    read.chars()
        .rev()
        .map(|c| match c {
            'A' => 'T',
            'T' => 'A',
            'C' => 'G',
            'G' => 'C',
            other => other,
        })
        .collect()
}

#[test]
fn eight_threads_emit_byte_identical_sam_to_one_thread() {
    let mut rng = Rng(0x5eed_cafe);
    let genome: String = (0..4_000)
        .map(|_| ['A', 'C', 'G', 'T'][(rng.next() % 4) as usize])
        .collect();
    let reference = write_temp("ref.fa", &format!(">chrI\n{genome}\n"));

    // 48 reads: forward windows, reverse-complement windows, and a few
    // unmappable poly-A junk reads, so every SAM record shape appears.
    let mut fastq = String::new();
    for i in 0..48u64 {
        let read = match i % 4 {
            3 => "A".repeat(24),
            kind => {
                let start = (rng.next() as usize) % (genome.len() - 32);
                let window = &genome[start..start + 24];
                if kind == 2 {
                    revcomp(window)
                } else {
                    window.to_owned()
                }
            }
        };
        writeln!(fastq, "@r{i}\n{read}\n+\n{}", "I".repeat(read.len())).unwrap();
    }
    let reads = write_temp("reads.fq", &fastq);

    let base = [reference.to_str().unwrap(), reads.to_str().unwrap()];
    let mut single: Vec<&str> = base.to_vec();
    single.extend_from_slice(&["--threads", "1"]);
    let (sam_1t, stderr, ok) = run_cli(&single);
    assert!(ok, "1-thread run failed: {stderr}");
    assert!(sam_1t.lines().count() > 48, "SAM looks truncated");

    let mut eight: Vec<&str> = base.to_vec();
    eight.extend_from_slice(&["--threads", "8"]);
    let (sam_8t, stderr, ok) = run_cli(&eight);
    assert!(ok, "8-thread run failed: {stderr}");

    assert_eq!(
        sam_8t, sam_1t,
        "8-thread SAM diverged from the 1-thread run"
    );

    // --progress streams to stderr only: with it on (any thread count)
    // the SAM bytes are still identical.
    let mut progress: Vec<&str> = base.to_vec();
    progress.extend_from_slice(&["--threads", "8", "--progress"]);
    let (sam_progress, stderr, ok) = run_cli(&progress);
    assert!(ok, "--progress run failed: {stderr}");
    assert_eq!(sam_progress, sam_1t, "--progress changed the SAM stream");

    // The interleaved batch kernel and the SIMD lane are pure host-side
    // changes: every --kernel-simd × --kernel-batch × --threads
    // combination must reproduce the same bytes (batch 1 is the
    // single-read path and scalar is the PR-8 kernel, so this ties the
    // SIMD + cache path to both end-to-end).
    for (simd, batch, threads) in [
        ("auto", "1", "8"),
        ("auto", "8", "1"),
        ("auto", "8", "8"),
        ("scalar", "1", "1"),
        ("scalar", "8", "8"),
    ] {
        let mut combo: Vec<&str> = base.to_vec();
        combo.extend_from_slice(&[
            "--threads",
            threads,
            "--kernel-batch",
            batch,
            "--kernel-simd",
            simd,
        ]);
        let (sam_combo, stderr, ok) = run_cli(&combo);
        assert!(
            ok,
            "--kernel-simd {simd} --kernel-batch {batch} --threads {threads} failed: {stderr}"
        );
        assert_eq!(
            sam_combo, sam_1t,
            "--kernel-simd {simd} --kernel-batch {batch} --threads {threads} diverged"
        );
    }

    std::fs::remove_file(reference).ok();
    std::fs::remove_file(reads).ok();
}

#[test]
fn kernel_batch_and_threads_invariant_under_seeded_faults() {
    // Under a seeded fault campaign the per-read fault streams are keyed
    // by global read index, so neither the kernel batch width nor the
    // worker count may change a byte of the SAM stream.
    let mut rng = Rng(0xfa17_5eed);
    let genome: String = (0..3_000)
        .map(|_| ['A', 'C', 'G', 'T'][(rng.next() % 4) as usize])
        .collect();
    let reference = write_temp("fault_ref.fa", &format!(">chrF\n{genome}\n"));
    let mut fastq = String::new();
    for i in 0..32u64 {
        let read = if i % 5 == 4 {
            "A".repeat(20)
        } else {
            let start = (rng.next() as usize) % (genome.len() - 28);
            genome[start..start + 24].to_owned()
        };
        writeln!(fastq, "@f{i}\n{read}\n+\n{}", "I".repeat(read.len())).unwrap();
    }
    let reads = write_temp("fault_reads.fq", &fastq);

    let fault_args = [
        "--fault-seed",
        "77",
        "--fault-xnor",
        "0.003",
        "--fault-transient",
        "0.001",
        "--fault-carry",
        "0.001",
    ];
    let run = |simd: &str, batch: &str, threads: &str| {
        let mut args = vec![reference.to_str().unwrap(), reads.to_str().unwrap()];
        args.extend_from_slice(&fault_args);
        args.extend_from_slice(&[
            "--kernel-simd",
            simd,
            "--kernel-batch",
            batch,
            "--threads",
            threads,
        ]);
        let (sam, stderr, ok) = run_cli(&args);
        assert!(
            ok,
            "--kernel-simd {simd} --kernel-batch {batch} --threads {threads} failed: {stderr}"
        );
        sam
    };
    // Scalar × batch 1 × 1 thread is the PR-8 baseline path: a cache
    // hit replaying a fault stream differently from the recompute would
    // show up here as a byte diff.
    let expected = run("scalar", "1", "1");
    assert!(expected.lines().count() > 32, "SAM looks truncated");
    for (simd, batch, threads) in [
        ("auto", "1", "1"),
        ("auto", "1", "8"),
        ("auto", "8", "1"),
        ("auto", "8", "8"),
        ("scalar", "1", "8"),
        ("scalar", "8", "1"),
        ("scalar", "8", "8"),
    ] {
        assert_eq!(
            run(simd, batch, threads),
            expected,
            "--kernel-simd {simd} --kernel-batch {batch} --threads {threads} \
             diverged under seeded faults"
        );
    }

    std::fs::remove_file(reference).ok();
    std::fs::remove_file(reads).ok();
}
