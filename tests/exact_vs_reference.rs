//! Integration: the platform's exact alignment (Algorithm 1 on simulated
//! SOT-MRAM) agrees bit-for-bit with the software FM-index across crates.

use bioseq::DnaSeq;
use fmindex::FmIndex;
use pim_aligner::{AlignmentOutcome, PimAligner, PimAlignerConfig};
use readsim::genome;

#[test]
fn platform_find_equals_software_find_on_uniform_genome() {
    let reference = genome::uniform(120_000, 71);
    let oracle = FmIndex::new(&reference);
    let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline().with_max_diffs(0));
    for start in (0..119_000).step_by(7_321) {
        let read = reference.subseq(start..start + 100);
        let sw = oracle.find(&read);
        match aligner.align_read(&read) {
            AlignmentOutcome::Exact { positions } => assert_eq!(positions, sw, "read @{start}"),
            other => panic!("clean read @{start} must align exactly, got {other:?}"),
        }
    }
}

#[test]
fn platform_handles_repeat_rich_genomes() {
    // Repeats produce multi-hit intervals; counts must agree with the
    // software index.
    let profile = readsim::genome::RepeatProfile {
        divergence: 0.0,
        ..Default::default()
    };
    let reference = genome::repeat_rich(60_000, profile, 72);
    let oracle = FmIndex::new(&reference);
    let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline().with_max_diffs(0));
    let mut saw_multi_hit = false;
    for start in (0..59_000).step_by(4_111) {
        let read = reference.subseq(start..start + 40);
        let sw = oracle.find(&read);
        match aligner.align_read(&read) {
            AlignmentOutcome::Exact { positions } => {
                assert_eq!(positions, sw, "read @{start}");
                if positions.len() > 1 {
                    saw_multi_hit = true;
                }
            }
            other => panic!("repeat read @{start} must align, got {other:?}"),
        }
    }
    assert!(
        saw_multi_hit,
        "repeat-rich genome should yield multi-hit reads"
    );
}

#[test]
fn absent_reads_fail_identically() {
    let reference = genome::uniform(30_000, 73);
    let oracle = FmIndex::new(&reference);
    let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline().with_max_diffs(0));
    // A 40-mer of pure GGG... is (with overwhelming probability) absent
    // from a uniform 30 kb genome.
    let absent: DnaSeq = "G".repeat(40).parse().unwrap();
    assert!(oracle.backward_search(&absent).is_none());
    assert_eq!(aligner.align_read(&absent), AlignmentOutcome::Unmapped);
}
