//! Integration: the §VI pipeline claim — Pd = 2 improves throughput by
//! ~40 % over the baseline — measured end-to-end through the simulator.

use bioseq::DnaSeq;
use pim_aligner::{
    align_batch_parallel_both_strands, sam, BatchResult, MappedStrand, PimAligner, PimAlignerConfig,
};
use readsim::genome;

fn clean_reads(reference: &DnaSeq, count: usize, len: usize) -> Vec<DnaSeq> {
    (0..count)
        .map(|i| {
            let start = (i * 991) % (reference.len() - len);
            reference.subseq(start..start + len)
        })
        .collect()
}

#[test]
fn pd2_gains_about_forty_percent() {
    let reference = genome::uniform(80_000, 91);
    let reads = clean_reads(&reference, 50, 100);
    let mut baseline = PimAligner::new(&reference, PimAlignerConfig::baseline());
    let mut pipelined = PimAligner::new(&reference, PimAlignerConfig::pipelined());
    let rn = baseline.align_batch(&reads).report;
    let rp = pipelined.align_batch(&reads).report;
    let gain = rp.throughput_qps / rn.throughput_qps;
    assert!(
        (1.30..1.55).contains(&gain),
        "measured Pd=2 gain {gain:.3}, paper claims ~40%"
    );
    // Fig. 8a: the pipelined design draws more power.
    assert!(rp.total_power_w > rn.total_power_w);
    // Identical alignment results regardless of configuration.
    let on = baseline.align_batch(&reads).outcomes;
    let op = pipelined.align_batch(&reads).outcomes;
    assert_eq!(on, op);
}

/// Renders the full SAM stream of a both-strands batch result, so the
/// comparison below is byte identity of the actual output format, not
/// just outcome-struct equality.
fn sam_of(
    reads: &[DnaSeq],
    reference_len: usize,
    result: &(BatchResult, Vec<MappedStrand>),
) -> String {
    let mut out = sam::header("chrT", reference_len);
    for (i, (outcome, strand)) in result.0.outcomes.iter().zip(&result.1).enumerate() {
        let record = sam::record_for(&format!("r{i}"), "chrT", &reads[i], None, outcome, *strand);
        out.push_str(&record.to_line());
        out.push('\n');
    }
    out
}

#[test]
fn pd2_with_batched_kernel_cuts_simulated_cycles_sam_identical() {
    // The §VI pipeline claim through the real stage-queue scheduler:
    // with the interleaved batch kernel active (width 8), Pd = 2 must
    // finish the same issue schedule in strictly fewer simulated cycles
    // than Pd = 1, without changing a single SAM byte.
    let reference = genome::uniform(60_000, 93);
    let reads = clean_reads(&reference, 40, 80);
    let run = |pd: usize, batch: usize| {
        let config = if pd == 1 {
            PimAlignerConfig::baseline()
        } else {
            PimAlignerConfig::pipelined().with_pd(pd)
        }
        .with_kernel_batch(batch);
        align_batch_parallel_both_strands(&reference, &config, &reads, 4).unwrap()
    };
    let pd1_wide = run(1, 8);
    let pd2_wide = run(2, 8);
    let pd2_narrow = run(2, 1);
    let expected = sam_of(&reads, reference.len(), &pd1_wide);
    assert_eq!(
        sam_of(&reads, reference.len(), &pd2_wide),
        expected,
        "Pd=2 batch=8 changed the SAM stream"
    );
    assert_eq!(
        sam_of(&reads, reference.len(), &pd2_narrow),
        expected,
        "Pd=2 batch=1 changed the SAM stream"
    );
    // Same interleaved schedule on both sides...
    let p1 = pd1_wide.0.report.breakdown.pipeline;
    let p2 = pd2_wide.0.report.breakdown.pipeline;
    assert!(p1.issued > 0, "batched kernel must drive the scheduler");
    assert_eq!(p1.issued, p2.issued);
    // ...but the Pd = 2 scheduler overlaps read i+1's compare with read
    // i's add, finishing strictly earlier.
    assert!(
        p2.makespan_cycles < p1.makespan_cycles,
        "Pd=2 makespan {} must beat Pd=1 makespan {}",
        p2.makespan_cycles,
        p1.makespan_cycles
    );
    assert!(p2.makespan_cycles < p2.sequential_cycles);
    assert!(p2.overlap_saved_cycles > 0);
}

#[test]
fn pd_sweep_monotone_with_diminishing_returns() {
    let reference = genome::uniform(40_000, 92);
    let reads = clean_reads(&reference, 30, 100);
    let mut throughput = Vec::new();
    let mut power = Vec::new();
    for pd in 1..=4 {
        let config = if pd == 1 {
            PimAlignerConfig::baseline()
        } else {
            PimAlignerConfig::pipelined().with_pd(pd)
        };
        let mut aligner = PimAligner::new(&reference, config);
        let report = aligner.align_batch(&reads).report;
        throughput.push(report.throughput_qps);
        power.push(report.total_power_w);
    }
    for w in throughput.windows(2) {
        assert!(
            w[1] >= w[0],
            "throughput must not fall with Pd: {throughput:?}"
        );
    }
    for w in power.windows(2) {
        assert!(w[1] > w[0], "power must rise with Pd: {power:?}");
    }
    // Fig. 9c: returns diminish as the compare stage saturates.
    let first_gain = throughput[1] / throughput[0];
    let last_gain = throughput[3] / throughput[2];
    assert!(
        last_gain < first_gain,
        "gains must diminish: {throughput:?}"
    );
}
