//! Integration: the §VI pipeline claim — Pd = 2 improves throughput by
//! ~40 % over the baseline — measured end-to-end through the simulator.

use bioseq::DnaSeq;
use pim_aligner::{PimAligner, PimAlignerConfig};
use readsim::genome;

fn clean_reads(reference: &DnaSeq, count: usize, len: usize) -> Vec<DnaSeq> {
    (0..count)
        .map(|i| {
            let start = (i * 991) % (reference.len() - len);
            reference.subseq(start..start + len)
        })
        .collect()
}

#[test]
fn pd2_gains_about_forty_percent() {
    let reference = genome::uniform(80_000, 91);
    let reads = clean_reads(&reference, 50, 100);
    let mut baseline = PimAligner::new(&reference, PimAlignerConfig::baseline());
    let mut pipelined = PimAligner::new(&reference, PimAlignerConfig::pipelined());
    let rn = baseline.align_batch(&reads).report;
    let rp = pipelined.align_batch(&reads).report;
    let gain = rp.throughput_qps / rn.throughput_qps;
    assert!(
        (1.30..1.55).contains(&gain),
        "measured Pd=2 gain {gain:.3}, paper claims ~40%"
    );
    // Fig. 8a: the pipelined design draws more power.
    assert!(rp.total_power_w > rn.total_power_w);
    // Identical alignment results regardless of configuration.
    let on = baseline.align_batch(&reads).outcomes;
    let op = pipelined.align_batch(&reads).outcomes;
    assert_eq!(on, op);
}

#[test]
fn pd_sweep_monotone_with_diminishing_returns() {
    let reference = genome::uniform(40_000, 92);
    let reads = clean_reads(&reference, 30, 100);
    let mut throughput = Vec::new();
    let mut power = Vec::new();
    for pd in 1..=4 {
        let config = if pd == 1 {
            PimAlignerConfig::baseline()
        } else {
            PimAlignerConfig::pipelined().with_pd(pd)
        };
        let mut aligner = PimAligner::new(&reference, config);
        let report = aligner.align_batch(&reads).report;
        throughput.push(report.throughput_qps);
        power.push(report.total_power_w);
    }
    for w in throughput.windows(2) {
        assert!(
            w[1] >= w[0],
            "throughput must not fall with Pd: {throughput:?}"
        );
    }
    for w in power.windows(2) {
        assert!(w[1] > w[0], "power must rise with Pd: {power:?}");
    }
    // Fig. 9c: returns diminish as the compare stage saturates.
    let first_gain = throughput[1] / throughput[0];
    let last_gain = throughput[3] / throughput[2];
    assert!(
        last_gain < first_gain,
        "gains must diminish: {throughput:?}"
    );
}
