//! Integration: the digital fast path, the analog sense-amplifier model
//! and the software FM-index all agree — the full vertical stack from
//! resistances to alignment positions.

use bioseq::Base;
use mram::array::ArrayModel;
use mram::device::CellParams;
use mram::montecarlo;
use mram::sense::{SenseAmp, SenseMode};
use pimsim::validate_functions_against_circuit;

#[test]
fn digital_primitives_match_analog_circuit() {
    assert!(validate_functions_against_circuit(&ArrayModel::default()));
    // Also at the thick-oxide operating point (larger margins, same
    // logic).
    assert!(validate_functions_against_circuit(&ArrayModel::with_cell(
        CellParams::default().with_tox_nm(2.0)
    )));
}

#[test]
fn sense_amp_survives_monte_carlo_variation_at_paper_sigma() {
    // At σ(RA) = 2 %, σ(TMR) = 5 % the MC misread probability must be
    // negligible for every decision threshold — the reliability claim
    // behind Fig. 5b.
    let report = montecarlo::run(&CellParams::default(), 5_000, 7);
    for panel in &report.panels {
        for &p in &panel.misread_prob {
            assert!(p < 0.01, "fan-in {} misread prob {p}", panel.fan_in);
        }
    }
}

#[test]
fn full_adder_chain_through_circuit_model() {
    // Ripple a multi-bit add through SenseAmp::full_add and compare with
    // integer addition — the IM_ADD correctness at circuit level.
    let sa = SenseAmp::new(&CellParams::default());
    for (a, b) in [(0u32, 0u32), (5, 7), (0xFFFF, 1), (123_456, 654_321)] {
        let mut carry = false;
        let mut result = 0u32;
        for k in 0..32 {
            let (sum, c) = sa.full_add((a >> k) & 1 == 1, (b >> k) & 1 == 1, carry);
            if sum {
                result |= 1 << k;
            }
            carry = c;
        }
        assert_eq!(result, a.wrapping_add(b), "{a} + {b}");
    }
}

#[test]
fn xnor_match_semantics_match_circuit_for_all_base_pairs() {
    let cell = CellParams::default();
    let sa = SenseAmp::new(&cell);
    for stored in Base::ALL {
        for query in Base::ALL {
            // A base matches when both bits of its 2-bit code XNOR to 1.
            let s = stored.code();
            let q = query.code();
            let bit0 = sa.xnor2(s & 1 == 1, q & 1 == 1);
            let bit1 = sa.xnor2(s & 2 == 2, q & 2 == 2);
            assert_eq!(bit0 && bit1, stored == query, "{stored} vs {query}");
        }
    }
    // Sanity: the Xor3 mode used for XNOR2 reports the right enables.
    assert_eq!(SenseMode::Xor3.enables(), (true, true, true, false));
}
