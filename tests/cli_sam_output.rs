//! Integration: the `pimalign` CLI end to end — FASTA + FASTQ in, SAM
//! out.

use std::process::Command;

use bench::json::{self, Value};

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("pimalign_test_{name}_{}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp file");
    path
}

fn run_cli(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_pimalign"))
        .args(args)
        .output()
        .expect("run pimalign");
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
        out.status.success(),
    )
}

#[test]
fn aligns_reads_and_emits_valid_sam() {
    let reference = write_temp(
        "ref.fa",
        ">chrT test\nTGCTAGCATGAACCTTGGAACGTACGTTAGCATCGATCGGATTACAGATTACAGGG\n",
    );
    let reads = write_temp(
        "reads.fq",
        "@exact\nGATTACAGATTACA\n+\nIIIIIIIIIIIIII\n@revcomp\nCGTTCCAAGGTTCA\n+\nIIIIIIIIIIIIII\n@junk\nGGGGGGGGGGGGGG\n+\nIIIIIIIIIIIIII\n",
    );
    let (stdout, stderr, ok) = run_cli(&[
        reference.to_str().unwrap(),
        reads.to_str().unwrap(),
        "--pipelined",
    ]);
    assert!(ok, "CLI failed: {stderr}");

    let lines: Vec<&str> = stdout.lines().collect();
    // Header: @HD, @SQ, @PG.
    assert!(lines[0].starts_with("@HD"));
    assert!(lines[1].contains("SN:chrT") && lines[1].contains("LN:56"));
    assert!(lines[2].starts_with("@PG"));

    // One alignment line per read, tab-separated with >= 11 fields.
    let records: Vec<&str> = lines
        .iter()
        .filter(|l| !l.starts_with('@'))
        .copied()
        .collect();
    assert_eq!(records.len(), 3);
    for r in &records {
        assert!(r.split('\t').count() >= 11, "short SAM line: {r}");
    }
    let exact = records.iter().find(|r| r.starts_with("exact")).unwrap();
    let fields: Vec<&str> = exact.split('\t').collect();
    assert_eq!(fields[1], "0");
    assert_eq!(fields[2], "chrT");
    assert_eq!(fields[4], "60");
    assert_eq!(fields[5], "14M");
    let rev = records.iter().find(|r| r.starts_with("revcomp")).unwrap();
    assert_eq!(rev.split('\t').nth(1), Some("16"));
    let junk = records.iter().find(|r| r.starts_with("junk")).unwrap();
    assert_eq!(junk.split('\t').nth(1), Some("4"));
    assert_eq!(junk.split('\t').nth(2), Some("*"));

    // The performance report lands on stderr.
    assert!(stderr.contains("queries/s"));
    assert!(stderr.contains("2 mapped"));

    std::fs::remove_file(reference).ok();
    std::fs::remove_file(reads).ok();
}

#[test]
fn reverse_mapped_seq_is_the_reference_window() {
    // A 0x10 record's SEQ/QUAL are stored in reference orientation: the
    // emitted SEQ must equal the reference window at POS, and QUAL must
    // be the read's qualities reversed (regression: the pre-fix writer
    // emitted the read as sequenced).
    let ref_seq = "TGCTAGCATGAACCTTGGAACGTACGTTAGCATCGATCGGATTACAGATTACAGGG";
    let reference = write_temp("rev_ref.fa", &format!(">chrT\n{ref_seq}\n"));
    // Reverse complement of reference[8..22], with an asymmetric quality
    // ramp so a missing reversal is visible.
    let reads = write_temp(
        "rev_reads.fq",
        "@revcomp\nCGTTCCAAGGTTCA\n+\nABCDEFGHIJKLMN\n",
    );
    let (stdout, stderr, ok) = run_cli(&[reference.to_str().unwrap(), reads.to_str().unwrap()]);
    assert!(ok, "CLI failed: {stderr}");
    let record = stdout
        .lines()
        .find(|l| l.starts_with("revcomp"))
        .expect("revcomp record");
    let fields: Vec<&str> = record.split('\t').collect();
    assert_eq!(fields[1], "16", "read must map on the reverse strand");
    let pos: usize = fields[3].parse().expect("POS");
    let seq = fields[9];
    let window = &ref_seq[pos - 1..pos - 1 + seq.len()];
    assert_eq!(seq, window, "0x10 SEQ must equal the reference window");
    assert_eq!(
        fields[10], "NMLKJIHGFEDCBA",
        "0x10 QUAL must be the read's qualities reversed"
    );

    std::fs::remove_file(reference).ok();
    std::fs::remove_file(reads).ok();
}

#[test]
fn streamed_chunks_match_single_batch() {
    // --batch-size only bounds memory: the SAM output must be identical
    // whether the reads stream through in chunks of 1 or in one batch,
    // with single or multiple worker threads.
    let ref_seq = "TGCTAGCATGAACCTTGGAACGTACGTTAGCATCGATCGGATTACAGATTACAGGG";
    let reference = write_temp("chunk_ref.fa", &format!(">chrT\n{ref_seq}\n"));
    let reads = write_temp(
        "chunk_reads.fq",
        "@exact\nGATTACAGATTACA\n+\nIIIIIIIIIIIIII\n@revcomp\nCGTTCCAAGGTTCA\n+\nIIIIIIIIIIIIII\n@junk\nGGGGGGGGGGGGGG\n+\nIIIIIIIIIIIIII\n@tail\nTGCTAGCATG\n+\nIIIIIIIIII\n",
    );
    let base = [reference.to_str().unwrap(), reads.to_str().unwrap()];
    let (whole, stderr, ok) = run_cli(&base);
    assert!(ok, "CLI failed: {stderr}");
    for extra in [
        &["--batch-size", "1"][..],
        &["--batch-size", "3"][..],
        &["--batch-size", "1", "--threads", "3"][..],
        &["--threads", "2"][..],
    ] {
        let mut args: Vec<&str> = base.to_vec();
        args.extend_from_slice(extra);
        let (stdout, stderr, ok) = run_cli(&args);
        assert!(ok, "CLI failed with {extra:?}: {stderr}");
        assert_eq!(stdout, whole, "SAM output diverged with {extra:?}");
        assert!(
            stderr.contains("3 mapped"),
            "stderr with {extra:?}: {stderr}"
        );
    }

    std::fs::remove_file(reference).ok();
    std::fs::remove_file(reads).ok();
}

#[test]
fn telemetry_flags_never_touch_the_sam_stream() {
    // --metrics-out and --trace-out write their JSON to files, so stdout
    // stays pure SAM; and collecting host telemetry must not move a
    // single simulated cycle — the metrics `report`/`breakdown` sections
    // are value-identical with and without the trace flags.
    let ref_seq = "TGCTAGCATGAACCTTGGAACGTACGTTAGCATCGATCGGATTACAGATTACAGGG";
    let reference = write_temp("telem_ref.fa", &format!(">chrT\n{ref_seq}\n"));
    let reads = write_temp(
        "telem_reads.fq",
        "@exact\nGATTACAGATTACA\n+\nIIIIIIIIIIIIII\n@revcomp\nCGTTCCAAGGTTCA\n+\nIIIIIIIIIIIIII\n",
    );
    let metrics_old = write_temp("telem_m_old.json", "");
    let metrics_new = write_temp("telem_m_new.json", "");
    let trace = write_temp("telem_trace.json", "");
    let base = [reference.to_str().unwrap(), reads.to_str().unwrap()];

    let (sam_plain, stderr, ok) = run_cli(&base);
    assert!(ok, "plain run failed: {stderr}");

    // Back-compat flag: --metrics still writes the document.
    let mut old_args: Vec<&str> = base.to_vec();
    old_args.extend_from_slice(&["--metrics", metrics_old.to_str().unwrap()]);
    let (sam_old, stderr, ok) = run_cli(&old_args);
    assert!(ok, "--metrics run failed: {stderr}");
    assert_eq!(sam_old, sam_plain, "--metrics changed the SAM stream");

    // New flags: --metrics-out + --trace-out, with tracing live.
    let mut new_args: Vec<&str> = base.to_vec();
    new_args.extend_from_slice(&[
        "--metrics-out",
        metrics_new.to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
        "--threads",
        "2",
    ]);
    let (sam_new, stderr, ok) = run_cli(&new_args);
    assert!(ok, "--metrics-out/--trace-out run failed: {stderr}");
    assert_eq!(sam_new, sam_plain, "telemetry flags changed the SAM stream");

    let doc_old = json::parse(&std::fs::read_to_string(&metrics_old).unwrap())
        .expect("--metrics JSON parses");
    let doc_new = json::parse(&std::fs::read_to_string(&metrics_new).unwrap())
        .expect("--metrics-out JSON parses");
    // The simulated sections are value-identical across flag shapes —
    // only the wall-clock `host` section may differ.
    for section in ["schema_version", "report", "faults", "breakdown"] {
        assert_eq!(
            doc_old.get(section),
            doc_new.get(section),
            "simulated section {section} diverged under tracing"
        );
    }

    // The trace file is a loadable Chrome trace with spans.
    let trace_doc =
        json::parse(&std::fs::read_to_string(&trace).unwrap()).expect("trace JSON parses");
    assert_eq!(
        trace_doc.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms")
    );
    let events = trace_doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents");
    assert!(
        events
            .iter()
            .any(|e| e.get("ph").and_then(Value::as_str) == Some("X")),
        "trace has no complete spans"
    );
    // One named track per worker plus the main thread's.
    for want in ["worker-0", "worker-1", "main"] {
        assert!(
            events.iter().any(|e| {
                e.get("ph").and_then(Value::as_str) == Some("M")
                    && e.get("args.name").and_then(Value::as_str) == Some(want)
            }),
            "missing {want} track"
        );
    }

    for f in [reference, reads, metrics_old, metrics_new, trace] {
        std::fs::remove_file(f).ok();
    }
}

/// Like [`run_cli`] but returns the exact exit code — the CLI's error
/// classes are part of its interface (usage = 2, input = 3, runtime = 4).
fn run_cli_code(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pimalign"))
        .args(args)
        .output()
        .expect("run pimalign");
    (
        out.status.code().expect("exit code"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
    )
}

#[test]
fn rejects_bad_usage() {
    let (_, stderr, ok) = run_cli(&["only-one-arg"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));

    let (_, stderr, ok) = run_cli(&["a", "b", "--bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown option"));
}

#[test]
fn usage_errors_exit_2_with_named_flags() {
    for (args, needle) in [
        (&["only-one-arg"][..], "usage"),
        (&["a", "b", "--bogus"][..], "unknown option"),
        (&["a", "b", "--threads", "0"][..], "--threads"),
        (&["a", "b", "--batch-size", "0"][..], "--batch-size"),
        (&["a", "b", "--pd", "0"][..], "--pd"),
        (&["a", "b", "--max-diffs", "99"][..], "--max-diffs"),
    ] {
        let (code, stderr) = run_cli_code(args);
        assert_eq!(code, 2, "{args:?} must exit 2 (usage), stderr: {stderr}");
        assert!(stderr.contains(needle), "{args:?} stderr: {stderr}");
    }
}

#[test]
fn rejects_missing_files() {
    let (_, stderr, ok) = run_cli(&["/nonexistent/ref.fa", "/nonexistent/reads.fq"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn input_errors_exit_3() {
    let (code, stderr) = run_cli_code(&["/nonexistent/ref.fa", "/nonexistent/reads.fq"]);
    assert_eq!(
        code, 3,
        "missing files must exit 3 (input), stderr: {stderr}"
    );
    assert!(stderr.contains("cannot read"));
}

#[test]
fn truncated_fastq_exit_3_names_record_and_offset() {
    // The second record is cut off mid-way: the error must carry the
    // 1-based record number and the byte offset of its header so the
    // user can seek straight to the corruption in a multi-gigabyte file.
    let reference = write_temp(
        "trunc_ref.fa",
        ">chrT\nTGCTAGCATGAACCTTGGAACGTACGTTAGCATCGATCGGATTACAGATTACAGGG\n",
    );
    let reads = write_temp(
        "trunc_reads.fq",
        "@ok\nGATTACAGATTACA\n+\nIIIIIIIIIIIIII\n@cut\nGATTACA\n",
    );
    let (code, stderr) = run_cli_code(&[reference.to_str().unwrap(), reads.to_str().unwrap()]);
    assert_eq!(code, 3, "truncated FASTQ must exit 3, stderr: {stderr}");
    assert!(stderr.contains("record 2"), "stderr: {stderr}");
    assert!(stderr.contains("byte offset 36"), "stderr: {stderr}");

    std::fs::remove_file(reference).ok();
    std::fs::remove_file(reads).ok();
}

#[test]
fn closed_stdout_is_a_clean_early_exit() {
    // `pimalign ... | head` closes our stdout after the first lines; the
    // resulting EPIPE must be a silent exit 0, not a runtime error.
    // Enough reads that the BufWriter flushes to the dead pipe mid-run.
    let reference = write_temp(
        "epipe_ref.fa",
        ">chrT\nTGCTAGCATGAACCTTGGAACGTACGTTAGCATCGATCGGATTACAGATTACAGGG\n",
    );
    let mut fastq = String::new();
    for i in 0..400 {
        fastq.push_str(&format!("@r{i}\nGATTACAGATTACA\n+\nIIIIIIIIIIIIII\n"));
    }
    let reads = write_temp("epipe_reads.fq", &fastq);

    let mut child = Command::new(env!("CARGO_BIN_EXE_pimalign"))
        .args([reference.to_str().unwrap(), reads.to_str().unwrap()])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn pimalign");
    // Close the read end immediately: every SAM flush past the pipe
    // buffer now raises EPIPE/BrokenPipe inside the CLI.
    drop(child.stdout.take());
    let status = child.wait().expect("wait for pimalign");
    assert_eq!(
        status.code(),
        Some(0),
        "a closed SAM pipe must be a clean exit, not an error"
    );

    std::fs::remove_file(reference).ok();
    std::fs::remove_file(reads).ok();
}
