//! Integration: the live observability plane over a real server.
//!
//! These tests run `service::serve` on loopback and pin the obs-plane
//! contracts of DESIGN.md §17:
//!
//! 1. a live `Stats` snapshot reconciles **exactly**: the rolling ring's
//!    cumulative aggregate equals the lifetime `service` counters
//!    field-for-field, and (within the first window) so do the windowed
//!    sums — the per-second ring loses nothing;
//! 2. `Stats` and `Prom` are answered inline while the admission queue
//!    is saturated and the batcher is stalled — the exposition path is
//!    never queued and never shed;
//! 3. the watchdog detects a batcher stall deterministically via the
//!    `__stall_ms_N__` hook and counts exactly one episode per
//!    crossing.

use std::time::Duration;

use bench::json::{self, Value};
use bioseq::DnaSeq;
use pim_aligner::service::protocol::{AlignRequest, Client, Request, Response};
use pim_aligner::service::{serve, ServerHandle, ServiceConfig};
use pim_aligner::{PimAlignerConfig, Platform};

const REFERENCE: &str = "TGCTAGCATGAACCTTGGAACGTACGTTAGCATCGATCGGATTACAGATTACAGGG";
const READ: &str = "GATTACAGATTACA";

/// The counters shared by the lifetime telemetry, the ring buckets and
/// every windowed view.
const COUNTERS: [&str; 11] = [
    "received",
    "accepted",
    "shed_queue_full",
    "shed_inflight_bytes",
    "rejected_draining",
    "rejected_invalid",
    "expired_in_queue",
    "late_responses",
    "panics_quarantined",
    "batches",
    "responses",
];

fn start_server(config: ServiceConfig) -> ServerHandle {
    let reference: DnaSeq = REFERENCE.parse().expect("reference parses");
    let platform = Platform::new(&reference, PimAlignerConfig::baseline());
    serve(platform, config, "127.0.0.1:0").expect("server starts")
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect(&handle.local_addr().to_string()).expect("client connects")
}

fn send_align(client: &mut Client, req_id: u64, id: &str, seq: &str) {
    client
        .send(&Request::Align(AlignRequest {
            req_id,
            deadline_ms: 0,
            id: id.to_owned(),
            seq: seq.to_owned(),
        }))
        .expect("send align");
}

fn as_u64(doc: &Value, path: &str) -> u64 {
    doc.get(path)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("snapshot missing {path}"))
}

#[test]
fn live_stats_snapshot_reconciles_windows_with_lifetime() {
    let handle = start_server(ServiceConfig::default());
    let mut client = connect(&handle);
    const N: u64 = 5;
    for i in 0..N {
        send_align(&mut client, i, &format!("r{i}"), READ);
    }
    for _ in 0..N {
        let resp = client.recv().expect("recv").expect("server open");
        assert!(matches!(resp, Response::Aligned { .. }));
    }
    // The response write precedes the counter update by a few
    // instructions; settle before demanding exact totals.
    std::thread::sleep(Duration::from_millis(100));

    let mut scraper = connect(&handle);
    let snapshot = scraper.stats(900).expect("stats over the wire");
    let doc = json::parse(&snapshot).expect("stats snapshot parses");

    // Exact reconciliation, field for field: lifetime == ring cumulative
    // == the widest window (the whole run fits inside 60 s).
    for name in COUNTERS {
        let lifetime = as_u64(&doc, &format!("service.{name}"));
        let cumulative = as_u64(&doc, &format!("cumulative.{name}"));
        let w60 = as_u64(&doc, &format!("windows.w60.{name}"));
        assert_eq!(cumulative, lifetime, "{name}: ring drifted from lifetime");
        assert_eq!(w60, lifetime, "{name}: 60s window lost events");
    }
    assert_eq!(as_u64(&doc, "service.received"), N);
    assert_eq!(as_u64(&doc, "service.responses"), N);
    assert_eq!(as_u64(&doc, "cumulative.latency.count"), N);
    assert!(as_u64(&doc, "uptime_secs") >= 1);

    // Every answered request is a slow-log candidate; with 5 requests
    // and capacity 16 all of them are present, sorted slowest-first.
    let slow = doc.get("slow").and_then(Value::as_array).expect("slow[]");
    assert_eq!(slow.len(), N as usize);
    let totals: Vec<u64> = slow
        .iter()
        .map(|s| s.get("total_ns").and_then(Value::as_u64).expect("total_ns"))
        .collect();
    assert!(
        totals.windows(2).all(|w| w[0] >= w[1]),
        "not sorted: {totals:?}"
    );
    assert!(totals.iter().all(|&t| t > 0));

    let mut drainer = connect(&handle);
    drainer.drain(999).expect("drain");
    let summary = handle.join();
    // The drain-time obs telemetry agrees with what the wire reported.
    assert_eq!(summary.telemetry.responses, N);
    assert_eq!(summary.obs.slow.len(), N as usize);
    assert_eq!(summary.obs.watchdog_stalls, 0);
    // Trace spans reached the report: five stage spans per request, one
    // Perfetto track (tid) per trace id.
    let report = summary.report.expect("aligned work yields a report");
    assert_eq!(report.host.spans.len(), 5 * N as usize);
    let mut tids: Vec<u32> = report.host.spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), N as usize, "one track per request");
}

#[test]
fn stats_and_prom_answer_inline_while_saturated() {
    let config = ServiceConfig {
        queue_depth: 2,
        test_faults: true,
        ..ServiceConfig::default()
    };
    let handle = start_server(config);
    let mut client = connect(&handle);
    // Stall the batcher, then fill the queue behind it.
    send_align(&mut client, 0, "__stall_ms_400__", READ);
    std::thread::sleep(Duration::from_millis(40));
    send_align(&mut client, 1, "q1", READ);
    send_align(&mut client, 2, "q2", READ);
    std::thread::sleep(Duration::from_millis(20));

    // A separate connection gets its Stats and Prom answers immediately
    // even though the align queue is full and the batcher is asleep.
    let mut scraper = connect(&handle);
    let t0 = std::time::Instant::now();
    let snapshot = scraper.stats(900).expect("stats while saturated");
    let prom = scraper.prom(901).expect("prom while saturated");
    assert!(
        t0.elapsed() < Duration::from_millis(300),
        "exposition waited on the stalled batcher"
    );
    let doc = json::parse(&snapshot).expect("snapshot parses");
    assert_eq!(as_u64(&doc, "gauges.queue_depth"), 2, "queue saturated");
    assert_eq!(as_u64(&doc, "service.accepted"), 3);
    assert!(prom.contains("# TYPE pimserve_queue_depth gauge"));
    assert!(prom.contains("pimserve_queue_depth 2"));
    assert!(prom.contains("pimserve_requests_total{outcome=\"accepted\"} 3"));

    for _ in 0..3 {
        client.recv().expect("recv").expect("server open");
    }
    let mut drainer = connect(&handle);
    drainer.drain(999).expect("drain");
    handle.join();
}

#[test]
fn watchdog_detects_a_batcher_stall() {
    let config = ServiceConfig {
        watchdog_threshold_ms: 50,
        test_faults: true,
        ..ServiceConfig::default()
    };
    let handle = start_server(config);
    let mut client = connect(&handle);
    // The stall read is *taken* into a batch and sleeps there; the next
    // request then ages at the head of the queue past the threshold.
    send_align(&mut client, 0, "__stall_ms_400__", READ);
    std::thread::sleep(Duration::from_millis(40));
    send_align(&mut client, 1, "victim", READ);
    for _ in 0..2 {
        client.recv().expect("recv").expect("server open");
    }

    let mut scraper = connect(&handle);
    let snapshot = scraper.stats(900).expect("stats");
    let doc = json::parse(&snapshot).expect("snapshot parses");
    assert!(as_u64(&doc, "watchdog.stalls") >= 1, "stall not detected");
    assert!(as_u64(&doc, "watchdog.max_head_age_ms") >= 50);
    assert_eq!(as_u64(&doc, "watchdog.threshold_ms"), 50);

    let mut drainer = connect(&handle);
    drainer.drain(999).expect("drain");
    let summary = handle.join();
    assert!(summary.obs.watchdog_stalls >= 1);
    // One contiguous stall is one episode, not one count per poll tick.
    assert!(
        summary.obs.watchdog_stalls <= 2,
        "episodes over-counted: {}",
        summary.obs.watchdog_stalls
    );
    assert!(summary.obs.watchdog_max_head_age_ms >= 50);
}
