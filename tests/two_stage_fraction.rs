//! Integration: the §III claim that "up to ~70% of short reads should be
//! exactly aligned to the reference genome after stage one" under the
//! paper's workload statistics (100 bp, 0.2 % error, 0.1 % variation).

use bioseq::DnaSeq;
use pim_aligner::{PimAligner, PimAlignerConfig};
use readsim::{genome, ReadSimulator, SimProfile};

#[test]
fn about_seventy_percent_resolve_in_stage_one() {
    let reference = genome::uniform(150_000, 101);
    let profile = SimProfile::paper_defaults().read_count(250).forward_only();
    let sim = ReadSimulator::new(profile, 102).simulate(&reference);
    let reads: Vec<DnaSeq> = sim.reads.iter().map(|r| r.seq.clone()).collect();
    let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline());
    let result = aligner.align_batch(&reads);
    // Expected exact fraction: (1 - per-base error)^(100) with both error
    // sources ≈ 0.997^100 ≈ 0.74; paper says "up to ~70%".
    assert!(
        (0.60..0.85).contains(&result.exact_fraction),
        "exact-stage fraction {:.2}",
        result.exact_fraction
    );
    // Stage two recovers nearly all the rest at z ≤ 2.
    let mapped = result.outcomes.iter().filter(|o| o.is_mapped()).count();
    assert!(
        mapped as f64 / reads.len() as f64 > 0.95,
        "two-stage mapping rate {:.2}",
        mapped as f64 / reads.len() as f64
    );
}

#[test]
fn error_free_workload_is_all_exact() {
    let reference = genome::uniform(50_000, 103);
    let profile = SimProfile::paper_defaults()
        .read_count(60)
        .error_rate(0.0)
        .variants(readsim::variant::VariantProfile {
            rate: 0.0,
            ..Default::default()
        })
        .forward_only();
    let sim = ReadSimulator::new(profile, 104).simulate(&reference);
    let reads: Vec<DnaSeq> = sim.reads.iter().map(|r| r.seq.clone()).collect();
    let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline());
    let result = aligner.align_batch(&reads);
    assert_eq!(result.exact_fraction, 1.0);
}
