//! Integration: boundary conditions across the whole stack.

use bioseq::DnaSeq;
use pim_aligner::{AlignmentOutcome, PimAligner, PimAlignerConfig};

#[test]
fn single_base_reference() {
    let reference: DnaSeq = "A".parse().unwrap();
    let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline());
    assert_eq!(
        aligner.align_read(&"A".parse().unwrap()),
        AlignmentOutcome::Exact { positions: vec![0] }
    );
    // With the default z = 2 budget, a single-base mismatch is a valid
    // 1-difference hit; with z = 0 it is unmapped.
    assert_eq!(
        aligner.align_read(&"C".parse().unwrap()),
        AlignmentOutcome::Inexact {
            positions: vec![0],
            diffs: 1
        }
    );
    let mut strict = PimAligner::new(&reference, PimAlignerConfig::baseline().with_max_diffs(0));
    assert_eq!(
        strict.align_read(&"C".parse().unwrap()),
        AlignmentOutcome::Unmapped
    );
}

#[test]
fn read_longer_than_reference_does_not_panic() {
    let reference: DnaSeq = "ACGTACGT".parse().unwrap();
    let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline());
    let long: DnaSeq = "ACGTACGTACGTACGT".parse().unwrap();
    // Exact match is impossible; inexact may only succeed by treating the
    // overhang as insertions, which exceeds z = 2 here.
    assert_eq!(aligner.align_read(&long), AlignmentOutcome::Unmapped);
}

#[test]
fn read_equal_to_reference_maps_at_origin() {
    let reference: DnaSeq = "GATTACAGATTACA".parse().unwrap();
    let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline());
    match aligner.align_read(&reference) {
        AlignmentOutcome::Exact { positions } => assert_eq!(positions, vec![0]),
        other => panic!("full-reference read must map exactly, got {other:?}"),
    }
}

#[test]
fn reference_exactly_one_subarray_capacity() {
    // 32 768 bases fill a sub-array's BWT zone exactly (+ sentinel spills
    // the final marker checkpoint into the fallback path).
    let reference: DnaSeq = (0..32_768)
        .map(|i| bioseq::Base::from_rank((i * 13 + 1) % 4))
        .collect();
    let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline());
    let oracle = fmindex::FmIndex::new(&reference);
    for start in [0usize, 16_000, 32_768 - 64] {
        let read = reference.subseq(start..start + 64);
        let positions = aligner
            .align_read(&read)
            .positions()
            .expect("clean read must map")
            .to_vec();
        assert_eq!(positions, oracle.find(&read), "read @{start}");
    }
}

#[test]
fn homopolymer_reference_multi_hits() {
    let reference: DnaSeq = "A".repeat(200).parse().unwrap();
    let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline());
    match aligner.align_read(&"AAAA".parse().unwrap()) {
        AlignmentOutcome::Exact { positions } => {
            assert_eq!(positions.len(), 197);
            assert_eq!(positions[0], 0);
            assert_eq!(*positions.last().unwrap(), 196);
        }
        other => panic!("homopolymer read must map, got {other:?}"),
    }
}

#[test]
fn one_base_reads() {
    let reference: DnaSeq = "TGCTA".parse().unwrap();
    let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline());
    match aligner.align_read(&"T".parse().unwrap()) {
        AlignmentOutcome::Exact { positions } => assert_eq!(positions, vec![0, 3]),
        other => panic!("{other:?}"),
    }
}
