//! Integration: sensing faults propagated from device variation into
//! alignment accuracy (the DESIGN.md §8 failure-injection extension).
//!
//! The paper guards reliability by capping fan-in at three and raising
//! `t_ox`; these tests quantify what that guard buys: with the paper's
//! variation the platform aligns perfectly, while an overlapping-margin
//! comparator corrupts `XNOR_Match` counts and measurably degrades
//! accuracy.

use bioseq::DnaSeq;
use mram::device::CellParams;
use mram::faults::FaultModel;
use pim_aligner::{AlignmentOutcome, PimAligner, PimAlignerConfig};
use readsim::genome;

fn clean_reads(reference: &DnaSeq, count: usize, len: usize) -> Vec<(usize, DnaSeq)> {
    (0..count)
        .map(|i| {
            let start = (i * 1_237) % (reference.len() - len);
            (start, reference.subseq(start..start + len))
        })
        .collect()
}

fn accuracy(reference: &DnaSeq, faults: FaultModel) -> f64 {
    let mut aligner = PimAligner::new(
        reference,
        PimAlignerConfig::baseline()
            .with_max_diffs(0)
            .with_fault_model(faults),
    );
    let reads = clean_reads(reference, 40, 80);
    let mut correct = 0usize;
    for (start, read) in &reads {
        if let AlignmentOutcome::Exact { positions } = aligner.align_read(read) {
            if positions.contains(start) {
                correct += 1;
            }
        }
    }
    correct as f64 / reads.len() as f64
}

#[test]
fn paper_variation_gives_perfect_alignment() {
    let reference = genome::uniform(40_000, 111);
    let derived = FaultModel::from_cell(&CellParams::default(), 2_000, 5);
    assert!(
        derived.is_ideal(),
        "paper sigma must derive a fault-free model"
    );
    assert_eq!(accuracy(&reference, derived), 1.0);
}

#[test]
fn injected_faults_degrade_accuracy_monotonically() {
    let reference = genome::uniform(40_000, 112);
    let perfect = accuracy(&reference, FaultModel::ideal());
    let light = accuracy(&reference, FaultModel::with_probabilities(0.002, 0.0));
    let heavy = accuracy(&reference, FaultModel::with_probabilities(0.05, 0.0));
    assert_eq!(perfect, 1.0);
    assert!(light >= heavy, "light {light} vs heavy {heavy}");
    assert!(
        heavy < 0.9,
        "5% per-bit misreads must visibly corrupt alignment (got {heavy})"
    );
}

#[test]
fn margin_derived_model_connects_device_to_accuracy() {
    // A comparator with 1.5 mV absolute offset sigma overlaps the 3 mV
    // three-cell level gap; the derived fault model must be non-ideal and
    // must reduce accuracy.
    let reference = genome::uniform(30_000, 113);
    let noisy_cell = CellParams::default().with_sense_offset(1.5);
    let derived = FaultModel::from_cell(&noisy_cell, 3_000, 9);
    assert!(!derived.is_ideal());
    let acc = accuracy(&reference, derived);
    assert!(
        acc < 1.0,
        "non-ideal sensing must cost accuracy (got {acc})"
    );
    // And the paper's thick-oxide fix restores it.
    let fixed = FaultModel::from_cell(&noisy_cell.with_tox_nm(2.0), 3_000, 9);
    assert_eq!(accuracy(&reference, fixed), 1.0);
}
