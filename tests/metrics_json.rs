//! Integration: `pimalign --metrics` — the stable JSON metrics document.
//!
//! The schema is a published interface (`benchdiff` and external
//! dashboards consume it), so beyond the semantic checks a golden file
//! (`tests/golden/metrics_schema.txt`) pins the exact set of leaf paths.
//! A failing golden test means the schema changed: bump
//! `METRICS_SCHEMA_VERSION`, regenerate the golden file (the failure
//! message says how) and update the consumers.

use std::process::Command;

use bench::json::{self, Value};

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("pimalign_metrics_{name}_{}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp file");
    path
}

/// Runs the CLI over a tiny FASTA/FASTQ pair with `--metrics` and
/// returns the parsed metrics document.
fn run_with_metrics(extra: &[&str]) -> Value {
    let reference = write_temp(
        "ref.fa",
        ">chrT test\nTGCTAGCATGAACCTTGGAACGTACGTTAGCATCGATCGGATTACAGATTACAGGG\n",
    );
    let reads = write_temp(
        "reads.fq",
        "@exact\nGATTACAGATTACA\n+\nIIIIIIIIIIIIII\n@mismatch\nGGAACGTACGTTAGCATCGAAC\n+\nIIIIIIIIIIIIIIIIIIIIII\n",
    );
    let metrics = write_temp("out.json", "");
    let mut args = vec![
        reference.to_str().unwrap().to_owned(),
        reads.to_str().unwrap().to_owned(),
        "--metrics".to_owned(),
        metrics.to_str().unwrap().to_owned(),
    ];
    args.extend(extra.iter().map(|s| (*s).to_owned()));
    let out = Command::new(env!("CARGO_BIN_EXE_pimalign"))
        .args(&args)
        .output()
        .expect("run pimalign");
    assert!(
        out.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&metrics).expect("metrics file written");
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("invalid metrics JSON: {e}\n{text}"));
    std::fs::remove_file(reference).ok();
    std::fs::remove_file(reads).ok();
    std::fs::remove_file(metrics).ok();
    doc
}

fn as_u64(doc: &Value, path: &str) -> u64 {
    doc.get(path)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing or non-integer {path}"))
}

#[test]
fn metrics_json_is_valid_and_reconciles() {
    let doc = run_with_metrics(&["--pipelined"]);

    assert_eq!(as_u64(&doc, "schema_version"), 7);

    // v7: the obs section mirrors drain-time observability scalars. A
    // CLI run never starts the service plane, so everything is zero and
    // the slow-request log is empty — but the section (and therefore
    // the schema) is identical for daemon and CLI runs.
    assert_eq!(as_u64(&doc, "obs.watchdog_stalls"), 0);
    assert_eq!(as_u64(&doc, "obs.buckets_retired"), 0);
    assert_eq!(as_u64(&doc, "obs.window_secs"), 0);

    // v6: the rank-checkpoint cache section is present and internally
    // consistent. The default policy (auto) runs the cache, so an
    // aligning run records lookups; the hit counters are host-side
    // observability and never perturb the simulated totals checked
    // below.
    let hits = as_u64(&doc, "breakdown.kernel_cache.hits");
    let misses = as_u64(&doc, "breakdown.kernel_cache.misses");
    assert!(hits + misses > 0, "auto policy must record cache lookups");
    let hit_rate = doc
        .get("breakdown.kernel_cache.hit_rate")
        .and_then(Value::as_f64)
        .expect("hit_rate");
    let expected_rate = hits as f64 / (hits + misses) as f64;
    assert!(
        (hit_rate - expected_rate).abs() < 1e-5,
        "hit_rate {hit_rate} vs {expected_rate}"
    );

    // v4: the index section records how the platform's FM-index came to
    // be. A plain CLI run builds in-process: one shard, full SA, not
    // loaded, and the serialisable footprint agrees with the size model.
    assert_eq!(
        doc.get("index.loaded").and_then(Value::as_bool),
        Some(false),
        "a CLI FASTA run builds its index in-process"
    );
    assert_eq!(as_u64(&doc, "index.shards"), 1);
    assert_eq!(as_u64(&doc, "index.sa_rate"), 1);
    let actual_bytes = as_u64(&doc, "index.actual_bytes");
    assert!(actual_bytes > 0);
    assert_eq!(actual_bytes, as_u64(&doc, "index.model_bytes"));

    // A CLI run never touches the service plane; the always-on service
    // section must exist and be all-zero so dashboards get one schema
    // for daemon and CLI runs alike.
    assert_eq!(as_u64(&doc, "service.received"), 0);
    assert_eq!(as_u64(&doc, "service.deadline_misses"), 0);

    // The emitted counters reconcile: per-primitive cycles sum to the
    // ledger aggregate, and the report's LFM count matches the
    // breakdown's.
    let total = as_u64(&doc, "breakdown.total_busy_cycles");
    assert_eq!(as_u64(&doc, "breakdown.primitive_cycles_total"), total);
    assert!(total > 0);
    let prims = doc
        .get("breakdown.primitives")
        .and_then(Value::as_array)
        .expect("primitives array");
    assert_eq!(prims.len(), 8);
    let row_sum: u64 = prims
        .iter()
        .map(|p| {
            p.get("busy_cycles")
                .and_then(Value::as_u64)
                .expect("busy_cycles")
        })
        .sum();
    assert_eq!(row_sum, total);
    let resources = doc
        .get("breakdown.resources")
        .and_then(Value::as_array)
        .expect("resources array");
    assert_eq!(resources.len(), 4);
    let resource_sum: u64 = resources
        .iter()
        .map(|r| {
            r.get("busy_cycles")
                .and_then(Value::as_u64)
                .expect("busy_cycles")
        })
        .sum();
    assert_eq!(resource_sum, total);

    assert_eq!(
        as_u64(&doc, "report.lfm_calls"),
        as_u64(&doc, "breakdown.lfm_calls")
    );
    let phase_sum = as_u64(&doc, "breakdown.lfm_by_phase.exact")
        + as_u64(&doc, "breakdown.lfm_by_phase.inexact")
        + as_u64(&doc, "breakdown.lfm_by_phase.recovery_retry")
        + as_u64(&doc, "breakdown.lfm_by_phase.recovery_escalate");
    assert_eq!(phase_sum, as_u64(&doc, "breakdown.lfm_calls"));

    // Pipeline occupancy reflects the requested Pd=2 configuration.
    assert_eq!(as_u64(&doc, "breakdown.pipeline.pd"), 2);
    let adder_occ = doc
        .get("breakdown.pipeline.adder_occupancy_pct")
        .and_then(Value::as_f64)
        .expect("adder occupancy");
    assert!(
        (adder_occ - 100.0).abs() < 1e-6,
        "Pd=2 adder binds: {adder_occ}"
    );

    // Primitive names are the stable labels, in table order.
    let names: Vec<&str> = prims
        .iter()
        .map(|p| p.get("name").and_then(Value::as_str).expect("name"))
        .collect();
    assert_eq!(
        names,
        [
            "xnor_match",
            "popcount",
            "marker_read",
            "im_add32",
            "index_update",
            "sa_entry_read",
            "row_write",
            "row_read"
        ]
    );

    assert!(as_u64(&doc, "breakdown.index_build_cycles") > 0);
    assert!(as_u64(&doc, "breakdown.subarray_activations") > 0);

    // v2: the zone heatmap is a *view* of existing sub-array charges —
    // its total can never exceed the activation counter it attributes.
    let zones = as_u64(&doc, "breakdown.heatmap.zones");
    let activations = doc
        .get("breakdown.heatmap.activations")
        .and_then(Value::as_array)
        .expect("heatmap activations array");
    assert_eq!(activations.len() as u64, zones);
    let heat_total: u64 = activations.iter().filter_map(Value::as_u64).sum();
    assert!(heat_total > 0, "an aligning run must touch zones");
    assert!(heat_total <= as_u64(&doc, "breakdown.subarray_activations"));

    // v2: the host section exists, is structurally complete, and its
    // always-on per-read histogram counted both reads.
    assert_eq!(as_u64(&doc, "host.per_read_latency.count"), 2);
    assert!(as_u64(&doc, "host.wall_ns") > 0);
    let workers = doc
        .get("host.workers")
        .and_then(Value::as_array)
        .expect("host workers array");
    let worker_reads: u64 = workers
        .iter()
        .filter_map(|w| w.get("reads").and_then(Value::as_u64))
        .sum();
    assert_eq!(worker_reads, 2, "worker rows must account for every read");
    // No tracing flags were passed, so no host spans were collected —
    // and none were silently dropped.
    assert_eq!(as_u64(&doc, "host.trace_spans"), 0);
    assert_eq!(as_u64(&doc, "host.trace_spans_dropped"), 0);
}

#[test]
fn v1_fixture_still_parses_and_is_a_schema_subset() {
    // Back-compat: a consumer that reads v1 fields by name keeps working
    // on v2 documents. The committed v1 fixture (a pre-v2 CLI run over
    // this exact workload) must parse, and every v1 leaf path must still
    // exist in a fresh v2 document — v2 only *adds* paths.
    let fixture_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics_v1.json");
    let text = std::fs::read_to_string(fixture_path).expect("v1 fixture readable");
    let v1 = json::parse(&text).expect("v1 fixture parses");
    assert_eq!(as_u64(&v1, "schema_version"), 1);
    assert_eq!(as_u64(&v1, "report.queries"), 2);
    assert!(as_u64(&v1, "breakdown.total_busy_cycles") > 0);

    // The fixture predates the interleaved batch kernel, whose shared
    // plane loads legitimately charge fewer cycles; --kernel-batch 1 is
    // the single-read path the fixture recorded.
    let v2 = run_with_metrics(&["--kernel-batch", "1"]);
    let v2_paths = v2.schema_paths();
    for path in v1.schema_paths() {
        if path == "schema_version" {
            continue;
        }
        assert!(
            v2_paths.contains(&path),
            "v1 path {path} vanished from the v2 document — v2 must be a strict superset"
        );
    }

    // And on the shared workload the simulated quantities are unchanged:
    // adding host telemetry moved no simulated cycle.
    for path in [
        "report.queries",
        "report.lfm_calls",
        "breakdown.total_busy_cycles",
        "breakdown.primitive_cycles_total",
        "breakdown.subarray_activations",
        "breakdown.lfm_calls",
    ] {
        assert_eq!(
            v2.get(path).and_then(Value::as_u64),
            v1.get(path).and_then(Value::as_u64),
            "simulated quantity {path} drifted from the v1 fixture"
        );
    }
}

#[test]
fn metrics_schema_matches_golden_file() {
    let doc = run_with_metrics(&[]);
    let actual = doc.schema_paths().join("\n") + "\n";
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/metrics_schema.txt"
    );
    let golden = std::fs::read_to_string(golden_path)
        .unwrap_or_else(|e| panic!("cannot read {golden_path}: {e}"));
    assert_eq!(
        actual, golden,
        "metrics JSON schema drifted from tests/golden/metrics_schema.txt.\n\
         If the change is intentional, bump METRICS_SCHEMA_VERSION, update the\n\
         golden file to the `actual` value above, and update benchdiff/dashboards."
    );
}
