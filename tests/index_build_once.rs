//! Integration: the shared-platform guarantee — `MappedIndex::build`
//! runs exactly once per run, no matter how many worker threads align.
//!
//! This test must stay ALONE in this file: `MappedIndex::build_count()`
//! is a process-global counter, and any sibling `#[test]` running
//! concurrently in the same process would inflate the delta.

use pim_aligner::{MappedIndex, PimAlignerConfig, Platform};
use readsim::genome;

#[test]
fn eight_thread_run_builds_the_index_exactly_once() {
    let reference = genome::uniform(40_000, 555);
    let reads: Vec<_> = (0..64)
        .map(|i| reference.subseq(i * 600..i * 600 + 80))
        .collect();

    let before = MappedIndex::build_count();
    let platform = Platform::new(&reference, PimAlignerConfig::baseline());
    assert_eq!(
        MappedIndex::build_count(),
        before + 1,
        "Platform::new must build the index"
    );

    // An 8-thread batch, a second batch, and a streamed chunked pass:
    // none of them may rebuild.
    let result = platform.align_batch_parallel(&reads, 8).unwrap();
    assert!(result.outcomes.iter().all(|o| o.is_mapped()));
    let (with_strands, _) = platform
        .align_batch_parallel_both_strands(&reads, 8)
        .unwrap();
    assert!(with_strands.outcomes.iter().all(|o| o.is_mapped()));
    for (epoch, chunk) in reads.chunks(16).enumerate() {
        platform
            .align_chunk_parallel(chunk, 8, epoch as u64, false)
            .unwrap();
    }
    assert_eq!(
        MappedIndex::build_count(),
        before + 1,
        "aligning must never rebuild the shared index"
    );

    // The compatibility wrappers build once per call (their contract is
    // one platform per call), not once per worker.
    let before = MappedIndex::build_count();
    pim_aligner::align_batch_parallel(&reference, &PimAlignerConfig::baseline(), &reads, 8)
        .unwrap();
    assert_eq!(
        MappedIndex::build_count(),
        before + 1,
        "align_batch_parallel must build exactly once for 8 threads"
    );
}
