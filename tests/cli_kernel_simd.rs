//! Integration: `--kernel-simd` flag validation in both binaries.
//!
//! The flag picks the *host* kernel implementation only, so the rules
//! are the same for `pimalign` and `pimserve`: `auto` and `scalar`
//! parse, anything else is a usage error (exit 2), and a missing value
//! is a usage error too. Both binaries log the dispatched path exactly
//! once at startup so a run can be audited after the fact.

use std::process::Command;

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("cli_kernel_simd_{name}_{}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp file");
    path
}

/// One row of the validation table: the flag value given (None = flag
/// with its value missing), the expected exit code, and a substring the
/// stderr must contain.
struct Case {
    value: Option<&'static str>,
    expect_exit: i32,
    stderr_contains: &'static str,
}

const CASES: &[Case] = &[
    Case {
        value: Some("auto"),
        expect_exit: 0,
        stderr_contains: "kernel dispatch",
    },
    Case {
        value: Some("scalar"),
        expect_exit: 0,
        stderr_contains: "(--kernel-simd scalar)",
    },
    Case {
        value: Some("avx512"),
        expect_exit: 2,
        stderr_contains: "invalid --kernel-simd",
    },
    Case {
        value: Some(""),
        expect_exit: 2,
        stderr_contains: "invalid --kernel-simd",
    },
    Case {
        value: None,
        expect_exit: 2,
        stderr_contains: "--kernel-simd needs a value",
    },
];

#[test]
fn pimalign_validates_kernel_simd_and_logs_the_dispatched_path() {
    let reference = write_temp("ref.fa", ">chrT\nGATTACAGATTACAGGGACGTACGT\n");
    let reads = write_temp("reads.fq", "@r0\nGATTACAGATTACA\n+\nIIIIIIIIIIIIII\n");
    for case in CASES {
        let mut args = vec![
            reference.to_str().unwrap().to_owned(),
            reads.to_str().unwrap().to_owned(),
            "--kernel-simd".to_owned(),
        ];
        if let Some(v) = case.value {
            args.push(v.to_owned());
        }
        let out = Command::new(env!("CARGO_BIN_EXE_pimalign"))
            .args(&args)
            .output()
            .expect("run pimalign");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(case.expect_exit),
            "pimalign --kernel-simd {:?}: exit {:?}, stderr:\n{stderr}",
            case.value,
            out.status.code()
        );
        assert!(
            stderr.contains(case.stderr_contains),
            "pimalign --kernel-simd {:?}: stderr missing {:?}:\n{stderr}",
            case.value,
            case.stderr_contains
        );
        // The dispatch line is a startup banner, not a per-read log:
        // exactly one occurrence on a successful run.
        if case.expect_exit == 0 {
            assert_eq!(
                stderr.matches("kernel dispatch").count(),
                1,
                "dispatch must be logged exactly once:\n{stderr}"
            );
        }
    }
    std::fs::remove_file(reference).ok();
    std::fs::remove_file(reads).ok();
}

#[test]
fn pimserve_validates_kernel_simd_with_the_same_exit_codes() {
    // A missing reference makes valid invocations fail *after* flag
    // parsing (input error, exit 3) without ever binding a socket — so
    // the test proves the flag parsed, sees the startup dispatch line,
    // and never has to drain a live server.
    for case in CASES {
        let mut args = vec!["/nonexistent/ref.fa".to_owned(), "--kernel-simd".to_owned()];
        if let Some(v) = case.value {
            args.push(v.to_owned());
        }
        let out = Command::new(env!("CARGO_BIN_EXE_pimserve"))
            .args(&args)
            .output()
            .expect("run pimserve");
        let stderr = String::from_utf8_lossy(&out.stderr);
        let expect_exit = if case.expect_exit == 0 { 3 } else { 2 };
        assert_eq!(
            out.status.code(),
            Some(expect_exit),
            "pimserve --kernel-simd {:?}: exit {:?}, stderr:\n{stderr}",
            case.value,
            out.status.code()
        );
        if case.expect_exit == 0 {
            // Valid flag: the structured dispatch record appears (before
            // the input failure), exactly once. pimserve logs key=value
            // records, so the banner is `event=kernel_dispatch` rather
            // than pimalign's prose line.
            assert_eq!(
                stderr.matches("event=kernel_dispatch").count(),
                1,
                "pimserve --kernel-simd {:?}: dispatch logged once:\n{stderr}",
                case.value
            );
            assert!(
                stderr.contains(&format!("policy={}", case.value.unwrap())),
                "pimserve --kernel-simd {:?}: stderr missing policy field:\n{stderr}",
                case.value
            );
        } else {
            assert!(
                stderr.contains(case.stderr_contains),
                "pimserve --kernel-simd {:?}: stderr missing {:?}:\n{stderr}",
                case.value,
                case.stderr_contains
            );
        }
    }
}
