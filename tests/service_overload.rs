//! Integration: the `pimserve` service core under deliberate abuse.
//!
//! These tests run the real server (`service::serve`) over loopback with
//! the deterministic test-fault hooks enabled and pin the four overload
//! invariants of DESIGN.md §13:
//!
//! 1. a saturated queue sheds with typed `Overloaded` responses and the
//!    in-flight byte budget is never exceeded;
//! 2. a request whose deadline expires in the queue is answered
//!    `DeadlineExceeded` and never reaches the aligner;
//! 3. a read that panics the worker poisons only its own response —
//!    batchmates still get real outcomes and the pool keeps serving;
//! 4. graceful drain answers every accepted request exactly once and
//!    rejects late arrivals with `Draining`.

use std::collections::BTreeMap;
use std::time::Duration;

use bioseq::DnaSeq;
use pim_aligner::service::protocol::{AlignRequest, Client, Request, Response};
use pim_aligner::service::{serve, ServerHandle, ServiceConfig};
use pim_aligner::{PimAlignerConfig, Platform};

/// A fixed reference every test aligns against; `READ` maps exactly.
const REFERENCE: &str = "TGCTAGCATGAACCTTGGAACGTACGTTAGCATCGATCGGATTACAGATTACAGGG";
const READ: &str = "GATTACAGATTACA";

fn start_server(config: ServiceConfig) -> ServerHandle {
    let reference: DnaSeq = REFERENCE.parse().expect("reference parses");
    let platform = Platform::new(&reference, PimAlignerConfig::baseline());
    serve(platform, config, "127.0.0.1:0").expect("server starts")
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect(&handle.local_addr().to_string()).expect("client connects")
}

fn send_align(client: &mut Client, req_id: u64, id: &str, seq: &str, deadline_ms: u32) {
    client
        .send(&Request::Align(AlignRequest {
            req_id,
            deadline_ms,
            id: id.to_owned(),
            seq: seq.to_owned(),
        }))
        .expect("send align");
}

/// Receives until every listed req_id has exactly one response.
fn collect_responses(client: &mut Client, req_ids: &[u64]) -> BTreeMap<u64, Response> {
    let mut got = BTreeMap::new();
    while got.len() < req_ids.len() {
        let resp = client
            .recv()
            .expect("receive response")
            .expect("server closed before answering everything");
        let id = resp.req_id();
        assert!(req_ids.contains(&id), "unsolicited response for {id}");
        assert!(
            got.insert(id, resp).is_none(),
            "request {id} answered twice"
        );
    }
    got
}

/// Stalls the batcher: sends one hook read and waits long enough for the
/// batcher to have taken it into a batch (and begun sleeping), so
/// everything sent afterwards piles up in the admission queue.
fn stall_batcher(client: &mut Client, req_id: u64, ms: u64) {
    send_align(client, req_id, &format!("__stall_ms_{ms}__"), READ, 0);
    std::thread::sleep(Duration::from_millis(40));
}

#[test]
fn saturated_queue_sheds_with_typed_overloaded_and_bounded_bytes() {
    let config = ServiceConfig {
        queue_depth: 4,
        max_inflight_bytes: 4 * READ.len() + 1,
        test_faults: true,
        ..ServiceConfig::default()
    };
    let max_inflight_bytes = config.max_inflight_bytes;
    let handle = start_server(config);
    let mut client = connect(&handle);

    // Hold the batcher busy so the burst below cannot drain.
    stall_batcher(&mut client, 0, 250);

    // Burst well past both limits. The stall read's bytes are still
    // charged (admitted, unanswered), so the byte budget trips first,
    // then the depth limit once shorter reads fill the four slots.
    let burst: Vec<u64> = (1..=12).collect();
    for &id in &burst {
        send_align(&mut client, id, &format!("r{id}"), READ, 0);
    }
    let responses = collect_responses(&mut client, &[&[0u64][..], &burst[..]].concat());

    let mut aligned = 0;
    let mut shed = 0;
    for (&id, resp) in &responses {
        match resp {
            Response::Aligned { .. } => aligned += 1,
            Response::Overloaded { retry_after_ms, .. } => {
                shed += 1;
                assert!(
                    *retry_after_ms > 0,
                    "shed response for {id} carries no retry-after hint"
                );
            }
            other => panic!("request {id}: expected Aligned or Overloaded, got {other:?}"),
        }
    }
    assert!(shed > 0, "burst past the limits must shed something");
    assert!(aligned > 0, "admitted requests must still be served");

    let mut drainer = connect(&handle);
    drainer.drain(99).expect("drain");
    let summary = handle.join();
    assert_eq!(summary.telemetry.shed_total(), shed);
    assert!(
        summary.telemetry.peak_inflight_bytes <= max_inflight_bytes as u64,
        "peak in-flight bytes {} exceeded the budget {}",
        summary.telemetry.peak_inflight_bytes,
        max_inflight_bytes
    );
    assert_eq!(summary.telemetry.accepted, summary.telemetry.responses);
}

#[test]
fn queue_expired_deadline_is_answered_without_reaching_the_aligner() {
    let config = ServiceConfig {
        test_faults: true,
        ..ServiceConfig::default()
    };
    let handle = start_server(config);
    let mut client = connect(&handle);

    // The batcher sleeps 300 ms; the next request's 50 ms deadline
    // expires while it waits in the queue.
    stall_batcher(&mut client, 0, 300);
    send_align(&mut client, 1, "expires-in-queue", READ, 50);

    let responses = collect_responses(&mut client, &[0, 1]);
    assert!(
        matches!(responses[&1], Response::DeadlineExceeded { .. }),
        "expected DeadlineExceeded, got {:?}",
        responses[&1]
    );

    let mut drainer = connect(&handle);
    drainer.drain(99).expect("drain");
    let summary = handle.join();
    assert_eq!(summary.telemetry.expired_in_queue, 1);
    assert_eq!(summary.telemetry.deadline_misses(), 1);
    // Exactly two batches aligned anything: the stall read's and none
    // for the expired request (it never reached the aligner).
    assert_eq!(summary.telemetry.accepted, 2);
    assert_eq!(summary.telemetry.responses, 2);
    let report = summary.report.expect("the stall read was aligned");
    assert_eq!(report.service.expired_in_queue, 1);
}

#[test]
fn panicking_read_poisons_only_its_own_response() {
    let config = ServiceConfig {
        test_faults: true,
        ..ServiceConfig::default()
    };
    let handle = start_server(config);
    let mut client = connect(&handle);

    // Stall so the poisoned read and its three neighbours coalesce into
    // one batch behind the stall.
    stall_batcher(&mut client, 0, 150);
    send_align(&mut client, 1, "good-1", READ, 0);
    send_align(&mut client, 2, "__panic__", READ, 0);
    send_align(&mut client, 3, "good-3", READ, 0);
    send_align(&mut client, 4, "good-4", READ, 0);

    let responses = collect_responses(&mut client, &[0, 1, 2, 3, 4]);
    assert!(
        matches!(responses[&2], Response::WorkerPanic { .. }),
        "poisoned read must get a typed WorkerPanic, got {:?}",
        responses[&2]
    );
    for id in [0u64, 1, 3, 4] {
        assert!(
            matches!(responses[&id], Response::Aligned { .. }),
            "batchmate {id} must still get its real outcome, got {:?}",
            responses[&id]
        );
    }

    // The pool survived the panic: a fresh request still aligns.
    let after = client.align(5, "after-panic", READ, 0).expect("round trip");
    assert!(
        matches!(after, Response::Aligned { .. }),
        "pool must keep serving after a quarantined panic, got {after:?}"
    );

    let mut drainer = connect(&handle);
    drainer.drain(99).expect("drain");
    let summary = handle.join();
    assert_eq!(summary.telemetry.panics_quarantined, 1);
    assert_eq!(summary.telemetry.accepted, summary.telemetry.responses);
}

#[test]
fn drain_answers_every_accepted_request_exactly_once_and_rejects_late_arrivals() {
    let config = ServiceConfig {
        test_faults: true,
        ..ServiceConfig::default()
    };
    let handle = start_server(config);
    let mut client = connect(&handle);

    // Queue work behind a stall, then drain while it is still in flight.
    stall_batcher(&mut client, 0, 200);
    let queued: Vec<u64> = (1..=5).collect();
    for &id in &queued {
        send_align(&mut client, id, &format!("r{id}"), READ, 0);
    }
    // Admission barrier: frames on one connection are handled in order,
    // so the Stats acknowledgement proves all five aligns were admitted
    // before the drain below closes the door. Anything the batcher
    // answered in the meantime is stashed for the final accounting.
    client.send(&Request::Stats { req_id: 80 }).expect("stats");
    let mut responses = BTreeMap::new();
    loop {
        let resp = client.recv().expect("recv").expect("server open");
        if resp.req_id() == 80 {
            break;
        }
        responses.insert(resp.req_id(), resp);
    }

    let mut late = connect(&handle);
    let ack = late.drain(90).expect("drain").expect("drain acked");
    assert!(matches!(ack, Response::DrainStarted { req_id: 90 }));
    // Admission is closed from the instant of the ack; the flush of the
    // five queued requests is still running.
    send_align(&mut late, 91, "too-late", READ, 0);
    let rejected = late.recv().expect("recv").expect("answered");
    assert!(
        matches!(rejected, Response::Draining { req_id: 91 }),
        "post-drain request must be rejected as Draining, got {rejected:?}"
    );

    // Every request accepted before the drain still gets its answer.
    let expected: Vec<u64> = [&[0u64][..], &queued[..]].concat();
    let remaining: Vec<u64> = expected
        .iter()
        .copied()
        .filter(|id| !responses.contains_key(id))
        .collect();
    responses.extend(collect_responses(&mut client, &remaining));
    for (&id, resp) in &responses {
        assert!(
            matches!(resp, Response::Aligned { .. }),
            "accepted request {id} must be flushed with a real outcome, got {resp:?}"
        );
    }

    let summary = handle.join();
    assert_eq!(summary.telemetry.accepted, 6);
    assert_eq!(
        summary.telemetry.responses, summary.telemetry.accepted,
        "drain must answer every accepted request exactly once"
    );
    assert_eq!(summary.telemetry.rejected_draining, 1);
    let report = summary.report.expect("six reads aligned");
    assert_eq!(report.service.responses, 6);
}

#[test]
fn drain_with_nothing_aligned_still_reports_service_counters() {
    let handle = start_server(ServiceConfig::default());
    let mut client = connect(&handle);
    client.drain(1).expect("drain");
    let summary = handle.join();
    assert!(summary.report.is_none(), "nothing aligned, no perf report");
    let json = summary.metrics_json();
    assert!(json.contains("\"service\""), "reduced document: {json}");
    assert!(json.contains("\"schema_version\""));
}
