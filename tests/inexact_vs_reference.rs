//! Integration: Algorithm 2 on the platform vs the software oracle and
//! the dynamic-programming baseline.

use bioseq::{Base, DnaSeq};
use fmindex::{EditBudget, FmIndex};
use pim_aligner::{AlignmentOutcome, PimAligner, PimAlignerConfig};
use readsim::genome;
use swalign::{banded_global, Scoring};

fn mutate(read: &DnaSeq, positions: &[usize]) -> DnaSeq {
    let mut bases = read.clone().into_bases();
    for &p in positions {
        bases[p] = Base::from_rank((bases[p].rank() + 1) % 4);
    }
    DnaSeq::from_bases(bases)
}

#[test]
fn exhaustive_platform_hits_equal_software_hits() {
    let reference = genome::uniform(20_000, 81);
    let oracle = FmIndex::new(&reference);
    let mut aligner = PimAligner::new(
        &reference,
        PimAlignerConfig::baseline()
            .with_max_diffs(2)
            .with_indels(false)
            .with_exhaustive_inexact(true),
    );
    for (start, muts) in [
        (500usize, vec![10]),
        (4_000, vec![5, 20]),
        (15_000, vec![0]),
    ] {
        let read = mutate(&reference.subseq(start..start + 30), &muts);
        let outcome = aligner.align_read(&read);
        let sw = oracle.find_inexact(&read, EditBudget::substitutions_only(2));
        match outcome {
            AlignmentOutcome::Inexact { positions, diffs } => {
                let best = sw.iter().map(|(_, d)| *d).min().expect("oracle hit");
                assert_eq!(diffs, best, "read @{start}");
                let sw_best: Vec<usize> = sw
                    .iter()
                    .filter(|(_, d)| *d == best)
                    .map(|(p, _)| *p)
                    .collect();
                assert_eq!(positions, sw_best, "read @{start}");
                assert!(positions.contains(&start));
            }
            AlignmentOutcome::Exact { positions } => {
                // The mutated read may coincidentally occur elsewhere.
                assert!(!positions.is_empty());
            }
            AlignmentOutcome::Unmapped => panic!("mutated read @{start} must map"),
        }
    }
}

#[test]
fn first_accept_position_confirmed_by_dp_baseline() {
    // Cross-validate the PIM result with the O(n·m) baseline class the
    // paper compares against: banded global alignment at the reported
    // position must reach the expected score.
    let reference = genome::uniform(15_000, 82);
    let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline().with_max_diffs(2));
    let read = mutate(&reference.subseq(7_000..7_060), &[15, 40]);
    let AlignmentOutcome::Inexact { positions, diffs } = aligner.align_read(&read) else {
        panic!("expected an inexact hit");
    };
    assert!((1..=2).contains(&diffs));
    for &pos in &positions {
        let window = reference.subseq(pos..(pos + read.len()).min(reference.len()));
        let aln = banded_global(&window, &read, Scoring::default(), 4).expect("band wide enough");
        // ≤ 2 substitutions over 60 bases: score ≥ 58 matches − 2×(1+1).
        assert!(
            aln.score >= (read.len() as i32 - 2) - 2 * 2,
            "DP score {} too low at position {pos}",
            aln.score
        );
    }
}

#[test]
fn indel_variant_recovered_cross_stack() {
    let reference = genome::uniform(10_000, 83);
    // Delete one base from a read template.
    let mut bases = reference.subseq(3_000..3_050).into_bases();
    bases.remove(25);
    let read = DnaSeq::from_bases(bases);
    let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline().with_max_diffs(1));
    match aligner.align_read(&read) {
        AlignmentOutcome::Inexact { positions, .. } => {
            assert!(positions.iter().any(|&p| p.abs_diff(3_000) <= 1));
        }
        other => panic!("indel read must map inexactly, got {other:?}"),
    }
}
