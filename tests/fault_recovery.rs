//! Integration: the verify-and-recover path holds alignment accuracy
//! under an active fault campaign (DESIGN.md §8).
//!
//! One seeded campaign, one read set, two runs: with recovery disabled
//! the platform measurably mis-places reads; with the standard recovery
//! ladder (verify each locus, retry, escalate the difference budget,
//! fall back to the host) at least 99 % of reads land on their
//! ground-truth locus, and the retry/fallback work is visible in the
//! performance report. Everything is seed-driven, so the test is
//! deterministic.

use bioseq::DnaSeq;
use mram::faults::{FaultCampaign, FaultModel};
use pim_aligner::{PimAligner, PimAlignerConfig, RecoveryPolicy};
use readsim::genome;

const READS: usize = 100;
const READ_LEN: usize = 80;

fn reads_with_truth(reference: &DnaSeq) -> (Vec<DnaSeq>, Vec<usize>) {
    (0..READS)
        .map(|i| {
            let start = (i * 397) % (reference.len() - READ_LEN);
            (reference.subseq(start..start + READ_LEN), start)
        })
        .unzip()
}

// Strong enough that the unprotected platform loses most reads (some
// mapped at wrong loci, most corrupted into Unmapped), mild enough that
// platform retries and budget escalation still recover many reads before
// the host-fallback rung.
fn hostile_campaign() -> FaultCampaign {
    FaultCampaign::seeded(37)
        .with_model(FaultModel::with_probabilities(1e-3, 1e-3))
        .with_stuck_at_rate(1e-4)
        .with_transient_row_rate(5e-3)
        .with_carry_fault_prob(5e-3)
}

fn placement_accuracy(
    reference: &DnaSeq,
    reads: &[DnaSeq],
    truth: &[usize],
    recovery: RecoveryPolicy,
) -> (f64, pim_aligner::FaultTelemetry) {
    let config = PimAlignerConfig::baseline()
        .with_fault_campaign(hostile_campaign())
        .with_recovery(recovery);
    let mut aligner = PimAligner::new(reference, config);
    let result = aligner.align_batch(reads);
    let correct = result
        .outcomes
        .iter()
        .zip(truth)
        .filter(|(o, &t)| o.positions().is_some_and(|p| p.contains(&t)))
        .count();
    (correct as f64 / reads.len() as f64, result.report.faults)
}

#[test]
fn recovery_restores_accuracy_under_active_campaign() {
    let campaign = hostile_campaign();
    assert!(campaign.model().xnor_misread_prob() > 0.0);

    let reference = genome::uniform(40_000, 211);
    let (reads, truth) = reads_with_truth(&reference);

    let (raw_acc, raw_t) =
        placement_accuracy(&reference, &reads, &truth, RecoveryPolicy::disabled());
    let (rec_acc, rec_t) =
        placement_accuracy(&reference, &reads, &truth, RecoveryPolicy::standard());

    // The unprotected platform must measurably mis-place reads...
    assert!(
        raw_acc < 0.95,
        "campaign too weak to demonstrate anything: raw accuracy {raw_acc}"
    );
    assert!(raw_t.injected_total() > 0, "no faults injected: {raw_t:?}");
    // ...while the recovery ladder holds the acceptance bar.
    assert!(
        rec_acc >= 0.99,
        "recovery must place >= 99% of reads correctly, got {rec_acc}"
    );

    // The work done to get there is visible in the telemetry. (Corrupted
    // rungs can come up Unmapped — nothing to verify — so only a lower
    // bound on verification activity is guaranteed.)
    assert!(
        rec_t.verifications > 0,
        "no verifications recorded: {rec_t:?}"
    );
    assert!(
        rec_t.retries + rec_t.host_fallbacks > 0,
        "recovery must have retried or fallen back: {rec_t:?}"
    );
    assert_eq!(
        rec_t.unrecoverable, 0,
        "host fallback leaves nothing unrecoverable"
    );
}

#[test]
fn recovered_run_replays_identically() {
    let reference = genome::uniform(20_000, 212);
    let (reads, _) = reads_with_truth(&reference);
    let run = || {
        let config = PimAlignerConfig::baseline()
            .with_fault_campaign(hostile_campaign())
            .with_recovery(RecoveryPolicy::standard());
        let mut aligner = PimAligner::new(&reference, config);
        let result = aligner.align_batch(&reads);
        (result.outcomes, result.report.faults)
    };
    let (outcomes_a, faults_a) = run();
    let (outcomes_b, faults_b) = run();
    assert_eq!(
        outcomes_a, outcomes_b,
        "same campaign seed must replay identically"
    );
    assert_eq!(faults_a, faults_b);
}
