//! Integration: the cycle-level metrics layer — counter reconciliation
//! against the ledger, worker-merge associativity, phase attribution and
//! span tracing over real alignment runs.

use pim_aligner_suite::bioseq::DnaSeq;
use pim_aligner_suite::pim_aligner::{PerfReport, PimAlignerConfig, Platform};
use pim_aligner_suite::readsim::{genome, ReadSimulator, SimProfile};

fn workload(genome_len: usize, count: usize, seed: u64) -> (DnaSeq, Vec<DnaSeq>) {
    let reference = genome::uniform(genome_len, seed);
    let profile = SimProfile::paper_defaults()
        .read_count(count)
        .read_len(80)
        .forward_only();
    let sim = ReadSimulator::new(profile, seed ^ 0xfeed).simulate(&reference);
    (reference, sim.reads.into_iter().map(|r| r.seq).collect())
}

/// The tentpole invariant: every production cycle is charged through a
/// logical op, so the per-primitive counter total reconciles *exactly*
/// with the ledger's resource-level aggregate after a real batch.
#[test]
fn breakdown_reconciles_with_ledger_after_alignment() {
    let (reference, reads) = workload(30_000, 32, 71);
    let platform = Platform::new(&reference, PimAlignerConfig::pipelined());
    let mut session = platform.session();
    for read in &reads {
        let _ = session.align_read(read);
    }
    let report = session.report();
    let b = &report.breakdown;

    assert!(
        b.reconciles(),
        "primitive cycles {} != ledger busy cycles {}",
        b.primitive_cycles_total,
        b.total_busy_cycles
    );
    assert_eq!(b.total_busy_cycles, session.ledger().total_busy_cycles());
    let row_sum: u64 = b.primitives.iter().map(|p| p.busy_cycles).sum();
    assert_eq!(row_sum, b.primitive_cycles_total);
    let resource_sum: u64 = b.resources.iter().map(|r| r.busy_cycles).sum();
    assert_eq!(resource_sum, b.total_busy_cycles);

    // Phase attribution covers every LFM, and the exact stage dominates
    // on a paper-statistics workload.
    assert_eq!(b.lfm_by_phase.total(), report.lfm_calls);
    assert!(b.lfm_by_phase.exact > 0);
    assert_eq!(b.lfm_by_phase.recovery_retry, 0, "no recovery configured");

    // Structural sanity: 2 XNORs per LFM pair is the dominant compare
    // load; every LFM carries exactly one XNOR + one IM_ADD.
    let by_name = |n: &str| {
        b.primitives
            .iter()
            .find(|p| p.name == n)
            .unwrap_or_else(|| panic!("missing primitive {n}"))
    };
    assert_eq!(by_name("xnor_match").count, report.lfm_calls);
    assert_eq!(by_name("im_add32").count, report.lfm_calls);
    assert!(b.subarray_activations > 0);
    assert_eq!(b.im_add_carry_cycles, 13 * report.lfm_calls);
    assert!(b.index_build_cycles > 0, "one-time mapping cost attached");
}

/// Counter-merge associativity: 8 worker ledgers merged through
/// `BatchTotals` must yield the same counters as a single-thread run of
/// the same seed — exactly, for all integer counters; approximately for
/// energy (f64 summation order differs).
#[test]
fn worker_merge_is_associative() {
    let (reference, reads) = workload(50_000, 48, 72);
    let platform = Platform::new(&reference, PimAlignerConfig::baseline());
    let one = platform.align_batch_parallel(&reads, 1).unwrap().report;
    let eight = platform.align_batch_parallel(&reads, 8).unwrap().report;

    assert_eq!(one.lfm_calls, eight.lfm_calls);
    assert_eq!(one.breakdown.primitives, eight.breakdown.primitives);
    assert_eq!(one.breakdown.resources, eight.breakdown.resources);
    assert_eq!(
        one.breakdown.total_busy_cycles,
        eight.breakdown.total_busy_cycles
    );
    assert_eq!(
        one.breakdown.primitive_cycles_total,
        eight.breakdown.primitive_cycles_total
    );
    assert_eq!(one.breakdown.lfm_by_phase, eight.breakdown.lfm_by_phase);
    assert_eq!(
        one.breakdown.subarray_activations,
        eight.breakdown.subarray_activations
    );
    let rel = (one.breakdown.energy_pj - eight.breakdown.energy_pj).abs() / one.breakdown.energy_pj;
    assert!(rel < 1e-9, "energy merge disagreement {rel:.3e}");

    // The sequential session runs the single-read kernel; the parallel
    // engine matches it exactly once the batch width is forced to 1.
    let narrow = Platform::new(
        &reference,
        PimAlignerConfig::baseline().with_kernel_batch(1),
    );
    let narrow_one = narrow.align_batch_parallel(&reads, 1).unwrap().report;
    let mut session = platform.session();
    for read in &reads {
        let _ = session.align_read(read);
    }
    let seq = session.report();
    assert_eq!(seq.breakdown.primitives, narrow_one.breakdown.primitives);
    assert_eq!(
        seq.breakdown.lfm_by_phase,
        narrow_one.breakdown.lfm_by_phase
    );

    // At the default batch width the interleaved kernel charges each
    // shared plane load once per group, so XNOR/marker counts shrink
    // relative to the single-read path while the per-request primitives
    // (popcount, adder) are untouched.
    let count = |r: &PerfReport, n: &str| {
        r.breakdown
            .primitives
            .iter()
            .find(|p| p.name == n)
            .unwrap_or_else(|| panic!("missing primitive {n}"))
            .count
    };
    assert_eq!(count(&one, "popcount"), count(&seq, "popcount"));
    assert_eq!(count(&one, "im_add32"), count(&seq, "im_add32"));
    assert!(
        count(&one, "xnor_match") < count(&seq, "xnor_match"),
        "batched kernel must share plane loads across grouped requests"
    );
    assert_eq!(count(&one, "xnor_match"), count(&one, "marker_read"));
}

/// Span tracing: disabled by default, and when enabled it records the
/// index build, per-`LFM` spans and the phase passes with monotone
/// simulated-cycle timestamps.
#[test]
fn span_tracer_records_alignment_phases() {
    let (reference, reads) = workload(20_000, 8, 73);
    let platform = Platform::new(&reference, PimAlignerConfig::baseline());

    let mut untraced = platform.session();
    let _ = untraced.align_read(&reads[0]);
    assert!(
        untraced.spans().is_empty(),
        "tracing must be off by default"
    );

    let mut session = platform.session();
    session.enable_tracing(4_096);
    for read in &reads {
        let _ = session.align_read(read);
    }
    let spans = session.spans();
    let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
    assert!(names.contains(&"index_build"));
    assert!(names.contains(&"lfm"));
    assert!(names.contains(&"exact_pass"));
    assert!(names.contains(&"locate"));
    for span in &spans {
        assert!(span.end_cycles >= span.start_cycles, "span {span:?}");
    }
    // Each lfm span brackets two LFM invocations plus the interval
    // update: 74 + 74 + 2 = 150 cycles in the common case (the first
    // base's high bound lands on the boundary bucket and is cheaper).
    let lfm_spans: Vec<_> = spans.iter().filter(|s| s.name == "lfm").collect();
    assert!(!lfm_spans.is_empty());
    for span in &lfm_spans {
        assert!(
            (50..=200).contains(&span.cycles()),
            "implausible lfm span: {} cycles",
            span.cycles()
        );
    }
    assert!(
        lfm_spans.iter().any(|s| s.cycles() == 150),
        "common-case lfm span cost changed"
    );
    // The traced report exposes the same spans.
    let report = session.report();
    assert_eq!(report.breakdown.spans.len(), spans.len());
}

/// The ring keeps only the newest `capacity` spans and counts the rest
/// as dropped.
#[test]
fn span_ring_drops_oldest_beyond_capacity() {
    let (reference, reads) = workload(20_000, 8, 74);
    let platform = Platform::new(&reference, PimAlignerConfig::baseline());
    let mut session = platform.session();
    session.enable_tracing(16);
    for read in &reads {
        let _ = session.align_read(read);
    }
    let report = session.report();
    assert_eq!(report.breakdown.spans.len(), 16);
    assert!(report.breakdown.spans_dropped > 0);
}

/// Recovery-ladder attribution: under an active fault campaign with
/// recovery on, retry/escalation `LFM`s land in their own buckets and
/// the total still covers every call.
#[test]
fn recovery_lfms_attributed_to_their_rungs() {
    use pim_aligner_suite::mram::faults::{FaultCampaign, FaultModel};
    use pim_aligner_suite::pim_aligner::RecoveryPolicy;

    let (reference, reads) = workload(30_000, 24, 75);
    let campaign = FaultCampaign::seeded(76)
        .with_model(FaultModel::with_probabilities(5e-3, 0.0))
        .with_transient_row_rate(0.01);
    let config = PimAlignerConfig::baseline()
        .with_fault_campaign(campaign)
        .with_recovery(RecoveryPolicy::standard());
    let platform = Platform::new(&reference, config);
    let mut session = platform.session();
    for read in &reads {
        let _ = session.align_read(read);
    }
    let report = session.report();
    let phase = report.breakdown.lfm_by_phase;
    assert_eq!(phase.total(), report.lfm_calls);
    assert!(
        phase.recovery_retry + phase.recovery_escalate > 0,
        "hostile campaign must trigger recovery rungs: {phase:?}"
    );
}

/// `scaled_to_queries` extrapolates the report but leaves the breakdown
/// at the simulated batch's scale (it describes work that actually ran).
#[test]
fn scaling_leaves_breakdown_unscaled() {
    let (reference, reads) = workload(20_000, 16, 77);
    let platform = Platform::new(&reference, PimAlignerConfig::baseline());
    let mut session = platform.session();
    for read in &reads {
        let _ = session.align_read(read);
    }
    let report = session.report();
    let scaled = report.scaled_to_queries(10_000_000);
    assert_eq!(scaled.breakdown, report.breakdown);
    assert!(scaled.lfm_calls > report.lfm_calls);
}

/// The synthetic-ledger path used by the report unit tests reconciles
/// too — `PerfReport::from_batch` builds the breakdown for any ledger
/// charged through logical ops.
#[test]
fn from_batch_breakdown_reconciles_for_synthetic_ledgers() {
    use pim_aligner_suite::mram::array::ArrayModel;
    use pim_aligner_suite::pimsim::{costs, CycleLedger};

    let model = ArrayModel::default();
    let mut ledger = CycleLedger::new();
    for _ in 0..200 {
        costs::charge_lfm(&model, &mut ledger);
    }
    let report = PerfReport::from_batch(&PimAlignerConfig::baseline(), &ledger, 1, 200);
    assert!(report.breakdown.reconciles());
    assert_eq!(
        report.breakdown.total_busy_cycles,
        200 * costs::lfm_cycles()
    );
}
