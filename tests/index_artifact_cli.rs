//! Integration: the serialised index artifact end to end through the
//! `pimalign` CLI.
//!
//! `pimalign index build` must produce an artifact that `pimalign
//! --index` boots into the *same* platform the FASTA path builds
//! in-process: byte-identical SAM and identical simulated-cycle and
//! fault counters — across 8 worker threads with faults off, and under
//! seeded fault injection on the deterministic sequential stream. A
//! sharded artifact must align to the same SAM as the unsharded
//! platform, and `index inspect` must report the artifact's geometry.

use std::fmt::Write as _;
use std::process::Command;

use bench::json::{self, Value};
use pim_aligner_suite::bioseq::{Base, DnaSeq};
use pim_aligner_suite::readsim::genome;

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("pimalign_artifact_{name}_{}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp file");
    path
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pimalign_artifact_{name}_{}", std::process::id()))
}

fn run_cli(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_pimalign"))
        .args(args)
        .output()
        .expect("run pimalign");
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
        out.status.success(),
    )
}

/// A deterministic 4 kbp reference and a read set covering every
/// alignment arm: exact, mismatched (inexact), reverse-complement and
/// unmappable reads, so shard merging and fault recovery both fire.
fn fixture() -> (DnaSeq, String) {
    let reference = genome::uniform(4_000, 0xf1e1d);
    let mut fastq = String::new();
    for i in 0..40 {
        let start = (i * 97) % (reference.len() - 64);
        let mut read = reference.subseq(start..start + 64);
        match i % 4 {
            1 => {
                // One substitution mid-read: the inexact stage must place it.
                let mut mutated = read.as_slice().to_vec();
                mutated[32] = match mutated[32] {
                    Base::A => Base::C,
                    Base::C => Base::G,
                    Base::G => Base::T,
                    Base::T => Base::A,
                };
                read = DnaSeq::from_bases(mutated);
            }
            2 => read = read.reverse_complement(),
            3 if i % 8 == 7 => {
                // Unmappable: alternating dinucleotide absent from the
                // uniform genome at this length is unlikely; force junk.
                read = "GC".repeat(32).parse().expect("junk read");
            }
            _ => {}
        }
        writeln!(fastq, "@read{i}\n{read}\n+\n{}", "I".repeat(64)).expect("format fastq");
    }
    (reference, fastq)
}

fn counter(doc: &Value, path: &str) -> u64 {
    doc.get(path)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing or non-integer {path}"))
}

/// The simulated (machine-independent) counters that must not move
/// between a cold in-process build and a warm artifact boot.
const SIMULATED_COUNTERS: &[&str] = &[
    "report.queries",
    "report.lfm_calls",
    "breakdown.total_busy_cycles",
    "breakdown.primitive_cycles_total",
    "breakdown.subarray_activations",
    "breakdown.index_build_cycles",
    "breakdown.lfm_by_phase.exact",
    "breakdown.lfm_by_phase.inexact",
    "breakdown.lfm_by_phase.recovery_retry",
    "breakdown.lfm_by_phase.recovery_escalate",
    "faults.xnor_bit_flips",
    "faults.transient_row_faults",
    "faults.retries",
    "faults.escalations",
    "faults.host_fallbacks",
    "faults.unrecoverable",
    "faults.verifications",
    "faults.verify_failures",
];

/// Runs the cold (FASTA) and warm (`--index`) paths with identical
/// engine flags and asserts byte-identical SAM plus identical simulated
/// counters; returns the two metrics documents for extra checks.
fn assert_cold_warm_identical(
    ref_fa: &std::path::Path,
    reads_fq: &std::path::Path,
    artifact: &std::path::Path,
    engine_flags: &[&str],
    label: &str,
) -> (Value, Value) {
    let cold_metrics = temp_path(&format!("{label}_cold.json"));
    let warm_metrics = temp_path(&format!("{label}_warm.json"));

    let mut cold_args = vec![ref_fa.to_str().unwrap(), reads_fq.to_str().unwrap()];
    cold_args.extend_from_slice(engine_flags);
    cold_args.extend_from_slice(&["--metrics", cold_metrics.to_str().unwrap()]);
    let (cold_sam, stderr, ok) = run_cli(&cold_args);
    assert!(ok, "{label}: cold run failed: {stderr}");

    let mut warm_args = vec![
        "--index",
        artifact.to_str().unwrap(),
        reads_fq.to_str().unwrap(),
    ];
    warm_args.extend_from_slice(engine_flags);
    warm_args.extend_from_slice(&["--metrics", warm_metrics.to_str().unwrap()]);
    let (warm_sam, stderr, ok) = run_cli(&warm_args);
    assert!(ok, "{label}: warm run failed: {stderr}");
    assert!(
        stderr.contains("index: loaded"),
        "{label}: warm run must announce the loaded artifact: {stderr}"
    );

    assert_eq!(
        cold_sam, warm_sam,
        "{label}: warm-boot SAM diverged from the in-process build"
    );

    let cold = json::parse(&std::fs::read_to_string(&cold_metrics).expect("cold metrics"))
        .expect("cold metrics JSON");
    let warm = json::parse(&std::fs::read_to_string(&warm_metrics).expect("warm metrics"))
        .expect("warm metrics JSON");
    for path in SIMULATED_COUNTERS {
        assert_eq!(
            counter(&cold, path),
            counter(&warm, path),
            "{label}: simulated counter {path} moved across the serialisation boundary"
        );
    }
    std::fs::remove_file(cold_metrics).ok();
    std::fs::remove_file(warm_metrics).ok();
    (cold, warm)
}

#[test]
fn warm_boot_replays_the_cold_build_bit_identically() {
    let (reference, fastq) = fixture();
    let ref_fa = write_temp("warm_ref.fa", &format!(">chrA\n{reference}\n"));
    let reads_fq = write_temp("warm_reads.fq", &fastq);
    let artifact = temp_path("warm.pimx");

    let (_, stderr, ok) = run_cli(&[
        "index",
        "build",
        ref_fa.to_str().unwrap(),
        artifact.to_str().unwrap(),
    ]);
    assert!(ok, "index build failed: {stderr}");

    // Faults off, 8 threads: dynamic partitioning must not cost a byte
    // (the engine's thread-invariance guarantee, here asserted across
    // the serialisation boundary).
    let (cold, warm) =
        assert_cold_warm_identical(&ref_fa, &reads_fq, &artifact, &["--threads", "8"], "clean8");

    // Provenance: only the warm run reports a loaded index; geometry and
    // footprint agree with the cold build.
    assert_eq!(
        cold.get("index.loaded").and_then(Value::as_bool),
        Some(false)
    );
    assert_eq!(
        warm.get("index.loaded").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(counter(&warm, "index.shards"), 1);
    assert_eq!(
        counter(&cold, "index.actual_bytes"),
        counter(&warm, "index.actual_bytes")
    );

    // Seeded faults, single worker: worker 0 replays the sequential
    // fault stream, so the faulted run must also replay bit-identically
    // from the artifact. (Faulted multi-thread runs are run-to-run
    // nondeterministic by design — dynamic partitioning changes which
    // decorrelated worker stream each read sees — so the faulted leg of
    // this guarantee is exactly the sequential one.)
    let (cold, _) = assert_cold_warm_identical(
        &ref_fa,
        &reads_fq,
        &artifact,
        &[
            "--threads",
            "1",
            "--fault-seed",
            "42",
            "--fault-xnor",
            "0.002",
            "--fault-transient",
            "0.001",
        ],
        "faulted1",
    );
    assert!(
        counter(&cold, "faults.xnor_bit_flips") > 0,
        "faults must fire"
    );

    for p in [ref_fa, reads_fq, artifact] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn sharded_artifact_aligns_to_the_unsharded_sam() {
    let (reference, fastq) = fixture();
    let ref_fa = write_temp("shard_ref.fa", &format!(">chrA\n{reference}\n"));
    let reads_fq = write_temp("shard_reads.fq", &fastq);
    let artifact = temp_path("shard.pimx");
    let metrics = temp_path("shard.json");

    let (flat_sam, stderr, ok) = run_cli(&[
        ref_fa.to_str().unwrap(),
        reads_fq.to_str().unwrap(),
        "--threads",
        "4",
    ]);
    assert!(ok, "unsharded run failed: {stderr}");

    let (_, stderr, ok) = run_cli(&[
        "index",
        "build",
        ref_fa.to_str().unwrap(),
        artifact.to_str().unwrap(),
        "--shard-window",
        "1000",
        "--shard-overlap",
        "128",
    ]);
    assert!(ok, "sharded index build failed: {stderr}");

    let (sharded_sam, stderr, ok) = run_cli(&[
        "--index",
        artifact.to_str().unwrap(),
        reads_fq.to_str().unwrap(),
        "--threads",
        "4",
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(ok, "sharded run failed: {stderr}");

    assert_eq!(
        flat_sam, sharded_sam,
        "sharded SAM diverged from the unsharded platform"
    );
    let doc =
        json::parse(&std::fs::read_to_string(&metrics).expect("metrics")).expect("metrics JSON");
    assert_eq!(counter(&doc, "index.shards"), 4);
    assert_eq!(counter(&doc, "index.shard_window"), 1000);
    assert_eq!(counter(&doc, "index.shard_overlap"), 128);

    for p in [ref_fa, reads_fq, artifact, metrics] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn inspect_reports_geometry_and_budget_picks_a_sampled_rate() {
    let (reference, _) = fixture();
    let ref_fa = write_temp("inspect_ref.fa", &format!(">chrA\n{reference}\n"));
    let artifact = temp_path("inspect.pimx");

    // A budget below the full-SA footprint must force a sampled rate.
    let (_, stderr, ok) = run_cli(&[
        "index",
        "build",
        ref_fa.to_str().unwrap(),
        artifact.to_str().unwrap(),
        "--index-memory-budget",
        "12K",
    ]);
    assert!(ok, "budgeted index build failed: {stderr}");

    let (stdout, stderr, ok) = run_cli(&["index", "inspect", artifact.to_str().unwrap()]);
    assert!(ok, "inspect failed: {stderr}");
    let field = |name: &str| -> String {
        stdout
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name}: ")))
            .unwrap_or_else(|| panic!("inspect output missing {name}:\n{stdout}"))
            .to_owned()
    };
    assert_eq!(field("bases"), "4000");
    assert_eq!(field("shards"), "1");
    let rate: u32 = field("sa_rate").parse().expect("numeric sa_rate");
    assert!(
        rate > 1,
        "12K budget must force SA sampling, got rate {rate}"
    );
    let bytes: u64 = field("index_bytes").parse().expect("numeric index_bytes");
    assert!(bytes <= 12 * 1024, "budgeted artifact overshot: {bytes}");
    assert_eq!(field("checksum"), "ok");

    // Corruption must be caught by the trailing checksum on load.
    let mut raw = std::fs::read(&artifact).expect("read artifact");
    let mid = raw.len() / 2;
    raw[mid] ^= 0x40;
    std::fs::write(&artifact, &raw).expect("corrupt artifact");
    let (_, stderr, ok) = run_cli(&["index", "inspect", artifact.to_str().unwrap()]);
    assert!(!ok, "inspect must reject a corrupted artifact");
    assert!(
        stderr.contains("checksum") || stderr.contains("corrupt"),
        "corruption error must name the cause: {stderr}"
    );

    for p in [ref_fa, artifact] {
        std::fs::remove_file(p).ok();
    }
}
