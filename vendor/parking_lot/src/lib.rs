//! Offline vendored stand-in for `parking_lot`: the [`Mutex`] subset this
//! workspace uses, backed by `std::sync::Mutex`. Unlike std, `lock()`
//! does not return a poison `Result` — matching parking_lot's API — so a
//! panicked holder simply passes the data through.

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard, PoisonError};

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

/// RAII guard; derefs to the protected value.
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
