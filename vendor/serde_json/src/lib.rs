//! Offline vendored stand-in for `serde_json`. The workspace declares the
//! dependency for future report export but does not call it yet; this
//! stub only keeps the manifest resolvable offline.
