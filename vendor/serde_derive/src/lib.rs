//! Offline vendored derive macros for the `serde` stand-in: emit empty
//! marker-trait impls for the annotated type. Handles plain (possibly
//! `pub`) structs and enums without generic parameters — the only shapes
//! this workspace derives on.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name: the identifier following the `struct` or
/// `enum` keyword (attributes and visibility tokens are skipped by the
/// keyword scan).
fn type_name(input: &TokenStream) -> String {
    let mut tokens = input.clone().into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = tt {
            let word = ident.to_string();
            if word == "struct" || word == "enum" {
                for tt in tokens.by_ref() {
                    if let TokenTree::Ident(name) = tt {
                        return name.to_string();
                    }
                }
            }
        }
    }
    panic!("serde_derive stub: no struct/enum name found in input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}
