//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        start + unit * (end - start)
    }
}

// `&Strategy` is itself a strategy (lets helpers hand out references).
impl<S: Strategy> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}
