//! Test configuration, RNG, and case errors.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The failure carried out of a property body by the `prop_assert*`
/// macros.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed case with an explanatory message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic generator driving strategies: seeded from the fully
/// qualified test name (override with `PROPTEST_SEED=<u64>` to explore a
/// different stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Builds the generator for one named test.
    pub fn for_test(name: &str) -> TestRng {
        let seed = match std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
        {
            Some(seed) => seed,
            None => fnv1a(name.as_bytes()),
        };
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
