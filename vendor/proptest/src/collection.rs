//! Collection strategies.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> SizeRange {
        SizeRange {
            min: len,
            max_inclusive: len,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of `element` values with lengths drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min + 1) as u64;
        let len = self.size.min + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
