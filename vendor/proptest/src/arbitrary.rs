//! `any::<T>()` support.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniformly distributed value of the full domain.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
