//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! [`strategy::Strategy`] for integer/float ranges with `prop_map`,
//! [`arbitrary::any`], [`collection::vec`], and the `prop_assert*`
//! macros. Failing cases report the case number and the generator seed;
//! shrinking is not implemented (a failing input is printed instead).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop imports for property tests.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, v in proptest::collection::vec(0u8..4, 0..32)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                    let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Skips the current case when the assumption does not hold (counted as a
/// pass by this subset — no case-budget bookkeeping).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}
