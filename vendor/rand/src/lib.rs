//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no network access and no crates.io cache, so
//! this workspace vendors the **API subset it actually uses**: seeded
//! [`rngs::StdRng`], the [`Rng`] extension methods `gen_range`/`gen_bool`,
//! and [`SeedableRng::seed_from_u64`]. The generator is xoshiro256++
//! (Blackman & Vigna), seeded through SplitMix64 exactly as the reference
//! implementation recommends — statistically strong, but the stream is
//! NOT bit-compatible with upstream `rand 0.8`'s StdRng (ChaCha12).
//! Nothing in this repository depends on the upstream stream; all seeded
//! tests assert reproducibility and distributional properties only.

use std::ops::{Range, RangeInclusive};

/// Core uniform-bits source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + unit_f64(rng) * (end - start)
    }
}

/// Uniform value in `[0, bound)` by rejection from the top 64 bits
/// (`bound <= 2^64` always holds for the integer ranges above).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0 && bound <= 1u128 << 64);
    if bound.is_power_of_two() {
        return (rng.next_u64() as u128) & (bound - 1);
    }
    // Rejection sampling over the widened product keeps the draw unbiased.
    let zone = u64::MAX - ((((1u128 << 64) % bound) as u64) % (bound as u64));
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v as u128) % bound;
        }
    }
}

/// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion (Vigna's reference seeding).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..=4u8);
            assert!(w <= 4);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn uniformity_over_small_range() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }
}
