//! Offline vendored stand-in for `crossbeam`: the scoped-thread subset
//! this workspace uses (`crossbeam::scope` + `Scope::spawn`), implemented
//! over `std::thread::scope`. Child panics are surfaced through the
//! returned `Result`, matching crossbeam's contract.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// The scope handle passed to [`scope`]'s closure; spawn scoped workers
/// through it.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped worker. The closure receives a scope reference
    /// (crossbeam signature) that this subset does not use for nested
    /// spawns.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowing spawns are allowed; joins all
/// spawned threads before returning. Returns `Err` with the panic payload
/// if any worker (or `f` itself) panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_workers_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let sums = std::sync::Mutex::new(Vec::new());
        super::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| sums.lock().unwrap().push(chunk.iter().sum::<u64>()));
            }
        })
        .expect("no panics");
        let mut sums = sums.into_inner().unwrap();
        sums.sort_unstable();
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn worker_panic_reported_as_err() {
        let result = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
