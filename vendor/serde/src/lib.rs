//! Offline vendored stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on report/config types
//! so they are wire-ready, but nothing in-tree serializes yet (the
//! container is offline, so the real `serde` cannot be fetched). This
//! stub keeps the trait bounds and derives compiling; swapping the real
//! crate back in is a one-line change in the workspace manifest.

/// Marker form of `serde::Serialize` (no-op: nothing in-tree serializes).
pub trait Serialize {}

/// Marker form of `serde::Deserialize` (no-op).
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
