//! Offline vendored stand-in for `criterion`.
//!
//! Implements the harness subset the bench crate uses —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::bench_function`],
//! benchmark groups with `sample_size`, [`BenchmarkId`] and
//! [`Bencher::iter`] — with a plain wall-clock timer: each benchmark is
//! warmed up once, sampled `sample_size` times, and the median/min/max
//! are printed. No statistical analysis, plotting, or baseline storage.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one parameterised benchmark: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id rendered as the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            id: name.to_owned(),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the
/// routine.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<u128>,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples_ns.push(start.elapsed().as_nanos());
        }
    }
}

fn run_benchmark(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    let mut s = bencher.samples_ns;
    if s.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    s.sort_unstable();
    let fmt = |ns: u128| format!("{:?}", Duration::from_nanos(ns as u64));
    println!(
        "{id:<50} median {:>10}  min {:>10}  max {:>10}  ({} samples)",
        fmt(s[s.len() / 2]),
        fmt(s[0]),
        fmt(s[s.len() - 1]),
        s.len()
    );
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for this group.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    fn qualified(&self, id: &BenchmarkId) -> String {
        format!("{}/{}", self.name, id.id)
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&self.qualified(&id), self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&self.qualified(&id), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (formatting no-op in this subset).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
