#!/usr/bin/env sh
# Offline CI gate: format, build, test, lint, bench-regression. No
# network access required — all dependencies are vendored (see vendor/).
#
#   ./ci.sh            full gate (debug + release stages)
#   ./ci.sh debug      fmt check, debug tests, clippy
#   ./ci.sh release    release build, bench smokes, benchdiff gates
#                      (parallel, kernel, metrics schema, trace, host,
#                      serve: pimserve + loadgen over loopback, and the
#                      index artifact: build/--index rerun + indexbench)
#   ./ci.sh quick      back-compat alias for `debug`
#
# The two stages mirror the GitHub workflow's jobs
# (.github/workflows/ci.yml) so a local `./ci.sh` run reproduces CI
# exactly.

set -eu

cd "$(dirname "$0")"

MODE="${1:-all}"
if [ "$MODE" = "quick" ]; then
    MODE=debug
fi

if [ "$MODE" = "all" ] || [ "$MODE" = "debug" ]; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check

    echo "==> cargo test (debug)"
    cargo test -q --workspace

    # The two named perf lints guard the packed LFM hot path: a
    # reintroduced per-call collect or byte-count loop fails the build.
    echo "==> cargo clippy"
    cargo clippy --workspace --all-targets -- -D warnings \
        -D clippy::needless_collect -D clippy::naive_bytecount
fi

if [ "$MODE" = "all" ] || [ "$MODE" = "release" ]; then
    echo "==> cargo build --release"
    cargo build --release --workspace

    # The smoke report is kept under target/ci/ (uploaded as a CI
    # artifact) and fed to the regression gate below.
    echo "==> parbench smoke (shared-platform parallel engine)"
    mkdir -p target/ci
    cargo run -q --release -p bench --bin parbench -- \
        --quick --out target/ci/BENCH_parallel_smoke.json

    # Gate: the quick run must stay within tolerance of the committed
    # quick-mode baseline. The reads/s floor (0.25x) is a broad tripwire
    # across machine speeds; the index-sharing speedup floor (4x, ~11x
    # measured at baseline) is a same-machine ratio and therefore the
    # strict check. The 8-vs-1 scaling floor (3x) is core-aware: benchdiff
    # caps it by the host's core count, so single-core CI machines only
    # assert non-degradation — see EXPERIMENTS.md for the refresh recipe.
    echo "==> benchdiff regression gate (parallel)"
    cargo run -q --release -p bench --bin benchdiff -- \
        target/ci/BENCH_parallel_smoke.json BENCH_parallel_quick.json \
        --min-ratio 0.25 --min-speedup 4.0 --min-scaling 3.0

    # Packed-kernel gate: the bit-plane LFM kernel must hold its >= 5x
    # advantage over the boolean reference implementation (same-machine
    # ratio), with a broad Mlfm/s tripwire against the committed baseline.
    echo "==> kernelbench smoke (packed LFM kernel)"
    cargo run -q --release -p bench --bin kernelbench -- \
        --quick --out target/ci/BENCH_kernel_smoke.json

    echo "==> benchdiff regression gate (kernel)"
    cargo run -q --release -p bench --bin benchdiff -- \
        target/ci/BENCH_kernel_smoke.json BENCH_kernel.json \
        --kind kernel --min-ratio 0.25 --min-speedup 5.0

    # Metrics-schema gate: a quick perfdump must carry the committed
    # baseline's schema (host wall-clock fields ignored) and satisfy the
    # simulated-cycle invariants (reconciliation, phase coverage, the
    # heatmap <= activations bound).
    echo "==> perfdump smoke + benchdiff gate (metrics schema)"
    cargo run -q --release -p bench --bin perfdump -- \
        --quick --out target/ci/BENCH_metrics_smoke.json
    cargo run -q --release -p bench --bin benchdiff -- \
        target/ci/BENCH_metrics_smoke.json BENCH_metrics.json --kind metrics

    # Host-telemetry gate: pimalign must emit a loadable Chrome trace
    # naming every worker track, and a quick hostbench run must match the
    # committed report's structure while staying self-consistent.
    echo "==> pimalign trace smoke + benchdiff gate (trace)"
    printf '>chrT\nTGCTAGCATGAACCTTGGAACGTACGTTAGCATCGATCGGATTACAGATTACAGGG\n' \
        > target/ci/smoke_ref.fa
    printf '@exact\nGATTACAGATTACA\n+\nIIIIIIIIIIIIII\n@revcomp\nCGTTCCAAGGTTCA\n+\nIIIIIIIIIIIIII\n' \
        > target/ci/smoke_reads.fq
    cargo run -q --release --bin pimalign -- \
        target/ci/smoke_ref.fa target/ci/smoke_reads.fq --threads 2 \
        --metrics-out target/ci/smoke_metrics.json \
        --trace-out target/ci/smoke_trace.json > target/ci/smoke.sam
    cargo run -q --release -p bench --bin benchdiff -- \
        target/ci/smoke_trace.json --kind trace --workers 2

    # Index-artifact gate, part 1: serialise the smoke reference and
    # rerun the same reads through `--index` — the warm boot must
    # reproduce the FASTA run's SAM byte-for-byte, and `index inspect`
    # must accept the artifact (checksum + geometry).
    echo "==> pimalign index build + --index rerun (artifact round-trip)"
    cargo run -q --release --bin pimalign -- \
        index build target/ci/smoke_ref.fa target/ci/smoke.pimx
    cargo run -q --release --bin pimalign -- index inspect target/ci/smoke.pimx \
        > target/ci/smoke_inspect.txt
    cargo run -q --release --bin pimalign -- \
        --index target/ci/smoke.pimx target/ci/smoke_reads.fq --threads 2 \
        > target/ci/smoke_index.sam
    cmp target/ci/smoke.sam target/ci/smoke_index.sam

    echo "==> hostbench smoke + benchdiff gate (host telemetry)"
    cargo run -q --release -p bench --bin hostbench -- \
        --quick --out target/ci/BENCH_host_smoke.json
    cargo run -q --release -p bench --bin benchdiff -- \
        target/ci/BENCH_host_smoke.json BENCH_host.json --kind host

    # Serve gate: a real pimserve process over loopback must come up,
    # survive a quick loadgen saturation sweep (open-loop arrivals,
    # retry-with-backoff clients, an overload phase past the knee), and
    # exit 0 after a protocol-initiated graceful drain with every
    # accepted request answered. benchdiff then checks the structural
    # invariants against the committed BENCH_serve.json.
    echo "==> pimserve smoke + benchdiff gate (serve)"
    cargo run -q --release -p bench --bin loadgen -- \
        --make-ref target/ci/serve_ref.fa --quick
    rm -f target/ci/serve_port.txt
    cargo run -q --release --bin pimserve -- target/ci/serve_ref.fa \
        --port-file target/ci/serve_port.txt --queue-depth 64 \
        --metrics-out target/ci/serve_metrics.json 2> target/ci/serve.log &
    SERVE_PID=$!
    for _ in $(seq 1 100); do
        [ -f target/ci/serve_port.txt ] && break
        sleep 0.1
    done
    if [ ! -f target/ci/serve_port.txt ]; then
        echo "ci: pimserve never wrote its port file" >&2
        cat target/ci/serve.log >&2
        exit 1
    fi
    cargo run -q --release -p bench --bin loadgen -- \
        --addr "$(cat target/ci/serve_port.txt)" --quick --drain \
        --out target/ci/BENCH_serve_smoke.json
    # The drain must end the process with exit 0 (set -e trips otherwise).
    wait "$SERVE_PID"
    cargo run -q --release -p bench --bin benchdiff -- \
        target/ci/BENCH_serve_smoke.json BENCH_serve.json --kind serve

    # Index-artifact gate, part 2: pimserve must boot warm from a
    # serialised artifact and survive the same loadgen drain cycle.
    echo "==> pimserve --index boot + loadgen drain (artifact warm start)"
    cargo run -q --release --bin pimalign -- \
        index build target/ci/serve_ref.fa target/ci/serve.pimx
    rm -f target/ci/serve_port.txt
    cargo run -q --release --bin pimserve -- --index target/ci/serve.pimx \
        --port-file target/ci/serve_port.txt --queue-depth 64 \
        2> target/ci/serve_index.log &
    SERVE_PID=$!
    for _ in $(seq 1 100); do
        [ -f target/ci/serve_port.txt ] && break
        sleep 0.1
    done
    if [ ! -f target/ci/serve_port.txt ]; then
        echo "ci: pimserve --index never wrote its port file" >&2
        cat target/ci/serve_index.log >&2
        exit 1
    fi
    cargo run -q --release -p bench --bin loadgen -- \
        --addr "$(cat target/ci/serve_port.txt)" --quick --drain \
        --out target/ci/BENCH_serve_index_smoke.json
    wait "$SERVE_PID"

    # Index-artifact gate, part 3: the indexbench smoke must hold the
    # load-vs-rebuild speedup (>= 5x at the largest swept genome, a
    # same-machine ratio), sharded-vs-unsharded SAM byte-identity, the
    # size-model reconciliation, and the bytes/bp tripwire against the
    # committed full-sweep baseline.
    echo "==> indexbench smoke + benchdiff gate (index artifact)"
    cargo run -q --release -p bench --bin indexbench -- \
        --quick --out target/ci/BENCH_index_smoke.json
    cargo run -q --release -p bench --bin benchdiff -- \
        target/ci/BENCH_index_smoke.json BENCH_index.json --kind index

    echo "ci: bench smoke reports kept under target/ci/"
fi

echo "ci: all green ($MODE)"
