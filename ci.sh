#!/usr/bin/env sh
# Offline CI gate: build, test, lint. No network access required — all
# dependencies are vendored (see vendor/).
#
#   ./ci.sh          full gate
#   ./ci.sh quick    skip the release build (debug test + clippy only)

set -eu

cd "$(dirname "$0")"

if [ "${1:-}" != "quick" ]; then
    echo "==> cargo build --release"
    cargo build --release --workspace
fi

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> parbench smoke (shared-platform parallel engine)"
cargo run -q --release -p bench --bin parbench -- --quick --out /tmp/BENCH_parallel_smoke.json
rm -f /tmp/BENCH_parallel_smoke.json

echo "ci: all green"
