#!/usr/bin/env sh
# Offline CI gate: format, build, test, lint, bench-regression. No
# network access required — all dependencies are vendored (see vendor/).
#
#   ./ci.sh            full gate (debug + release stages)
#   ./ci.sh debug      fmt check, debug tests, clippy
#   ./ci.sh release    release build, parbench smoke, benchdiff gate
#   ./ci.sh quick      back-compat alias for `debug`
#
# The two stages mirror the GitHub workflow's jobs
# (.github/workflows/ci.yml) so a local `./ci.sh` run reproduces CI
# exactly.

set -eu

cd "$(dirname "$0")"

MODE="${1:-all}"
if [ "$MODE" = "quick" ]; then
    MODE=debug
fi

if [ "$MODE" = "all" ] || [ "$MODE" = "debug" ]; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check

    echo "==> cargo test (debug)"
    cargo test -q --workspace

    echo "==> cargo clippy"
    cargo clippy --workspace --all-targets -- -D warnings
fi

if [ "$MODE" = "all" ] || [ "$MODE" = "release" ]; then
    echo "==> cargo build --release"
    cargo build --release --workspace

    # The smoke report is kept under target/ci/ (uploaded as a CI
    # artifact) and fed to the regression gate below.
    echo "==> parbench smoke (shared-platform parallel engine)"
    mkdir -p target/ci
    cargo run -q --release -p bench --bin parbench -- \
        --quick --out target/ci/BENCH_parallel_smoke.json

    # Gate: the quick run must stay within tolerance of the committed
    # quick-mode baseline. The reads/s floor (0.25x) is a broad tripwire
    # across machine speeds; the index-sharing speedup floor (4x, ~11x
    # measured at baseline) is a same-machine ratio and therefore the
    # strict check — see EXPERIMENTS.md for the baseline-refresh recipe.
    echo "==> benchdiff regression gate"
    cargo run -q --release -p bench --bin benchdiff -- \
        target/ci/BENCH_parallel_smoke.json BENCH_parallel_quick.json \
        --min-ratio 0.25 --min-speedup 4.0

    echo "ci: bench smoke report kept at target/ci/BENCH_parallel_smoke.json"
fi

echo "ci: all green ($MODE)"
