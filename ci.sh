#!/usr/bin/env sh
# Offline CI gate: format, build, test, lint, bench-regression. No
# network access required — all dependencies are vendored (see vendor/).
#
#   ./ci.sh            full gate (debug + release stages)
#   ./ci.sh debug      fmt check, debug tests, clippy
#   ./ci.sh release    release build, bench smokes, benchdiff gates
#                      (parallel, kernel, metrics schema, trace, host,
#                      serve: pimserve + loadgen over loopback, obs:
#                      mid-load Stats scrapes + Prometheus exposition,
#                      and the index artifact: build/--index rerun +
#                      indexbench)
#   ./ci.sh gates      re-run only the benchdiff gates against the
#                      artifacts a prior `./ci.sh release` left under
#                      target/ci/ (seconds, not minutes; every gate
#                      also rewrites its target/ci/gate_<kind>.json)
#   ./ci.sh quick      back-compat alias for `debug`
#
# Each step's wall-clock time is printed in a summary at exit (also on
# failure), so slow stages are visible without re-running.
#
# The two stages mirror the GitHub workflow's jobs
# (.github/workflows/ci.yml) so a local `./ci.sh` run reproduces CI
# exactly.

set -eu

cd "$(dirname "$0")"

MODE="${1:-all}"
if [ "$MODE" = "quick" ]; then
    MODE=debug
fi
case "$MODE" in
    all|debug|release|gates) ;;
    *)
        echo "ci: unknown mode '$MODE' (all|debug|release|gates|quick)" >&2
        exit 2
        ;;
esac

# --- step timing + serve-process cleanup ------------------------------

# A pimserve booted by run_serve_cycle; killed by the EXIT trap if a
# failure (or ^C) leaves it running, so no orphaned server survives a
# broken CI run.
SERVE_PID=""

STEP_NAME=""
STEP_START=0
TIMING_LOG=""

step_end() {
    if [ -n "$STEP_NAME" ]; then
        _dur=$(( $(date +%s) - STEP_START ))
        TIMING_LOG="${TIMING_LOG}ci:   ${_dur}s  ${STEP_NAME}\n"
        STEP_NAME=""
    fi
}

step() {
    step_end
    STEP_NAME="$1"
    STEP_START=$(date +%s)
    echo "==> $1"
}

cleanup() {
    _status=$?
    if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "ci: killing orphaned pimserve (pid $SERVE_PID)" >&2
        kill "$SERVE_PID" 2>/dev/null || true
        wait "$SERVE_PID" 2>/dev/null || true
    fi
    step_end
    if [ -n "$TIMING_LOG" ]; then
        echo "ci: step timing ($MODE):"
        printf '%b' "$TIMING_LOG"
    fi
    exit "$_status"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

# Boots pimserve ($3...: its leading arguments), waits for the port
# file, runs a quick loadgen saturation sweep with a protocol-initiated
# graceful drain against it, and requires the server to exit 0.
#   $1  server stderr log file
#   $2  loadgen report output file
run_serve_cycle() {
    _log="$1"
    _out="$2"
    shift 2
    rm -f target/ci/serve_port.txt
    cargo run -q --release --bin pimserve -- "$@" \
        --port-file target/ci/serve_port.txt --queue-depth 64 \
        2> "$_log" &
    SERVE_PID=$!
    for _ in $(seq 1 100); do
        [ -f target/ci/serve_port.txt ] && break
        sleep 0.1
    done
    if [ ! -f target/ci/serve_port.txt ]; then
        echo "ci: pimserve never wrote its port file (log: $_log)" >&2
        cat "$_log" >&2
        exit 1
    fi
    # --prom-out captures the Prometheus exposition scraped over the
    # wire just before drain; loadgen also polls the Stats verb mid-
    # overload, so the report's obs block proves the exposition answers
    # under load.
    cargo run -q --release -p bench --bin loadgen -- \
        --addr "$(cat target/ci/serve_port.txt)" --quick --drain \
        --out "$_out" --prom-out "${_out%.json}_prom.txt"
    # The drain must end the process with exit 0 (set -e trips otherwise).
    wait "$SERVE_PID"
    SERVE_PID=""
}

# --- benchdiff gates --------------------------------------------------
# Each gate reads a fresh target/ci/ artifact, compares it against the
# committed baseline, and writes target/ci/gate_<kind>.json with the
# per-check verdicts. Shared between `release` (right after each smoke
# run) and `gates` (against whatever artifacts already exist).

gate_parallel() {
    cargo run -q --release -p bench --bin benchdiff -- \
        target/ci/BENCH_parallel_smoke.json BENCH_parallel_quick.json \
        --min-ratio 0.25 --min-speedup 4.0 --min-scaling 3.0
}

gate_kernel() {
    cargo run -q --release -p bench --bin benchdiff -- \
        target/ci/BENCH_kernel_smoke.json BENCH_kernel.json \
        --kind kernel --min-ratio 0.25 --min-speedup 5.0
}

gate_metrics() {
    cargo run -q --release -p bench --bin benchdiff -- \
        target/ci/BENCH_metrics_smoke.json BENCH_metrics.json --kind metrics
}

gate_trace() {
    cargo run -q --release -p bench --bin benchdiff -- \
        target/ci/smoke_trace.json --kind trace --workers 2
}

gate_host() {
    cargo run -q --release -p bench --bin benchdiff -- \
        target/ci/BENCH_host_smoke.json BENCH_host.json --kind host
}

gate_serve() {
    cargo run -q --release -p bench --bin benchdiff -- \
        target/ci/BENCH_serve_smoke.json BENCH_serve.json --kind serve
}

gate_index() {
    cargo run -q --release -p bench --bin benchdiff -- \
        target/ci/BENCH_index_smoke.json BENCH_index.json --kind index
}

gate_obs() {
    cargo run -q --release -p bench --bin benchdiff -- \
        target/ci/BENCH_serve_smoke.json target/ci/BENCH_serve_smoke_prom.txt \
        --kind obs
}

if [ "$MODE" = "all" ] || [ "$MODE" = "debug" ]; then
    step "cargo fmt --check"
    cargo fmt --all --check

    step "cargo test (debug)"
    cargo test -q --workspace

    # The two named perf lints guard the packed LFM hot path: a
    # reintroduced per-call collect or byte-count loop fails the build.
    step "cargo clippy"
    cargo clippy --workspace --all-targets -- -D warnings \
        -D clippy::needless_collect -D clippy::naive_bytecount
fi

if [ "$MODE" = "all" ] || [ "$MODE" = "release" ]; then
    step "cargo build --release"
    cargo build --release --workspace

    # The smoke report is kept under target/ci/ (uploaded as a CI
    # artifact) and fed to the regression gate below.
    step "parbench smoke (shared-platform parallel engine)"
    mkdir -p target/ci
    cargo run -q --release -p bench --bin parbench -- \
        --quick --out target/ci/BENCH_parallel_smoke.json

    # Gate: the quick run must stay within tolerance of the committed
    # quick-mode baseline. The reads/s floor (0.25x) is a broad tripwire
    # across machine speeds; the index-sharing speedup floor (4x, ~11x
    # measured at baseline) is a same-machine ratio and therefore the
    # strict check. The 8-vs-1 scaling floor (3x) is core-aware: benchdiff
    # caps it by the host's core count, so single-core CI machines only
    # assert non-degradation — see EXPERIMENTS.md for the refresh recipe.
    step "benchdiff regression gate (parallel)"
    gate_parallel

    # Packed-kernel gate: the bit-plane LFM kernel must hold its >= 5x
    # advantage over the boolean reference implementation (same-machine
    # ratio), with a broad Mlfm/s tripwire against the committed
    # baseline, the interleaved-batch speedup floor (>= 2x at width 8),
    # the Pd = 2 pipeline-overlap makespan check, the SIMD+cache lfm
    # speedup floor (1.2x when an AVX2/SSE2 lane dispatched, else ~0.9
    # non-degradation), and a kernel-cache hit-rate > 0 check on the
    # repeat-dense sweep.
    step "kernelbench smoke (packed LFM kernel)"
    cargo run -q --release -p bench --bin kernelbench -- \
        --quick --out target/ci/BENCH_kernel_smoke.json

    step "benchdiff regression gate (kernel)"
    gate_kernel

    # Metrics-schema gate: a quick perfdump must carry the committed
    # baseline's schema (host wall-clock fields ignored) and satisfy the
    # simulated-cycle invariants (reconciliation, phase coverage, the
    # heatmap <= activations bound).
    step "perfdump smoke + benchdiff gate (metrics schema)"
    cargo run -q --release -p bench --bin perfdump -- \
        --quick --out target/ci/BENCH_metrics_smoke.json
    gate_metrics

    # Host-telemetry gate: pimalign must emit a loadable Chrome trace
    # naming every worker track, and a quick hostbench run must match the
    # committed report's structure while staying self-consistent.
    step "pimalign trace smoke + benchdiff gate (trace)"
    printf '>chrT\nTGCTAGCATGAACCTTGGAACGTACGTTAGCATCGATCGGATTACAGATTACAGGG\n' \
        > target/ci/smoke_ref.fa
    printf '@exact\nGATTACAGATTACA\n+\nIIIIIIIIIIIIII\n@revcomp\nCGTTCCAAGGTTCA\n+\nIIIIIIIIIIIIII\n' \
        > target/ci/smoke_reads.fq
    cargo run -q --release --bin pimalign -- \
        target/ci/smoke_ref.fa target/ci/smoke_reads.fq --threads 2 \
        --metrics-out target/ci/smoke_metrics.json \
        --trace-out target/ci/smoke_trace.json > target/ci/smoke.sam
    gate_trace

    # Index-artifact gate, part 1: serialise the smoke reference and
    # rerun the same reads through `--index` — the warm boot must
    # reproduce the FASTA run's SAM byte-for-byte, and `index inspect`
    # must accept the artifact (checksum + geometry).
    step "pimalign index build + --index rerun (artifact round-trip)"
    cargo run -q --release --bin pimalign -- \
        index build target/ci/smoke_ref.fa target/ci/smoke.pimx
    cargo run -q --release --bin pimalign -- index inspect target/ci/smoke.pimx \
        > target/ci/smoke_inspect.txt
    cargo run -q --release --bin pimalign -- \
        --index target/ci/smoke.pimx target/ci/smoke_reads.fq --threads 2 \
        > target/ci/smoke_index.sam
    cmp target/ci/smoke.sam target/ci/smoke_index.sam

    step "hostbench smoke + benchdiff gate (host telemetry)"
    cargo run -q --release -p bench --bin hostbench -- \
        --quick --out target/ci/BENCH_host_smoke.json
    gate_host

    # Serve gate: a real pimserve process over loopback must come up,
    # survive a quick loadgen saturation sweep (open-loop arrivals,
    # retry-with-backoff clients, an overload phase past the knee), and
    # exit 0 after a protocol-initiated graceful drain with every
    # accepted request answered. benchdiff then checks the structural
    # invariants against the committed BENCH_serve.json.
    step "pimserve smoke + benchdiff gate (serve)"
    cargo run -q --release -p bench --bin loadgen -- \
        --make-ref target/ci/serve_ref.fa --quick
    run_serve_cycle target/ci/serve.log target/ci/BENCH_serve_smoke.json \
        target/ci/serve_ref.fa --metrics-out target/ci/serve_metrics.json
    gate_serve

    # Obs gate: the same serve cycle's live observability plane. The
    # mid-overload Stats scrapes must have landed, every counter must
    # reconcile exactly between the lifetime telemetry and the rolling
    # ring, the 10 s window must show throughput, the watchdog must stay
    # quiet, and the captured Prometheus exposition must be well-formed.
    step "benchdiff regression gate (obs)"
    gate_obs

    # Index-artifact gate, part 2: pimserve must boot warm from a
    # serialised artifact and survive the same loadgen drain cycle.
    step "pimserve --index boot + loadgen drain (artifact warm start)"
    cargo run -q --release --bin pimalign -- \
        index build target/ci/serve_ref.fa target/ci/serve.pimx
    run_serve_cycle target/ci/serve_index.log \
        target/ci/BENCH_serve_index_smoke.json --index target/ci/serve.pimx

    # Index-artifact gate, part 3: the indexbench smoke must hold the
    # load-vs-rebuild speedup (>= 5x at the largest swept genome, a
    # same-machine ratio), sharded-vs-unsharded SAM byte-identity, the
    # size-model reconciliation, and the bytes/bp tripwire against the
    # committed full-sweep baseline.
    step "indexbench smoke + benchdiff gate (index artifact)"
    cargo run -q --release -p bench --bin indexbench -- \
        --quick --out target/ci/BENCH_index_smoke.json
    gate_index

    echo "ci: bench smoke reports kept under target/ci/"
fi

if [ "$MODE" = "gates" ]; then
    for f in BENCH_parallel_smoke.json BENCH_kernel_smoke.json \
        BENCH_metrics_smoke.json smoke_trace.json BENCH_host_smoke.json \
        BENCH_serve_smoke.json BENCH_serve_smoke_prom.txt \
        BENCH_index_smoke.json; do
        if [ ! -f "target/ci/$f" ]; then
            echo "ci: missing target/ci/$f — run ./ci.sh release first" >&2
            exit 1
        fi
    done
    step "benchdiff gate (parallel)"
    gate_parallel
    step "benchdiff gate (kernel)"
    gate_kernel
    step "benchdiff gate (metrics)"
    gate_metrics
    step "benchdiff gate (trace)"
    gate_trace
    step "benchdiff gate (host)"
    gate_host
    step "benchdiff gate (serve)"
    gate_serve
    step "benchdiff gate (obs)"
    gate_obs
    step "benchdiff gate (index)"
    gate_index
fi

echo "ci: all green ($MODE)"
