//! Phred quality scores for sequencing reads.
//!
//! The ART-style read simulator attaches a quality score to every base; the
//! score encodes the per-base error probability `p = 10^(-Q/10)` and is
//! serialised in FASTQ as `Q + 33` ASCII (Sanger offset).

use std::fmt;

/// A Phred-scaled base quality score.
///
/// # Examples
///
/// ```
/// use bioseq::quality::Phred;
///
/// let q30 = Phred::new(30);
/// assert!((q30.error_probability() - 1e-3).abs() < 1e-12);
/// assert_eq!(q30.to_ascii(), b'?');
/// assert_eq!(Phred::from_ascii(b'?').unwrap(), q30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Phred(u8);

impl Phred {
    /// Highest representable score (`'~'` in Sanger FASTQ).
    pub const MAX: Phred = Phred(93);

    /// Creates a score, clamping to [`Phred::MAX`].
    pub fn new(q: u8) -> Self {
        Phred(q.min(93))
    }

    /// Creates the score whose error probability is closest to `p`
    /// (clamped to the representable range).
    pub fn from_error_probability(p: f64) -> Self {
        if p <= 0.0 {
            return Phred::MAX;
        }
        let q = (-10.0 * p.log10()).round();
        Phred::new(q.clamp(0.0, 93.0) as u8)
    }

    /// The raw Phred value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// The error probability `10^(-Q/10)`.
    pub fn error_probability(self) -> f64 {
        10f64.powf(-(self.0 as f64) / 10.0)
    }

    /// Sanger-offset ASCII encoding (`Q + 33`).
    pub fn to_ascii(self) -> u8 {
        self.0 + 33
    }

    /// Parses a Sanger-offset ASCII byte.
    ///
    /// Returns `None` when the byte is outside `'!'..='~'`.
    pub fn from_ascii(byte: u8) -> Option<Self> {
        if (33..=126).contains(&byte) {
            Some(Phred(byte - 33))
        } else {
            None
        }
    }
}

impl fmt::Display for Phred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// A per-read quality string.
///
/// # Examples
///
/// ```
/// use bioseq::quality::{Phred, QualityString};
///
/// let qs: QualityString = vec![Phred::new(30); 4].into();
/// assert_eq!(qs.to_fastq(), "????");
/// assert_eq!(QualityString::from_fastq("????").unwrap(), qs);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QualityString {
    scores: Vec<Phred>,
}

impl QualityString {
    /// Creates an empty quality string.
    pub fn new() -> Self {
        QualityString { scores: Vec::new() }
    }

    /// Number of scores.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Borrow the scores.
    pub fn as_slice(&self) -> &[Phred] {
        &self.scores
    }

    /// Appends a score.
    pub fn push(&mut self, q: Phred) {
        self.scores.push(q);
    }

    /// Serialises to a Sanger-offset FASTQ quality line.
    pub fn to_fastq(&self) -> String {
        self.scores.iter().map(|q| q.to_ascii() as char).collect()
    }

    /// Parses a Sanger-offset FASTQ quality line.
    ///
    /// Returns `None` when any byte is out of range.
    pub fn from_fastq(line: &str) -> Option<Self> {
        line.bytes()
            .map(Phred::from_ascii)
            .collect::<Option<Vec<_>>>()
            .map(|scores| QualityString { scores })
    }

    /// The quality string in reverse base order — the per-base scores of
    /// a reverse-complemented read (SAM stores SEQ and QUAL in reference
    /// orientation for reverse-strand alignments).
    pub fn reversed(&self) -> QualityString {
        QualityString {
            scores: self.scores.iter().rev().copied().collect(),
        }
    }

    /// Mean error probability across the read (0 for an empty string).
    pub fn mean_error_probability(&self) -> f64 {
        if self.scores.is_empty() {
            return 0.0;
        }
        self.scores
            .iter()
            .map(|q| q.error_probability())
            .sum::<f64>()
            / self.scores.len() as f64
    }
}

impl From<Vec<Phred>> for QualityString {
    fn from(scores: Vec<Phred>) -> Self {
        QualityString { scores }
    }
}

impl FromIterator<Phred> for QualityString {
    fn from_iter<I: IntoIterator<Item = Phred>>(iter: I) -> Self {
        QualityString {
            scores: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phred_probability_round_trip() {
        for q in [0u8, 10, 20, 30, 40, 60, 93] {
            let p = Phred::new(q);
            assert_eq!(Phred::from_error_probability(p.error_probability()), p);
        }
    }

    #[test]
    fn phred_clamps_to_max() {
        assert_eq!(Phred::new(200), Phred::MAX);
        assert_eq!(Phred::from_error_probability(0.0), Phred::MAX);
    }

    #[test]
    fn q10_means_ten_percent_error() {
        assert!((Phred::new(10).error_probability() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ascii_round_trip() {
        for q in 0..=93u8 {
            let p = Phred::new(q);
            assert_eq!(Phred::from_ascii(p.to_ascii()), Some(p));
        }
        assert_eq!(Phred::from_ascii(b' '), None);
        assert_eq!(Phred::from_ascii(127), None);
    }

    #[test]
    fn quality_string_fastq_round_trip() {
        let qs: QualityString = (0..40).map(Phred::new).collect();
        assert_eq!(QualityString::from_fastq(&qs.to_fastq()), Some(qs));
    }

    #[test]
    fn reversed_flips_base_order() {
        let qs: QualityString = vec![Phred::new(10), Phred::new(20), Phred::new(30)].into();
        assert_eq!(
            qs.reversed().to_fastq(),
            qs.to_fastq().chars().rev().collect::<String>()
        );
        assert_eq!(qs.reversed().reversed(), qs);
    }

    #[test]
    fn mean_error_probability() {
        let qs: QualityString = vec![Phred::new(10), Phred::new(20)].into();
        let expected = (0.1 + 0.01) / 2.0;
        assert!((qs.mean_error_probability() - expected).abs() < 1e-12);
        assert_eq!(QualityString::new().mean_error_probability(), 0.0);
    }
}
