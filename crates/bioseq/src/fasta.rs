//! Minimal FASTA reading and writing.
//!
//! Supports the subset of FASTA used by the workspace: `>`-headed records
//! whose sequences contain only `A/C/G/T` (case-insensitive), possibly
//! wrapped over multiple lines.
//!
//! # Examples
//!
//! ```
//! use bioseq::fasta;
//!
//! # fn main() -> Result<(), bioseq::ParseSeqError> {
//! let text = ">chr1 toy\nTGCTA\n>chr2\nACGT\nACGT\n";
//! let records = fasta::parse(text)?;
//! assert_eq!(records.len(), 2);
//! assert_eq!(records[0].id(), "chr1");
//! assert_eq!(records[1].seq().to_string(), "ACGTACGT");
//!
//! let round_trip = fasta::to_string(&records);
//! assert_eq!(fasta::parse(&round_trip)?, records);
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;

use crate::{DnaSeq, ParseSeqError};

/// One FASTA record: an identifier, an optional description, and a sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    id: String,
    description: Option<String>,
    seq: DnaSeq,
}

impl Record {
    /// Creates a record from parts. The `id` must not contain whitespace.
    ///
    /// # Panics
    ///
    /// Panics if `id` contains whitespace (it would not survive a
    /// write/parse round trip).
    pub fn new(id: impl Into<String>, description: Option<String>, seq: DnaSeq) -> Self {
        let id = id.into();
        assert!(
            !id.chars().any(char::is_whitespace),
            "FASTA record id must not contain whitespace"
        );
        Record {
            id,
            description,
            seq,
        }
    }

    /// The record identifier (first whitespace-delimited token of the
    /// header).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The rest of the header line, if any.
    pub fn description(&self) -> Option<&str> {
        self.description.as_deref()
    }

    /// The sequence.
    pub fn seq(&self) -> &DnaSeq {
        &self.seq
    }

    /// Consumes the record, returning its sequence.
    pub fn into_seq(self) -> DnaSeq {
        self.seq
    }
}

/// Parses a FASTA-formatted string into records.
///
/// # Errors
///
/// Returns [`ParseSeqError`] when the text does not start with a `>` header,
/// a record has an empty header, or a sequence line contains a non-ACGT
/// character.
pub fn parse(text: &str) -> Result<Vec<Record>, ParseSeqError> {
    let mut records = Vec::new();
    let mut header: Option<(String, Option<String>)> = None;
    let mut seq = DnaSeq::new();

    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('>') {
            if let Some((id, desc)) = header.take() {
                records.push(Record {
                    id,
                    description: desc,
                    seq: std::mem::take(&mut seq),
                });
            }
            let mut parts = rest.splitn(2, char::is_whitespace);
            let id = parts
                .next()
                .filter(|s| !s.is_empty())
                .ok_or_else(|| ParseSeqError::format("empty FASTA header"))?;
            let desc = parts
                .next()
                .map(|s| s.trim().to_owned())
                .filter(|s| !s.is_empty());
            header = Some((id.to_owned(), desc));
        } else {
            if header.is_none() {
                return Err(ParseSeqError::format(
                    "sequence data before the first '>' header",
                ));
            }
            let chunk: DnaSeq = line.parse()?;
            seq.extend(chunk);
        }
    }
    if let Some((id, desc)) = header {
        records.push(Record {
            id,
            description: desc,
            seq,
        });
    }
    Ok(records)
}

/// Serialises records to FASTA text, wrapping sequence lines at 70 columns.
pub fn to_string(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        match &r.description {
            Some(d) => writeln!(out, ">{} {}", r.id, d).expect("write to String"),
            None => writeln!(out, ">{}", r.id).expect("write to String"),
        }
        let s = r.seq.to_string();
        for chunk in s.as_bytes().chunks(70) {
            out.push_str(std::str::from_utf8(chunk).expect("ASCII"));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_single_record() {
        let recs = parse(">ref example genome\nTGCTA\n").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].id(), "ref");
        assert_eq!(recs[0].description(), Some("example genome"));
        assert_eq!(recs[0].seq().to_string(), "TGCTA");
    }

    #[test]
    fn parse_multiline_sequence() {
        let recs = parse(">r\nACGT\nTTTT\nGG\n").unwrap();
        assert_eq!(recs[0].seq().to_string(), "ACGTTTTTGG");
    }

    #[test]
    fn parse_rejects_leading_sequence() {
        assert!(parse("ACGT\n>r\nACGT\n").is_err());
    }

    #[test]
    fn parse_rejects_bad_base() {
        assert!(parse(">r\nACGN\n").is_err());
    }

    #[test]
    fn parse_rejects_empty_header() {
        assert!(parse(">\nACGT\n").is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let recs = parse("\n>r\n\nACGT\n\n").unwrap();
        assert_eq!(recs[0].seq().to_string(), "ACGT");
    }

    #[test]
    fn write_parse_round_trip_with_wrapping() {
        let long: DnaSeq = "ACGT".repeat(50).parse().unwrap();
        let recs = vec![
            Record::new("a", Some("first".into()), long),
            Record::new("b", None, "TTT".parse().unwrap()),
        ];
        let text = to_string(&recs);
        assert!(text.lines().all(|l| l.len() <= 71));
        assert_eq!(parse(&text).unwrap(), recs);
    }

    #[test]
    #[should_panic(expected = "whitespace")]
    fn record_id_rejects_whitespace() {
        let _ = Record::new("bad id", None, DnaSeq::new());
    }
}
