//! DNA sequence substrate for the PIM-Aligner reproduction.
//!
//! This crate provides the biological-sequence building blocks every other
//! crate in the workspace builds on:
//!
//! * [`Base`] — the four-letter DNA alphabet with the paper's 2-bit binary
//!   encoding (Fig. 6a: `T = 00`, `G = 01`, `A = 10`, `C = 11`) and the
//!   lexicographic rank (`A < C < G < T`) used by the FM-index.
//! * [`DnaSeq`] — an owned, unpacked sequence of bases with reverse
//!   complement, slicing and parsing.
//! * [`PackedSeq`] — a 2-bit-packed sequence, the exact in-memory layout the
//!   PIM platform stores in its BWT zone (128 bases per 256-bit word line).
//! * [`fasta`] / [`fastq`] — minimal readers and writers for the two common
//!   sequence interchange formats.
//! * [`kmer`] — k-mer iteration with canonical form.
//! * [`quality`] — Phred quality scores for simulated reads.
//!
//! # Examples
//!
//! ```
//! use bioseq::{Base, DnaSeq};
//!
//! # fn main() -> Result<(), bioseq::ParseSeqError> {
//! let seq: DnaSeq = "TGCTA".parse()?;
//! assert_eq!(seq.len(), 5);
//! assert_eq!(seq.reverse_complement().to_string(), "TAGCA");
//! assert_eq!(seq[0], Base::T);
//! # Ok(())
//! # }
//! ```

mod base;
mod error;
mod packed;
mod seq;

pub mod fasta;
pub mod fastq;
pub mod kmer;
pub mod quality;

pub use base::{Base, Symbol};
pub use error::ParseSeqError;
pub use packed::PackedSeq;
pub use seq::DnaSeq;
