//! K-mer iteration over DNA sequences.
//!
//! K-mers are used by the repeat-rich genome generator (seeding repeats) and
//! by the seed-and-extend extension aligner.

use crate::{Base, DnaSeq};

/// A fixed-length window (k ≤ 32) packed into a `u64` two bits per base,
/// using the lexicographic rank so that the numeric order of packed k-mers
/// equals their lexicographic order.
///
/// # Examples
///
/// ```
/// use bioseq::DnaSeq;
/// use bioseq::kmer::Kmer;
///
/// # fn main() -> Result<(), bioseq::ParseSeqError> {
/// let seq: DnaSeq = "ACGT".parse()?;
/// let k = Kmer::from_bases(seq.as_slice()).unwrap();
/// assert_eq!(k.k(), 4);
/// assert_eq!(k.to_dna_seq().to_string(), "ACGT");
/// // AA.. < ACGT numerically because packing follows lexicographic rank.
/// let aaaa = Kmer::from_bases("AAAA".parse::<DnaSeq>()?.as_slice()).unwrap();
/// assert!(aaaa.packed() < k.packed());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Kmer {
    packed: u64,
    k: u8,
}

impl Kmer {
    /// Largest supported k.
    pub const MAX_K: usize = 32;

    /// Packs `bases` into a k-mer.
    ///
    /// Returns `None` when `bases` is empty or longer than [`Kmer::MAX_K`].
    pub fn from_bases(bases: &[Base]) -> Option<Kmer> {
        if bases.is_empty() || bases.len() > Self::MAX_K {
            return None;
        }
        let mut packed = 0u64;
        for &b in bases {
            packed = (packed << 2) | b.rank() as u64;
        }
        Some(Kmer {
            packed,
            k: bases.len() as u8,
        })
    }

    /// The window length.
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// The packed 2-bit representation (lexicographic-rank encoding).
    pub fn packed(&self) -> u64 {
        self.packed
    }

    /// Unpacks back into a sequence.
    pub fn to_dna_seq(&self) -> DnaSeq {
        let mut bases = Vec::with_capacity(self.k());
        for i in (0..self.k()).rev() {
            let rank = ((self.packed >> (2 * i)) & 0b11) as usize;
            bases.push(Base::from_rank(rank));
        }
        DnaSeq::from_bases(bases)
    }

    /// The reverse complement k-mer.
    pub fn reverse_complement(&self) -> Kmer {
        let seq = self.to_dna_seq().reverse_complement();
        Kmer::from_bases(seq.as_slice()).expect("same k")
    }

    /// The canonical form: the lexicographically smaller of the k-mer and
    /// its reverse complement. Strand-independent, as used for repeat
    /// detection.
    pub fn canonical(&self) -> Kmer {
        let rc = self.reverse_complement();
        if rc.packed < self.packed {
            rc
        } else {
            *self
        }
    }
}

/// Iterator over all k-length windows of a sequence, produced by
/// [`kmers`].
#[derive(Debug, Clone)]
pub struct Kmers<'a> {
    bases: &'a [Base],
    k: usize,
    pos: usize,
}

impl Iterator for Kmers<'_> {
    type Item = Kmer;

    fn next(&mut self) -> Option<Kmer> {
        if self.pos + self.k > self.bases.len() {
            return None;
        }
        let k = Kmer::from_bases(&self.bases[self.pos..self.pos + self.k])?;
        self.pos += 1;
        Some(k)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.bases.len() + 1).saturating_sub(self.pos + self.k);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Kmers<'_> {}

/// Iterates over every k-length window of `seq`.
///
/// # Panics
///
/// Panics if `k` is zero or greater than [`Kmer::MAX_K`].
///
/// # Examples
///
/// ```
/// use bioseq::DnaSeq;
/// use bioseq::kmer::kmers;
///
/// # fn main() -> Result<(), bioseq::ParseSeqError> {
/// let s: DnaSeq = "ACGTA".parse()?;
/// let all: Vec<String> = kmers(&s, 3).map(|k| k.to_dna_seq().to_string()).collect();
/// assert_eq!(all, ["ACG", "CGT", "GTA"]);
/// # Ok(())
/// # }
/// ```
pub fn kmers(seq: &DnaSeq, k: usize) -> Kmers<'_> {
    assert!(
        (1..=Kmer::MAX_K).contains(&k),
        "k must be in 1..={}",
        Kmer::MAX_K
    );
    Kmers {
        bases: seq.as_slice(),
        k,
        pos: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let s: DnaSeq = "GATTACAGATTACA".parse().unwrap();
        let k = Kmer::from_bases(s.as_slice()).unwrap();
        assert_eq!(k.to_dna_seq(), s);
    }

    #[test]
    fn rejects_empty_and_oversize() {
        assert!(Kmer::from_bases(&[]).is_none());
        let long = vec![Base::A; 33];
        assert!(Kmer::from_bases(&long).is_none());
    }

    #[test]
    fn packed_order_is_lexicographic() {
        let a = Kmer::from_bases("AC".parse::<DnaSeq>().unwrap().as_slice()).unwrap();
        let b = Kmer::from_bases("AG".parse::<DnaSeq>().unwrap().as_slice()).unwrap();
        let c = Kmer::from_bases("CA".parse::<DnaSeq>().unwrap().as_slice()).unwrap();
        assert!(a.packed() < b.packed() && b.packed() < c.packed());
    }

    #[test]
    fn canonical_is_strand_independent() {
        let s: DnaSeq = "ACGTT".parse().unwrap();
        let k = Kmer::from_bases(s.as_slice()).unwrap();
        assert_eq!(k.canonical(), k.reverse_complement().canonical());
    }

    #[test]
    fn window_iteration_counts() {
        let s: DnaSeq = "ACGTACGT".parse().unwrap();
        assert_eq!(kmers(&s, 3).count(), 6);
        assert_eq!(kmers(&s, 8).count(), 1);
        assert_eq!(kmers(&s, 3).len(), 6);
    }

    #[test]
    fn window_shorter_than_k_yields_nothing() {
        let s: DnaSeq = "AC".parse().unwrap();
        assert_eq!(kmers(&s, 3).count(), 0);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn zero_k_panics() {
        let s: DnaSeq = "ACGT".parse().unwrap();
        let _ = kmers(&s, 0);
    }
}
