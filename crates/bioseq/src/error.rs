//! Error types for sequence parsing.

use std::error::Error;
use std::fmt;

/// Error returned when parsing text into DNA sequences or records.
///
/// # Examples
///
/// ```
/// use bioseq::DnaSeq;
///
/// let err = "ACGN".parse::<DnaSeq>().unwrap_err();
/// assert!(err.to_string().contains('N'));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSeqError {
    kind: ErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ErrorKind {
    /// A character outside `{A, C, G, T}` (case-insensitive).
    BadChar(char),
    /// A structural problem in a FASTA/FASTQ stream.
    Format(String),
}

impl ParseSeqError {
    pub(crate) fn bad_char(c: char) -> Self {
        ParseSeqError {
            kind: ErrorKind::BadChar(c),
        }
    }

    pub(crate) fn format(msg: impl Into<String>) -> Self {
        ParseSeqError {
            kind: ErrorKind::Format(msg.into()),
        }
    }

    /// The offending character, when the error was caused by one.
    pub fn bad_character(&self) -> Option<char> {
        match self.kind {
            ErrorKind::BadChar(c) => Some(c),
            ErrorKind::Format(_) => None,
        }
    }
}

impl fmt::Display for ParseSeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ErrorKind::BadChar(c) => {
                write!(f, "invalid nucleotide character {c:?} (expected A/C/G/T)")
            }
            ErrorKind::Format(msg) => write!(f, "malformed sequence record: {msg}"),
        }
    }
}

impl Error for ParseSeqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offender() {
        let e = ParseSeqError::bad_char('N');
        assert!(e.to_string().contains('N'));
        assert_eq!(e.bad_character(), Some('N'));
    }

    #[test]
    fn format_error_has_message() {
        let e = ParseSeqError::format("missing '>' header");
        assert!(e.to_string().contains("missing '>' header"));
        assert_eq!(e.bad_character(), None);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseSeqError>();
    }
}
