//! Minimal FASTQ reading and writing.
//!
//! Four-line records (`@id`, sequence, `+`, quality) with Sanger-offset
//! qualities — the format the ART-style read simulator emits.
//!
//! # Examples
//!
//! ```
//! use bioseq::fastq;
//!
//! # fn main() -> Result<(), bioseq::ParseSeqError> {
//! let text = "@read1\nACGT\n+\nIIII\n";
//! let records = fastq::parse(text)?;
//! assert_eq!(records[0].id(), "read1");
//! assert_eq!(records[0].seq().to_string(), "ACGT");
//! assert_eq!(fastq::to_string(&records), text);
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::io::BufRead;

use crate::quality::QualityString;
use crate::{DnaSeq, ParseSeqError};

/// A [`ParseSeqError`] located in a FASTQ stream: which record broke and
/// where its header line started.
///
/// Streaming consumers (`pimalign`, `pimserve`) surface this as a
/// diagnostic precise enough to open the file at the offending byte, so
/// a truncated or corrupted record mid-stream is a clean error instead
/// of a panic or a silently short batch.
///
/// # Examples
///
/// ```
/// use bioseq::fastq::Reader;
///
/// // Second record is truncated after its sequence line.
/// let text = "@a\nAC\n+\nII\n@b\nGT\n";
/// let err = Reader::new(text.as_bytes())
///     .collect::<Result<Vec<_>, _>>()
///     .unwrap_err();
/// assert_eq!(err.record_number(), 2);
/// assert_eq!(err.byte_offset(), 11); // the '@b' header line
/// assert!(err.to_string().contains("record 2"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamError {
    record_number: u64,
    byte_offset: u64,
    source: ParseSeqError,
}

impl StreamError {
    /// 1-based ordinal of the record that failed to parse.
    pub fn record_number(&self) -> u64 {
        self.record_number
    }

    /// Byte offset (from the start of the stream) of the failing
    /// record's header line.
    pub fn byte_offset(&self) -> u64 {
        self.byte_offset
    }

    /// The underlying parse error, discarding the stream position.
    pub fn into_parse_error(self) -> ParseSeqError {
        self.source
    }
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FASTQ record {} (byte offset {}): {}",
            self.record_number, self.byte_offset, self.source
        )
    }
}

impl Error for StreamError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.source)
    }
}

/// One FASTQ record: identifier, sequence, and per-base qualities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    id: String,
    seq: DnaSeq,
    quality: QualityString,
}

impl Record {
    /// Creates a record from parts.
    ///
    /// # Panics
    ///
    /// Panics if the sequence and quality lengths differ, or if `id`
    /// contains whitespace.
    pub fn new(id: impl Into<String>, seq: DnaSeq, quality: QualityString) -> Self {
        let id = id.into();
        assert!(
            !id.chars().any(char::is_whitespace),
            "FASTQ record id must not contain whitespace"
        );
        assert_eq!(
            seq.len(),
            quality.len(),
            "sequence and quality lengths must match"
        );
        Record { id, seq, quality }
    }

    /// The record identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The sequence.
    pub fn seq(&self) -> &DnaSeq {
        &self.seq
    }

    /// The per-base quality scores.
    pub fn quality(&self) -> &QualityString {
        &self.quality
    }

    /// Consumes the record, returning `(id, sequence, qualities)`.
    pub fn into_parts(self) -> (String, DnaSeq, QualityString) {
        (self.id, self.seq, self.quality)
    }
}

/// A streaming FASTQ reader over any [`BufRead`] source.
///
/// Yields one [`Record`] at a time without materialising the whole file,
/// so arbitrarily large inputs align in bounded memory (see the
/// `pimalign` CLI's chunked mode). Iteration stops at the first error.
///
/// # Examples
///
/// ```
/// use bioseq::fastq::Reader;
///
/// let text = "@a\nAC\n+\nII\n@b\nGT\n+\nII\n";
/// let ids: Vec<String> = Reader::new(text.as_bytes())
///     .map(|r| r.unwrap().id().to_owned())
///     .collect();
/// assert_eq!(ids, ["a", "b"]);
/// ```
#[derive(Debug)]
pub struct Reader<R: BufRead> {
    input: R,
    line: String,
    failed: bool,
    /// Bytes consumed from the stream so far (terminators included).
    bytes_consumed: u64,
    /// Records successfully emitted so far.
    records_emitted: u64,
    /// Offset of the header line of the record currently being parsed.
    record_start: u64,
}

impl<R: BufRead> Reader<R> {
    /// Wraps a buffered source.
    pub fn new(input: R) -> Reader<R> {
        Reader {
            input,
            line: String::new(),
            failed: false,
            bytes_consumed: 0,
            records_emitted: 0,
            record_start: 0,
        }
    }

    /// Locates a parse error at the record currently being read.
    fn locate(&self, source: ParseSeqError) -> StreamError {
        StreamError {
            record_number: self.records_emitted + 1,
            byte_offset: self.record_start,
            source,
        }
    }

    /// Reads the next line (without the terminator); `None` at EOF.
    fn next_line(&mut self) -> Result<Option<String>, ParseSeqError> {
        self.line.clear();
        let n = self
            .input
            .read_line(&mut self.line)
            .map_err(|e| ParseSeqError::format(format!("I/O error: {e}")))?;
        self.bytes_consumed += n as u64;
        if n == 0 {
            return Ok(None);
        }
        Ok(Some(self.line.trim_end_matches(['\n', '\r']).to_owned()))
    }

    /// Parses the next record; `Ok(None)` at end of input.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError`] — the record ordinal and byte offset plus
    /// the underlying [`ParseSeqError`] — on I/O failure, structural
    /// problems (truncated record, missing `@`/`+`, length mismatch) or
    /// invalid sequence/quality characters.
    pub fn next_record(&mut self) -> Result<Option<Record>, StreamError> {
        match self.next_record_inner() {
            Ok(r) => {
                if r.is_some() {
                    self.records_emitted += 1;
                }
                Ok(r)
            }
            Err(e) => Err(self.locate(e)),
        }
    }

    fn next_record_inner(&mut self) -> Result<Option<Record>, ParseSeqError> {
        let header = loop {
            self.record_start = self.bytes_consumed;
            match self.next_line()? {
                None => return Ok(None),
                Some(l) if l.trim().is_empty() => continue,
                Some(l) => break l,
            }
        };
        let id = header
            .strip_prefix('@')
            .ok_or_else(|| ParseSeqError::format("FASTQ record must start with '@'"))?
            .split_whitespace()
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| ParseSeqError::format("empty FASTQ header"))?
            .to_owned();
        let seq_line = self
            .next_line()?
            .ok_or_else(|| ParseSeqError::format("truncated FASTQ record: missing sequence"))?;
        let plus = self
            .next_line()?
            .ok_or_else(|| ParseSeqError::format("truncated FASTQ record: missing '+'"))?;
        if !plus.starts_with('+') {
            return Err(ParseSeqError::format(
                "FASTQ separator line must start with '+'",
            ));
        }
        let qual_line = self
            .next_line()?
            .ok_or_else(|| ParseSeqError::format("truncated FASTQ record: missing quality"))?;
        let seq: DnaSeq = seq_line.parse()?;
        let quality = QualityString::from_fastq(&qual_line)
            .ok_or_else(|| ParseSeqError::format("invalid quality character"))?;
        if seq.len() != quality.len() {
            return Err(ParseSeqError::format("sequence and quality lengths differ"));
        }
        Ok(Some(Record { id, seq, quality }))
    }

    /// Reads up to `n` records (fewer at end of input; empty = EOF).
    ///
    /// # Errors
    ///
    /// Returns the first [`StreamError`] encountered.
    pub fn next_chunk(&mut self, n: usize) -> Result<Vec<Record>, StreamError> {
        let mut chunk = Vec::with_capacity(n.min(1_024));
        while chunk.len() < n {
            match self.next_record()? {
                Some(record) => chunk.push(record),
                None => break,
            }
        }
        Ok(chunk)
    }
}

impl<R: BufRead> Iterator for Reader<R> {
    type Item = Result<Record, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_record() {
            Ok(Some(record)) => Some(Ok(record)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Parses FASTQ text into records.
///
/// # Errors
///
/// Returns [`ParseSeqError`] on structural problems (truncated record,
/// missing `@`/`+`, length mismatch) or invalid sequence/quality characters.
pub fn parse(text: &str) -> Result<Vec<Record>, ParseSeqError> {
    Reader::new(text.as_bytes())
        .collect::<Result<_, _>>()
        .map_err(StreamError::into_parse_error)
}

/// Serialises records to FASTQ text.
pub fn to_string(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        writeln!(out, "@{}", r.id).expect("write to String");
        writeln!(out, "{}", r.seq).expect("write to String");
        out.push_str("+\n");
        writeln!(out, "{}", r.quality.to_fastq()).expect("write to String");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::Phred;

    fn sample() -> Record {
        Record::new(
            "r1",
            "ACGT".parse().unwrap(),
            vec![Phred::new(40); 4].into(),
        )
    }

    #[test]
    fn round_trip() {
        let recs = vec![sample()];
        let text = to_string(&recs);
        assert_eq!(parse(&text).unwrap(), recs);
    }

    #[test]
    fn parse_multiple_records() {
        let text = "@a\nAC\n+\nII\n@b\nGT\n+\nII\n";
        let recs = parse(text).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].id(), "b");
    }

    #[test]
    fn header_description_is_dropped_from_id() {
        let recs = parse("@read1 simulated from chr1:100\nAC\n+\nII\n").unwrap();
        assert_eq!(recs[0].id(), "read1");
    }

    #[test]
    fn rejects_missing_at() {
        assert!(parse("read1\nAC\n+\nII\n").is_err());
    }

    #[test]
    fn rejects_length_mismatch() {
        assert!(parse("@r\nACG\n+\nII\n").is_err());
    }

    #[test]
    fn rejects_truncation() {
        assert!(parse("@r\nACG\n+\n").is_err());
        assert!(parse("@r\nACG\n").is_err());
        assert!(parse("@r\n").is_err());
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn constructor_validates_lengths() {
        let _ = Record::new("r", "ACGT".parse().unwrap(), QualityString::new());
    }

    #[test]
    fn streaming_reader_matches_parse() {
        let text = "@a\nAC\n+\nII\n\n@b simulated\nGT\n+\nII\n";
        let streamed: Vec<Record> = Reader::new(text.as_bytes())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, parse(text).unwrap());
    }

    #[test]
    fn streaming_reader_chunks_in_order() {
        let text = to_string(
            &(0..10)
                .map(|i| {
                    Record::new(
                        format!("r{i}"),
                        "ACGT".parse().unwrap(),
                        vec![Phred::new(40); 4].into(),
                    )
                })
                .collect::<Vec<_>>(),
        );
        let mut reader = Reader::new(text.as_bytes());
        let c1 = reader.next_chunk(4).unwrap();
        let c2 = reader.next_chunk(4).unwrap();
        let c3 = reader.next_chunk(4).unwrap();
        let c4 = reader.next_chunk(4).unwrap();
        assert_eq!(c1.len(), 4);
        assert_eq!(c2.len(), 4);
        assert_eq!(c3.len(), 2, "trailing partial chunk");
        assert!(c4.is_empty(), "EOF yields an empty chunk");
        let ids: Vec<&str> = c1.iter().chain(&c2).chain(&c3).map(Record::id).collect();
        assert_eq!(ids, (0..10).map(|i| format!("r{i}")).collect::<Vec<_>>());
    }

    #[test]
    fn streaming_reader_stops_at_first_error() {
        let text = "@a\nAC\n+\nII\n@bad\nACGN\n+\nIIII\n@c\nGT\n+\nII\n";
        let mut reader = Reader::new(text.as_bytes());
        assert!(reader.next().unwrap().is_ok());
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none(), "iteration fuses after an error");
    }

    #[test]
    fn stream_error_reports_record_and_offset() {
        // 3 good records (12 bytes each), then one truncated mid-record.
        let text = "@r1\nACGT\n+\nIIII\n@r2\nACGT\n+\nIIII\n@r3\nACGT\n+\nIIII\n@r4\nAC\n+\n";
        let mut reader = Reader::new(text.as_bytes());
        for _ in 0..3 {
            assert!(reader.next_record().unwrap().is_some());
        }
        let err = reader.next_record().unwrap_err();
        assert_eq!(err.record_number(), 4);
        assert_eq!(err.byte_offset(), 48, "offset of the '@r4' header");
        let msg = err.to_string();
        assert!(msg.contains("record 4"), "{msg}");
        assert!(msg.contains("byte offset 48"), "{msg}");
        assert!(msg.contains("missing quality"), "{msg}");
    }

    #[test]
    fn stream_error_offset_skips_blank_lines() {
        // Blank separator lines must not be attributed to the record.
        let text = "@a\nAC\n+\nII\n\n\nbroken\nAC\n+\nII\n";
        let err = Reader::new(text.as_bytes())
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert_eq!(err.record_number(), 2);
        assert_eq!(err.byte_offset(), 13, "offset of the 'broken' header");
    }

    #[test]
    fn stream_error_on_bad_character_keeps_source() {
        let text = "@a\nACGN\n+\nIIII\n";
        let err = Reader::new(text.as_bytes()).next_record().unwrap_err();
        assert_eq!(err.record_number(), 1);
        assert_eq!(err.byte_offset(), 0);
        assert_eq!(err.clone().into_parse_error().bad_character(), Some('N'));
        use std::error::Error as _;
        assert!(err.source().is_some(), "source chain preserved");
    }

    #[test]
    fn stream_error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StreamError>();
    }

    #[test]
    fn streaming_reader_handles_crlf() {
        let text = "@a\r\nAC\r\n+\r\nII\r\n";
        let recs: Vec<Record> = Reader::new(text.as_bytes())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].seq().to_string(), "AC");
    }
}
