//! Minimal FASTQ reading and writing.
//!
//! Four-line records (`@id`, sequence, `+`, quality) with Sanger-offset
//! qualities — the format the ART-style read simulator emits.
//!
//! # Examples
//!
//! ```
//! use bioseq::fastq;
//!
//! # fn main() -> Result<(), bioseq::ParseSeqError> {
//! let text = "@read1\nACGT\n+\nIIII\n";
//! let records = fastq::parse(text)?;
//! assert_eq!(records[0].id(), "read1");
//! assert_eq!(records[0].seq().to_string(), "ACGT");
//! assert_eq!(fastq::to_string(&records), text);
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;
use std::io::BufRead;

use crate::quality::QualityString;
use crate::{DnaSeq, ParseSeqError};

/// One FASTQ record: identifier, sequence, and per-base qualities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    id: String,
    seq: DnaSeq,
    quality: QualityString,
}

impl Record {
    /// Creates a record from parts.
    ///
    /// # Panics
    ///
    /// Panics if the sequence and quality lengths differ, or if `id`
    /// contains whitespace.
    pub fn new(id: impl Into<String>, seq: DnaSeq, quality: QualityString) -> Self {
        let id = id.into();
        assert!(
            !id.chars().any(char::is_whitespace),
            "FASTQ record id must not contain whitespace"
        );
        assert_eq!(
            seq.len(),
            quality.len(),
            "sequence and quality lengths must match"
        );
        Record { id, seq, quality }
    }

    /// The record identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The sequence.
    pub fn seq(&self) -> &DnaSeq {
        &self.seq
    }

    /// The per-base quality scores.
    pub fn quality(&self) -> &QualityString {
        &self.quality
    }

    /// Consumes the record, returning `(id, sequence, qualities)`.
    pub fn into_parts(self) -> (String, DnaSeq, QualityString) {
        (self.id, self.seq, self.quality)
    }
}

/// A streaming FASTQ reader over any [`BufRead`] source.
///
/// Yields one [`Record`] at a time without materialising the whole file,
/// so arbitrarily large inputs align in bounded memory (see the
/// `pimalign` CLI's chunked mode). Iteration stops at the first error.
///
/// # Examples
///
/// ```
/// use bioseq::fastq::Reader;
///
/// let text = "@a\nAC\n+\nII\n@b\nGT\n+\nII\n";
/// let ids: Vec<String> = Reader::new(text.as_bytes())
///     .map(|r| r.unwrap().id().to_owned())
///     .collect();
/// assert_eq!(ids, ["a", "b"]);
/// ```
#[derive(Debug)]
pub struct Reader<R: BufRead> {
    input: R,
    line: String,
    failed: bool,
}

impl<R: BufRead> Reader<R> {
    /// Wraps a buffered source.
    pub fn new(input: R) -> Reader<R> {
        Reader {
            input,
            line: String::new(),
            failed: false,
        }
    }

    /// Reads the next line (without the terminator); `None` at EOF.
    fn next_line(&mut self) -> Result<Option<String>, ParseSeqError> {
        self.line.clear();
        let n = self
            .input
            .read_line(&mut self.line)
            .map_err(|e| ParseSeqError::format(format!("I/O error: {e}")))?;
        if n == 0 {
            return Ok(None);
        }
        Ok(Some(self.line.trim_end_matches(['\n', '\r']).to_owned()))
    }

    /// Parses the next record; `Ok(None)` at end of input.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSeqError`] on I/O failure, structural problems
    /// (truncated record, missing `@`/`+`, length mismatch) or invalid
    /// sequence/quality characters.
    pub fn next_record(&mut self) -> Result<Option<Record>, ParseSeqError> {
        let header = loop {
            match self.next_line()? {
                None => return Ok(None),
                Some(l) if l.trim().is_empty() => continue,
                Some(l) => break l,
            }
        };
        let id = header
            .strip_prefix('@')
            .ok_or_else(|| ParseSeqError::format("FASTQ record must start with '@'"))?
            .split_whitespace()
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| ParseSeqError::format("empty FASTQ header"))?
            .to_owned();
        let seq_line = self
            .next_line()?
            .ok_or_else(|| ParseSeqError::format("truncated FASTQ record: missing sequence"))?;
        let plus = self
            .next_line()?
            .ok_or_else(|| ParseSeqError::format("truncated FASTQ record: missing '+'"))?;
        if !plus.starts_with('+') {
            return Err(ParseSeqError::format(
                "FASTQ separator line must start with '+'",
            ));
        }
        let qual_line = self
            .next_line()?
            .ok_or_else(|| ParseSeqError::format("truncated FASTQ record: missing quality"))?;
        let seq: DnaSeq = seq_line.parse()?;
        let quality = QualityString::from_fastq(&qual_line)
            .ok_or_else(|| ParseSeqError::format("invalid quality character"))?;
        if seq.len() != quality.len() {
            return Err(ParseSeqError::format("sequence and quality lengths differ"));
        }
        Ok(Some(Record { id, seq, quality }))
    }

    /// Reads up to `n` records (fewer at end of input; empty = EOF).
    ///
    /// # Errors
    ///
    /// Returns the first [`ParseSeqError`] encountered.
    pub fn next_chunk(&mut self, n: usize) -> Result<Vec<Record>, ParseSeqError> {
        let mut chunk = Vec::with_capacity(n.min(1_024));
        while chunk.len() < n {
            match self.next_record()? {
                Some(record) => chunk.push(record),
                None => break,
            }
        }
        Ok(chunk)
    }
}

impl<R: BufRead> Iterator for Reader<R> {
    type Item = Result<Record, ParseSeqError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_record() {
            Ok(Some(record)) => Some(Ok(record)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Parses FASTQ text into records.
///
/// # Errors
///
/// Returns [`ParseSeqError`] on structural problems (truncated record,
/// missing `@`/`+`, length mismatch) or invalid sequence/quality characters.
pub fn parse(text: &str) -> Result<Vec<Record>, ParseSeqError> {
    Reader::new(text.as_bytes()).collect()
}

/// Serialises records to FASTQ text.
pub fn to_string(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        writeln!(out, "@{}", r.id).expect("write to String");
        writeln!(out, "{}", r.seq).expect("write to String");
        out.push_str("+\n");
        writeln!(out, "{}", r.quality.to_fastq()).expect("write to String");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::Phred;

    fn sample() -> Record {
        Record::new(
            "r1",
            "ACGT".parse().unwrap(),
            vec![Phred::new(40); 4].into(),
        )
    }

    #[test]
    fn round_trip() {
        let recs = vec![sample()];
        let text = to_string(&recs);
        assert_eq!(parse(&text).unwrap(), recs);
    }

    #[test]
    fn parse_multiple_records() {
        let text = "@a\nAC\n+\nII\n@b\nGT\n+\nII\n";
        let recs = parse(text).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].id(), "b");
    }

    #[test]
    fn header_description_is_dropped_from_id() {
        let recs = parse("@read1 simulated from chr1:100\nAC\n+\nII\n").unwrap();
        assert_eq!(recs[0].id(), "read1");
    }

    #[test]
    fn rejects_missing_at() {
        assert!(parse("read1\nAC\n+\nII\n").is_err());
    }

    #[test]
    fn rejects_length_mismatch() {
        assert!(parse("@r\nACG\n+\nII\n").is_err());
    }

    #[test]
    fn rejects_truncation() {
        assert!(parse("@r\nACG\n+\n").is_err());
        assert!(parse("@r\nACG\n").is_err());
        assert!(parse("@r\n").is_err());
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn constructor_validates_lengths() {
        let _ = Record::new("r", "ACGT".parse().unwrap(), QualityString::new());
    }

    #[test]
    fn streaming_reader_matches_parse() {
        let text = "@a\nAC\n+\nII\n\n@b simulated\nGT\n+\nII\n";
        let streamed: Vec<Record> = Reader::new(text.as_bytes())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, parse(text).unwrap());
    }

    #[test]
    fn streaming_reader_chunks_in_order() {
        let text = to_string(
            &(0..10)
                .map(|i| {
                    Record::new(
                        format!("r{i}"),
                        "ACGT".parse().unwrap(),
                        vec![Phred::new(40); 4].into(),
                    )
                })
                .collect::<Vec<_>>(),
        );
        let mut reader = Reader::new(text.as_bytes());
        let c1 = reader.next_chunk(4).unwrap();
        let c2 = reader.next_chunk(4).unwrap();
        let c3 = reader.next_chunk(4).unwrap();
        let c4 = reader.next_chunk(4).unwrap();
        assert_eq!(c1.len(), 4);
        assert_eq!(c2.len(), 4);
        assert_eq!(c3.len(), 2, "trailing partial chunk");
        assert!(c4.is_empty(), "EOF yields an empty chunk");
        let ids: Vec<&str> = c1.iter().chain(&c2).chain(&c3).map(Record::id).collect();
        assert_eq!(ids, (0..10).map(|i| format!("r{i}")).collect::<Vec<_>>());
    }

    #[test]
    fn streaming_reader_stops_at_first_error() {
        let text = "@a\nAC\n+\nII\n@bad\nACGN\n+\nIIII\n@c\nGT\n+\nII\n";
        let mut reader = Reader::new(text.as_bytes());
        assert!(reader.next().unwrap().is_ok());
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none(), "iteration fuses after an error");
    }

    #[test]
    fn streaming_reader_handles_crlf() {
        let text = "@a\r\nAC\r\n+\r\nII\r\n";
        let recs: Vec<Record> = Reader::new(text.as_bytes())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].seq().to_string(), "AC");
    }
}
