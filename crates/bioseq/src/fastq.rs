//! Minimal FASTQ reading and writing.
//!
//! Four-line records (`@id`, sequence, `+`, quality) with Sanger-offset
//! qualities — the format the ART-style read simulator emits.
//!
//! # Examples
//!
//! ```
//! use bioseq::fastq;
//!
//! # fn main() -> Result<(), bioseq::ParseSeqError> {
//! let text = "@read1\nACGT\n+\nIIII\n";
//! let records = fastq::parse(text)?;
//! assert_eq!(records[0].id(), "read1");
//! assert_eq!(records[0].seq().to_string(), "ACGT");
//! assert_eq!(fastq::to_string(&records), text);
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;

use crate::quality::QualityString;
use crate::{DnaSeq, ParseSeqError};

/// One FASTQ record: identifier, sequence, and per-base qualities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    id: String,
    seq: DnaSeq,
    quality: QualityString,
}

impl Record {
    /// Creates a record from parts.
    ///
    /// # Panics
    ///
    /// Panics if the sequence and quality lengths differ, or if `id`
    /// contains whitespace.
    pub fn new(id: impl Into<String>, seq: DnaSeq, quality: QualityString) -> Self {
        let id = id.into();
        assert!(
            !id.chars().any(char::is_whitespace),
            "FASTQ record id must not contain whitespace"
        );
        assert_eq!(
            seq.len(),
            quality.len(),
            "sequence and quality lengths must match"
        );
        Record { id, seq, quality }
    }

    /// The record identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The sequence.
    pub fn seq(&self) -> &DnaSeq {
        &self.seq
    }

    /// The per-base quality scores.
    pub fn quality(&self) -> &QualityString {
        &self.quality
    }

    /// Consumes the record, returning `(id, sequence, qualities)`.
    pub fn into_parts(self) -> (String, DnaSeq, QualityString) {
        (self.id, self.seq, self.quality)
    }
}

/// Parses FASTQ text into records.
///
/// # Errors
///
/// Returns [`ParseSeqError`] on structural problems (truncated record,
/// missing `@`/`+`, length mismatch) or invalid sequence/quality characters.
pub fn parse(text: &str) -> Result<Vec<Record>, ParseSeqError> {
    let mut lines = text.lines();
    let mut records = Vec::new();
    while let Some(header) = lines.next() {
        if header.trim().is_empty() {
            continue;
        }
        let id = header
            .strip_prefix('@')
            .ok_or_else(|| ParseSeqError::format("FASTQ record must start with '@'"))?
            .split_whitespace()
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| ParseSeqError::format("empty FASTQ header"))?
            .to_owned();
        let seq_line = lines
            .next()
            .ok_or_else(|| ParseSeqError::format("truncated FASTQ record: missing sequence"))?;
        let plus = lines
            .next()
            .ok_or_else(|| ParseSeqError::format("truncated FASTQ record: missing '+'"))?;
        if !plus.starts_with('+') {
            return Err(ParseSeqError::format("FASTQ separator line must start with '+'"));
        }
        let qual_line = lines
            .next()
            .ok_or_else(|| ParseSeqError::format("truncated FASTQ record: missing quality"))?;
        let seq: DnaSeq = seq_line.parse()?;
        let quality = QualityString::from_fastq(qual_line)
            .ok_or_else(|| ParseSeqError::format("invalid quality character"))?;
        if seq.len() != quality.len() {
            return Err(ParseSeqError::format(
                "sequence and quality lengths differ",
            ));
        }
        records.push(Record { id, seq, quality });
    }
    Ok(records)
}

/// Serialises records to FASTQ text.
pub fn to_string(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        writeln!(out, "@{}", r.id).expect("write to String");
        writeln!(out, "{}", r.seq).expect("write to String");
        out.push_str("+\n");
        writeln!(out, "{}", r.quality.to_fastq()).expect("write to String");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::Phred;

    fn sample() -> Record {
        Record::new(
            "r1",
            "ACGT".parse().unwrap(),
            vec![Phred::new(40); 4].into(),
        )
    }

    #[test]
    fn round_trip() {
        let recs = vec![sample()];
        let text = to_string(&recs);
        assert_eq!(parse(&text).unwrap(), recs);
    }

    #[test]
    fn parse_multiple_records() {
        let text = "@a\nAC\n+\nII\n@b\nGT\n+\nII\n";
        let recs = parse(text).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].id(), "b");
    }

    #[test]
    fn header_description_is_dropped_from_id() {
        let recs = parse("@read1 simulated from chr1:100\nAC\n+\nII\n").unwrap();
        assert_eq!(recs[0].id(), "read1");
    }

    #[test]
    fn rejects_missing_at() {
        assert!(parse("read1\nAC\n+\nII\n").is_err());
    }

    #[test]
    fn rejects_length_mismatch() {
        assert!(parse("@r\nACG\n+\nII\n").is_err());
    }

    #[test]
    fn rejects_truncation() {
        assert!(parse("@r\nACG\n+\n").is_err());
        assert!(parse("@r\nACG\n").is_err());
        assert!(parse("@r\n").is_err());
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn constructor_validates_lengths() {
        let _ = Record::new("r", "ACGT".parse().unwrap(), QualityString::new());
    }
}
