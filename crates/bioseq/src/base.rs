//! The DNA alphabet.

use std::fmt;

use crate::ParseSeqError;

/// One DNA nucleotide.
///
/// Two orderings matter in this workspace and they are *different*:
///
/// * the **lexicographic rank** (`A < C < G < T`) drives the FM-index
///   (`Count`, `Occ`, suffix sorting) — see [`Base::rank`];
/// * the **hardware binary code** from the paper's Fig. 6a
///   (`T = 0b00`, `G = 0b01`, `A = 0b10`, `C = 0b11`) is the 2-bit pattern
///   written into the SOT-MRAM BWT zone — see [`Base::code`].
///
/// The `derive`d `Ord` follows the lexicographic (biological) order.
///
/// # Examples
///
/// ```
/// use bioseq::Base;
///
/// assert!(Base::A < Base::C && Base::C < Base::G && Base::G < Base::T);
/// assert_eq!(Base::T.code(), 0b00);
/// assert_eq!(Base::C.code(), 0b11);
/// assert_eq!(Base::A.complement(), Base::T);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine.
    A,
    /// Cytosine.
    C,
    /// Guanine.
    G,
    /// Thymine.
    T,
}

/// All four bases in lexicographic order. Handy for exhaustive loops such as
/// the inexact-search branch over candidate bases (Algorithm 2, line 13).
pub const BASES: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

impl Base {
    /// All four bases in lexicographic order (associated-constant form of
    /// [`BASES`]).
    pub const ALL: [Base; 4] = BASES;

    /// Lexicographic rank: `A → 0`, `C → 1`, `G → 2`, `T → 3`.
    ///
    /// This is the rank used throughout the FM-index (the `Count` array is
    /// indexed by it).
    #[inline]
    pub const fn rank(self) -> usize {
        self as usize
    }

    /// Inverse of [`Base::rank`].
    ///
    /// # Panics
    ///
    /// Panics if `rank > 3`.
    #[inline]
    pub const fn from_rank(rank: usize) -> Base {
        match rank {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            3 => Base::T,
            _ => panic!("base rank out of range (expected 0..=3)"),
        }
    }

    /// The paper's 2-bit hardware encoding (Fig. 6a):
    /// `T = 0b00`, `G = 0b01`, `A = 0b10`, `C = 0b11`.
    ///
    /// This is the bit pattern stored in the sub-array BWT zone and in the
    /// computational-reference (`CRef`) rows.
    #[inline]
    pub const fn code(self) -> u8 {
        match self {
            Base::T => 0b00,
            Base::G => 0b01,
            Base::A => 0b10,
            Base::C => 0b11,
        }
    }

    /// Inverse of [`Base::code`] (only the low two bits are inspected).
    #[inline]
    pub const fn from_code(code: u8) -> Base {
        match code & 0b11 {
            0b00 => Base::T,
            0b01 => Base::G,
            0b10 => Base::A,
            _ => Base::C,
        }
    }

    /// Watson–Crick complement (`A↔T`, `C↔G`).
    #[inline]
    pub const fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::T => Base::A,
            Base::C => Base::G,
            Base::G => Base::C,
        }
    }

    /// Upper-case ASCII letter for this base.
    #[inline]
    pub const fn to_char(self) -> char {
        match self {
            Base::A => 'A',
            Base::C => 'C',
            Base::G => 'G',
            Base::T => 'T',
        }
    }

    /// Parses an ASCII letter (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`ParseSeqError`] for anything other than `A`, `C`, `G`, `T`
    /// (ambiguity codes such as `N` are rejected; the read simulator never
    /// produces them and the 2-bit hardware encoding cannot represent them).
    pub fn from_char(c: char) -> Result<Base, ParseSeqError> {
        match c.to_ascii_uppercase() {
            'A' => Ok(Base::A),
            'C' => Ok(Base::C),
            'G' => Ok(Base::G),
            'T' => Ok(Base::T),
            other => Err(ParseSeqError::bad_char(other)),
        }
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Base::A => "A",
            Base::C => "C",
            Base::G => "G",
            Base::T => "T",
        })
    }
}

impl TryFrom<char> for Base {
    type Error = ParseSeqError;

    fn try_from(c: char) -> Result<Self, Self::Error> {
        Base::from_char(c)
    }
}

impl TryFrom<u8> for Base {
    type Error = ParseSeqError;

    fn try_from(b: u8) -> Result<Self, Self::Error> {
        Base::from_char(b as char)
    }
}

impl From<Base> for char {
    fn from(b: Base) -> char {
        b.to_char()
    }
}

/// A symbol of the *indexed* text: a base or the end-of-sequence sentinel
/// `$`, which sorts before every base (as in the paper's BW-matrix example
/// where `$` heads the first column).
///
/// # Examples
///
/// ```
/// use bioseq::{Base, Symbol};
///
/// assert!(Symbol::Sentinel < Symbol::Base(Base::A));
/// assert_eq!(Symbol::Base(Base::G).to_char(), 'G');
/// assert_eq!(Symbol::Sentinel.to_char(), '$');
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Symbol {
    /// The end-of-text marker `$` (lexicographically smallest).
    Sentinel,
    /// An ordinary nucleotide.
    Base(Base),
}

impl Symbol {
    /// Rank in the extended alphabet: `$ → 0`, `A → 1`, `C → 2`, `G → 3`,
    /// `T → 4`.
    #[inline]
    pub const fn rank(self) -> usize {
        match self {
            Symbol::Sentinel => 0,
            Symbol::Base(b) => b.rank() + 1,
        }
    }

    /// Inverse of [`Symbol::rank`].
    ///
    /// # Panics
    ///
    /// Panics if `rank > 4`.
    #[inline]
    pub const fn from_rank(rank: usize) -> Symbol {
        match rank {
            0 => Symbol::Sentinel,
            r => Symbol::Base(Base::from_rank(r - 1)),
        }
    }

    /// The base inside, or `None` for the sentinel.
    #[inline]
    pub const fn base(self) -> Option<Base> {
        match self {
            Symbol::Sentinel => None,
            Symbol::Base(b) => Some(b),
        }
    }

    /// ASCII display character (`$` for the sentinel).
    #[inline]
    pub const fn to_char(self) -> char {
        match self {
            Symbol::Sentinel => '$',
            Symbol::Base(b) => b.to_char(),
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl From<Base> for Symbol {
    fn from(b: Base) -> Symbol {
        Symbol::Base(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_round_trip() {
        for b in BASES {
            assert_eq!(Base::from_rank(b.rank()), b);
        }
    }

    #[test]
    fn code_round_trip() {
        for b in BASES {
            assert_eq!(Base::from_code(b.code()), b);
        }
    }

    #[test]
    fn code_matches_paper_fig6a() {
        assert_eq!(Base::T.code(), 0b00);
        assert_eq!(Base::G.code(), 0b01);
        assert_eq!(Base::A.code(), 0b10);
        assert_eq!(Base::C.code(), 0b11);
    }

    #[test]
    fn codes_are_distinct() {
        let mut seen = [false; 4];
        for b in BASES {
            let c = b.code() as usize;
            assert!(!seen[c], "duplicate code {c:#04b}");
            seen[c] = true;
        }
    }

    #[test]
    fn complement_is_involution() {
        for b in BASES {
            assert_eq!(b.complement().complement(), b);
            assert_ne!(b.complement(), b);
        }
    }

    #[test]
    fn complement_pairs_per_base_pairing_rule() {
        // Paper §I: "the bases on two strands follow the complementary base
        // pairing rule: A-T and C-G".
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
    }

    #[test]
    fn char_round_trip_case_insensitive() {
        for b in BASES {
            assert_eq!(Base::from_char(b.to_char()).unwrap(), b);
            assert_eq!(
                Base::from_char(b.to_char().to_ascii_lowercase()).unwrap(),
                b
            );
        }
    }

    #[test]
    fn invalid_char_is_rejected() {
        assert!(Base::from_char('N').is_err());
        assert!(Base::from_char('$').is_err());
        assert!(Base::from_char('x').is_err());
    }

    #[test]
    fn lexicographic_order_is_acgt() {
        let mut sorted = BASES;
        sorted.sort();
        assert_eq!(sorted, [Base::A, Base::C, Base::G, Base::T]);
    }

    #[test]
    fn sentinel_sorts_first() {
        let mut symbols: Vec<Symbol> = BASES.iter().copied().map(Symbol::from).collect();
        symbols.push(Symbol::Sentinel);
        symbols.sort();
        assert_eq!(symbols[0], Symbol::Sentinel);
    }

    #[test]
    fn symbol_rank_round_trip() {
        for r in 0..=4 {
            assert_eq!(Symbol::from_rank(r).rank(), r);
        }
    }

    #[test]
    fn symbol_base_accessor() {
        assert_eq!(Symbol::Sentinel.base(), None);
        assert_eq!(Symbol::Base(Base::G).base(), Some(Base::G));
    }
}
