//! 2-bit packed DNA sequences — the PIM platform's storage layout.

use std::fmt;

use crate::{Base, DnaSeq};

/// A DNA sequence packed two bits per base using the paper's hardware
/// encoding (Fig. 6a: `T = 00`, `G = 01`, `A = 10`, `C = 11`).
///
/// Bases are packed little-endian within each byte: base `i` occupies bits
/// `2·(i mod 4) .. 2·(i mod 4) + 2` of byte `i / 4`. A 256-bit SOT-MRAM word
/// line therefore holds exactly [`PackedSeq::BASES_PER_WORD_LINE`] = 128
/// bases, which is the paper's bucket width `d`.
///
/// # Examples
///
/// ```
/// use bioseq::{Base, PackedSeq};
///
/// let p: PackedSeq = [Base::T, Base::G, Base::A, Base::C].into_iter().collect();
/// assert_eq!(p.len(), 4);
/// assert_eq!(p.get(2), Some(Base::A));
/// // T=00, G=01, A=10, C=11 packed little-endian: 0b11_10_01_00.
/// assert_eq!(p.as_bytes(), &[0b1110_0100]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct PackedSeq {
    bytes: Vec<u8>,
    len: usize,
}

impl PackedSeq {
    /// Number of bases a 256-bit sub-array word line holds (the paper's
    /// "128 bps encoded by 2 bits" per row, Fig. 6a) — also the default
    /// Occ-table bucket width `d`.
    pub const BASES_PER_WORD_LINE: usize = 128;

    /// Creates an empty packed sequence.
    pub fn new() -> Self {
        PackedSeq {
            bytes: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty packed sequence with room for `capacity` bases.
    pub fn with_capacity(capacity: usize) -> Self {
        PackedSeq {
            bytes: Vec::with_capacity(capacity.div_ceil(4)),
            len: 0,
        }
    }

    /// Number of bases stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no bases are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying packed bytes (last byte may be partially used).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Appends one base.
    pub fn push(&mut self, base: Base) {
        let bit = (self.len % 4) * 2;
        if bit == 0 {
            self.bytes.push(base.code());
        } else {
            *self.bytes.last_mut().expect("non-empty after first push") |= base.code() << bit;
        }
        self.len += 1;
    }

    /// The base at `index`, or `None` when out of bounds.
    pub fn get(&self, index: usize) -> Option<Base> {
        if index >= self.len {
            return None;
        }
        let byte = self.bytes[index / 4];
        let bit = (index % 4) * 2;
        Some(Base::from_code(byte >> bit))
    }

    /// Iterates over the bases.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            seq: self,
            front: 0,
            back: self.len,
        }
    }

    /// Unpacks into a [`DnaSeq`].
    pub fn to_dna_seq(&self) -> DnaSeq {
        self.iter().collect()
    }

    /// The raw 2-bit code stream for positions `start .. start + count`,
    /// exactly the bit pattern a word-line segment holds. Used by the
    /// sub-array mapper when loading the BWT zone.
    ///
    /// # Panics
    ///
    /// Panics if `start + count > self.len()`.
    pub fn codes(&self, start: usize, count: usize) -> Vec<u8> {
        assert!(
            start + count <= self.len,
            "code range {}..{} out of bounds (len {})",
            start,
            start + count,
            self.len
        );
        (start..start + count)
            .map(|i| self.get(i).expect("in bounds").code())
            .collect()
    }
}

impl FromIterator<Base> for PackedSeq {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut seq = PackedSeq::with_capacity(iter.size_hint().0);
        for b in iter {
            seq.push(b);
        }
        seq
    }
}

impl Extend<Base> for PackedSeq {
    fn extend<I: IntoIterator<Item = Base>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

impl From<&DnaSeq> for PackedSeq {
    fn from(seq: &DnaSeq) -> Self {
        seq.iter().copied().collect()
    }
}

impl fmt::Display for PackedSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

/// Iterator over the bases of a [`PackedSeq`], produced by
/// [`PackedSeq::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    seq: &'a PackedSeq,
    front: usize,
    back: usize,
}

impl Iterator for Iter<'_> {
    type Item = Base;

    fn next(&mut self) -> Option<Base> {
        if self.front >= self.back {
            return None;
        }
        let b = self.seq.get(self.front);
        self.front += 1;
        b
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.back - self.front;
        (rem, Some(rem))
    }
}

impl DoubleEndedIterator for Iter<'_> {
    fn next_back(&mut self) -> Option<Base> {
        if self.front >= self.back {
            return None;
        }
        self.back -= 1;
        self.seq.get(self.back)
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PackedSeq {
        "TGCTAACGTTGCA".parse::<DnaSeq>().unwrap().to_packed()
    }

    #[test]
    fn push_get_round_trip() {
        let p = sample();
        let d = p.to_dna_seq();
        assert_eq!(d.to_string(), "TGCTAACGTTGCA");
        for (i, b) in d.iter().enumerate() {
            assert_eq!(p.get(i), Some(*b));
        }
        assert_eq!(p.get(p.len()), None);
    }

    #[test]
    fn packing_density_is_two_bits() {
        let p = sample();
        assert_eq!(p.as_bytes().len(), p.len().div_ceil(4));
    }

    #[test]
    fn word_line_constant_matches_paper() {
        // 256-bit word line / 2 bits per base = 128 bases = bucket width d.
        assert_eq!(PackedSeq::BASES_PER_WORD_LINE, 128);
    }

    #[test]
    fn codes_extracts_hardware_pattern() {
        let p: PackedSeq = "TGAC".parse::<DnaSeq>().unwrap().to_packed();
        assert_eq!(p.codes(0, 4), vec![0b00, 0b01, 0b10, 0b11]);
        assert_eq!(p.codes(1, 2), vec![0b01, 0b10]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn codes_panics_out_of_range() {
        let p = sample();
        let _ = p.codes(10, 10);
    }

    #[test]
    fn iterator_is_double_ended_and_exact() {
        let p = sample();
        let fwd: Vec<Base> = p.iter().collect();
        let mut rev: Vec<Base> = p.iter().rev().collect();
        rev.reverse();
        assert_eq!(fwd, rev);
        assert_eq!(p.iter().len(), p.len());
    }

    #[test]
    fn display_matches_unpacked() {
        let p = sample();
        assert_eq!(p.to_string(), p.to_dna_seq().to_string());
    }

    #[test]
    fn empty_sequence() {
        let p = PackedSeq::new();
        assert!(p.is_empty());
        assert_eq!(p.iter().count(), 0);
        assert!(p.as_bytes().is_empty());
    }
}
