//! Owned, unpacked DNA sequences.

use std::fmt;
use std::ops::{Index, Range};
use std::str::FromStr;

use crate::{Base, PackedSeq, ParseSeqError};

/// An owned DNA sequence stored one [`Base`] per byte.
///
/// `DnaSeq` is the working representation used by the software algorithms
/// (suffix-array construction, backward search, dynamic programming).
/// The PIM platform instead stores sequences 2-bit packed — convert with
/// [`DnaSeq::to_packed`] / [`PackedSeq::to_dna_seq`].
///
/// # Examples
///
/// ```
/// use bioseq::{Base, DnaSeq};
///
/// # fn main() -> Result<(), bioseq::ParseSeqError> {
/// let s: DnaSeq = "CTA".parse()?;
/// assert_eq!(s.to_string(), "CTA");
/// assert_eq!(s.reverse_complement().to_string(), "TAG");
/// assert_eq!(s.iter().filter(|&&b| b == Base::T).count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DnaSeq {
    bases: Vec<Base>,
}

impl DnaSeq {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        DnaSeq { bases: Vec::new() }
    }

    /// Creates an empty sequence with room for `capacity` bases.
    pub fn with_capacity(capacity: usize) -> Self {
        DnaSeq {
            bases: Vec::with_capacity(capacity),
        }
    }

    /// Wraps an existing base vector.
    pub fn from_bases(bases: Vec<Base>) -> Self {
        DnaSeq { bases }
    }

    /// Parses an ASCII byte slice (case-insensitive `ACGT`).
    ///
    /// # Errors
    ///
    /// Returns [`ParseSeqError`] on the first non-ACGT byte.
    pub fn from_ascii(ascii: &[u8]) -> Result<Self, ParseSeqError> {
        ascii.iter().map(|&b| Base::try_from(b)).collect()
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// `true` when the sequence holds no bases.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// Borrow the bases as a slice.
    pub fn as_slice(&self) -> &[Base] {
        &self.bases
    }

    /// The base at `index`, or `None` when out of bounds.
    pub fn get(&self, index: usize) -> Option<Base> {
        self.bases.get(index).copied()
    }

    /// Appends one base.
    pub fn push(&mut self, base: Base) {
        self.bases.push(base);
    }

    /// Iterates over the bases.
    pub fn iter(&self) -> std::slice::Iter<'_, Base> {
        self.bases.iter()
    }

    /// A sub-sequence copy over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn subseq(&self, range: Range<usize>) -> DnaSeq {
        DnaSeq {
            bases: self.bases[range].to_vec(),
        }
    }

    /// The reverse complement (the opposite genome strand, paper §I).
    pub fn reverse_complement(&self) -> DnaSeq {
        DnaSeq {
            bases: self.bases.iter().rev().map(|b| b.complement()).collect(),
        }
    }

    /// Converts to the 2-bit packed representation used by the PIM platform.
    pub fn to_packed(&self) -> PackedSeq {
        self.bases.iter().copied().collect()
    }

    /// Consumes the sequence, returning the underlying base vector.
    pub fn into_bases(self) -> Vec<Base> {
        self.bases
    }

    /// Hamming distance to `other` (number of mismatching positions).
    ///
    /// # Panics
    ///
    /// Panics if the sequences have different lengths.
    pub fn hamming_distance(&self, other: &DnaSeq) -> usize {
        assert_eq!(
            self.len(),
            other.len(),
            "hamming distance requires equal-length sequences"
        );
        self.iter()
            .zip(other.iter())
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl FromStr for DnaSeq {
    type Err = ParseSeqError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.chars().map(Base::from_char).collect()
    }
}

impl fmt::Display for DnaSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bases {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl Index<usize> for DnaSeq {
    type Output = Base;

    fn index(&self, index: usize) -> &Base {
        &self.bases[index]
    }
}

impl FromIterator<Base> for DnaSeq {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> Self {
        DnaSeq {
            bases: iter.into_iter().collect(),
        }
    }
}

impl Extend<Base> for DnaSeq {
    fn extend<I: IntoIterator<Item = Base>>(&mut self, iter: I) {
        self.bases.extend(iter);
    }
}

impl From<Vec<Base>> for DnaSeq {
    fn from(bases: Vec<Base>) -> Self {
        DnaSeq { bases }
    }
}

impl AsRef<[Base]> for DnaSeq {
    fn as_ref(&self) -> &[Base] {
        &self.bases
    }
}

impl<'a> IntoIterator for &'a DnaSeq {
    type Item = &'a Base;
    type IntoIter = std::slice::Iter<'a, Base>;

    fn into_iter(self) -> Self::IntoIter {
        self.bases.iter()
    }
}

impl IntoIterator for DnaSeq {
    type Item = Base;
    type IntoIter = std::vec::IntoIter<Base>;

    fn into_iter(self) -> Self::IntoIter {
        self.bases.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let s: DnaSeq = "TGCTA".parse().unwrap();
        assert_eq!(s.to_string(), "TGCTA");
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn parse_rejects_ambiguity_codes() {
        assert!("ACGTN".parse::<DnaSeq>().is_err());
        assert!("AC-GT".parse::<DnaSeq>().is_err());
    }

    #[test]
    fn lowercase_accepted() {
        let s: DnaSeq = "acgt".parse().unwrap();
        assert_eq!(s.to_string(), "ACGT");
    }

    #[test]
    fn reverse_complement_is_involution() {
        let s: DnaSeq = "GATTACA".parse().unwrap();
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn reverse_complement_known_value() {
        let s: DnaSeq = "ATCG".parse().unwrap();
        assert_eq!(s.reverse_complement().to_string(), "CGAT");
    }

    #[test]
    fn subseq_extracts_range() {
        let s: DnaSeq = "TGCTA".parse().unwrap();
        assert_eq!(s.subseq(2..5).to_string(), "CTA");
    }

    #[test]
    fn hamming_counts_mismatches() {
        let a: DnaSeq = "ACGT".parse().unwrap();
        let b: DnaSeq = "AGGA".parse().unwrap();
        assert_eq!(a.hamming_distance(&b), 2);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn hamming_panics_on_length_mismatch() {
        let a: DnaSeq = "ACGT".parse().unwrap();
        let b: DnaSeq = "ACG".parse().unwrap();
        let _ = a.hamming_distance(&b);
    }

    #[test]
    fn collect_and_extend() {
        let mut s: DnaSeq = [Base::A, Base::C].into_iter().collect();
        s.extend([Base::G, Base::T]);
        assert_eq!(s.to_string(), "ACGT");
    }

    #[test]
    fn empty_sequence_behaves() {
        let s = DnaSeq::new();
        assert!(s.is_empty());
        assert_eq!(s.to_string(), "");
        assert_eq!(s.get(0), None);
    }

    #[test]
    fn from_ascii_matches_from_str() {
        let a = DnaSeq::from_ascii(b"ACGT").unwrap();
        let b: DnaSeq = "ACGT".parse().unwrap();
        assert_eq!(a, b);
    }
}
