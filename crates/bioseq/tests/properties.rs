//! Property tests on the sequence substrate's invariants.

use bioseq::quality::{Phred, QualityString};
use bioseq::{fasta, fastq, Base, DnaSeq, PackedSeq};
use proptest::prelude::*;

fn arb_seq(max_len: usize) -> impl Strategy<Value = DnaSeq> {
    proptest::collection::vec(0u8..4, 0..max_len)
        .prop_map(|v| v.into_iter().map(|r| Base::from_rank(r as usize)).collect())
}

proptest! {
    #[test]
    fn packed_round_trip(seq in arb_seq(600)) {
        let packed: PackedSeq = seq.to_packed();
        prop_assert_eq!(packed.to_dna_seq(), seq);
    }

    #[test]
    fn packed_uses_quarter_the_bytes(seq in arb_seq(600)) {
        let packed = seq.to_packed();
        prop_assert_eq!(packed.as_bytes().len(), seq.len().div_ceil(4));
    }

    #[test]
    fn reverse_complement_involution(seq in arb_seq(300)) {
        prop_assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }

    #[test]
    fn reverse_complement_reverses_order(seq in arb_seq(300)) {
        let rc = seq.reverse_complement();
        prop_assert_eq!(rc.len(), seq.len());
        for (i, b) in seq.iter().enumerate() {
            prop_assert_eq!(rc[seq.len() - 1 - i], b.complement());
        }
    }

    #[test]
    fn display_parse_round_trip(seq in arb_seq(300)) {
        let text = seq.to_string();
        prop_assert_eq!(text.parse::<DnaSeq>().unwrap(), seq);
    }

    #[test]
    fn fasta_round_trip(seq in arb_seq(400)) {
        let records = vec![fasta::Record::new("r1", Some("prop".into()), seq)];
        let text = fasta::to_string(&records);
        prop_assert_eq!(fasta::parse(&text).unwrap(), records);
    }

    #[test]
    fn fastq_round_trip(seq in arb_seq(200), qshift in 0u8..40) {
        let quality: QualityString =
            (0..seq.len()).map(|i| Phred::new((i as u8).wrapping_add(qshift) % 94)).collect();
        let records = vec![fastq::Record::new("r1", seq, quality)];
        let text = fastq::to_string(&records);
        prop_assert_eq!(fastq::parse(&text).unwrap(), records);
    }

    #[test]
    fn hamming_distance_is_a_metric(a in arb_seq(100)) {
        // d(a, a) = 0 and symmetry with a mutated copy.
        prop_assert_eq!(a.hamming_distance(&a), 0);
        if !a.is_empty() {
            let mut bases = a.clone().into_bases();
            let k = bases.len() / 2;
            bases[k] = bases[k].complement();
            let b = DnaSeq::from_bases(bases);
            prop_assert_eq!(a.hamming_distance(&b), b.hamming_distance(&a));
            prop_assert_eq!(a.hamming_distance(&b), 1);
        }
    }

    #[test]
    fn phred_ascii_round_trip(q in 0u8..94) {
        let p = Phred::new(q);
        prop_assert_eq!(Phred::from_ascii(p.to_ascii()), Some(p));
    }
}
