//! Deployment scaling: from one simulated die to a full-genome platform.
//!
//! The laptop-scale experiments map a few hundred kilobases; the paper's
//! target is Hg19, whose stored tables need ~13 GiB (see
//! `fmindex::size_model`). This module does the remaining arithmetic:
//! how many dies of a given capacity hold the tables, and what the
//! resulting board looks like. Because the correlated mapping (paper §V)
//! keeps every `LFM` local to one sub-array, throughput scales with the
//! number of *active pipeline units*, not with the genome size — the
//! scaling laws the per-query O(m) cost implies.

/// A multi-chip deployment sized to hold an index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deployment {
    /// Dies required.
    pub chips: usize,
    /// Total die area, mm².
    pub total_area_mm2: f64,
    /// Total storage capacity, bytes.
    pub total_capacity_bytes: u64,
    /// Capacity headroom factor (capacity / tables).
    pub headroom: f64,
}

/// Sizes a deployment: the smallest whole number of chips whose combined
/// capacity holds `table_bytes`.
///
/// # Panics
///
/// Panics if any argument is zero or non-positive.
///
/// # Examples
///
/// ```
/// use accel::scaling::deployment_for;
///
/// // Hg19 tables (~13 GiB) on 64 MiB computational-MRAM dies:
/// let d = deployment_for(14_000_000_000, 64 << 20, 36.7);
/// assert!(d.chips > 100, "needs a board of dies, got {}", d.chips);
/// assert!(d.headroom >= 1.0);
/// ```
/// Load-balance efficiency of a parallel region from its per-worker
/// busy times: mean over max. `1.0` means every worker was busy for
/// exactly as long as the busiest one (perfect balance); values toward
/// `0.0` mean one straggler dominated. Empty or all-idle input is
/// defined as `0.0` — there was no work to balance.
///
/// # Examples
///
/// ```
/// use accel::scaling::load_balance_efficiency;
///
/// assert_eq!(load_balance_efficiency(&[500, 500, 500, 500]), 1.0);
/// assert_eq!(load_balance_efficiency(&[1_000, 0, 0, 0]), 0.25);
/// assert_eq!(load_balance_efficiency(&[]), 0.0);
/// ```
pub fn load_balance_efficiency(busy_ns: &[u64]) -> f64 {
    let max = busy_ns.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return 0.0;
    }
    let mean = busy_ns.iter().map(|&b| b as f64).sum::<f64>() / busy_ns.len() as f64;
    mean / max as f64
}

pub fn deployment_for(
    table_bytes: u64,
    chip_capacity_bytes: u64,
    chip_area_mm2: f64,
) -> Deployment {
    assert!(table_bytes > 0, "table size must be positive");
    assert!(chip_capacity_bytes > 0, "chip capacity must be positive");
    assert!(chip_area_mm2 > 0.0, "chip area must be positive");
    let chips = table_bytes.div_ceil(chip_capacity_bytes) as usize;
    let total_capacity_bytes = chips as u64 * chip_capacity_bytes;
    Deployment {
        chips,
        total_area_mm2: chips as f64 * chip_area_mm2,
        total_capacity_bytes,
        headroom: total_capacity_bytes as f64 / table_bytes as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HG19_TABLE_BYTES: u64 = 14_000_000_000; // ~13 GiB, size_model

    #[test]
    fn hg19_on_simulated_dies() {
        // The default simulated die: 2048 × 512×256 sub-arrays = 64 MiB.
        let d = deployment_for(HG19_TABLE_BYTES, 64 << 20, 36.7);
        assert_eq!(d.chips, 209);
        assert!((d.headroom - 1.0).abs() < 0.01);
    }

    #[test]
    fn denser_dies_shrink_the_board() {
        let small = deployment_for(HG19_TABLE_BYTES, 64 << 20, 36.7);
        let dense = deployment_for(HG19_TABLE_BYTES, 1 << 30, 120.0);
        assert!(dense.chips < small.chips / 10);
        assert_eq!(dense.chips, 14);
    }

    #[test]
    fn exact_fit_has_unit_headroom() {
        let d = deployment_for(1 << 30, 1 << 28, 10.0);
        assert_eq!(d.chips, 4);
        assert_eq!(d.headroom, 1.0);
        assert_eq!(d.total_area_mm2, 40.0);
    }

    #[test]
    fn tiny_index_still_needs_one_chip() {
        let d = deployment_for(1, 1 << 20, 5.0);
        assert_eq!(d.chips, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = deployment_for(1, 0, 1.0);
    }

    #[test]
    fn balance_is_mean_over_max() {
        assert_eq!(load_balance_efficiency(&[400, 400, 400, 400]), 1.0);
        let skewed = load_balance_efficiency(&[800, 200, 200, 400]);
        assert!((skewed - 0.5).abs() < 1e-12, "got {skewed}");
        assert_eq!(load_balance_efficiency(&[7]), 1.0);
    }

    #[test]
    fn balance_degenerate_inputs_are_zero() {
        assert_eq!(load_balance_efficiency(&[]), 0.0);
        assert_eq!(load_balance_efficiency(&[0, 0, 0]), 0.0);
    }
}
