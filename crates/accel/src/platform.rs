//! The platform model and the published-accelerator catalogue.

use serde::{Deserialize, Serialize};

/// Which algorithm family a platform accelerates (the two groups of
/// Fig. 8: "SW" vs "FM-index").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformClass {
    /// Dynamic-programming (Smith–Waterman / BLASTN-class) accelerators.
    SmithWaterman,
    /// BWT/FM-index-based accelerators.
    FmIndex,
}

/// One accelerator's figures-of-merit for the evaluation figures.
///
/// # Examples
///
/// ```
/// use accel::{Platform, PlatformClass};
///
/// let p = Platform::new("Example", PlatformClass::FmIndex, 10.0, 1.0e6, 50.0, 0.0, 20.0, 60.0);
/// assert_eq!(p.throughput_per_watt(), 1.0e5);
/// assert_eq!(p.throughput_per_watt_mm2(), 2.0e3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Display name used in the figures.
    pub name: String,
    /// Algorithm family.
    pub class: PlatformClass,
    /// Power consumption on the 10 M × 100 bp workload, watts (Fig. 8a).
    pub power_w: f64,
    /// Alignment throughput, queries/s (Fig. 8b).
    pub throughput_qps: f64,
    /// Effective die area including the memory system, mm² (Fig. 9b).
    pub area_mm2: f64,
    /// Off-chip memory traffic requirement, GB (Fig. 10a).
    pub offchip_gb: f64,
    /// Memory Bottleneck Ratio, percent (Fig. 10b).
    pub mbr_pct: f64,
    /// Resource Utilization Ratio, percent (Fig. 10c).
    pub rur_pct: f64,
}

impl Platform {
    /// Creates a platform model.
    ///
    /// # Panics
    ///
    /// Panics if power, throughput or area is non-positive, or a ratio is
    /// outside `[0, 100]`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        class: PlatformClass,
        power_w: f64,
        throughput_qps: f64,
        area_mm2: f64,
        offchip_gb: f64,
        mbr_pct: f64,
        rur_pct: f64,
    ) -> Platform {
        assert!(power_w > 0.0, "power must be positive");
        assert!(throughput_qps > 0.0, "throughput must be positive");
        assert!(area_mm2 > 0.0, "area must be positive");
        assert!(offchip_gb >= 0.0, "off-chip memory must be non-negative");
        assert!((0.0..=100.0).contains(&mbr_pct), "MBR must be a percentage");
        assert!((0.0..=100.0).contains(&rur_pct), "RUR must be a percentage");
        Platform {
            name: name.into(),
            class,
            power_w,
            throughput_qps,
            area_mm2,
            offchip_gb,
            mbr_pct,
            rur_pct,
        }
    }

    /// Builds a platform row from simulator measurements (the bridge
    /// from `pim_aligner::PerfReport` — kept decoupled so this crate
    /// needs no dependency on the simulator).
    #[allow(clippy::too_many_arguments)]
    pub fn from_measurements(
        name: impl Into<String>,
        class: PlatformClass,
        power_w: f64,
        throughput_qps: f64,
        area_mm2: f64,
        offchip_gb: f64,
        mbr_pct: f64,
        rur_pct: f64,
    ) -> Platform {
        Platform::new(
            name,
            class,
            power_w,
            throughput_qps,
            area_mm2,
            offchip_gb,
            mbr_pct,
            rur_pct,
        )
    }

    /// Throughput per watt (Fig. 9a).
    pub fn throughput_per_watt(&self) -> f64 {
        self.throughput_qps / self.power_w
    }

    /// Throughput per watt per mm² (Fig. 9b).
    pub fn throughput_per_watt_mm2(&self) -> f64 {
        self.throughput_per_watt() / self.area_mm2
    }
}

/// The eight published comparison platforms, in the paper's figure
/// order. Values are calibrated to reproduce the paper's reported ratios
/// against the simulated PIM-Aligner-n operating point
/// (≈ 4.7 M queries/s at ≈ 18.8 W on a ≈ 37 mm² die ⇒
/// ≈ 2.5 × 10⁵ q/s/W and ≈ 6.9 × 10³ q/s/W/mm²); the full derivation is
/// tabulated in EXPERIMENTS.md.
pub fn catalog() -> Vec<Platform> {
    use PlatformClass::{FmIndex, SmithWaterman};
    vec![
        // SW-based platforms: large power budgets (Fig. 8a), strong
        // throughput (RaceLogic the best SW accelerator: PIM-Aligner-n
        // beats it 3.1× in throughput/W).
        Platform::new(
            "Darwin",
            SmithWaterman,
            100.0,
            1.5e6,
            290.0,
            32.0,
            45.0,
            55.0,
        ),
        Platform::new(
            "ReCAM",
            SmithWaterman,
            150.0,
            3.75e6,
            220.0,
            0.0,
            20.0,
            60.0,
        ),
        Platform::new(
            "RaceLogic",
            SmithWaterman,
            120.0,
            9.75e6,
            250.0,
            8.0,
            40.0,
            60.0,
        ),
        // FM-index platforms.
        Platform::new("GPU", FmIndex, 180.0, 9.9e4, 600.0, 130.0, 85.0, 15.0),
        Platform::new("FPGA", FmIndex, 35.0, 2.0e5, 450.0, 60.0, 70.0, 30.0),
        Platform::new("ASIC", FmIndex, 2.0, 2.5e5, 165.0, 1.0, 50.0, 50.0),
        Platform::new("AligneR", FmIndex, 8.0, 1.44e6, 50.0, 0.0, 24.0, 65.0),
        Platform::new("AlignS", FmIndex, 10.0, 2.85e6, 45.0, 0.0, 20.0, 70.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The simulated PIM-Aligner-n operating point the catalogue is
    /// calibrated against (kept in sync with the core crate's report
    /// tests).
    const PIM_N_TPW: f64 = 4.74e6 / 18.8;
    const PIM_N_TPW_MM2: f64 = PIM_N_TPW / 36.7;

    fn by_name(name: &str) -> Platform {
        catalog().into_iter().find(|p| p.name == name).unwrap()
    }

    #[test]
    fn catalog_has_eight_platforms_in_figure_order() {
        let names: Vec<String> = catalog().into_iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            [
                "Darwin",
                "ReCAM",
                "RaceLogic",
                "GPU",
                "FPGA",
                "ASIC",
                "AligneR",
                "AlignS"
            ]
        );
    }

    #[test]
    fn race_logic_is_best_sw_platform() {
        let best_sw = catalog()
            .into_iter()
            .filter(|p| p.class == PlatformClass::SmithWaterman)
            .max_by(|a, b| a.throughput_per_watt().total_cmp(&b.throughput_per_watt()))
            .unwrap();
        assert_eq!(best_sw.name, "RaceLogic");
    }

    #[test]
    fn paper_ratio_race_logic_3_1x() {
        let r = PIM_N_TPW / by_name("RaceLogic").throughput_per_watt();
        assert!((2.8..3.4).contains(&r), "RaceLogic ratio {r:.2}");
    }

    #[test]
    fn paper_ratio_asic_2x_throughput_per_watt() {
        let r = PIM_N_TPW / by_name("ASIC").throughput_per_watt();
        assert!((1.7..2.4).contains(&r), "ASIC ratio {r:.2}");
    }

    #[test]
    fn paper_ratio_fpga_43_8x() {
        let r = PIM_N_TPW / by_name("FPGA").throughput_per_watt();
        assert!((38.0..50.0).contains(&r), "FPGA ratio {r:.2}");
    }

    #[test]
    fn paper_ratio_gpu_458x() {
        let r = PIM_N_TPW / by_name("GPU").throughput_per_watt();
        assert!((400.0..520.0).contains(&r), "GPU ratio {r:.2}");
    }

    #[test]
    fn aligns_has_higher_throughput_per_watt_than_pim_n() {
        // Fig. 9a: "SOT-MRAM-AlignS achieves the highest throughput per
        // Watt"; PIM-Aligner-n is second.
        assert!(by_name("AlignS").throughput_per_watt() > PIM_N_TPW);
        for other in [
            "Darwin",
            "ReCAM",
            "RaceLogic",
            "GPU",
            "FPGA",
            "ASIC",
            "AligneR",
        ] {
            assert!(
                by_name(other).throughput_per_watt() < PIM_N_TPW,
                "{other} should trail PIM-Aligner-n"
            );
        }
    }

    #[test]
    fn paper_ratio_area_normalised() {
        // Fig. 9b: ~9× over the ASIC, 1.9× over AligneR, and PIM-Aligner
        // beats every platform once area counts.
        let asic = PIM_N_TPW_MM2 / by_name("ASIC").throughput_per_watt_mm2();
        assert!((7.5..10.5).contains(&asic), "ASIC area ratio {asic:.2}");
        let aligner = PIM_N_TPW_MM2 / by_name("AligneR").throughput_per_watt_mm2();
        assert!(
            (1.6..2.2).contains(&aligner),
            "AligneR area ratio {aligner:.2}"
        );
        for p in catalog() {
            assert!(
                p.throughput_per_watt_mm2() < PIM_N_TPW_MM2,
                "{} should trail PIM-Aligner-n per mm²",
                p.name
            );
        }
    }

    #[test]
    fn offchip_memory_matches_fig10a_shape() {
        // GPU/FPGA huge, ASIC exactly 1 GB ("with only 1GB off-chip
        // memory after compression"), PIMs zero.
        assert!(by_name("GPU").offchip_gb > 100.0);
        assert!(by_name("FPGA").offchip_gb > 30.0);
        assert_eq!(by_name("ASIC").offchip_gb, 1.0);
        assert_eq!(by_name("AligneR").offchip_gb, 0.0);
        assert_eq!(by_name("AlignS").offchip_gb, 0.0);
    }

    #[test]
    fn pim_platforms_have_low_mbr() {
        // Fig. 10b: "other PIM platforms also spend less than 25% time";
        // AligneR's is the highest among them.
        for p in ["ReCAM", "AligneR", "AlignS"] {
            assert!(by_name(p).mbr_pct < 25.0, "{p} MBR");
        }
        assert!(by_name("AligneR").mbr_pct > by_name("AlignS").mbr_pct);
        assert!(by_name("GPU").mbr_pct > 80.0);
    }

    #[test]
    #[should_panic(expected = "power must be positive")]
    fn invalid_platform_rejected() {
        let _ = Platform::new("bad", PlatformClass::FmIndex, 0.0, 1.0, 1.0, 0.0, 0.0, 0.0);
    }
}
