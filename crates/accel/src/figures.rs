//! Figure-series extraction: one accessor per evaluation figure.

use crate::platform::Platform;

/// The comparison figures of paper §VI that plot one bar per platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Figure {
    /// Fig. 8a — power consumption (W, log scale).
    PowerFig8a,
    /// Fig. 8b — throughput (queries/s, log scale).
    ThroughputFig8b,
    /// Fig. 9a — throughput per watt.
    ThroughputPerWattFig9a,
    /// Fig. 9b — throughput per watt per mm².
    ThroughputPerWattMm2Fig9b,
    /// Fig. 10a — off-chip memory (GB).
    OffchipMemoryFig10a,
    /// Fig. 10b — memory bottleneck ratio (%).
    MbrFig10b,
    /// Fig. 10c — resource utilization ratio (%).
    RurFig10c,
}

impl Figure {
    /// All per-platform comparison figures, in paper order.
    pub const ALL: [Figure; 7] = [
        Figure::PowerFig8a,
        Figure::ThroughputFig8b,
        Figure::ThroughputPerWattFig9a,
        Figure::ThroughputPerWattMm2Fig9b,
        Figure::OffchipMemoryFig10a,
        Figure::MbrFig10b,
        Figure::RurFig10c,
    ];

    /// The figure's label as used in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Figure::PowerFig8a => "Fig. 8a: Power (W)",
            Figure::ThroughputFig8b => "Fig. 8b: Throughput (queries/s)",
            Figure::ThroughputPerWattFig9a => "Fig. 9a: Throughput/Watt",
            Figure::ThroughputPerWattMm2Fig9b => "Fig. 9b: Throughput/Watt/mm^2",
            Figure::OffchipMemoryFig10a => "Fig. 10a: Off-chip memory (GB)",
            Figure::MbrFig10b => "Fig. 10b: Memory Bottleneck Ratio (%)",
            Figure::RurFig10c => "Fig. 10c: Resource Utilization Ratio (%)",
        }
    }

    /// Extracts this figure's value from one platform.
    pub fn value(self, platform: &Platform) -> f64 {
        match self {
            Figure::PowerFig8a => platform.power_w,
            Figure::ThroughputFig8b => platform.throughput_qps,
            Figure::ThroughputPerWattFig9a => platform.throughput_per_watt(),
            Figure::ThroughputPerWattMm2Fig9b => platform.throughput_per_watt_mm2(),
            Figure::OffchipMemoryFig10a => platform.offchip_gb,
            Figure::MbrFig10b => platform.mbr_pct,
            Figure::RurFig10c => platform.rur_pct,
        }
    }
}

/// The `(name, value)` series for one figure over a platform list
/// (catalogue + appended PIM-Aligner rows), preserving order.
///
/// # Examples
///
/// ```
/// use accel::{catalog, figure_series, Figure};
///
/// let series = figure_series(Figure::PowerFig8a, &catalog());
/// assert_eq!(series.len(), 8);
/// assert_eq!(series[0].0, "Darwin");
/// ```
pub fn figure_series(figure: Figure, platforms: &[Platform]) -> Vec<(String, f64)> {
    platforms
        .iter()
        .map(|p| (p.name.clone(), figure.value(p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{catalog, PlatformClass};

    #[test]
    fn every_figure_yields_full_series() {
        let platforms = catalog();
        for figure in Figure::ALL {
            let series = figure_series(figure, &platforms);
            assert_eq!(series.len(), platforms.len(), "{}", figure.label());
            assert!(series.iter().all(|(_, v)| v.is_finite()));
        }
    }

    #[test]
    fn values_match_accessors() {
        let p = Platform::new(
            "X",
            PlatformClass::FmIndex,
            4.0,
            8.0e5,
            20.0,
            2.0,
            30.0,
            40.0,
        );
        assert_eq!(Figure::PowerFig8a.value(&p), 4.0);
        assert_eq!(Figure::ThroughputFig8b.value(&p), 8.0e5);
        assert_eq!(Figure::ThroughputPerWattFig9a.value(&p), 2.0e5);
        assert_eq!(Figure::ThroughputPerWattMm2Fig9b.value(&p), 1.0e4);
        assert_eq!(Figure::OffchipMemoryFig10a.value(&p), 2.0);
        assert_eq!(Figure::MbrFig10b.value(&p), 30.0);
        assert_eq!(Figure::RurFig10c.value(&p), 40.0);
    }

    #[test]
    fn labels_cite_figure_numbers() {
        for f in Figure::ALL {
            assert!(f.label().starts_with("Fig. "), "{}", f.label());
        }
    }
}
