//! Comparison-platform models for the evaluation figures.
//!
//! Paper §VI compares PIM-Aligner against eight published accelerators
//! (Darwin, ReCAM, RaceLogic, GPU/Soap3-dp, FPGA, ASIC, AligneR, AlignS)
//! using numbers taken from their publications. Those publications are
//! not reproducible here, so this crate encodes each platform's
//! figures-of-merit as an analytical model **calibrated to the ratios
//! the paper reports** (3.1× over RaceLogic, ~2× over the ASIC, 43.8×
//! over the FPGA, 458× over the GPU in throughput/W; ~9× over the ASIC
//! and 1.9× over AligneR in throughput/W/mm²; AlignS the only platform
//! with a higher throughput/W; PIMs ≈ 0 off-chip memory, ASIC 1 GB) —
//! see DESIGN.md §2 and EXPERIMENTS.md for the per-figure derivation.
//!
//! The two PIM-Aligner rows are **not** in the static catalogue: they
//! come from the simulator (`pim_aligner::PerfReport`) and are appended
//! by the caller via [`Platform::from_measurements`].
//!
//! # Examples
//!
//! ```
//! use accel::{catalog, PlatformClass};
//!
//! let platforms = catalog();
//! assert_eq!(platforms.len(), 8);
//! let race = platforms.iter().find(|p| p.name == "RaceLogic").unwrap();
//! assert_eq!(race.class, PlatformClass::SmithWaterman);
//! assert!(race.throughput_per_watt() > 0.0);
//! ```

pub mod scaling;

mod figures;
mod platform;

pub use figures::{figure_series, Figure};
pub use platform::{catalog, Platform, PlatformClass};
