//! Population variants: deriving a donor genome from the reference.
//!
//! Reads are sampled from a *donor* that differs from the indexed
//! reference by germline variants (paper: "population variation … set to
//! 0.1%"). These are the differences the inexact alignment stage exists
//! to recover (§III: "the reads contain the genome variations from the
//! sample cannot map to the reference" under exact-only matching).

use bioseq::{Base, DnaSeq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One germline variant applied to the reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Variant {
    /// Single-nucleotide substitution at a reference position.
    Snp {
        /// Reference position.
        pos: usize,
        /// The donor base (differs from the reference base).
        alt: Base,
    },
    /// Short insertion after a reference position.
    Insertion {
        /// Reference position the insert follows.
        pos: usize,
        /// Inserted bases.
        seq: DnaSeq,
    },
    /// Short deletion starting at a reference position.
    Deletion {
        /// First deleted reference position.
        pos: usize,
        /// Number of deleted bases.
        len: usize,
    },
}

impl Variant {
    /// The reference position the variant anchors to.
    pub fn pos(&self) -> usize {
        match self {
            Variant::Snp { pos, .. }
            | Variant::Insertion { pos, .. }
            | Variant::Deletion { pos, .. } => *pos,
        }
    }
}

/// Parameters for donor-genome generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariantProfile {
    /// Per-base probability of a variant event (paper default `0.001`).
    pub rate: f64,
    /// Fraction of variant events that are indels rather than SNPs.
    pub indel_fraction: f64,
    /// Maximum indel length.
    pub max_indel_len: usize,
}

impl Default for VariantProfile {
    /// Paper defaults: 0.1 % variation, 10 % of events are indels, ≤ 3 bp.
    fn default() -> Self {
        VariantProfile {
            rate: 0.001,
            indel_fraction: 0.1,
            max_indel_len: 3,
        }
    }
}

/// A donor genome plus the exact variant list that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Donor {
    /// The mutated genome reads are sampled from.
    pub genome: DnaSeq,
    /// Variants applied, sorted by reference position.
    pub variants: Vec<Variant>,
}

/// Applies random variants to `reference` at the profile's rate.
///
/// # Panics
///
/// Panics if `rate` or `indel_fraction` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use readsim::variant::{apply_variants, VariantProfile};
///
/// let reference = readsim::genome::uniform(50_000, 1);
/// let donor = apply_variants(&reference, VariantProfile::default(), 9);
/// // ~0.1% of 50k = ~50 events.
/// assert!(donor.variants.len() > 20 && donor.variants.len() < 100);
/// ```
pub fn apply_variants(reference: &DnaSeq, profile: VariantProfile, seed: u64) -> Donor {
    assert!(
        (0.0..=1.0).contains(&profile.rate),
        "variant rate must be within [0, 1]"
    );
    assert!(
        (0.0..=1.0).contains(&profile.indel_fraction),
        "indel fraction must be within [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut genome = DnaSeq::with_capacity(reference.len());
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < reference.len() {
        let b = reference[i];
        if rng.gen_bool(profile.rate) {
            if profile.max_indel_len > 0 && rng.gen_bool(profile.indel_fraction) {
                let len = rng.gen_range(1..=profile.max_indel_len);
                if rng.gen_bool(0.5) {
                    // Insertion after position i (the reference base itself
                    // is kept).
                    genome.push(b);
                    let ins: DnaSeq = (0..len)
                        .map(|_| Base::from_rank(rng.gen_range(0..4)))
                        .collect();
                    genome.extend(ins.iter().copied());
                    variants.push(Variant::Insertion { pos: i, seq: ins });
                    i += 1;
                } else {
                    // Deletion of up to `len` bases starting at i.
                    let len = len.min(reference.len() - i);
                    variants.push(Variant::Deletion { pos: i, len });
                    i += len;
                }
            } else {
                // SNP: substitute with one of the three other bases.
                let shift = rng.gen_range(1..4usize);
                let alt = Base::from_rank((b.rank() + shift) % 4);
                genome.push(alt);
                variants.push(Variant::Snp { pos: i, alt });
                i += 1;
            }
        } else {
            genome.push(b);
            i += 1;
        }
    }
    Donor { genome, variants }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::uniform;

    #[test]
    fn zero_rate_is_identity() {
        let reference = uniform(5_000, 2);
        let profile = VariantProfile {
            rate: 0.0,
            ..VariantProfile::default()
        };
        let donor = apply_variants(&reference, profile, 3);
        assert_eq!(donor.genome, reference);
        assert!(donor.variants.is_empty());
    }

    #[test]
    fn rate_is_respected_statistically() {
        let reference = uniform(200_000, 4);
        let donor = apply_variants(&reference, VariantProfile::default(), 5);
        let rate = donor.variants.len() as f64 / reference.len() as f64;
        assert!((rate - 0.001).abs() < 0.0005, "observed rate {rate}");
    }

    #[test]
    fn snps_substitute_with_different_base() {
        let reference = uniform(100_000, 6);
        let profile = VariantProfile {
            indel_fraction: 0.0,
            ..VariantProfile::default()
        };
        let donor = apply_variants(&reference, profile, 7);
        assert_eq!(donor.genome.len(), reference.len());
        for v in &donor.variants {
            let Variant::Snp { pos, alt } = v else {
                panic!("expected only SNPs");
            };
            assert_ne!(reference[*pos], *alt);
            assert_eq!(donor.genome[*pos], *alt);
        }
    }

    #[test]
    fn variants_are_position_sorted() {
        let reference = uniform(50_000, 8);
        let donor = apply_variants(&reference, VariantProfile::default(), 9);
        for w in donor.variants.windows(2) {
            assert!(w[0].pos() <= w[1].pos());
        }
    }

    #[test]
    fn indels_change_length() {
        let reference = uniform(100_000, 10);
        let profile = VariantProfile {
            rate: 0.01,
            indel_fraction: 1.0,
            max_indel_len: 3,
        };
        let donor = apply_variants(&reference, profile, 11);
        assert_ne!(donor.genome.len(), reference.len());
        let has_ins = donor
            .variants
            .iter()
            .any(|v| matches!(v, Variant::Insertion { .. }));
        let has_del = donor
            .variants
            .iter()
            .any(|v| matches!(v, Variant::Deletion { .. }));
        assert!(has_ins && has_del);
    }

    #[test]
    #[should_panic(expected = "variant rate")]
    fn invalid_rate_rejected() {
        let _ = apply_variants(
            &uniform(10, 1),
            VariantProfile {
                rate: 1.5,
                ..Default::default()
            },
            1,
        );
    }
}
