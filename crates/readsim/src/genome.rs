//! Synthetic reference-genome generation.
//!
//! Substitutes for Hg19 (DESIGN.md §2): backward-search cost is O(m) per
//! read independent of genome content, but *mappability* is not — repeats
//! produce multi-hit intervals exactly as the human genome's repetitive
//! fraction does. Two generators cover both regimes.

use bioseq::{Base, DnaSeq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a uniform-random genome of `len` bases.
///
/// # Examples
///
/// ```
/// let g = readsim::genome::uniform(1000, 1);
/// assert_eq!(g.len(), 1000);
/// // Deterministic per seed:
/// assert_eq!(g, readsim::genome::uniform(1000, 1));
/// assert_ne!(g, readsim::genome::uniform(1000, 2));
/// ```
pub fn uniform(len: usize, seed: u64) -> DnaSeq {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| Base::from_rank(rng.gen_range(0..4)))
        .collect()
}

/// Configuration for [`repeat_rich`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepeatProfile {
    /// Fraction of the genome covered by repeat copies (0.0 ..= 0.9).
    pub repeat_fraction: f64,
    /// Length of each repeat unit in bases.
    pub unit_len: usize,
    /// Number of distinct repeat families.
    pub families: usize,
    /// Per-base divergence applied to each repeat copy (models ancient
    /// repeats; 0.0 = identical copies).
    pub divergence: f64,
}

impl Default for RepeatProfile {
    /// Roughly human-like: ~45 % repeats, 300 bp units, 20 families, 5 %
    /// divergence.
    fn default() -> Self {
        RepeatProfile {
            repeat_fraction: 0.45,
            unit_len: 300,
            families: 20,
            divergence: 0.05,
        }
    }
}

/// Generates a repeat-rich genome: unique random sequence interleaved with
/// diverged copies of a small set of repeat units.
///
/// # Panics
///
/// Panics if `repeat_fraction` is outside `[0, 0.9]`, `unit_len` is zero,
/// or `families` is zero.
///
/// # Examples
///
/// ```
/// use readsim::genome::{repeat_rich, RepeatProfile};
///
/// let g = repeat_rich(20_000, RepeatProfile::default(), 3);
/// assert_eq!(g.len(), 20_000);
/// ```
pub fn repeat_rich(len: usize, profile: RepeatProfile, seed: u64) -> DnaSeq {
    assert!(
        (0.0..=0.9).contains(&profile.repeat_fraction),
        "repeat fraction must be within [0, 0.9]"
    );
    assert!(profile.unit_len > 0, "repeat unit length must be positive");
    assert!(profile.families > 0, "at least one repeat family required");
    let mut rng = StdRng::seed_from_u64(seed);
    let units: Vec<DnaSeq> = (0..profile.families)
        .map(|_| {
            (0..profile.unit_len)
                .map(|_| Base::from_rank(rng.gen_range(0..4)))
                .collect()
        })
        .collect();
    let mut out = DnaSeq::with_capacity(len);
    while out.len() < len {
        if rng.gen_bool(profile.repeat_fraction) {
            let unit = &units[rng.gen_range(0..units.len())];
            for &b in unit.iter().take(len - out.len()) {
                if rng.gen_bool(profile.divergence) {
                    // Diverged copy: substitute with a different base.
                    let shift = rng.gen_range(1..4usize);
                    out.push(Base::from_rank((b.rank() + shift) % 4));
                } else {
                    out.push(b);
                }
            }
        } else {
            let run = profile.unit_len.min(len - out.len());
            for _ in 0..run {
                out.push(Base::from_rank(rng.gen_range(0..4)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::kmer::kmers;
    use std::collections::HashMap;

    #[test]
    fn uniform_has_requested_length_and_rough_composition() {
        let g = uniform(40_000, 11);
        assert_eq!(g.len(), 40_000);
        let mut counts = [0usize; 4];
        for b in g.iter() {
            counts[b.rank()] += 1;
        }
        for &c in &counts {
            // Each base ≈ 25 % ± 3 %.
            assert!(
                (c as f64 / 40_000.0 - 0.25).abs() < 0.03,
                "skewed {counts:?}"
            );
        }
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        assert_eq!(uniform(500, 3), uniform(500, 3));
        assert_ne!(uniform(500, 3), uniform(500, 4));
    }

    #[test]
    fn repeat_rich_repeats_more_kmers_than_uniform() {
        let len = 30_000;
        let profile = RepeatProfile {
            divergence: 0.0,
            ..RepeatProfile::default()
        };
        let repetitive = repeat_rich(len, profile, 5);
        let random = uniform(len, 5);
        let dup_fraction = |g: &DnaSeq| {
            let mut seen: HashMap<u64, usize> = HashMap::new();
            for k in kmers(g, 21) {
                *seen.entry(k.packed()).or_insert(0) += 1;
            }
            let dups: usize = seen.values().filter(|&&c| c > 1).copied().sum();
            dups as f64 / (g.len() - 20) as f64
        };
        assert!(
            dup_fraction(&repetitive) > 10.0 * dup_fraction(&random).max(1e-6),
            "repeat-rich genome should duplicate far more 21-mers"
        );
    }

    #[test]
    fn repeat_rich_exact_length() {
        let g = repeat_rich(1234, RepeatProfile::default(), 1);
        assert_eq!(g.len(), 1234);
    }

    #[test]
    #[should_panic(expected = "repeat fraction")]
    fn invalid_fraction_rejected() {
        let profile = RepeatProfile {
            repeat_fraction: 0.99,
            ..RepeatProfile::default()
        };
        let _ = repeat_rich(100, profile, 1);
    }

    #[test]
    fn zero_length_genomes() {
        assert!(uniform(0, 1).is_empty());
        assert!(repeat_rich(0, RepeatProfile::default(), 1).is_empty());
    }
}
