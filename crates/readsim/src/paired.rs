//! Paired-end read simulation.
//!
//! Beyond-paper extension (DESIGN.md §8): genomic pipelines the paper's
//! introduction motivates (variant calling, expression) are predominantly
//! paired-end. A fragment of the donor genome is sampled with a normally
//! distributed insert size; read 1 is the fragment's 5′ end, read 2 the
//! reverse complement of its 3′ end (Illumina FR orientation).

use bioseq::DnaSeq;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::reads::{ReadSimulator, SimProfile, Strand};
use crate::variant::Donor;

/// Parameters of the paired-end fragment model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsertProfile {
    /// Mean fragment (outer insert) length in bases.
    pub mean: f64,
    /// Standard deviation of the fragment length.
    pub std_dev: f64,
}

impl Default for InsertProfile {
    /// Illumina-typical: 400 ± 50 bp.
    fn default() -> Self {
        InsertProfile {
            mean: 400.0,
            std_dev: 50.0,
        }
    }
}

/// One simulated read pair with ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadPair {
    /// Pair identifier.
    pub id: String,
    /// Read 1 (fragment 5′ end, forward orientation in the donor).
    pub r1: DnaSeq,
    /// Read 2 (reverse complement of the fragment 3′ end).
    pub r2: DnaSeq,
    /// Fragment start in the donor genome.
    pub fragment_start: usize,
    /// Fragment (outer insert) length.
    pub fragment_len: usize,
}

/// The paired simulation output.
#[derive(Debug, Clone, PartialEq)]
pub struct PairedSimulation {
    /// The donor genome the fragments were sampled from.
    pub donor: Donor,
    /// The generated pairs.
    pub pairs: Vec<ReadPair>,
}

/// Simulates `count` read pairs from `reference`.
///
/// Sequencing errors, variants and read length follow `profile`; the
/// fragment length follows `insert` (clamped to at least the read
/// length, at most the donor length).
///
/// # Panics
///
/// Panics if the reference is shorter than the mean insert or
/// `count == 0`.
///
/// # Examples
///
/// ```
/// use readsim::paired::{simulate_pairs, InsertProfile};
/// use readsim::{genome, SimProfile};
///
/// let reference = genome::uniform(10_000, 3);
/// let profile = SimProfile::paper_defaults().read_count(20).read_len(50);
/// let sim = simulate_pairs(&reference, profile, InsertProfile::default(), 9);
/// assert_eq!(sim.pairs.len(), 20);
/// assert!(sim.pairs.iter().all(|p| p.fragment_len >= 50));
/// ```
pub fn simulate_pairs(
    reference: &DnaSeq,
    profile: SimProfile,
    insert: InsertProfile,
    seed: u64,
) -> PairedSimulation {
    assert!(profile.count > 0, "at least one pair required");
    assert!(
        reference.len() as f64 > insert.mean,
        "reference shorter than the mean insert"
    );
    // Reuse the single-end machinery for the donor genome.
    let single =
        ReadSimulator::new(profile.read_count(1).forward_only(), seed ^ 0xfa1).simulate(reference);
    let donor = single.donor;
    let read_len = profile.read_len;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(profile.count);
    for i in 0..profile.count {
        // Box–Muller for the fragment length.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let fragment_len = ((insert.mean + insert.std_dev * z).round() as isize)
            .clamp(read_len as isize, donor.genome.len() as isize)
            as usize;
        let fragment_start = rng.gen_range(0..=donor.genome.len() - fragment_len);
        let fragment = donor
            .genome
            .subseq(fragment_start..fragment_start + fragment_len);
        let r1 = with_errors(&fragment.subseq(0..read_len), profile.error_rate, &mut rng);
        let r2_template = fragment
            .subseq(fragment_len - read_len..fragment_len)
            .reverse_complement();
        let r2 = with_errors(&r2_template, profile.error_rate, &mut rng);
        pairs.push(ReadPair {
            id: format!("pair{i}"),
            r1,
            r2,
            fragment_start,
            fragment_len,
        });
    }
    PairedSimulation { donor, pairs }
}

fn with_errors(template: &DnaSeq, error_rate: f64, rng: &mut StdRng) -> DnaSeq {
    template
        .iter()
        .map(|&b| {
            if error_rate > 0.0 && rng.gen_bool(error_rate) {
                bioseq::Base::from_rank((b.rank() + rng.gen_range(1..4usize)) % 4)
            } else {
                b
            }
        })
        .collect()
}

/// Expected orientation of a properly paired alignment: R1 forward,
/// R2 reverse (or the mirror image when the fragment came from the other
/// strand — not simulated here, the aligner handles it symmetrically).
pub const PROPER_ORIENTATION: (Strand, Strand) = (Strand::Forward, Strand::Reverse);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::uniform;
    use crate::variant::VariantProfile;

    fn clean_profile(count: usize, len: usize) -> SimProfile {
        SimProfile::paper_defaults()
            .read_count(count)
            .read_len(len)
            .error_rate(0.0)
            .variants(VariantProfile {
                rate: 0.0,
                ..VariantProfile::default()
            })
    }

    #[test]
    fn pair_geometry_is_consistent() {
        let reference = uniform(20_000, 5);
        let sim = simulate_pairs(
            &reference,
            clean_profile(50, 80),
            InsertProfile::default(),
            6,
        );
        for p in &sim.pairs {
            assert_eq!(p.r1.len(), 80);
            assert_eq!(p.r2.len(), 80);
            assert!(p.fragment_len >= 80);
            assert!(p.fragment_start + p.fragment_len <= reference.len());
            // Clean pairs reconstruct exactly from the donor (== reference).
            assert_eq!(
                p.r1,
                reference.subseq(p.fragment_start..p.fragment_start + 80)
            );
            let r2_expected = reference
                .subseq(p.fragment_start + p.fragment_len - 80..p.fragment_start + p.fragment_len)
                .reverse_complement();
            assert_eq!(p.r2, r2_expected);
        }
    }

    #[test]
    fn insert_lengths_follow_the_profile() {
        let reference = uniform(50_000, 7);
        let insert = InsertProfile {
            mean: 300.0,
            std_dev: 30.0,
        };
        let sim = simulate_pairs(&reference, clean_profile(400, 50), insert, 8);
        let mean: f64 =
            sim.pairs.iter().map(|p| p.fragment_len as f64).sum::<f64>() / sim.pairs.len() as f64;
        assert!((mean - 300.0).abs() < 10.0, "observed mean insert {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let reference = uniform(10_000, 9);
        let a = simulate_pairs(
            &reference,
            clean_profile(10, 50),
            InsertProfile::default(),
            10,
        );
        let b = simulate_pairs(
            &reference,
            clean_profile(10, 50),
            InsertProfile::default(),
            10,
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "shorter than the mean insert")]
    fn tiny_reference_rejected() {
        let reference = uniform(100, 1);
        let _ = simulate_pairs(
            &reference,
            clean_profile(1, 50),
            InsertProfile::default(),
            1,
        );
    }
}
