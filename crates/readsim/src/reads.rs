//! Read sampling with sequencing errors and ground truth.

use bioseq::quality::{Phred, QualityString};
use bioseq::{Base, DnaSeq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::variant::{apply_variants, VariantProfile};

/// Which genome strand a read was sampled from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strand {
    /// The reference orientation.
    Forward,
    /// The reverse complement.
    Reverse,
}

/// One simulated read with its ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulatedRead {
    /// Sequential identifier (`read<N>`).
    pub id: String,
    /// The read sequence as it would leave the sequencer.
    pub seq: DnaSeq,
    /// Per-base Phred qualities.
    pub quality: QualityString,
    /// True origin: start position *in the donor genome*.
    pub donor_pos: usize,
    /// Strand the read was sampled from.
    pub strand: Strand,
    /// Number of sequencing errors injected into this read.
    pub errors: usize,
}

/// Simulation parameters (paper §VI defaults exposed as
/// [`SimProfile::paper_defaults`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimProfile {
    /// Read length in bases (paper: 100 bp).
    pub read_len: usize,
    /// Number of reads to generate (paper: 10 M; scale down for tests).
    pub count: usize,
    /// Per-base sequencing-error probability (paper: 0.002).
    pub error_rate: f64,
    /// Population-variant profile for the donor genome (paper rate 0.001).
    pub variants: VariantProfile,
    /// Whether to sample from both strands.
    pub both_strands: bool,
}

impl SimProfile {
    /// The paper's workload parameters: 100 bp reads, 0.2 % sequencing
    /// error, 0.1 % population variation (count left at 10 000 — callers
    /// scale with [`read_count`](Self::read_count)).
    pub fn paper_defaults() -> SimProfile {
        SimProfile {
            read_len: 100,
            count: 10_000,
            error_rate: 0.002,
            variants: VariantProfile::default(),
            both_strands: true,
        }
    }

    /// Sets the number of reads.
    pub fn read_count(mut self, count: usize) -> SimProfile {
        self.count = count;
        self
    }

    /// Sets the read length.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn read_len(mut self, len: usize) -> SimProfile {
        assert!(len > 0, "read length must be positive");
        self.read_len = len;
        self
    }

    /// Sets the per-base sequencing-error rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn error_rate(mut self, rate: f64) -> SimProfile {
        assert!((0.0..=1.0).contains(&rate), "error rate must be in [0, 1]");
        self.error_rate = rate;
        self
    }

    /// Sets the variant profile.
    pub fn variants(mut self, variants: VariantProfile) -> SimProfile {
        self.variants = variants;
        self
    }

    /// Restricts sampling to the forward strand (useful for tests that
    /// compare against forward-only search).
    pub fn forward_only(mut self) -> SimProfile {
        self.both_strands = false;
        self
    }
}

impl Default for SimProfile {
    fn default() -> Self {
        SimProfile::paper_defaults()
    }
}

/// The simulator output: the donor genome, its variants, and the reads.
#[derive(Debug, Clone, PartialEq)]
pub struct Simulation {
    /// The donor genome the reads were sampled from.
    pub donor: crate::variant::Donor,
    /// The generated reads.
    pub reads: Vec<SimulatedRead>,
}

/// ART-like read simulator.
///
/// # Examples
///
/// ```
/// use readsim::{genome, ReadSimulator, SimProfile};
///
/// let reference = genome::uniform(5_000, 1);
/// let profile = SimProfile::paper_defaults().read_count(10).read_len(50);
/// let sim = ReadSimulator::new(profile, 2).simulate(&reference);
/// assert_eq!(sim.reads.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct ReadSimulator {
    profile: SimProfile,
    seed: u64,
}

impl ReadSimulator {
    /// Creates a simulator with a deterministic seed.
    pub fn new(profile: SimProfile, seed: u64) -> ReadSimulator {
        ReadSimulator { profile, seed }
    }

    /// The active profile.
    pub fn profile(&self) -> &SimProfile {
        &self.profile
    }

    /// Runs the simulation against `reference`.
    ///
    /// # Panics
    ///
    /// Panics if the reference (after variants) is shorter than the read
    /// length.
    pub fn simulate(&self, reference: &DnaSeq) -> Simulation {
        let donor = apply_variants(reference, self.profile.variants, self.seed ^ 0x5eed);
        assert!(
            donor.genome.len() >= self.profile.read_len,
            "reference shorter than read length"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let max_start = donor.genome.len() - self.profile.read_len;
        let reads = (0..self.profile.count)
            .map(|i| {
                let donor_pos = rng.gen_range(0..=max_start);
                let strand = if self.profile.both_strands && rng.gen_bool(0.5) {
                    Strand::Reverse
                } else {
                    Strand::Forward
                };
                let fragment = donor
                    .genome
                    .subseq(donor_pos..donor_pos + self.profile.read_len);
                let template = match strand {
                    Strand::Forward => fragment,
                    Strand::Reverse => fragment.reverse_complement(),
                };
                let mut seq = DnaSeq::with_capacity(template.len());
                let mut quality = QualityString::new();
                let mut errors = 0usize;
                for &b in template.iter() {
                    if rng.gen_bool(self.profile.error_rate) {
                        let shift = rng.gen_range(1..4usize);
                        seq.push(Base::from_rank((b.rank() + shift) % 4));
                        quality.push(Phred::from_error_probability(0.25));
                        errors += 1;
                    } else {
                        seq.push(b);
                        quality.push(Phred::from_error_probability(
                            self.profile.error_rate.max(1e-9),
                        ));
                    }
                }
                SimulatedRead {
                    id: format!("read{i}"),
                    seq,
                    quality,
                    donor_pos,
                    strand,
                    errors,
                }
            })
            .collect();
        Simulation { donor, reads }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::uniform;
    use crate::variant::VariantProfile;

    fn clean_profile(count: usize, len: usize) -> SimProfile {
        SimProfile::paper_defaults()
            .read_count(count)
            .read_len(len)
            .error_rate(0.0)
            .variants(VariantProfile {
                rate: 0.0,
                ..VariantProfile::default()
            })
    }

    #[test]
    fn reads_have_requested_shape() {
        let reference = uniform(2_000, 1);
        let sim =
            ReadSimulator::new(SimProfile::paper_defaults().read_count(25), 2).simulate(&reference);
        assert_eq!(sim.reads.len(), 25);
        for r in &sim.reads {
            assert_eq!(r.seq.len(), 100);
            assert_eq!(r.quality.len(), 100);
        }
    }

    #[test]
    fn clean_forward_reads_match_donor_exactly() {
        let reference = uniform(3_000, 3);
        let sim = ReadSimulator::new(clean_profile(50, 60).forward_only(), 4).simulate(&reference);
        assert_eq!(sim.donor.genome, reference);
        for r in &sim.reads {
            assert_eq!(r.strand, Strand::Forward);
            assert_eq!(r.errors, 0);
            let expected = reference.subseq(r.donor_pos..r.donor_pos + 60);
            assert_eq!(r.seq, expected, "read {} truth mismatch", r.id);
        }
    }

    #[test]
    fn reverse_reads_match_reverse_complement() {
        let reference = uniform(3_000, 5);
        let sim = ReadSimulator::new(clean_profile(200, 40), 6).simulate(&reference);
        let reverse_reads: Vec<&SimulatedRead> = sim
            .reads
            .iter()
            .filter(|r| r.strand == Strand::Reverse)
            .collect();
        assert!(!reverse_reads.is_empty());
        for r in reverse_reads {
            let expected = reference
                .subseq(r.donor_pos..r.donor_pos + 40)
                .reverse_complement();
            assert_eq!(r.seq, expected);
        }
    }

    #[test]
    fn error_rate_statistics() {
        let reference = uniform(10_000, 7);
        let profile = clean_profile(2_000, 100).error_rate(0.01);
        let sim = ReadSimulator::new(profile, 8).simulate(&reference);
        let total_errors: usize = sim.reads.iter().map(|r| r.errors).sum();
        let rate = total_errors as f64 / (2_000.0 * 100.0);
        assert!((rate - 0.01).abs() < 0.002, "observed error rate {rate}");
    }

    #[test]
    fn error_positions_differ_from_template() {
        let reference = uniform(5_000, 9);
        let profile = clean_profile(500, 80).error_rate(0.05).forward_only();
        let sim = ReadSimulator::new(profile, 10).simulate(&reference);
        for r in &sim.reads {
            let template = reference.subseq(r.donor_pos..r.donor_pos + 80);
            assert_eq!(r.seq.hamming_distance(&template), r.errors);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let reference = uniform(2_000, 11);
        let a = ReadSimulator::new(SimProfile::paper_defaults().read_count(20), 12)
            .simulate(&reference);
        let b = ReadSimulator::new(SimProfile::paper_defaults().read_count(20), 12)
            .simulate(&reference);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "shorter than read length")]
    fn tiny_reference_rejected() {
        let reference = uniform(10, 1);
        let _ = ReadSimulator::new(SimProfile::paper_defaults(), 1).simulate(&reference);
    }

    #[test]
    fn paper_defaults_match_evaluation_setup() {
        let p = SimProfile::paper_defaults();
        assert_eq!(p.read_len, 100);
        assert!((p.error_rate - 0.002).abs() < 1e-12);
        assert!((p.variants.rate - 0.001).abs() < 1e-12);
    }
}
