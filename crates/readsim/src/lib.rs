//! ART-style short-read simulation (paper §VI: "we generated 10 million
//! 100-bps short read queries via ART simulator and align them to the
//! human genome Hg19 … the population variation and genome error rate
//! were set to 0.1% and 0.2%").
//!
//! The real evaluation used Hg19 and the ART simulator; neither is
//! available here, so this crate provides the closest synthetic
//! equivalent (see DESIGN.md §2):
//!
//! * [`genome`] — reference generation: uniform random genomes and
//!   repeat-rich genomes that stress multi-mapping reads;
//! * [`variant`] — a *donor* genome derived from the reference by applying
//!   population variants (SNPs and short indels) at a configurable rate;
//! * [`ReadSimulator`] — samples fixed-length reads from the donor, adds
//!   per-base sequencing errors, attaches Phred qualities, and records
//!   ground truth for accuracy accounting.
//!
//! # Examples
//!
//! ```
//! use readsim::{genome, ReadSimulator, SimProfile};
//!
//! let reference = genome::uniform(10_000, 42);
//! let profile = SimProfile::paper_defaults().read_count(100);
//! let sim = ReadSimulator::new(profile, 7).simulate(&reference);
//! assert_eq!(sim.reads.len(), 100);
//! assert!(sim.reads.iter().all(|r| r.seq.len() == 100));
//! ```

pub mod genome;
pub mod paired;
pub mod variant;

mod reads;

pub use reads::{ReadSimulator, SimProfile, SimulatedRead, Simulation, Strand};
