//! Monte-Carlo variation analysis of the sensing circuit (paper Fig. 5b).
//!
//! "To validate the variation tolerance of the sensing circuit, we have
//! performed Monte-Carlo simulation with 10000 trials. A σ = 2% variation
//! is added to the Resistance-Area product (RAP), and a σ = 5% process
//! variation is added on the Tunneling MagnetoResistive (TMR) of
//! SOT-MRAM cells."
//!
//! [`run`] regenerates the three Fig. 5b panels: `V_sense` distributions
//! for 1-, 2- and 3-cell sensing, with the sense margin between each pair
//! of adjacent levels and an empirical misread probability per decision
//! threshold.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::device::{parallel_resistance, CellParams};

/// Number of trials used by the paper.
pub const PAPER_TRIALS: usize = 10_000;

/// Summary statistics of one `V_sense` level (a fixed number of '1' cells
/// at a given fan-in).
#[derive(Debug, Clone, PartialEq)]
pub struct LevelStats {
    /// How many of the sensed cells store '1'.
    pub ones: usize,
    /// Mean sense voltage (mV).
    pub mean_mv: f64,
    /// Standard deviation (mV).
    pub sigma_mv: f64,
    /// Smallest sampled voltage (mV).
    pub min_mv: f64,
    /// Largest sampled voltage (mV).
    pub max_mv: f64,
    /// All samples (mV), for histogramming.
    pub samples_mv: Vec<f64>,
}

/// Monte-Carlo results for one fan-in (one Fig. 5b panel).
#[derive(Debug, Clone, PartialEq)]
pub struct FanInStats {
    /// Number of cells sensed in parallel (1, 2 or 3).
    pub fan_in: usize,
    /// One entry per possible count of '1' cells (`0 ..= fan_in`).
    pub levels: Vec<LevelStats>,
    /// Worst-case margin between adjacent levels:
    /// `min(level k+1) − max(level k)` for each threshold, in mV.
    /// Negative values mean the distributions overlap.
    pub margins_mv: Vec<f64>,
    /// Empirical misread probability per threshold: the fraction of
    /// samples on the wrong side of the midpoint reference.
    pub misread_prob: Vec<f64>,
}

impl FanInStats {
    /// The smallest adjacent-level margin (the panel's binding
    /// constraint).
    pub fn worst_margin_mv(&self) -> f64 {
        self.margins_mv
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// The margin at a specific threshold (0 = between levels 0 and 1).
    ///
    /// # Panics
    ///
    /// Panics if `threshold >= fan_in`.
    pub fn margin_mv(&self, threshold: usize) -> f64 {
        self.margins_mv[threshold]
    }
}

/// The full Fig. 5b experiment: distributions and margins for fan-ins
/// 1, 2 and 3.
#[derive(Debug, Clone, PartialEq)]
pub struct SenseMarginReport {
    /// Panels for fan-in 1, 2, 3 (in that order).
    pub panels: Vec<FanInStats>,
    /// Trials per level.
    pub trials: usize,
}

impl SenseMarginReport {
    /// The panel for a given fan-in.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in` is not 1, 2 or 3.
    pub fn panel(&self, fan_in: usize) -> &FanInStats {
        assert!((1..=3).contains(&fan_in), "fan-in must be 1, 2 or 3");
        &self.panels[fan_in - 1]
    }

    /// The single-cell read margin (paper: 43.31 mV).
    pub fn read_margin_mv(&self) -> f64 {
        self.panel(1).worst_margin_mv()
    }

    /// The MAJ decision margin at fan-in 3 (paper: 5.82 mV before the
    /// `t_ox` fix).
    pub fn maj_margin_mv(&self) -> f64 {
        self.panel(3).margin_mv(1)
    }
}

/// Runs the Monte-Carlo analysis with `trials` samples per level.
///
/// # Panics
///
/// Panics if `trials == 0`.
///
/// # Examples
///
/// ```
/// use mram::device::CellParams;
/// use mram::montecarlo::run;
///
/// let report = run(&CellParams::default(), 2_000, 7);
/// // Paper Fig. 5b: a wide read margin that shrinks with fan-in.
/// assert!(report.read_margin_mv() > 22.0);
/// assert!(report.panel(2).worst_margin_mv() < report.read_margin_mv());
/// assert!(report.panel(3).worst_margin_mv() < report.panel(2).worst_margin_mv());
/// ```
pub fn run(cell: &CellParams, trials: usize, seed: u64) -> SenseMarginReport {
    assert!(trials > 0, "at least one trial required");
    let mut rng = StdRng::seed_from_u64(seed);
    let panels = (1..=3)
        .map(|fan_in| run_panel(cell, fan_in, trials, &mut rng))
        .collect();
    SenseMarginReport { panels, trials }
}

fn run_panel(cell: &CellParams, fan_in: usize, trials: usize, rng: &mut StdRng) -> FanInStats {
    let mut levels = Vec::with_capacity(fan_in + 1);
    for ones in 0..=fan_in {
        let mut samples = Vec::with_capacity(trials);
        for _ in 0..trials {
            let resistances: Vec<f64> = (0..fan_in)
                .map(|i| {
                    let bit = i < ones;
                    cell.varied_resistance(bit, gaussian(rng), gaussian(rng))
                })
                .collect();
            // Absolute comparator offset (0 at the default calibration).
            let offset = cell.sigma_offset_mv() * gaussian(rng);
            samples.push(cell.sense_voltage_mv(parallel_resistance(&resistances)) + offset);
        }
        levels.push(summarise(ones, samples));
    }
    let mut margins = Vec::with_capacity(fan_in);
    let mut misread = Vec::with_capacity(fan_in);
    for k in 0..fan_in {
        let lo = &levels[k];
        let hi = &levels[k + 1];
        margins.push(hi.min_mv - lo.max_mv);
        let vref = (lo.mean_mv + hi.mean_mv) / 2.0;
        let wrong = lo.samples_mv.iter().filter(|&&v| v > vref).count()
            + hi.samples_mv.iter().filter(|&&v| v <= vref).count();
        misread.push(wrong as f64 / (2 * trials) as f64);
    }
    FanInStats {
        fan_in,
        levels,
        margins_mv: margins,
        misread_prob: misread,
    }
}

fn summarise(ones: usize, samples: Vec<f64>) -> LevelStats {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    LevelStats {
        ones,
        mean_mv: mean,
        sigma_mv: var.sqrt(),
        min_mv: min,
        max_mv: max,
        samples_mv: samples,
    }
}

/// Standard-normal deviate via Box–Muller (the `rand` crate alone ships no
/// normal distribution; `rand_distr` is outside the allowed dependency
/// set).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Builds a histogram of samples with `bins` equal-width bins over
/// `[lo, hi)` — the rendering-side of the Fig. 5b panels.
///
/// # Panics
///
/// Panics if `bins == 0` or `hi <= lo`.
pub fn histogram(samples: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "at least one bin required");
    assert!(hi > lo, "histogram range must be non-empty");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &v in samples {
        if v >= lo && v < hi {
            counts[((v - lo) / width) as usize] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SenseMarginReport {
        run(&CellParams::default(), 4_000, 42)
    }

    #[test]
    fn level_means_match_nominal_voltages() {
        let r = report();
        let expected: [&[f64]; 3] = [
            &[45.0, 90.0],
            &[22.5, 30.0, 45.0],
            &[15.0, 18.0, 22.5, 30.0],
        ];
        for (panel, exp) in r.panels.iter().zip(expected) {
            for (level, &e) in panel.levels.iter().zip(exp) {
                assert!(
                    (level.mean_mv - e).abs() < 0.02 * e,
                    "fan-in {} level {} mean {:.2} expected {e}",
                    panel.fan_in,
                    level.ones,
                    level.mean_mv
                );
            }
        }
    }

    #[test]
    fn margins_shrink_with_fan_in_as_in_fig5b() {
        let r = report();
        // "We observe that sense margin gradually reduces when increasing
        // the number of fan-ins."
        let m1 = r.panel(1).worst_margin_mv();
        let m2 = r.panel(2).worst_margin_mv();
        let m3 = r.panel(3).worst_margin_mv();
        assert!(m1 > m2 && m2 > m3, "margins {m1:.2} / {m2:.2} / {m3:.2}");
        // Band-check against the paper's annotations (43.31 / 14.62 /
        // 5.82 / 4.28 mV). Our margin metric — empirical min–max
        // separation over all trials — is stricter than the paper's, so
        // absolute values sit below theirs; the ranking and fan-in trend
        // are what the figure demonstrates (EXPERIMENTS.md, Fig. 5b).
        assert!((22.0..48.0).contains(&m1), "read margin {m1:.2}");
        assert!((4.0..16.0).contains(&m2), "2-cell margin {m2:.2}");
        assert!((0.3..6.0).contains(&m3), "3-cell margin {m3:.2}");
    }

    #[test]
    fn tox_increase_restores_maj_margin() {
        let thin = run(&CellParams::default(), 2_000, 1);
        let thick = run(&CellParams::default().with_tox_nm(2.0), 2_000, 1);
        let gain = thick.maj_margin_mv() - thin.maj_margin_mv();
        assert!(
            (30.0..60.0).contains(&gain),
            "t_ox 1.5→2 nm should add ≈45 mV of MAJ margin, got {gain:.1}"
        );
    }

    #[test]
    fn misread_probability_is_negligible_at_paper_sigma() {
        let r = report();
        for panel in &r.panels {
            for (&m, &p) in panel.margins_mv.iter().zip(&panel.misread_prob) {
                if m > 0.0 {
                    assert_eq!(p, 0.0, "positive margin must mean no misreads");
                }
                assert!(p < 0.05, "misread probability {p} too high");
            }
        }
    }

    #[test]
    fn larger_variation_erodes_margins() {
        let base = run(&CellParams::default(), 2_000, 9);
        let noisy = run(&CellParams::default().with_variation(0.08, 0.20), 2_000, 9);
        assert!(noisy.panel(3).worst_margin_mv() < base.panel(3).worst_margin_mv());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(&CellParams::default(), 500, 5);
        let b = run(&CellParams::default(), 500, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_counts_all_in_range() {
        let samples = vec![1.0, 2.0, 2.5, 3.0, 9.0];
        let h = histogram(&samples, 0.0, 10.0, 10);
        assert_eq!(h.iter().sum::<usize>(), 5);
        assert_eq!(h[2], 2); // 2.0 and 2.5
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = run(&CellParams::default(), 0, 1);
    }
}
