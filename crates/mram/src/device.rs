//! The SOT-MRAM bit cell.
//!
//! Substitution note (DESIGN.md §2): the paper extracts cell behaviour from
//! NEGF + LLG simulation; the architecture above it only ever consumes the
//! two resistance states, their variation, and the `t_ox` dependence, so a
//! parametric model calibrated to reproduce the Fig. 5b sense levels is an
//! exact stand-in at the architecture level.
//!
//! Calibration (DESIGN.md §6): `R_P = 1.5 kΩ`, TMR = 100 % (so
//! `R_AP = 3 kΩ`) and `I_sense = 30 µA` give single-cell sense voltages of
//! 45 / 90 mV and three-cell parallel levels of 15 / 18 / 22.5 / 30 mV —
//! matching the x-axes and margins of Fig. 5b. MgO-barrier resistance
//! scales exponentially with thickness; `LAMBDA_NM = 0.2307` makes the
//! paper's `t_ox` 1.5 → 2 nm step produce the reported "~45 mV increase
//! in the [MAJ] sense margin".

/// Exponential thickness constant of the MgO barrier (nm per e-fold of
/// resistance). Calibrated so the paper's `t_ox` 1.5 → 2 nm step grows the
/// Monte-Carlo MAJ sense margin by ≈ 45 mV (see `montecarlo` tests).
pub const LAMBDA_NM: f64 = 0.167;

/// Reference MgO thickness the nominal resistances are specified at (nm).
pub const TOX_REF_NM: f64 = 1.5;

/// Static parameters of one SOT-MRAM cell plus its sensing current.
///
/// # Examples
///
/// ```
/// use mram::device::CellParams;
///
/// let cell = CellParams::default();
/// assert_eq!(cell.r_p_ohm(), 1_500.0);
/// assert_eq!(cell.r_ap_ohm(), 3_000.0);
/// // Sense voltage of a single stored '1': I · R_AP = 30 µA · 3 kΩ = 90 mV.
/// assert!((cell.sense_voltage_mv(cell.r_ap_ohm()) - 90.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellParams {
    /// Parallel (data-'0') resistance at `TOX_REF_NM`, in ohms.
    r_p_ohm: f64,
    /// Tunneling magnetoresistance ratio: `R_AP = R_P · (1 + TMR)`.
    tmr: f64,
    /// MgO thickness in nm (scales both resistances exponentially).
    tox_nm: f64,
    /// Sense current in µA.
    i_sense_ua: f64,
    /// Relative σ of the resistance-area product (paper: 2 %).
    sigma_ra: f64,
    /// Relative σ of the TMR (paper: 5 %).
    sigma_tmr: f64,
    /// Absolute input-referred σ of the sense comparator, in mV
    /// (default 0). Unlike the relative resistance σ, this term does
    /// *not* scale with `t_ox` — it is what makes the paper's
    /// thick-oxide reliability fix effective.
    sigma_offset_mv: f64,
}

impl Default for CellParams {
    fn default() -> Self {
        CellParams {
            r_p_ohm: 1_500.0,
            tmr: 1.0,
            tox_nm: TOX_REF_NM,
            i_sense_ua: 30.0,
            sigma_ra: 0.02,
            sigma_tmr: 0.05,
            sigma_offset_mv: 0.0,
        }
    }
}

impl CellParams {
    /// Creates parameters, validating physical plausibility.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive, or a σ is negative.
    pub fn new(r_p_ohm: f64, tmr: f64, tox_nm: f64, i_sense_ua: f64) -> CellParams {
        assert!(r_p_ohm > 0.0, "parallel resistance must be positive");
        assert!(tmr > 0.0, "TMR must be positive");
        assert!(tox_nm > 0.0, "oxide thickness must be positive");
        assert!(i_sense_ua > 0.0, "sense current must be positive");
        CellParams {
            r_p_ohm,
            tmr,
            tox_nm,
            i_sense_ua,
            ..CellParams::default()
        }
    }

    /// Returns a copy with a different MgO thickness — the paper's
    /// reliability knob ("we increased SOT-MRAM cell's tox from 1.5nm to
    /// 2nm").
    ///
    /// # Panics
    ///
    /// Panics if `tox_nm <= 0`.
    pub fn with_tox_nm(mut self, tox_nm: f64) -> CellParams {
        assert!(tox_nm > 0.0, "oxide thickness must be positive");
        self.tox_nm = tox_nm;
        self
    }

    /// Returns a copy with different variation σ values.
    ///
    /// # Panics
    ///
    /// Panics if either σ is negative.
    pub fn with_variation(mut self, sigma_ra: f64, sigma_tmr: f64) -> CellParams {
        assert!(
            sigma_ra >= 0.0 && sigma_tmr >= 0.0,
            "sigma must be non-negative"
        );
        self.sigma_ra = sigma_ra;
        self.sigma_tmr = sigma_tmr;
        self
    }

    /// Returns a copy with an absolute comparator-offset σ (mV).
    ///
    /// # Panics
    ///
    /// Panics if `sigma_mv` is negative.
    pub fn with_sense_offset(mut self, sigma_mv: f64) -> CellParams {
        assert!(sigma_mv >= 0.0, "sigma must be non-negative");
        self.sigma_offset_mv = sigma_mv;
        self
    }

    /// Absolute input-referred comparator σ in mV.
    pub fn sigma_offset_mv(&self) -> f64 {
        self.sigma_offset_mv
    }

    /// Thickness-dependent resistance scale: `exp((t_ox − t_ref)/λ)`.
    pub fn tox_scale(&self) -> f64 {
        ((self.tox_nm - TOX_REF_NM) / LAMBDA_NM).exp()
    }

    /// Parallel-state (data-'0') resistance in ohms at the configured
    /// thickness.
    pub fn r_p_ohm(&self) -> f64 {
        self.r_p_ohm * self.tox_scale()
    }

    /// Anti-parallel-state (data-'1') resistance in ohms.
    pub fn r_ap_ohm(&self) -> f64 {
        self.r_p_ohm() * (1.0 + self.tmr)
    }

    /// The nominal resistance of a cell holding `bit`
    /// (paper §IV-B: parallel = '0' = low, anti-parallel = '1' = high).
    pub fn resistance(&self, bit: bool) -> f64 {
        if bit {
            self.r_ap_ohm()
        } else {
            self.r_p_ohm()
        }
    }

    /// The sense current in µA.
    pub fn i_sense_ua(&self) -> f64 {
        self.i_sense_ua
    }

    /// Relative σ of the RA product.
    pub fn sigma_ra(&self) -> f64 {
        self.sigma_ra
    }

    /// Relative σ of the TMR.
    pub fn sigma_tmr(&self) -> f64 {
        self.sigma_tmr
    }

    /// The MgO thickness in nm.
    pub fn tox_nm(&self) -> f64 {
        self.tox_nm
    }

    /// The sense voltage (mV) developed across a path resistance
    /// (`V = I_sense · R`).
    pub fn sense_voltage_mv(&self, path_ohm: f64) -> f64 {
        self.i_sense_ua * 1e-6 * path_ohm * 1e3
    }

    /// A varied cell resistance given Gaussian deviates `z_ra`, `z_tmr`
    /// (standard-normal): RA variation scales both states; TMR variation
    /// affects only the anti-parallel state.
    pub fn varied_resistance(&self, bit: bool, z_ra: f64, z_tmr: f64) -> f64 {
        let rp = self.r_p_ohm() * (1.0 + self.sigma_ra * z_ra);
        if bit {
            let tmr = self.tmr * (1.0 + self.sigma_tmr * z_tmr);
            rp * (1.0 + tmr)
        } else {
            rp
        }
    }
}

/// Equivalent resistance of cells sensed in parallel on one bit line
/// (paper §IV-B: "the equivalent resistance of such parallel connected
/// cells … compared with three programmable references").
///
/// # Panics
///
/// Panics if `resistances` is empty or contains a non-positive value.
pub fn parallel_resistance(resistances: &[f64]) -> f64 {
    assert!(!resistances.is_empty(), "at least one cell must be sensed");
    let mut conductance = 0.0;
    for &r in resistances {
        assert!(r > 0.0, "cell resistance must be positive");
        conductance += 1.0 / r;
    }
    1.0 / conductance
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_calibration_matches_design_doc() {
        let c = CellParams::default();
        assert_eq!(c.r_p_ohm(), 1_500.0);
        assert_eq!(c.r_ap_ohm(), 3_000.0);
        assert_eq!(c.i_sense_ua(), 30.0);
        assert!((c.sigma_ra() - 0.02).abs() < 1e-12);
        assert!((c.sigma_tmr() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn sense_levels_match_fig5b_axes() {
        let c = CellParams::default();
        // Single cell: 45 / 90 mV.
        assert!((c.sense_voltage_mv(c.r_p_ohm()) - 45.0).abs() < 1e-9);
        assert!((c.sense_voltage_mv(c.r_ap_ohm()) - 90.0).abs() < 1e-9);
        // Three-cell parallel levels: 15 / 18 / 22.5 / 30 mV.
        let rp = c.r_p_ohm();
        let rap = c.r_ap_ohm();
        let v = |cells: &[f64]| c.sense_voltage_mv(parallel_resistance(cells));
        assert!((v(&[rp, rp, rp]) - 15.0).abs() < 1e-9);
        assert!((v(&[rap, rp, rp]) - 18.0).abs() < 1e-9);
        assert!((v(&[rap, rap, rp]) - 22.5).abs() < 1e-9);
        assert!((v(&[rap, rap, rap]) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn tox_increase_scales_resistance_exponentially() {
        let thin = CellParams::default();
        let thick = CellParams::default().with_tox_nm(2.0);
        let factor = thick.r_p_ohm() / thin.r_p_ohm();
        assert!((factor - (0.5f64 / LAMBDA_NM).exp()).abs() < 1e-9);
        // TMR is thickness-independent in this model, so both states
        // scale identically.
        assert!(
            (thick.r_ap_ohm() / thin.r_ap_ohm() - factor).abs() < 1e-9,
            "AP state must scale by the same factor"
        );
    }

    #[test]
    fn tox_step_widens_nominal_maj_gap() {
        // The MAJ decision gap at tox = 1.5 nm is 22.5 − 18 = 4.5 mV;
        // the paper's 1.5 → 2 nm reliability fix must widen it far past
        // the variation spread. The quantitative "+45 mV sense margin"
        // claim is asserted on the Monte-Carlo margin (the paper's
        // metric) in `montecarlo::tests::tox_increase_restores_maj_margin`.
        let gap = |c: &CellParams| {
            let rp = c.r_p_ohm();
            let rap = c.r_ap_ohm();
            c.sense_voltage_mv(parallel_resistance(&[rap, rap, rp]))
                - c.sense_voltage_mv(parallel_resistance(&[rap, rp, rp]))
        };
        let thin = CellParams::default();
        let thick = CellParams::default().with_tox_nm(2.0);
        assert!((gap(&thin) - 4.5).abs() < 1e-9);
        assert!(gap(&thick) > 40.0, "thick-oxide gap {:.1} mV", gap(&thick));
    }

    #[test]
    fn varied_resistance_zero_deviate_is_nominal() {
        let c = CellParams::default();
        assert_eq!(c.varied_resistance(false, 0.0, 0.0), c.r_p_ohm());
        assert_eq!(c.varied_resistance(true, 0.0, 0.0), c.r_ap_ohm());
    }

    #[test]
    fn tmr_variation_affects_only_ap_state() {
        let c = CellParams::default();
        assert_eq!(c.varied_resistance(false, 0.0, 3.0), c.r_p_ohm());
        assert!(c.varied_resistance(true, 0.0, 3.0) > c.r_ap_ohm());
    }

    #[test]
    fn parallel_resistance_of_equal_cells() {
        assert!((parallel_resistance(&[3000.0, 3000.0, 3000.0]) - 1000.0).abs() < 1e-9);
        assert!((parallel_resistance(&[1500.0]) - 1500.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_parallel_panics() {
        let _ = parallel_resistance(&[]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn invalid_params_rejected() {
        let _ = CellParams::new(0.0, 1.0, 1.5, 30.0);
    }
}
