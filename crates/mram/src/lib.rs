//! SOT-MRAM device, circuit and array substrate.
//!
//! The paper models its bit cell with NEGF + LLG device simulation, its
//! periphery in SPICE (45 nm NCSU PDK), and its arrays in NVSim. None of
//! those tools are available here, so this crate substitutes calibrated
//! analytic models that expose exactly the quantities the architecture
//! consumes (DESIGN.md §2):
//!
//! * [`device`] — the 2T1R SOT-MRAM bit cell: parallel/anti-parallel
//!   resistance, TMR, RA-product variation and the MgO-thickness (`t_ox`)
//!   dependence;
//! * [`sense`] — the reconfigurable sense amplifier of Fig. 4b: four
//!   selectable reference branches (`R_AND3`, `R_MAJ`, `R_OR3`, `R_M`)
//!   realising memory read and single-cycle 3-input AND/MAJ/OR, plus the
//!   XOR3 output stage used for XNOR2 compare and in-memory addition;
//! * [`montecarlo`] — the 10 000-trial variation analysis behind Fig. 5b
//!   (σ(RA) = 2 %, σ(TMR) = 5 %) with sense margins per fan-in;
//! * [`array`] — an NVSim-lite latency/energy/area model for the
//!   512×256 computational sub-array and the chip organisation built
//!   from it.
//!
//! # Examples
//!
//! ```
//! use mram::device::CellParams;
//! use mram::sense::{SenseAmp, SenseMode};
//!
//! let cell = CellParams::default();
//! let sa = SenseAmp::new(&cell);
//! // Three cells storing 1, 0, 1 → MAJ = 1, AND3 = 0, OR3 = 1.
//! let r = [cell.resistance(true), cell.resistance(false), cell.resistance(true)];
//! assert!(sa.evaluate(SenseMode::Maj3, &r));
//! assert!(!sa.evaluate(SenseMode::And3, &r));
//! assert!(sa.evaluate(SenseMode::Or3, &r));
//! ```

pub mod array;
pub mod device;
pub mod faults;
pub mod montecarlo;
pub mod sense;
