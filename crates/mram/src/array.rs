//! NVSim-lite: latency, energy and area of the computational sub-array.
//!
//! Substitution note (DESIGN.md §2): the paper feeds device/circuit data
//! into NVSim to obtain per-operation latency/energy and chip area for a
//! given array organisation, then drives a behavioural simulator with
//! those numbers. [`ArrayModel`] plays the NVSim role here: it exposes
//! per-operation cycle counts and energies plus an area model, with the
//! constants documented (and justified) in DESIGN.md §6. The behavioural
//! accounting itself lives in the `pimsim` crate.

use crate::device::CellParams;

/// One primitive array operation, at word-line granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayOp {
    /// Activate one row and sense it (memory mode, `C_M`).
    ReadRow,
    /// Drive one row's write word line.
    WriteRow,
    /// Activate three rows and sense with compute references
    /// (AND3/MAJ/OR3/XOR3) — the paper's single-cycle bulk bit-wise op.
    ComputeTriple,
    /// One digital-processing-unit operation (popcount step, register
    /// update, state bookkeeping).
    DpuOp,
}

impl ArrayOp {
    /// All operation kinds.
    pub const ALL: [ArrayOp; 4] = [
        ArrayOp::ReadRow,
        ArrayOp::WriteRow,
        ArrayOp::ComputeTriple,
        ArrayOp::DpuOp,
    ];
}

/// Geometry of one computational sub-array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubArrayGeometry {
    /// Word lines (rows).
    pub rows: usize,
    /// Bit lines (columns).
    pub cols: usize,
}

impl SubArrayGeometry {
    /// The paper's computational sub-array: 512 × 256.
    pub const PAPER: SubArrayGeometry = SubArrayGeometry {
        rows: 512,
        cols: 256,
    };

    /// Total cell count.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }
}

impl Default for SubArrayGeometry {
    fn default() -> Self {
        SubArrayGeometry::PAPER
    }
}

/// Per-operation latency/energy plus area for one sub-array
/// (NVSim-lite; constants from DESIGN.md §6).
///
/// # Examples
///
/// ```
/// use mram::array::{ArrayModel, ArrayOp};
///
/// let model = ArrayModel::default();
/// assert_eq!(model.cycles(ArrayOp::ComputeTriple), 1); // single-cycle bulk op
/// assert!(model.compute_area_overhead() < 0.10);        // paper: <10 % of chip area
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayModel {
    geometry: SubArrayGeometry,
    cell: CellParams,
    /// Memory cycle time in ns.
    cycle_ns: f64,
    /// Energy of a full-row read, pJ.
    read_row_pj: f64,
    /// Energy of a full-row write, pJ.
    write_row_pj: f64,
    /// Energy of a triple-row compute sense, pJ.
    compute_pj: f64,
    /// Energy of one DPU operation, pJ.
    dpu_pj: f64,
    /// Technology feature size in nm (45 nm NCSU PDK class).
    feature_nm: f64,
    /// Cell footprint in F² (2T1R SOT-MRAM).
    cell_f2: f64,
    /// Peripheral area multiplier (decoders, drivers, plain SAs).
    periphery_factor: f64,
    /// Extra area fraction for the reconfigurable-SA compute support
    /// (paper: "less than 10% of chip area").
    compute_overhead: f64,
}

impl Default for ArrayModel {
    fn default() -> Self {
        ArrayModel {
            geometry: SubArrayGeometry::PAPER,
            cell: CellParams::default(),
            cycle_ns: 2.0,
            read_row_pj: 100.0,
            write_row_pj: 150.0,
            compute_pj: 200.0,
            dpu_pj: 50.0,
            feature_nm: 45.0,
            cell_f2: 50.0,
            periphery_factor: 1.25,
            compute_overhead: 0.08,
        }
    }
}

impl ArrayModel {
    /// Builds a model with the paper geometry and a custom cell.
    pub fn with_cell(cell: CellParams) -> ArrayModel {
        ArrayModel {
            cell,
            ..ArrayModel::default()
        }
    }

    /// The sub-array geometry.
    pub fn geometry(&self) -> SubArrayGeometry {
        self.geometry
    }

    /// The underlying cell parameters.
    pub fn cell(&self) -> &CellParams {
        &self.cell
    }

    /// Memory cycle time in ns.
    pub fn cycle_ns(&self) -> f64 {
        self.cycle_ns
    }

    /// Cycles taken by one operation (all primitives are single-cycle at
    /// word-line granularity; multi-bit operations issue several of
    /// them).
    pub fn cycles(&self, _op: ArrayOp) -> u64 {
        1
    }

    /// Dynamic energy of one operation in pJ.
    pub fn energy_pj(&self, op: ArrayOp) -> f64 {
        match op {
            ArrayOp::ReadRow => self.read_row_pj,
            ArrayOp::WriteRow => self.write_row_pj,
            ArrayOp::ComputeTriple => self.compute_pj,
            ArrayOp::DpuOp => self.dpu_pj,
        }
    }

    /// Area of one sub-array in mm², including periphery and the
    /// compute-support overhead.
    pub fn subarray_area_mm2(&self) -> f64 {
        let f_m = self.feature_nm * 1e-9;
        let cell_m2 = self.cell_f2 * f_m * f_m;
        let core_mm2 = self.geometry.cells() as f64 * cell_m2 * 1e6;
        core_mm2 * self.periphery_factor * (1.0 + self.compute_overhead)
    }

    /// The fraction of area added by compute support (must stay below the
    /// paper's 10 % claim).
    pub fn compute_area_overhead(&self) -> f64 {
        self.compute_overhead
    }
}

/// Chip-level organisation: how many sub-arrays exist and how many
/// independent alignment pipelines are active concurrently.
///
/// # Examples
///
/// ```
/// use mram::array::{ArrayModel, ChipOrg};
///
/// let chip = ChipOrg::default();
/// let area = chip.area_mm2(&ArrayModel::default());
/// assert!(area > 10.0 && area < 100.0); // accelerator-class die
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChipOrg {
    /// Total computational sub-arrays on the die.
    pub subarrays: usize,
    /// Independent read-alignment pipelines active at once (bounded by
    /// power budget, not by sub-array count).
    pub parallel_units: usize,
}

impl Default for ChipOrg {
    /// 2048 sub-arrays (64 MB-class die at 512×256), 144 concurrently
    /// active pipelines — chosen so the simulated platform lands in the
    /// paper's reported power/throughput range (DESIGN.md §6).
    fn default() -> Self {
        ChipOrg {
            subarrays: 2048,
            parallel_units: 144,
        }
    }
}

impl ChipOrg {
    /// Creates an organisation.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero or `parallel_units > subarrays`.
    pub fn new(subarrays: usize, parallel_units: usize) -> ChipOrg {
        assert!(subarrays > 0, "chip needs at least one sub-array");
        assert!(parallel_units > 0, "at least one active pipeline required");
        assert!(
            parallel_units <= subarrays,
            "cannot activate more pipelines than sub-arrays"
        );
        ChipOrg {
            subarrays,
            parallel_units,
        }
    }

    /// Die area in mm² under the given array model.
    pub fn area_mm2(&self, model: &ArrayModel) -> f64 {
        self.subarrays as f64 * model.subarray_area_mm2()
    }

    /// Storage capacity in bytes.
    pub fn capacity_bytes(&self, model: &ArrayModel) -> usize {
        self.subarrays * model.geometry().cells() / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let g = SubArrayGeometry::PAPER;
        assert_eq!((g.rows, g.cols), (512, 256));
        assert_eq!(g.cells(), 131_072);
    }

    #[test]
    fn all_primitives_single_cycle() {
        let m = ArrayModel::default();
        for op in ArrayOp::ALL {
            assert_eq!(m.cycles(op), 1);
        }
    }

    #[test]
    fn write_costs_more_than_read() {
        let m = ArrayModel::default();
        assert!(m.energy_pj(ArrayOp::WriteRow) > m.energy_pj(ArrayOp::ReadRow));
        assert!(m.energy_pj(ArrayOp::ComputeTriple) > m.energy_pj(ArrayOp::ReadRow));
        assert!(m.energy_pj(ArrayOp::DpuOp) < m.energy_pj(ArrayOp::ReadRow));
    }

    #[test]
    fn compute_overhead_below_ten_percent() {
        // Paper abstract: "incurring a low cost on top of original
        // SOT-MRAM chips (less than 10% of chip area)".
        assert!(ArrayModel::default().compute_area_overhead() < 0.10);
    }

    #[test]
    fn subarray_area_is_sane() {
        let a = ArrayModel::default().subarray_area_mm2();
        // ~0.02 mm² for a 128 Kb sub-array at 45 nm.
        assert!(a > 0.005 && a < 0.05, "sub-array area {a} mm²");
    }

    #[test]
    fn chip_area_and_capacity() {
        let m = ArrayModel::default();
        let chip = ChipOrg::default();
        let area = chip.area_mm2(&m);
        assert!(area > 10.0 && area < 100.0, "die area {area} mm²");
        assert_eq!(chip.capacity_bytes(&m), 2048 * 131_072 / 8);
    }

    #[test]
    #[should_panic(expected = "more pipelines")]
    fn too_many_pipelines_rejected() {
        let _ = ChipOrg::new(4, 8);
    }

    #[test]
    fn custom_cell_preserved() {
        let cell = CellParams::default().with_tox_nm(2.0);
        let m = ArrayModel::with_cell(cell);
        assert_eq!(m.cell().tox_nm(), 2.0);
    }
}
