//! Sensing-fault model: from Monte-Carlo margins to misread
//! probabilities.
//!
//! The paper caps the sensed fan-in at three and thickens the MgO barrier
//! precisely "to avoid logic failure and guarantee the SA output's
//! reliability". This module quantifies what happens when those
//! precautions are *not* enough: it turns a variation level into a
//! per-decision misread probability that the platform simulator can
//! inject into `XNOR_Match`, closing the loop from device variation to
//! alignment accuracy (DESIGN.md §8).

use crate::device::CellParams;
use crate::montecarlo::{run, SenseMarginReport};

/// A per-decision sensing-fault model.
///
/// # Examples
///
/// ```
/// use mram::device::CellParams;
/// use mram::faults::FaultModel;
///
/// // At the paper's variation the platform is fault-free...
/// let nominal = FaultModel::from_cell(&CellParams::default(), 2_000, 7);
/// assert_eq!(nominal.xnor_misread_prob(), 0.0);
///
/// // ...but a noisy comparator starts to overlap the XOR3 levels.
/// let noisy_cell = CellParams::default().with_sense_offset(1.5);
/// let noisy = FaultModel::from_cell(&noisy_cell, 2_000, 7);
/// assert!(noisy.xnor_misread_prob() > nominal.xnor_misread_prob());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    xnor_misread_prob: f64,
    add_misread_prob: f64,
}

impl FaultModel {
    /// A fault-free model (ideal sensing).
    pub fn ideal() -> FaultModel {
        FaultModel {
            xnor_misread_prob: 0.0,
            add_misread_prob: 0.0,
        }
    }

    /// Builds a model with explicit probabilities.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn with_probabilities(xnor: f64, add: f64) -> FaultModel {
        assert!((0.0..=1.0).contains(&xnor), "probability out of range");
        assert!((0.0..=1.0).contains(&add), "probability out of range");
        FaultModel {
            xnor_misread_prob: xnor,
            add_misread_prob: add,
        }
    }

    /// Derives the model from a Monte-Carlo report: the `XNOR_Match`
    /// decision uses the three-input XOR3 path, whose worst threshold is
    /// the MAJ boundary; the adder's carry shares it.
    pub fn from_report(report: &SenseMarginReport) -> FaultModel {
        let panel = report.panel(3);
        let worst = panel
            .misread_prob
            .iter()
            .copied()
            .fold(0.0f64, f64::max);
        FaultModel {
            xnor_misread_prob: worst,
            add_misread_prob: worst,
        }
    }

    /// Runs the Monte-Carlo analysis for `cell` and derives the model.
    pub fn from_cell(cell: &CellParams, trials: usize, seed: u64) -> FaultModel {
        FaultModel::from_report(&run(cell, trials, seed))
    }

    /// Probability that one bit of an `XNOR_Match` vector reads wrong.
    pub fn xnor_misread_prob(&self) -> f64 {
        self.xnor_misread_prob
    }

    /// Probability that one full-adder cycle produces a wrong sum/carry.
    pub fn add_misread_prob(&self) -> f64 {
        self.add_misread_prob
    }

    /// `true` when both probabilities are exactly zero (lets simulators
    /// skip the per-bit sampling entirely).
    pub fn is_ideal(&self) -> bool {
        self.xnor_misread_prob == 0.0 && self.add_misread_prob == 0.0
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_model_is_fault_free() {
        let m = FaultModel::ideal();
        assert!(m.is_ideal());
        assert_eq!(m.xnor_misread_prob(), 0.0);
    }

    #[test]
    fn paper_sigma_yields_zero_misreads() {
        let m = FaultModel::from_cell(&CellParams::default(), 3_000, 11);
        assert!(m.is_ideal(), "paper variation must be reliable: {m:?}");
    }

    #[test]
    fn comparator_offset_yields_faults() {
        // The 3-cell level gap is 3 mV; a 1.5 mV absolute offset sigma
        // overlaps adjacent distributions.
        let noisy = CellParams::default().with_sense_offset(1.5);
        let m = FaultModel::from_cell(&noisy, 3_000, 11);
        assert!(m.xnor_misread_prob() > 0.0, "1.5 mV offset must overlap levels");
        assert!(!m.is_ideal());
    }

    #[test]
    fn thick_oxide_restores_reliability() {
        // The paper's fix: raising t_ox scales the resistance levels
        // (and their gaps) exponentially, while the comparator offset is
        // absolute — so the same offset becomes harmless.
        let noisy = CellParams::default().with_sense_offset(1.5);
        let thin = FaultModel::from_cell(&noisy, 3_000, 13);
        let thick = FaultModel::from_cell(&noisy.with_tox_nm(2.0), 3_000, 13);
        assert!(thin.xnor_misread_prob() > 0.0);
        assert_eq!(thick.xnor_misread_prob(), 0.0, "thick oxide must be reliable");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_probability_rejected() {
        let _ = FaultModel::with_probabilities(1.5, 0.0);
    }
}
