//! Sensing-fault model: from Monte-Carlo margins to misread
//! probabilities.
//!
//! The paper caps the sensed fan-in at three and thickens the MgO barrier
//! precisely "to avoid logic failure and guarantee the SA output's
//! reliability". This module quantifies what happens when those
//! precautions are *not* enough: it turns a variation level into a
//! per-decision misread probability that the platform simulator can
//! inject into `XNOR_Match`, closing the loop from device variation to
//! alignment accuracy (DESIGN.md §8).

use crate::device::CellParams;
use crate::montecarlo::{run, SenseMarginReport};

/// A per-decision sensing-fault model.
///
/// # Examples
///
/// ```
/// use mram::device::CellParams;
/// use mram::faults::FaultModel;
///
/// // At the paper's variation the platform is fault-free...
/// let nominal = FaultModel::from_cell(&CellParams::default(), 2_000, 7);
/// assert_eq!(nominal.xnor_misread_prob(), 0.0);
///
/// // ...but a noisy comparator starts to overlap the XOR3 levels.
/// let noisy_cell = CellParams::default().with_sense_offset(1.5);
/// let noisy = FaultModel::from_cell(&noisy_cell, 2_000, 7);
/// assert!(noisy.xnor_misread_prob() > nominal.xnor_misread_prob());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    xnor_misread_prob: f64,
    add_misread_prob: f64,
}

impl FaultModel {
    /// A fault-free model (ideal sensing).
    pub fn ideal() -> FaultModel {
        FaultModel {
            xnor_misread_prob: 0.0,
            add_misread_prob: 0.0,
        }
    }

    /// Builds a model with explicit probabilities.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn with_probabilities(xnor: f64, add: f64) -> FaultModel {
        assert!((0.0..=1.0).contains(&xnor), "probability out of range");
        assert!((0.0..=1.0).contains(&add), "probability out of range");
        FaultModel {
            xnor_misread_prob: xnor,
            add_misread_prob: add,
        }
    }

    /// Derives the model from a Monte-Carlo report: the `XNOR_Match`
    /// decision uses the three-input XOR3 path, whose worst threshold is
    /// the MAJ boundary; the adder's carry shares it.
    pub fn from_report(report: &SenseMarginReport) -> FaultModel {
        let panel = report.panel(3);
        let worst = panel.misread_prob.iter().copied().fold(0.0f64, f64::max);
        FaultModel {
            xnor_misread_prob: worst,
            add_misread_prob: worst,
        }
    }

    /// Runs the Monte-Carlo analysis for `cell` and derives the model.
    pub fn from_cell(cell: &CellParams, trials: usize, seed: u64) -> FaultModel {
        FaultModel::from_report(&run(cell, trials, seed))
    }

    /// Probability that one bit of an `XNOR_Match` vector reads wrong.
    pub fn xnor_misread_prob(&self) -> f64 {
        self.xnor_misread_prob
    }

    /// Probability that one full-adder cycle produces a wrong sum/carry.
    pub fn add_misread_prob(&self) -> f64 {
        self.add_misread_prob
    }

    /// `true` when both probabilities are exactly zero (lets simulators
    /// skip the per-bit sampling entirely).
    pub fn is_ideal(&self) -> bool {
        self.xnor_misread_prob == 0.0 && self.add_misread_prob == 0.0
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::ideal()
    }
}

fn assert_probability(p: f64, what: &str) {
    assert!((0.0..=1.0).contains(&p), "{what} probability out of range");
}

/// A seeded, reproducible fault-injection campaign: the sensing-fault
/// [`FaultModel`] plus the structural fault classes the platform
/// simulator injects (DESIGN.md §8).
///
/// The four fault classes are:
///
/// * **sense misreads** — per-bit `XNOR_Match` / per-`IM_ADD` decision
///   errors from the [`FaultModel`] (derived from Monte-Carlo margins or
///   set explicitly);
/// * **stuck-at cells** — a fraction of MRAM cells frozen to a random
///   value when the tables are mapped (persistent data corruption);
/// * **transient row-read faults** — whole-row sense events that flip a
///   short burst of bits in one `XNOR_Match` read (non-persistent);
/// * **`IM_ADD` carry-chain faults** — an addition whose ripple carry
///   dies at a random bit position.
///
/// All sampling is driven by `seed`, so a campaign replays identically:
/// two platforms built from the same campaign inject the same faults at
/// the same decisions.
///
/// # Examples
///
/// ```
/// use mram::faults::{FaultCampaign, FaultModel};
///
/// let quiet = FaultCampaign::none();
/// assert!(!quiet.is_active());
///
/// let noisy = FaultCampaign::seeded(7)
///     .with_model(FaultModel::with_probabilities(1e-3, 1e-4))
///     .with_transient_row_rate(1e-3)
///     .with_carry_fault_prob(1e-4);
/// assert!(noisy.is_active());
/// assert_eq!(noisy.seed(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultCampaign {
    seed: u64,
    model: FaultModel,
    stuck_at_rate: f64,
    transient_row_rate: f64,
    carry_fault_prob: f64,
}

impl FaultCampaign {
    /// A fault-free campaign (every rate zero).
    pub fn none() -> FaultCampaign {
        FaultCampaign::seeded(0)
    }

    /// A fault-free campaign with an explicit replay seed; enable fault
    /// classes with the `with_*` builders.
    pub fn seeded(seed: u64) -> FaultCampaign {
        FaultCampaign {
            seed,
            model: FaultModel::ideal(),
            stuck_at_rate: 0.0,
            transient_row_rate: 0.0,
            carry_fault_prob: 0.0,
        }
    }

    /// Derives the sensing-fault model from `cell`'s Monte-Carlo margins
    /// (structural rates stay zero).
    pub fn from_cell(cell: &CellParams, trials: usize, seed: u64) -> FaultCampaign {
        FaultCampaign::seeded(seed).with_model(FaultModel::from_cell(cell, trials, seed))
    }

    /// Sets the sensing-fault model.
    pub fn with_model(mut self, model: FaultModel) -> FaultCampaign {
        self.model = model;
        self
    }

    /// Sets the replay seed.
    pub fn with_seed(mut self, seed: u64) -> FaultCampaign {
        self.seed = seed;
        self
    }

    /// Sets the fraction of data-zone cells stuck at a random value.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn with_stuck_at_rate(mut self, rate: f64) -> FaultCampaign {
        assert_probability(rate, "stuck-at");
        self.stuck_at_rate = rate;
        self
    }

    /// Sets the per-row-read probability of a transient burst fault.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn with_transient_row_rate(mut self, rate: f64) -> FaultCampaign {
        assert_probability(rate, "transient row");
        self.transient_row_rate = rate;
        self
    }

    /// Sets the per-`IM_ADD` probability of a carry-chain fault.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]`.
    pub fn with_carry_fault_prob(mut self, prob: f64) -> FaultCampaign {
        assert_probability(prob, "carry fault");
        self.carry_fault_prob = prob;
        self
    }

    /// The replay seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The sensing-fault model.
    pub fn model(&self) -> FaultModel {
        self.model
    }

    /// The stuck-at cell rate.
    pub fn stuck_at_rate(&self) -> f64 {
        self.stuck_at_rate
    }

    /// The transient row-read fault rate.
    pub fn transient_row_rate(&self) -> f64 {
        self.transient_row_rate
    }

    /// The `IM_ADD` carry-chain fault probability.
    pub fn carry_fault_prob(&self) -> f64 {
        self.carry_fault_prob
    }

    /// Derives the deterministic sub-campaign for one parallel worker.
    ///
    /// Worker 0 keeps this campaign's seed unchanged, so a single-worker
    /// (or sequential) run replays bit-identically to a session built
    /// straight from the campaign. Workers > 0 re-seed through a
    /// SplitMix64 finalizer over `(seed, worker)`, decorrelating their
    /// decision streams: without this every worker would replay the
    /// *same* fault history, and parallel fault statistics would not
    /// match a sequential campaign over the same read set.
    ///
    /// The rates and the sensing model are inherited unchanged — only
    /// the seed differs.
    pub fn for_worker(self, worker: u64) -> FaultCampaign {
        if worker == 0 {
            return self;
        }
        let mut z = self
            .seed
            .wrapping_add(worker.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        self.with_seed(z)
    }

    /// Derives the deterministic sub-campaign for one *read*.
    ///
    /// The batched kernel path gives every read its own decision stream
    /// keyed by the read's global index (plus the chunk epoch), so the
    /// faults a read sees depend only on the campaign seed and on *which
    /// read it is* — never on how reads were grouped into kernel batches,
    /// scheduled across worker threads, or interleaved by work stealing.
    /// That is what makes seeded-fault SAM output byte-identical across
    /// `--kernel-batch` and `--threads` settings.
    ///
    /// Unlike [`FaultCampaign::for_worker`] there is no identity token:
    /// every token re-seeds, and the mix constant differs from the
    /// worker derivation so read streams never collide with worker
    /// streams (token 0 ≠ worker 0, token k ≠ worker k).
    pub fn for_read(self, token: u64) -> FaultCampaign {
        // Distinct odd salt keeps this family disjoint from for_worker's.
        let mut z = self
            .seed
            .wrapping_add(0xd1b5_4a32_d192_ed03)
            .wrapping_add(token.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        self.with_seed(z)
    }

    /// `true` when any fault class can fire (simulators skip every
    /// sampling path for inactive campaigns).
    pub fn is_active(&self) -> bool {
        !self.model.is_ideal()
            || self.stuck_at_rate > 0.0
            || self.transient_row_rate > 0.0
            || self.carry_fault_prob > 0.0
    }
}

impl Default for FaultCampaign {
    fn default() -> Self {
        FaultCampaign::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_model_is_fault_free() {
        let m = FaultModel::ideal();
        assert!(m.is_ideal());
        assert_eq!(m.xnor_misread_prob(), 0.0);
    }

    #[test]
    fn paper_sigma_yields_zero_misreads() {
        let m = FaultModel::from_cell(&CellParams::default(), 3_000, 11);
        assert!(m.is_ideal(), "paper variation must be reliable: {m:?}");
    }

    #[test]
    fn comparator_offset_yields_faults() {
        // The 3-cell level gap is 3 mV; a 1.5 mV absolute offset sigma
        // overlaps adjacent distributions.
        let noisy = CellParams::default().with_sense_offset(1.5);
        let m = FaultModel::from_cell(&noisy, 3_000, 11);
        assert!(
            m.xnor_misread_prob() > 0.0,
            "1.5 mV offset must overlap levels"
        );
        assert!(!m.is_ideal());
    }

    #[test]
    fn thick_oxide_restores_reliability() {
        // The paper's fix: raising t_ox scales the resistance levels
        // (and their gaps) exponentially, while the comparator offset is
        // absolute — so the same offset becomes harmless.
        let noisy = CellParams::default().with_sense_offset(1.5);
        let thin = FaultModel::from_cell(&noisy, 3_000, 13);
        let thick = FaultModel::from_cell(&noisy.with_tox_nm(2.0), 3_000, 13);
        assert!(thin.xnor_misread_prob() > 0.0);
        assert_eq!(
            thick.xnor_misread_prob(),
            0.0,
            "thick oxide must be reliable"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_probability_rejected() {
        let _ = FaultModel::with_probabilities(1.5, 0.0);
    }

    #[test]
    fn campaign_activity_tracks_every_class() {
        assert!(!FaultCampaign::none().is_active());
        assert!(!FaultCampaign::seeded(99).is_active());
        let model = FaultModel::with_probabilities(1e-3, 0.0);
        assert!(FaultCampaign::none().with_model(model).is_active());
        assert!(FaultCampaign::none().with_stuck_at_rate(1e-4).is_active());
        assert!(FaultCampaign::none()
            .with_transient_row_rate(1e-4)
            .is_active());
        assert!(FaultCampaign::none()
            .with_carry_fault_prob(1e-4)
            .is_active());
    }

    #[test]
    fn campaign_from_cell_mirrors_fault_model() {
        let noisy = CellParams::default().with_sense_offset(1.5);
        let campaign = FaultCampaign::from_cell(&noisy, 2_000, 11);
        assert_eq!(campaign.model(), FaultModel::from_cell(&noisy, 2_000, 11));
        assert!(campaign.is_active());
        assert_eq!(campaign.stuck_at_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "stuck-at probability out of range")]
    fn campaign_rejects_bad_rate() {
        let _ = FaultCampaign::none().with_stuck_at_rate(-0.1);
    }

    #[test]
    fn worker_zero_keeps_the_seed() {
        let base = FaultCampaign::seeded(37).with_transient_row_rate(1e-3);
        assert_eq!(base.for_worker(0), base);
    }

    #[test]
    fn workers_get_distinct_decorrelated_seeds() {
        let base = FaultCampaign::seeded(37)
            .with_model(FaultModel::with_probabilities(1e-3, 0.0))
            .with_stuck_at_rate(1e-4);
        let mut seeds: Vec<u64> = (0..16).map(|w| base.for_worker(w).seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 16, "worker seeds must all differ");
        // Rates and model are inherited unchanged.
        let w3 = base.for_worker(3);
        assert_eq!(w3.model(), base.model());
        assert_eq!(w3.stuck_at_rate(), base.stuck_at_rate());
        // Derivation is deterministic.
        assert_eq!(base.for_worker(3), base.for_worker(3));
        // Neighbouring base seeds must not collide with each other's
        // worker streams (a plain seed+worker offset would).
        assert_ne!(
            FaultCampaign::seeded(37).for_worker(1).seed(),
            FaultCampaign::seeded(38).for_worker(0).seed()
        );
    }

    #[test]
    fn read_tokens_get_distinct_decorrelated_seeds() {
        let base = FaultCampaign::seeded(37)
            .with_model(FaultModel::with_probabilities(1e-3, 0.0))
            .with_carry_fault_prob(1e-4);
        let mut seeds: Vec<u64> = (0..64).map(|t| base.for_read(t).seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64, "read seeds must all differ");
        // Unlike for_worker, token 0 re-seeds too: the per-read stream
        // is never the base campaign's own stream.
        assert_ne!(base.for_read(0).seed(), base.seed());
        // Rates and model are inherited unchanged; derivation is
        // deterministic.
        let r5 = base.for_read(5);
        assert_eq!(r5.model(), base.model());
        assert_eq!(r5.carry_fault_prob(), base.carry_fault_prob());
        assert_eq!(base.for_read(5), base.for_read(5));
    }

    #[test]
    fn read_streams_are_disjoint_from_worker_streams() {
        let base = FaultCampaign::seeded(37);
        for token in 0..32 {
            for worker in 0..32 {
                assert_ne!(
                    base.for_read(token).seed(),
                    base.for_worker(worker).seed(),
                    "read token {token} collided with worker {worker}"
                );
            }
        }
    }
}
