//! The reconfigurable sense amplifier (paper Fig. 4b).
//!
//! Three sub-SAs share four reference-resistance branches selected by the
//! enable bits `C_AND3`, `C_MAJ`, `C_OR3`, `C_M`. Activating one enable
//! realises memory read or a one-threshold Boolean function over the
//! parallel-sensed cells; activating all three compute enables realises
//! single-cycle `XOR3` (sum) alongside `MAJ` (carry) — the paper's
//! in-memory full adder — and, with one operand row pre-set to '1',
//! `XNOR2` for the comparison step.

use crate::device::{parallel_resistance, CellParams};

/// The function the sense amplifier is configured for — one row of the
/// Fig. 4b enable table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SenseMode {
    /// `C_M = 1`: plain memory read of one cell.
    MemoryRead,
    /// `C_AND3 = 1`: 3-input AND of cells on the bit line.
    And3,
    /// `C_MAJ = 1`: 3-input majority (the adder's carry).
    Maj3,
    /// `C_OR3 = 1`: 3-input OR.
    Or3,
    /// All three compute enables: `XOR3` through the output stage (the
    /// adder's sum; `XNOR2` when one input row is pre-set to '1').
    Xor3,
}

impl SenseMode {
    /// The `(C_AND3, C_MAJ, C_OR3, C_M)` enable bits for this mode,
    /// exactly as tabulated in Fig. 4b.
    pub fn enables(self) -> (bool, bool, bool, bool) {
        match self {
            SenseMode::MemoryRead => (false, false, false, true),
            SenseMode::And3 => (true, false, false, false),
            SenseMode::Maj3 => (false, true, false, false),
            SenseMode::Or3 => (false, false, true, false),
            SenseMode::Xor3 => (true, true, true, false),
        }
    }

    /// How many cells the mode senses simultaneously.
    pub fn fan_in(self) -> usize {
        match self {
            SenseMode::MemoryRead => 1,
            _ => 3,
        }
    }
}

/// The reference voltages (mV) of the four branches, derived from the
/// cell calibration: each threshold sits midway between the two adjacent
/// equivalent-resistance levels it must separate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct References {
    /// Memory-read threshold (between `R_P` and `R_AP` voltages).
    pub v_m_mv: f64,
    /// AND3 threshold (between the 2-of-3 and 3-of-3 levels).
    pub v_and3_mv: f64,
    /// MAJ threshold (between the 1-of-3 and 2-of-3 levels).
    pub v_maj_mv: f64,
    /// OR3 threshold (between the 0-of-3 and 1-of-3 levels).
    pub v_or3_mv: f64,
}

/// The reconfigurable sense amplifier: computes the Fig. 4b functions
/// from sensed cell resistances.
///
/// # Examples
///
/// ```
/// use mram::device::CellParams;
/// use mram::sense::{SenseAmp, SenseMode};
///
/// let cell = CellParams::default();
/// let sa = SenseAmp::new(&cell);
/// let bit = |b| cell.resistance(b);
/// // XNOR2 via XOR3 with the third row pre-set to '1':
/// assert!(sa.evaluate(SenseMode::Xor3, &[bit(true), bit(true), bit(true)]));   // 1⊕1⊕1 = 1
/// assert!(!sa.evaluate(SenseMode::Xor3, &[bit(true), bit(false), bit(true)])); // 1⊕0⊕1 = 0
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenseAmp {
    cell: CellParams,
    refs: References,
}

impl SenseAmp {
    /// Builds the amplifier, deriving reference voltages from the cell
    /// calibration.
    pub fn new(cell: &CellParams) -> SenseAmp {
        let rp = cell.r_p_ohm();
        let rap = cell.r_ap_ohm();
        let v = |cells: &[f64]| cell.sense_voltage_mv(parallel_resistance(cells));
        let level3 = |ones: usize| {
            let cells: Vec<f64> = (0..3).map(|i| if i < ones { rap } else { rp }).collect();
            v(&cells)
        };
        let refs = References {
            v_m_mv: (v(&[rp]) + v(&[rap])) / 2.0,
            v_and3_mv: (level3(2) + level3(3)) / 2.0,
            v_maj_mv: (level3(1) + level3(2)) / 2.0,
            v_or3_mv: (level3(0) + level3(1)) / 2.0,
        };
        SenseAmp { cell: *cell, refs }
    }

    /// The derived reference voltages.
    pub fn references(&self) -> References {
        self.refs
    }

    /// The sense voltage (mV) developed by the given parallel cell
    /// resistances.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is empty.
    pub fn sense_voltage_mv(&self, cells: &[f64]) -> f64 {
        self.cell.sense_voltage_mv(parallel_resistance(cells))
    }

    /// Evaluates one sense-amp function over the sensed cell resistances.
    ///
    /// For the 3-input modes the `Xor3` result is produced by the output
    /// stage from the three threshold comparators:
    /// `XOR3 = AND3 ∨ (OR3 ∧ ¬MAJ)` (odd parity of three inputs).
    ///
    /// # Panics
    ///
    /// Panics if the number of cells does not match
    /// [`SenseMode::fan_in`].
    pub fn evaluate(&self, mode: SenseMode, cells: &[f64]) -> bool {
        assert_eq!(
            cells.len(),
            mode.fan_in(),
            "mode {mode:?} senses {} cell(s)",
            mode.fan_in()
        );
        let v = self.sense_voltage_mv(cells);
        match mode {
            SenseMode::MemoryRead => v > self.refs.v_m_mv,
            SenseMode::And3 => v > self.refs.v_and3_mv,
            SenseMode::Maj3 => v > self.refs.v_maj_mv,
            SenseMode::Or3 => v > self.refs.v_or3_mv,
            SenseMode::Xor3 => {
                let and3 = v > self.refs.v_and3_mv;
                let maj = v > self.refs.v_maj_mv;
                let or3 = v > self.refs.v_or3_mv;
                and3 || (or3 && !maj)
            }
        }
    }

    /// Convenience: evaluates a 3-input mode from stored bits using the
    /// *nominal* (variation-free) resistances. Returns `(sum, carry)` for
    /// the in-memory full adder — one memory cycle in hardware.
    pub fn full_add(&self, a: bool, b: bool, c: bool) -> (bool, bool) {
        let cells = [
            self.cell.resistance(a),
            self.cell.resistance(b),
            self.cell.resistance(c),
        ];
        (
            self.evaluate(SenseMode::Xor3, &cells),
            self.evaluate(SenseMode::Maj3, &cells),
        )
    }

    /// Convenience: XNOR2 of two stored bits, implemented as XOR3 with
    /// the third row initialised to '1' (paper §IV-B: "Assuming one row in
    /// memory sub-array initialized to one, XNOR2 can be readily
    /// implemented … out of XOR3").
    pub fn xnor2(&self, a: bool, b: bool) -> bool {
        let cells = [
            self.cell.resistance(a),
            self.cell.resistance(b),
            self.cell.resistance(true),
        ];
        self.evaluate(SenseMode::Xor3, &cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sa() -> (CellParams, SenseAmp) {
        let cell = CellParams::default();
        (cell, SenseAmp::new(&cell))
    }

    fn cells(cell: &CellParams, bits: [bool; 3]) -> [f64; 3] {
        [
            cell.resistance(bits[0]),
            cell.resistance(bits[1]),
            cell.resistance(bits[2]),
        ]
    }

    #[test]
    fn enable_bits_match_fig4b() {
        assert_eq!(SenseMode::MemoryRead.enables(), (false, false, false, true));
        assert_eq!(SenseMode::And3.enables(), (true, false, false, false));
        assert_eq!(SenseMode::Maj3.enables(), (false, true, false, false));
        assert_eq!(SenseMode::Or3.enables(), (false, false, true, false));
        assert_eq!(SenseMode::Xor3.enables(), (true, true, true, false));
    }

    #[test]
    fn memory_read_distinguishes_states() {
        let (cell, sa) = sa();
        assert!(sa.evaluate(SenseMode::MemoryRead, &[cell.resistance(true)]));
        assert!(!sa.evaluate(SenseMode::MemoryRead, &[cell.resistance(false)]));
    }

    #[test]
    fn exhaustive_three_input_truth_tables() {
        let (cell, sa) = sa();
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let r = cells(&cell, [a, b, c]);
                    let ones = a as usize + b as usize + c as usize;
                    assert_eq!(
                        sa.evaluate(SenseMode::And3, &r),
                        ones == 3,
                        "AND3({a},{b},{c})"
                    );
                    assert_eq!(
                        sa.evaluate(SenseMode::Maj3, &r),
                        ones >= 2,
                        "MAJ({a},{b},{c})"
                    );
                    assert_eq!(
                        sa.evaluate(SenseMode::Or3, &r),
                        ones >= 1,
                        "OR3({a},{b},{c})"
                    );
                    assert_eq!(
                        sa.evaluate(SenseMode::Xor3, &r),
                        ones % 2 == 1,
                        "XOR3({a},{b},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn full_adder_truth_table() {
        let (_, sa) = sa();
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let (sum, carry) = sa.full_add(a, b, c);
                    let total = a as u8 + b as u8 + c as u8;
                    assert_eq!(sum, total & 1 == 1);
                    assert_eq!(carry, total >= 2);
                }
            }
        }
    }

    #[test]
    fn xnor2_truth_table() {
        let (_, sa) = sa();
        assert!(sa.xnor2(false, false));
        assert!(sa.xnor2(true, true));
        assert!(!sa.xnor2(true, false));
        assert!(!sa.xnor2(false, true));
    }

    #[test]
    fn references_are_strictly_ordered() {
        let (_, sa) = sa();
        let r = sa.references();
        // OR3 < MAJ < AND3 < read threshold (levels rise with ones count).
        assert!(r.v_or3_mv < r.v_maj_mv);
        assert!(r.v_maj_mv < r.v_and3_mv);
        assert!(r.v_and3_mv < r.v_m_mv);
    }

    #[test]
    fn truth_tables_survive_small_variation() {
        // With 3σ-deviated cells the decisions must still be correct
        // (margins exceed the worst-case spread at the default σ).
        let cell = CellParams::default();
        let sa = SenseAmp::new(&cell);
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let r = [
                        cell.varied_resistance(a, 1.5, -1.5),
                        cell.varied_resistance(b, -1.5, 1.5),
                        cell.varied_resistance(c, 1.5, 1.5),
                    ];
                    let ones = a as usize + b as usize + c as usize;
                    assert_eq!(sa.evaluate(SenseMode::Maj3, &r), ones >= 2);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "senses 3 cell(s)")]
    fn wrong_fan_in_panics() {
        let (cell, sa) = sa();
        let _ = sa.evaluate(SenseMode::And3, &[cell.resistance(true)]);
    }
}
