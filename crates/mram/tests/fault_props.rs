//! Property tests for the sensing-fault model and the fault campaign
//! (DESIGN.md §8).
//!
//! The Monte-Carlo misread probability must respond to device variation
//! the way the physics says it should: more comparator offset or more
//! R/TMR spread can only make sensing worse, never better. With a fixed
//! Monte-Carlo seed the gaussian draws are shared across parameter
//! values, so these monotonicity checks are deterministic, not
//! statistical.

use mram::device::CellParams;
use mram::faults::{FaultCampaign, FaultModel};
use proptest::prelude::*;

/// Quantized sense-offset levels (mV): coarse enough that adjacent
/// levels differ by many shared Monte-Carlo draws.
fn offset_level() -> impl Strategy<Value = f64> {
    (0u8..6).prop_map(|k| 0.5 * k as f64)
}

/// Quantized variation multiplier on the paper's (2 %, 5 %) sigmas.
fn variation_level() -> impl Strategy<Value = f64> {
    (1u8..6).prop_map(|k| k as f64)
}

const TRIALS: usize = 1_500;
const MC_SEED: u64 = 11;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Misread probability is monotone non-decreasing in the comparator
    /// sense offset.
    #[test]
    fn misread_monotone_in_sense_offset(a in offset_level(), b in offset_level()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let p_lo = FaultModel::from_cell(
            &CellParams::default().with_sense_offset(lo), TRIALS, MC_SEED);
        let p_hi = FaultModel::from_cell(
            &CellParams::default().with_sense_offset(hi), TRIALS, MC_SEED);
        prop_assert!(
            p_lo.xnor_misread_prob() <= p_hi.xnor_misread_prob(),
            "offset {lo} -> p {}, offset {hi} -> p {}",
            p_lo.xnor_misread_prob(), p_hi.xnor_misread_prob()
        );
    }

    /// Misread probability is monotone non-decreasing in the R/TMR
    /// variation sigmas (scaled together from the paper's nominal pair).
    #[test]
    fn misread_monotone_in_variation_sigma(a in variation_level(), b in variation_level()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        // A sense offset keeps the probabilities off the floor so the
        // comparison is informative at small sigmas.
        let cell = CellParams::default().with_sense_offset(1.0);
        let p_lo = FaultModel::from_cell(
            &cell.with_variation(0.02 * lo, 0.05 * lo), TRIALS, MC_SEED);
        let p_hi = FaultModel::from_cell(
            &cell.with_variation(0.02 * hi, 0.05 * hi), TRIALS, MC_SEED);
        prop_assert!(
            p_lo.xnor_misread_prob() <= p_hi.xnor_misread_prob(),
            "sigma x{lo} -> p {}, sigma x{hi} -> p {}",
            p_lo.xnor_misread_prob(), p_hi.xnor_misread_prob()
        );
    }

    /// A seeded campaign replays identically: equal seeds and rates give
    /// equal campaigns, which drive equal injector decision streams.
    #[test]
    fn seeded_campaign_replays_identically(
        seed in any::<u64>(),
        xnor in (0u8..4).prop_map(|k| k as f64 * 1e-3),
        transient in (0u8..4).prop_map(|k| k as f64 * 1e-3),
    ) {
        let build = || FaultCampaign::seeded(seed)
            .with_model(FaultModel::with_probabilities(xnor, xnor))
            .with_transient_row_rate(transient)
            .with_carry_fault_prob(1e-4);
        prop_assert_eq!(build(), build());
    }
}

#[test]
fn ideal_model_is_exactly_zero() {
    let ideal = FaultModel::ideal();
    assert_eq!(ideal.xnor_misread_prob(), 0.0);
    assert_eq!(ideal.add_misread_prob(), 0.0);
    assert!(ideal.is_ideal());
    // The paper's nominal design point senses fault-free too.
    let nominal = FaultModel::from_cell(&CellParams::default(), TRIALS, MC_SEED);
    assert_eq!(nominal.xnor_misread_prob(), 0.0);
}

#[test]
fn offset_eventually_degrades_sensing() {
    // The monotone chain is not vacuous: a large offset must actually
    // produce a nonzero misread probability.
    let noisy = FaultModel::from_cell(
        &CellParams::default().with_sense_offset(2.5),
        TRIALS,
        MC_SEED,
    );
    assert!(noisy.xnor_misread_prob() > 0.0);
}
