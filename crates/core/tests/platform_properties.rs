//! Property tests: the platform is bit-exact with the software oracle on
//! arbitrary genomes and reads.

use bioseq::{Base, DnaSeq};
use fmindex::EditBudget;
use pim_aligner::{exact_search, MappedIndex, PimAlignerConfig};
use pimsim::{CycleLedger, Dpu};
use proptest::prelude::*;

fn arb_seq(min: usize, max: usize) -> impl Strategy<Value = DnaSeq> {
    proptest::collection::vec(0u8..4, min..max)
        .prop_map(|v| v.into_iter().map(|r| Base::from_rank(r as usize)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn platform_lfm_equals_software_lfm(
        reference in arb_seq(1, 600),
        ids in proptest::collection::vec(0usize..600, 1..12),
    ) {
        let config = PimAlignerConfig::baseline();
        let mapped = MappedIndex::build(&reference, &config);
        let oracle = mapped.index().clone();
        let mut injector = mapped.session_injector();
        let mut ledger = CycleLedger::new();
        for id in ids {
            let id = id % (oracle.text_len() + 1);
            for base in Base::ALL {
                prop_assert_eq!(
                    mapped.lfm(base, id, &mut injector, &mut ledger),
                    oracle.marker_table().lfm(oracle.bwt(), base, id)
                );
            }
        }
    }

    #[test]
    fn platform_exact_search_equals_software(
        reference in arb_seq(10, 400),
        start_frac in 0.0f64..1.0,
        len in 4usize..24,
    ) {
        let config = PimAlignerConfig::baseline();
        let mapped = MappedIndex::build(&reference, &config);
        let oracle = mapped.index().clone();
        let mut injector = mapped.session_injector();
        let mut dpu = Dpu::new(*config.model());
        let mut ledger = CycleLedger::new();
        let len = len.min(reference.len());
        let start = ((reference.len() - len) as f64 * start_frac) as usize;
        let read = reference.subseq(start..start + len);
        let (interval, _) =
            exact_search(&mapped, &mut injector, &mut dpu, &read, &mut ledger);
        match oracle.backward_search(&read) {
            Some(expected) => prop_assert_eq!(interval, expected),
            None => prop_assert!(interval.is_empty()),
        }
    }

    #[test]
    fn platform_inexact_equals_software_on_mutated_reads(
        reference in arb_seq(20, 200),
        start_frac in 0.0f64..1.0,
        mutate_at in 0usize..12,
        z in 0u8..3,
    ) {
        let config = PimAlignerConfig::baseline();
        let mapped = MappedIndex::build(&reference, &config);
        let oracle = mapped.index().clone();
        let mut injector = mapped.session_injector();
        let mut dpu = Dpu::new(*config.model());
        let mut ledger = CycleLedger::new();
        let len = 12.min(reference.len());
        let start = ((reference.len() - len) as f64 * start_frac) as usize;
        let mut bases = reference.subseq(start..start + len).into_bases();
        let k = mutate_at % bases.len();
        bases[k] = Base::from_rank((bases[k].rank() + 1) % 4);
        let read = DnaSeq::from_bases(bases);
        let budget = EditBudget::substitutions_only(z);
        let (hw, _) = pim_aligner::inexact_search(
            &mapped, &mut injector, &mut dpu, &read, budget, &mut ledger,
        );
        let sw = oracle.search_inexact(&read, budget);
        prop_assert_eq!(hw, sw);
    }
}
