//! The on-disk index artifact: build once, load many.
//!
//! The paper's platform maps the FM-index into the MRAM sub-arrays once
//! and then serves queries in place; rebuilding the index (SA-IS + BWT +
//! tables) for every run throws that asymmetry away. This module makes
//! the serialised index a first-class artifact: [`IndexArtifact`] packs
//! the reference, the suffix-array sampling policy and one or more
//! fixed-window [`FmIndex`] shards into a single checksummed file, and
//! [`ShardedPlatform`] boots warm [`Platform`]s from it — only the
//! sub-array mapping runs at load time.
//!
//! # Container format (`PIMAIX1`)
//!
//! All integers little-endian. The FNV-1a-64 checksum covers every byte
//! after the magic and before the trailer.
//!
//! ```text
//! magic            8 bytes   "PIMAIX1\n"
//! name length      u64       reference name (UTF-8) byte count
//! name             bytes
//! reference length u64       bases
//! reference        ceil(len/4) bytes, 2-bit packed (T=00 G=01 A=10 C=11)
//! sa_rate          u32       1 = full suffix array, s > 1 = sampled
//! shard window     u64       owned bases per shard
//! shard overlap    u64       extra slice bases past the owned window
//! shard count      u64
//! per shard:
//!   start          u64       first owned reference position
//!   byte length    u64       length of the embedded index stream
//!   index          bytes     a complete `PIMFMI2` stream (fmindex::io)
//! checksum         u64       FNV-1a-64 over the body
//! ```
//!
//! Each shard's index stream is length-prefixed because the inner loader
//! probes for end-of-stream; the prefix gives it a bounded slice so the
//! probe cannot consume the next shard's first byte.
//!
//! # Shard model
//!
//! Shard `i` *owns* reference positions `[i·window, (i+1)·window)` (the
//! last shard owns through the end) but is *built* over the slice
//! extended by `overlap` bases, so every alignment starting in the owned
//! window fits entirely inside the slice as long as
//! `read_len + max_diffs <= overlap`. [`ShardedPlatform::align_chunk`]
//! enforces that bound with
//! [`AlignError::ReadExceedsShardOverlap`], aligns the chunk against
//! every shard, translates hits to global coordinates, keeps only the
//! positions each shard owns and merges per read — exact hits beat
//! inexact, inexact hits keep the fewest-difference positions. Under an
//! ideal fault model the merged outcomes are identical to a single
//! unsharded platform over the whole reference.

use std::fmt;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

use bioseq::{Base, DnaSeq};
use fmindex::io as fm_io;
use fmindex::{size_model, FmIndex, SaStorage};
use pimsim::SubArrayLayout;

use crate::aligner::{AlignmentOutcome, MappedStrand};
use crate::config::PimAlignerConfig;
use crate::error::AlignError;
use crate::parallel::BatchTotals;
use crate::platform::Platform;
use crate::report::{IndexTelemetry, PerfReport};

/// Magic prefix of the artifact container.
pub const ARTIFACT_MAGIC: &[u8; 8] = b"PIMAIX1\n";

/// Suffix-array sampling rates [`sa_rate_for_budget`] considers, best
/// (densest) first.
pub const BUDGET_RATES: [u32; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(digest: u64, bytes: &[u8]) -> u64 {
    let mut d = digest;
    for &b in bytes {
        d ^= b as u64;
        d = d.wrapping_mul(FNV_PRIME);
    }
    d
}

/// Why an artifact stream could not be loaded.
#[derive(Debug)]
pub enum LoadArtifactError {
    /// The underlying reader failed for a reason other than truncation.
    Io(io::Error),
    /// The stream does not start with [`ARTIFACT_MAGIC`].
    BadMagic,
    /// The container is structurally damaged: truncated section,
    /// checksum mismatch, inconsistent shard geometry or trailing bytes.
    Corrupt(String),
    /// An embedded per-shard index stream failed to parse.
    Shard(fm_io::LoadIndexError),
}

impl fmt::Display for LoadArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadArtifactError::Io(e) => write!(f, "I/O error reading index artifact: {e}"),
            LoadArtifactError::BadMagic => {
                write!(f, "not a PIM-Aligner index artifact (bad magic)")
            }
            LoadArtifactError::Corrupt(what) => write!(f, "corrupt index artifact: {what}"),
            LoadArtifactError::Shard(e) => write!(f, "corrupt index artifact shard: {e}"),
        }
    }
}

impl std::error::Error for LoadArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadArtifactError::Io(e) => Some(e),
            LoadArtifactError::Shard(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadArtifactError {
    fn from(e: io::Error) -> LoadArtifactError {
        LoadArtifactError::Io(e)
    }
}

impl From<fm_io::LoadIndexError> for LoadArtifactError {
    fn from(e: fm_io::LoadIndexError) -> LoadArtifactError {
        LoadArtifactError::Shard(e)
    }
}

/// One shard of the artifact: a complete FM-index over a reference slice.
#[derive(Debug)]
pub struct ArtifactShard {
    /// First reference position this shard owns (== start of its slice).
    start: usize,
    /// The index over `reference[start .. start + slice_len]`.
    index: FmIndex,
}

impl ArtifactShard {
    /// First owned (and sliced) reference position.
    pub fn start(&self) -> usize {
        self.start
    }

    /// The shard's FM-index.
    pub fn index(&self) -> &FmIndex {
        &self.index
    }
}

/// A buildable, serialisable, loadable index artifact: reference +
/// sampling policy + fixed-window FM-index shards.
#[derive(Debug)]
pub struct IndexArtifact {
    reference_name: String,
    reference: DnaSeq,
    sa_rate: u32,
    shard_window: usize,
    shard_overlap: usize,
    shards: Vec<ArtifactShard>,
}

impl IndexArtifact {
    /// Builds the artifact in memory: one FM-index per shard window.
    ///
    /// `shard_window == 0` means "do not shard" — a single shard covering
    /// the whole reference (overlap is then irrelevant and stored as 0).
    /// `sa_rate == 1` keeps the full suffix array; larger rates sample it.
    ///
    /// # Panics
    ///
    /// Panics when the reference is empty, `sa_rate == 0`, or a non-zero
    /// `shard_window` is paired with a zero `shard_overlap` (such a
    /// geometry could never align any read near a shard boundary).
    pub fn build(
        reference_name: &str,
        reference: &DnaSeq,
        sa_rate: u32,
        shard_window: usize,
        shard_overlap: usize,
    ) -> IndexArtifact {
        assert!(!reference.is_empty(), "cannot index an empty reference");
        assert!(sa_rate > 0, "SA sampling rate must be positive");
        let (window, overlap) = if shard_window == 0 || shard_window >= reference.len() {
            (reference.len(), 0)
        } else {
            assert!(
                shard_overlap > 0,
                "sharded artifacts need a positive overlap (>= read length + diff budget)"
            );
            (shard_window, shard_overlap)
        };
        let storage = if sa_rate == 1 {
            SaStorage::Full
        } else {
            SaStorage::Sampled(sa_rate)
        };
        let count = reference.len().div_ceil(window);
        let mut shards = Vec::with_capacity(count);
        for i in 0..count {
            let start = i * window;
            let slice_end = (start + window + overlap).min(reference.len());
            let slice = reference.subseq(start..slice_end);
            let index = FmIndex::builder()
                .bucket_width(SubArrayLayout::BASES_PER_ROW)
                .sa_storage(storage)
                .build(&slice);
            shards.push(ArtifactShard { start, index });
        }
        IndexArtifact {
            reference_name: reference_name.to_string(),
            reference: reference.clone(),
            sa_rate,
            shard_window: window,
            shard_overlap: overlap,
            shards,
        }
    }

    /// The reference name recorded in the artifact.
    pub fn reference_name(&self) -> &str {
        &self.reference_name
    }

    /// The embedded reference genome.
    pub fn reference(&self) -> &DnaSeq {
        &self.reference
    }

    /// Suffix-array sampling rate (1 = full).
    pub fn sa_rate(&self) -> u32 {
        self.sa_rate
    }

    /// Owned bases per shard.
    pub fn shard_window(&self) -> usize {
        self.shard_window
    }

    /// Slice extension past the owned window.
    pub fn shard_overlap(&self) -> usize {
        self.shard_overlap
    }

    /// The shards, in reference order.
    pub fn shards(&self) -> &[ArtifactShard] {
        &self.shards
    }

    /// Total serialisable index bytes across all shards
    /// ([`FmIndex::size_bytes`]; container framing excluded).
    pub fn index_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.index.size_bytes()).sum()
    }

    /// What [`size_model::footprint`] predicts for this artifact's
    /// geometry: the per-shard-slice footprints summed.
    pub fn model_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let slice_end =
                    (s.start + self.shard_window + self.shard_overlap).min(self.reference.len());
                size_model::footprint(
                    slice_end - s.start,
                    SubArrayLayout::BASES_PER_ROW,
                    self.sa_rate as usize,
                )
                .total_bytes()
            })
            .sum()
    }

    /// Serialises the artifact: magic, body, trailing FNV-1a-64 checksum.
    pub fn save<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writer.write_all(ARTIFACT_MAGIC)?;
        let mut body = Vec::new();
        self.save_body(&mut body)?;
        writer.write_all(&body)?;
        writer.write_all(&fnv1a(FNV_OFFSET, &body).to_le_bytes())?;
        writer.flush()
    }

    fn save_body(&self, body: &mut Vec<u8>) -> io::Result<()> {
        let name = self.reference_name.as_bytes();
        body.extend_from_slice(&(name.len() as u64).to_le_bytes());
        body.extend_from_slice(name);
        body.extend_from_slice(&(self.reference.len() as u64).to_le_bytes());
        body.extend_from_slice(self.reference.to_packed().as_bytes());
        body.extend_from_slice(&self.sa_rate.to_le_bytes());
        body.extend_from_slice(&(self.shard_window as u64).to_le_bytes());
        body.extend_from_slice(&(self.shard_overlap as u64).to_le_bytes());
        body.extend_from_slice(&(self.shards.len() as u64).to_le_bytes());
        for shard in &self.shards {
            body.extend_from_slice(&(shard.start as u64).to_le_bytes());
            let mut stream = Vec::new();
            fm_io::save(&shard.index, &mut stream)?;
            body.extend_from_slice(&(stream.len() as u64).to_le_bytes());
            body.extend_from_slice(&stream);
        }
        Ok(())
    }

    /// Writes the artifact to `path`.
    pub fn save_to_path(&self, path: &Path) -> io::Result<()> {
        let mut file = io::BufWriter::new(File::create(path)?);
        self.save(&mut file)
    }

    /// Loads an artifact: verifies the magic and the trailing checksum,
    /// then parses the body, including every embedded shard stream.
    ///
    /// # Errors
    ///
    /// [`LoadArtifactError::BadMagic`] for foreign streams,
    /// [`LoadArtifactError::Corrupt`] for truncation / checksum / geometry
    /// damage (with the failing section named),
    /// [`LoadArtifactError::Shard`] when an embedded index stream is
    /// itself damaged, and [`LoadArtifactError::Io`] for genuine reader
    /// failures.
    pub fn load<R: Read>(mut reader: R) -> Result<IndexArtifact, LoadArtifactError> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                LoadArtifactError::Corrupt("truncated in magic".to_string())
            } else {
                LoadArtifactError::Io(e)
            }
        })?;
        if &magic != ARTIFACT_MAGIC {
            return Err(LoadArtifactError::BadMagic);
        }
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest)?;
        if rest.len() < 8 {
            return Err(LoadArtifactError::Corrupt(
                "truncated in checksum trailer".to_string(),
            ));
        }
        let (body, trailer) = rest.split_at(rest.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        if fnv1a(FNV_OFFSET, body) != stored {
            return Err(LoadArtifactError::Corrupt("checksum mismatch".to_string()));
        }
        Self::parse_body(body)
    }

    /// Reads an artifact from `path`.
    pub fn load_from_path(path: &Path) -> Result<IndexArtifact, LoadArtifactError> {
        IndexArtifact::load(io::BufReader::new(File::open(path)?))
    }

    fn parse_body(body: &[u8]) -> Result<IndexArtifact, LoadArtifactError> {
        let mut cursor = Cursor { body, pos: 0 };
        let name_len = cursor.u64("name length")? as usize;
        let name_bytes = cursor.bytes(name_len, "name")?;
        let reference_name = String::from_utf8(name_bytes.to_vec())
            .map_err(|_| LoadArtifactError::Corrupt("name is not UTF-8".to_string()))?;
        let ref_len = cursor.u64("reference length")? as usize;
        if ref_len == 0 {
            return Err(LoadArtifactError::Corrupt("empty reference".to_string()));
        }
        let packed = cursor.bytes(ref_len.div_ceil(4), "reference")?;
        let mut bases = Vec::with_capacity(ref_len);
        for i in 0..ref_len {
            bases.push(Base::from_code((packed[i / 4] >> ((i % 4) * 2)) & 0b11));
        }
        let reference = DnaSeq::from_bases(bases);
        let sa_rate = cursor.u32("SA rate")?;
        if sa_rate == 0 {
            return Err(LoadArtifactError::Corrupt("zero SA rate".to_string()));
        }
        let shard_window = cursor.u64("shard window")? as usize;
        let shard_overlap = cursor.u64("shard overlap")? as usize;
        let shard_count = cursor.u64("shard count")? as usize;
        if shard_window == 0 || shard_count != ref_len.div_ceil(shard_window) {
            return Err(LoadArtifactError::Corrupt(format!(
                "shard geometry mismatch: {shard_count} shards of window {shard_window} \
                 over {ref_len} bases"
            )));
        }
        let mut shards = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let start = cursor.u64("shard start")? as usize;
            if start != i * shard_window {
                return Err(LoadArtifactError::Corrupt(format!(
                    "shard {i} starts at {start}, expected {}",
                    i * shard_window
                )));
            }
            let stream_len = cursor.u64("shard byte length")? as usize;
            let stream = cursor.bytes(stream_len, "shard index stream")?;
            let index = fm_io::load(stream)?;
            let slice_len = (start + shard_window + shard_overlap).min(ref_len) - start;
            if index.reference_len() != slice_len {
                return Err(LoadArtifactError::Corrupt(format!(
                    "shard {i} indexes {} bases, expected {slice_len}",
                    index.reference_len()
                )));
            }
            shards.push(ArtifactShard { start, index });
        }
        if cursor.pos != body.len() {
            return Err(LoadArtifactError::Corrupt(
                "trailing bytes after the last shard".to_string(),
            ));
        }
        Ok(IndexArtifact {
            reference_name,
            reference,
            sa_rate,
            shard_window,
            shard_overlap,
            shards,
        })
    }
}

struct Cursor<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn bytes(&mut self, n: usize, section: &str) -> Result<&'a [u8], LoadArtifactError> {
        if self.body.len() - self.pos < n {
            return Err(LoadArtifactError::Corrupt(format!(
                "truncated in {section}"
            )));
        }
        let out = &self.body[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u64(&mut self, section: &str) -> Result<u64, LoadArtifactError> {
        Ok(u64::from_le_bytes(
            self.bytes(8, section)?.try_into().expect("8 bytes"),
        ))
    }

    fn u32(&mut self, section: &str) -> Result<u32, LoadArtifactError> {
        Ok(u32::from_le_bytes(
            self.bytes(4, section)?.try_into().expect("4 bytes"),
        ))
    }
}

/// The best (densest) suffix-array sampling rate whose modelled
/// footprint fits `budget_bytes`, or `None` when even the sparsest rate
/// in [`BUDGET_RATES`] does not fit.
///
/// "Best" means the smallest rate: rate 1 keeps the full suffix array
/// and locates in O(1) per hit; each doubling halves the SA bytes but
/// lengthens the LF walk. The footprint is
/// [`size_model::footprint`] at the platform's bucket width of
/// [`SubArrayLayout::BASES_PER_ROW`].
pub fn sa_rate_for_budget(genome_len: usize, budget_bytes: usize) -> Option<u32> {
    BUDGET_RATES.into_iter().find(|&rate| {
        size_model::footprint(genome_len, SubArrayLayout::BASES_PER_ROW, rate as usize)
            .total_bytes()
            <= budget_bytes
    })
}

struct ShardRuntime {
    start: usize,
    /// One past the last owned position (`start + window`, clamped).
    owned_end: usize,
    platform: Platform,
}

/// One or more warm [`Platform`]s booted from an [`IndexArtifact`],
/// aligned against together with merged outcomes and totals.
pub struct ShardedPlatform {
    shards: Vec<ShardRuntime>,
    config: PimAlignerConfig,
    sa_rate: u32,
    shard_window: usize,
    shard_overlap: usize,
    actual_bytes: u64,
    model_bytes: u64,
    loaded: bool,
}

impl ShardedPlatform {
    /// Boots warm platforms from the artifact: only the sub-array
    /// mapping runs per shard; the FM-indexes are taken as-is.
    ///
    /// `loaded` records provenance for telemetry — pass `true` when the
    /// artifact came off disk, `false` when it was just built in-process.
    pub fn from_artifact(
        artifact: &IndexArtifact,
        config: PimAlignerConfig,
        loaded: bool,
    ) -> ShardedPlatform {
        let reference = artifact.reference();
        let actual_bytes = artifact.index_bytes() as u64;
        let model_bytes = artifact.model_bytes() as u64;
        let mut shards = Vec::with_capacity(artifact.shards().len());
        for shard in artifact.shards() {
            let start = shard.start();
            let owned_end = (start + artifact.shard_window()).min(reference.len());
            let slice_end =
                (start + artifact.shard_window() + artifact.shard_overlap()).min(reference.len());
            let slice = reference.subseq(start..slice_end);
            let platform = Platform::from_index(slice, shard.index().clone(), config.clone());
            shards.push(ShardRuntime {
                start,
                owned_end,
                platform,
            });
        }
        ShardedPlatform {
            shards,
            config,
            sa_rate: artifact.sa_rate(),
            shard_window: artifact.shard_window(),
            shard_overlap: artifact.shard_overlap(),
            actual_bytes,
            model_bytes,
            loaded,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The single underlying platform, when the artifact is unsharded.
    pub fn single_platform(&self) -> Option<&Platform> {
        match &self.shards[..] {
            [only] => Some(&only.platform),
            _ => None,
        }
    }

    /// The index telemetry this platform stamps into its reports.
    pub fn index_telemetry(&self) -> IndexTelemetry {
        IndexTelemetry {
            loaded: self.loaded,
            shards: self.shards.len() as u64,
            sa_rate: self.sa_rate,
            shard_window: self.shard_window as u64,
            shard_overlap: self.shard_overlap as u64,
            actual_bytes: self.actual_bytes,
            model_bytes: self.model_bytes,
        }
    }

    /// The largest read length the shard overlap can cover
    /// (`overlap - max_diffs`); `usize::MAX` when unsharded.
    pub fn read_len_budget(&self) -> usize {
        if self.shards.len() == 1 {
            usize::MAX
        } else {
            self.shard_overlap
                .saturating_sub(self.config.max_diffs() as usize)
        }
    }

    /// Aligns one chunk of reads against every shard concurrently (each
    /// shard runs the work-stealing parallel engine) and merges per read:
    /// positions translate to global coordinates, each shard keeps only
    /// the positions it owns, exact hits beat inexact, and inexact hits
    /// keep the fewest-difference positions. With `both_strands`, reads
    /// left unmapped by the merged forward pass retry as their reverse
    /// complement — mirroring the unsharded two-phase strand policy.
    ///
    /// The merged [`BatchTotals`] counts each input read once
    /// (`reads`/`exact_hits` describe the merged outcomes) while
    /// `queries`, `lfm_calls` and the cycle ledger accumulate the work
    /// every shard actually performed.
    ///
    /// # Errors
    ///
    /// [`AlignError::EmptyBatch`], [`AlignError::NoThreads`], or
    /// [`AlignError::ReadExceedsShardOverlap`] when a read (plus the
    /// configured difference budget) does not fit the shard overlap.
    pub fn align_chunk(
        &self,
        reads: &[DnaSeq],
        threads: usize,
        epoch: u64,
        both_strands: bool,
    ) -> Result<(Vec<(AlignmentOutcome, MappedStrand)>, BatchTotals), AlignError> {
        if reads.is_empty() {
            return Err(AlignError::EmptyBatch);
        }
        if threads == 0 {
            return Err(AlignError::NoThreads);
        }
        let budget = self.read_len_budget();
        if let Some(read) = reads.iter().find(|r| r.len() > budget) {
            return Err(AlignError::ReadExceedsShardOverlap {
                read_len: read.len(),
                budget,
            });
        }
        if let Some(platform) = self.single_platform() {
            return platform.align_chunk_parallel(reads, threads, epoch, both_strands);
        }

        let mut totals = BatchTotals::new();
        let forward = self.merged_forward_pass(reads, threads, epoch, &mut totals)?;

        let mut merged: Vec<(AlignmentOutcome, MappedStrand)> = forward
            .into_iter()
            .map(|o| (o, MappedStrand::Forward))
            .collect();
        if both_strands {
            let retry: Vec<usize> = merged
                .iter()
                .enumerate()
                .filter(|(_, (o, _))| !o.is_mapped())
                .map(|(i, _)| i)
                .collect();
            if !retry.is_empty() {
                let rev: Vec<DnaSeq> = retry
                    .iter()
                    .map(|&i| reads[i].reverse_complement())
                    .collect();
                let outcomes = self.merged_forward_pass(&rev, threads, epoch, &mut totals)?;
                for (&i, outcome) in retry.iter().zip(outcomes) {
                    if outcome.is_mapped() {
                        merged[i] = (outcome, MappedStrand::Reverse);
                    }
                }
            }
        }

        // The shard passes each counted the whole chunk; the merged
        // totals describe it once, with exact hits recomputed from the
        // merged outcomes.
        totals.reads = reads.len() as u64;
        totals.exact_hits = merged
            .iter()
            .filter(|(o, _)| matches!(o, AlignmentOutcome::Exact { .. }))
            .count() as u64;
        Ok((merged, totals))
    }

    /// Runs the forward strand over every shard and merges per read.
    fn merged_forward_pass(
        &self,
        reads: &[DnaSeq],
        threads: usize,
        epoch: u64,
        totals: &mut BatchTotals,
    ) -> Result<Vec<AlignmentOutcome>, AlignError> {
        let mut merged: Vec<AlignmentOutcome> = vec![AlignmentOutcome::Unmapped; reads.len()];
        for shard in &self.shards {
            let (pairs, shard_totals) = shard
                .platform
                .align_chunk_parallel(reads, threads, epoch, false)?;
            totals.merge(&shard_totals);
            for (read_idx, (outcome, _)) in pairs.into_iter().enumerate() {
                let owned = shard.translate_owned(outcome);
                merge_into(&mut merged[read_idx], owned);
            }
        }
        Ok(merged)
    }

    /// The performance report for accumulated totals: like
    /// [`Platform::batch_report`] but with every shard's one-time build
    /// fault counters and mapping cycles added, and the index telemetry
    /// stamped in.
    pub fn batch_report(&self, totals: &BatchTotals) -> PerfReport {
        let mut report = PerfReport::from_batch(
            &self.config,
            &totals.ledger,
            totals.queries,
            totals.lfm_calls,
        );
        let mut faults = totals.telemetry;
        let mut build_cycles = 0;
        for shard in &self.shards {
            let build = shard.platform.mapped().build_fault_counters();
            faults.stuck_cells += build.stuck_cells;
            faults.xnor_bit_flips += build.xnor_bit_flips;
            faults.transient_row_faults += build.transient_row_faults;
            faults.carry_faults += build.carry_faults;
            build_cycles += shard.platform.mapped().mapping_ledger().total_busy_cycles();
        }
        report.faults = faults;
        report.breakdown.lfm_by_phase = totals.phase_lfm;
        report.breakdown.index_build_cycles = build_cycles;
        report.host = totals.host.clone();
        report.index = self.index_telemetry();
        report
    }
}

impl ShardRuntime {
    /// Translates a shard-local outcome to global coordinates and drops
    /// the positions this shard does not own. An outcome left with no
    /// positions degrades to `Unmapped`.
    fn translate_owned(&self, outcome: AlignmentOutcome) -> AlignmentOutcome {
        match outcome {
            AlignmentOutcome::Exact { positions } => {
                let kept = self.owned_global(positions);
                if kept.is_empty() {
                    AlignmentOutcome::Unmapped
                } else {
                    AlignmentOutcome::Exact { positions: kept }
                }
            }
            AlignmentOutcome::Inexact { positions, diffs } => {
                let kept = self.owned_global(positions);
                if kept.is_empty() {
                    AlignmentOutcome::Unmapped
                } else {
                    AlignmentOutcome::Inexact {
                        positions: kept,
                        diffs,
                    }
                }
            }
            AlignmentOutcome::Unmapped => AlignmentOutcome::Unmapped,
        }
    }

    fn owned_global(&self, local: Vec<usize>) -> Vec<usize> {
        local
            .into_iter()
            .map(|p| p + self.start)
            .filter(|&g| g < self.owned_end)
            .collect()
    }
}

/// Merges one shard's (owned, global-coordinate) outcome into the
/// accumulator for a read: exact beats inexact beats unmapped; equal
/// tiers union their positions (inexact keeps the fewer-difference
/// side on a diff tie-break).
fn merge_into(acc: &mut AlignmentOutcome, next: AlignmentOutcome) {
    use AlignmentOutcome::{Exact, Inexact, Unmapped};
    let merged = match (std::mem::replace(acc, Unmapped), next) {
        (Exact { positions: a }, Exact { positions: b }) => Exact {
            positions: union_sorted(a, b),
        },
        (e @ Exact { .. }, _) => e,
        (_, e @ Exact { .. }) => e,
        (
            Inexact {
                positions: a,
                diffs: da,
            },
            Inexact {
                positions: b,
                diffs: db,
            },
        ) => {
            if da < db {
                Inexact {
                    positions: a,
                    diffs: da,
                }
            } else if db < da {
                Inexact {
                    positions: b,
                    diffs: db,
                }
            } else {
                Inexact {
                    positions: union_sorted(a, b),
                    diffs: da,
                }
            }
        }
        (i @ Inexact { .. }, Unmapped) => i,
        (Unmapped, i @ Inexact { .. }) => i,
        (Unmapped, Unmapped) => Unmapped,
    };
    *acc = merged;
}

/// Union of two position lists, sorted and deduplicated. Ownership
/// filtering makes cross-shard duplicates impossible, but dedup anyway —
/// the SAM writer expects strictly sorted positions.
fn union_sorted(mut a: Vec<usize>, b: Vec<usize>) -> Vec<usize> {
    a.extend(b);
    a.sort_unstable();
    a.dedup();
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use readsim::genome;

    fn test_artifact(len: usize, window: usize) -> IndexArtifact {
        let reference = genome::uniform(len, 97);
        IndexArtifact::build("test-ref", &reference, 4, window, 96)
    }

    #[test]
    fn container_round_trips() {
        let artifact = test_artifact(2_000, 512);
        assert_eq!(artifact.shards().len(), 4);
        let mut buffer = Vec::new();
        artifact.save(&mut buffer).expect("save");
        let loaded = IndexArtifact::load(&buffer[..]).expect("load");
        assert_eq!(loaded.reference_name(), "test-ref");
        assert_eq!(loaded.reference(), artifact.reference());
        assert_eq!(loaded.sa_rate(), 4);
        assert_eq!(loaded.shard_window(), 512);
        assert_eq!(loaded.shard_overlap(), 96);
        assert_eq!(loaded.shards().len(), 4);
        for (a, b) in artifact.shards().iter().zip(loaded.shards()) {
            assert_eq!(a.start(), b.start());
            assert_eq!(a.index().size_bytes(), b.index().size_bytes());
            assert_eq!(a.index().bwt().to_string(), b.index().bwt().to_string());
        }
    }

    #[test]
    fn unsharded_build_normalises_geometry() {
        let reference = genome::uniform(500, 3);
        let artifact = IndexArtifact::build("r", &reference, 1, 0, 0);
        assert_eq!(artifact.shards().len(), 1);
        assert_eq!(artifact.shard_window(), 500);
        assert_eq!(artifact.shard_overlap(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = IndexArtifact::load(&b"NOTANIDX........"[..]).unwrap_err();
        assert!(matches!(err, LoadArtifactError::BadMagic), "{err}");
    }

    #[test]
    fn truncation_and_corruption_detected() {
        let artifact = test_artifact(600, 300);
        let mut buffer = Vec::new();
        artifact.save(&mut buffer).expect("save");

        // Truncation anywhere inside the trailer window.
        let cut = &buffer[..buffer.len() - 3];
        match IndexArtifact::load(cut).unwrap_err() {
            LoadArtifactError::Corrupt(msg) => assert!(msg.contains("checksum mismatch"), "{msg}"),
            other => panic!("expected Corrupt, got {other}"),
        }

        // A flipped body byte fails the checksum.
        let mut flipped = buffer.clone();
        flipped[20] ^= 0xff;
        match IndexArtifact::load(&flipped[..]).unwrap_err() {
            LoadArtifactError::Corrupt(msg) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected Corrupt, got {other}"),
        }

        // Trailing garbage shifts the trailer and fails the checksum.
        let mut extended = buffer.clone();
        extended.extend_from_slice(b"EXTRA");
        assert!(IndexArtifact::load(&extended[..]).is_err());
    }

    #[test]
    fn budget_picks_the_densest_fitting_rate() {
        let len = 1 << 20;
        let full = size_model::footprint(len, SubArrayLayout::BASES_PER_ROW, 1).total_bytes();
        assert_eq!(sa_rate_for_budget(len, full), Some(1));
        // Rate 2 stores ceil(n/2) (row, value) pairs at 8 bytes — no
        // smaller than the full SA's n u32s — so the first rate that
        // actually shrinks below a full-SA budget is 4.
        assert_eq!(sa_rate_for_budget(len, full - 1), Some(4));
        let sparse = size_model::footprint(len, SubArrayLayout::BASES_PER_ROW, 1024).total_bytes();
        assert_eq!(sa_rate_for_budget(len, sparse), Some(1024));
        assert_eq!(sa_rate_for_budget(len, sparse - 1), None);
    }

    #[test]
    fn model_matches_actual_bytes() {
        let artifact = test_artifact(4_000, 1_024);
        let actual = artifact.index_bytes();
        let model = artifact.model_bytes();
        let diff = actual.abs_diff(model);
        assert!(
            diff * 1000 <= model,
            "model {model} vs actual {actual} off by more than 0.1%"
        );
    }

    #[test]
    fn sharded_outcomes_match_unsharded() {
        let reference = genome::uniform(3_000, 11);
        let config = PimAlignerConfig::baseline();
        let mut reads: Vec<DnaSeq> = (0..40)
            .map(|i| reference.subseq(i * 70..i * 70 + 48))
            .collect();
        // A read straddling a shard boundary, a mutated read and a
        // foreign read exercise all three outcome arms.
        reads.push(reference.subseq(1_000 - 20..1_000 + 28));
        let mut mutated = reference.subseq(200..248).into_bases();
        mutated[10] = match mutated[10] {
            Base::A => Base::C,
            _ => Base::A,
        };
        reads.push(DnaSeq::from_bases(mutated));
        reads.push(genome::uniform(48, 999));

        let flat = Platform::new(&reference, config.clone());
        let (expected, _) = flat
            .align_chunk_parallel(&reads, 2, 0, true)
            .expect("unsharded");

        let artifact = IndexArtifact::build("r", &reference, 1, 1_000, 96);
        assert_eq!(artifact.shards().len(), 3);
        let sharded = ShardedPlatform::from_artifact(&artifact, config, false);
        let (merged, totals) = sharded.align_chunk(&reads, 2, 0, true).expect("sharded");

        assert_eq!(merged.len(), expected.len());
        for (i, ((got, gs), (want, ws))) in merged.iter().zip(&expected).enumerate() {
            assert_eq!(got, want, "outcome mismatch at read {i}");
            assert_eq!(gs, ws, "strand mismatch at read {i}");
        }
        assert_eq!(totals.reads, reads.len() as u64);
        let expected_exact = expected
            .iter()
            .filter(|(o, _)| matches!(o, AlignmentOutcome::Exact { .. }))
            .count() as u64;
        assert_eq!(totals.exact_hits, expected_exact);
        // Every shard aligned the whole chunk, so the simulated work is
        // strictly larger than one read per query.
        assert!(totals.queries >= totals.reads);
    }

    #[test]
    fn overlong_read_is_a_typed_error() {
        let reference = genome::uniform(2_000, 5);
        let artifact = IndexArtifact::build("r", &reference, 1, 500, 64);
        let sharded =
            ShardedPlatform::from_artifact(&artifact, PimAlignerConfig::baseline(), false);
        let long_read = reference.subseq(0..200);
        let err = sharded.align_chunk(&[long_read], 1, 0, false).unwrap_err();
        match err {
            AlignError::ReadExceedsShardOverlap { read_len, budget } => {
                assert_eq!(read_len, 200);
                assert!(budget < 200);
            }
            other => panic!("expected ReadExceedsShardOverlap, got {other}"),
        }
    }

    #[test]
    fn warm_boot_report_carries_index_telemetry() {
        let reference = genome::uniform(1_500, 21);
        let artifact = IndexArtifact::build("r", &reference, 2, 600, 80);
        let sharded = ShardedPlatform::from_artifact(&artifact, PimAlignerConfig::baseline(), true);
        let reads: Vec<DnaSeq> = (0..8)
            .map(|i| reference.subseq(i * 100..i * 100 + 40))
            .collect();
        let (_, totals) = sharded.align_chunk(&reads, 1, 0, false).expect("align");
        let report = sharded.batch_report(&totals);
        assert!(report.index.loaded);
        assert_eq!(report.index.shards, 3);
        assert_eq!(report.index.sa_rate, 2);
        assert_eq!(report.index.shard_window, 600);
        assert_eq!(report.index.shard_overlap, 80);
        assert!(report.index.actual_bytes > 0);
        assert!(report.index.model_bytes > 0);
    }
}
