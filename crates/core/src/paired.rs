//! Paired-end alignment on the platform (beyond-paper extension,
//! DESIGN.md §8).
//!
//! Both mates are aligned independently through the normal two-stage
//! pipeline; the pairing logic then searches the position sets for a
//! combination with proper orientation (mates on opposite strands,
//! facing inward) and an insert length within the caller's window. With
//! repeats, independent mates are ambiguous; pairing disambiguates —
//! the reason real pipelines sequence both fragment ends.

use bioseq::DnaSeq;

use crate::aligner::{MappedStrand, PimAligner};

/// Constraints for proper pairing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairConstraints {
    /// Minimum accepted fragment (outer insert) length.
    pub min_insert: usize,
    /// Maximum accepted fragment length.
    pub max_insert: usize,
}

impl PairConstraints {
    /// Creates constraints.
    ///
    /// # Panics
    ///
    /// Panics if `min_insert > max_insert` or `min_insert == 0`.
    pub fn new(min_insert: usize, max_insert: usize) -> PairConstraints {
        assert!(min_insert > 0, "minimum insert must be positive");
        assert!(min_insert <= max_insert, "insert window inverted");
        PairConstraints {
            min_insert,
            max_insert,
        }
    }
}

/// The outcome of aligning one read pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PairOutcome {
    /// Both mates mapped with proper orientation and insert length.
    ProperPair {
        /// Fragment start (position of the leftmost mate).
        fragment_start: usize,
        /// Fragment (outer insert) length.
        fragment_len: usize,
        /// Which input read mapped forward.
        forward_mate: Mate,
    },
    /// Both mates mapped but no combination satisfied the constraints.
    Discordant {
        /// Positions of read 1 (on its mapped strand).
        r1_positions: Vec<usize>,
        /// Positions of read 2 (on its mapped strand).
        r2_positions: Vec<usize>,
    },
    /// Exactly one mate mapped.
    SingleEnd {
        /// Which mate mapped.
        mapped: Mate,
        /// Its positions.
        positions: Vec<usize>,
    },
    /// Neither mate mapped.
    Unmapped,
}

/// Identifies a mate within a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mate {
    /// Read 1.
    R1,
    /// Read 2.
    R2,
}

impl PairOutcome {
    /// `true` for a properly paired alignment.
    pub fn is_proper(&self) -> bool {
        matches!(self, PairOutcome::ProperPair { .. })
    }
}

/// Aligns a read pair: each mate against both strands, then pairing.
///
/// Illumina FR chemistry puts the mates on opposite strands facing
/// inward, so a proper combination is `(forward R1 at p1, reverse R2 at
/// p2)` with `p1 ≤ p2` and `p2 + len(R2) − p1` inside the insert window —
/// or the mirror image with R2 forward. Among valid combinations the
/// smallest fragment is reported (the most probable under any unimodal
/// insert distribution).
pub fn align_pair(
    aligner: &mut PimAligner,
    r1: &DnaSeq,
    r2: &DnaSeq,
    constraints: PairConstraints,
) -> PairOutcome {
    let (o1, s1) = aligner.align_read_both_strands(r1);
    let (o2, s2) = aligner.align_read_both_strands(r2);
    match (o1.positions(), o2.positions()) {
        (None, None) => PairOutcome::Unmapped,
        (Some(p), None) => PairOutcome::SingleEnd {
            mapped: Mate::R1,
            positions: p.to_vec(),
        },
        (None, Some(p)) => PairOutcome::SingleEnd {
            mapped: Mate::R2,
            positions: p.to_vec(),
        },
        (Some(p1), Some(p2)) => {
            let best = match (s1, s2) {
                (MappedStrand::Forward, MappedStrand::Reverse) => {
                    best_fragment(p1, r1.len(), p2, r2.len(), constraints).map(|f| (f, Mate::R1))
                }
                (MappedStrand::Reverse, MappedStrand::Forward) => {
                    best_fragment(p2, r2.len(), p1, r1.len(), constraints).map(|f| (f, Mate::R2))
                }
                // Same-strand mappings are never proper in FR chemistry.
                _ => None,
            };
            match best {
                Some(((start, len), forward_mate)) => PairOutcome::ProperPair {
                    fragment_start: start,
                    fragment_len: len,
                    forward_mate,
                },
                None => PairOutcome::Discordant {
                    r1_positions: p1.to_vec(),
                    r2_positions: p2.to_vec(),
                },
            }
        }
    }
}

/// Finds the smallest valid fragment `(start, len)` with the forward mate
/// at `fwd` positions and the reverse mate at `rev` positions. Position
/// lists are sorted, so a merge-style scan keeps this near-linear.
fn best_fragment(
    fwd: &[usize],
    _fwd_len: usize,
    rev: &[usize],
    rev_len: usize,
    constraints: PairConstraints,
) -> Option<(usize, usize)> {
    let mut best: Option<(usize, usize)> = None;
    for &p1 in fwd {
        for &p2 in rev {
            let Some(end) = p2.checked_add(rev_len) else {
                continue;
            };
            if end <= p1 {
                continue;
            }
            let len = end - p1;
            if len < constraints.min_insert || len > constraints.max_insert {
                continue;
            }
            if best.is_none_or(|(_, bl)| len < bl) {
                best = Some((p1, len));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PimAlignerConfig;
    use readsim::genome;
    use readsim::paired::{simulate_pairs, InsertProfile};
    use readsim::SimProfile;

    fn constraints() -> PairConstraints {
        PairConstraints::new(100, 700)
    }

    #[test]
    fn clean_pairs_align_properly_with_correct_fragment() {
        let reference = genome::uniform(30_000, 201);
        let profile = SimProfile::paper_defaults()
            .read_count(25)
            .read_len(60)
            .error_rate(0.0)
            .variants(readsim::variant::VariantProfile {
                rate: 0.0,
                ..Default::default()
            });
        let sim = simulate_pairs(&reference, profile, InsertProfile::default(), 202);
        let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline());
        for pair in &sim.pairs {
            let outcome = align_pair(&mut aligner, &pair.r1, &pair.r2, constraints());
            match outcome {
                PairOutcome::ProperPair {
                    fragment_start,
                    fragment_len,
                    forward_mate,
                } => {
                    assert_eq!(fragment_start, pair.fragment_start, "{}", pair.id);
                    assert_eq!(fragment_len, pair.fragment_len, "{}", pair.id);
                    assert_eq!(forward_mate, Mate::R1);
                }
                other => panic!("{} should pair properly, got {other:?}", pair.id),
            }
        }
    }

    #[test]
    fn pairing_disambiguates_repeats() {
        // Reference = unique prefix + repeat + unique middle + the same
        // repeat + unique tail. A read inside the repeat is ambiguous
        // alone but pairs uniquely with a mate in the unique middle.
        let repeat = genome::uniform(200, 203);
        let prefix = genome::uniform(300, 204);
        let middle = genome::uniform(300, 205);
        let tail = genome::uniform(300, 206);
        let mut reference = prefix.clone();
        reference.extend(repeat.iter().copied());
        reference.extend(middle.iter().copied());
        reference.extend(repeat.iter().copied());
        reference.extend(tail.iter().copied());

        let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline());
        // R1 inside the first repeat copy (ambiguous: two positions).
        let r1_start = 300 + 50;
        let r1 = reference.subseq(r1_start..r1_start + 60);
        assert_eq!(
            aligner.align_read(&r1).positions().map(<[usize]>::len),
            Some(2),
            "repeat read must be ambiguous alone"
        );
        // R2 from the unique middle, reverse-complemented, such that the
        // fragment spans repeat-copy-1 into the middle.
        let fragment_end = 300 + 200 + 150;
        let r2 = reference
            .subseq(fragment_end - 60..fragment_end)
            .reverse_complement();
        let outcome = align_pair(&mut aligner, &r1, &r2, PairConstraints::new(100, 500));
        match outcome {
            PairOutcome::ProperPair { fragment_start, .. } => {
                assert_eq!(fragment_start, r1_start, "pairing must pick repeat copy 1")
            }
            other => panic!("expected proper pair, got {other:?}"),
        }
    }

    #[test]
    fn unpairable_combinations_are_classified() {
        let reference = genome::uniform(10_000, 207);
        let mut aligner =
            PimAligner::new(&reference, PimAlignerConfig::baseline().with_max_diffs(0));
        let r1 = reference.subseq(1_000..1_060);
        // Both mates forward and far apart: discordant.
        let r2_same_strand = reference.subseq(9_000..9_060);
        let out = align_pair(&mut aligner, &r1, &r2_same_strand, constraints());
        assert!(matches!(out, PairOutcome::Discordant { .. }), "{out:?}");
        // Unmappable mate: single-end.
        let junk: DnaSeq = "G".repeat(60).parse().unwrap();
        let out = align_pair(&mut aligner, &r1, &junk, constraints());
        assert!(
            matches!(
                out,
                PairOutcome::SingleEnd {
                    mapped: Mate::R1,
                    ..
                }
            ),
            "{out:?}"
        );
        // Both junk: unmapped.
        let out = align_pair(&mut aligner, &junk, &junk, constraints());
        assert_eq!(out, PairOutcome::Unmapped);
    }

    #[test]
    #[should_panic(expected = "window inverted")]
    fn inverted_constraints_rejected() {
        let _ = PairConstraints::new(500, 100);
    }
}
