//! The shared, immutable platform half of the aligner.
//!
//! The paper's premise is that the BWT/FM-index is mapped into the
//! SOT-MRAM sub-arrays **once** and then queried in place. [`Platform`]
//! is that one-time artifact in software form: the reference and the
//! [`MappedIndex`] behind `Arc`s plus the configuration, built exactly
//! once per run and shared — by clone of the cheap handles — across any
//! number of host worker threads. All mutable per-query state (the DPU
//! registers, the cycle ledger, the alignment-time fault-injection
//! stream, the telemetry counters) lives in [`AlignSession`]s spawned
//! from the platform.

use std::sync::Arc;

use bioseq::DnaSeq;

use crate::aligner::AlignSession;
use crate::config::PimAlignerConfig;
use crate::mapping::MappedIndex;

/// The immutable, shareable aligner platform: reference genome + mapped
/// FM-index + configuration.
///
/// Cloning a `Platform` clones two `Arc` handles and the configuration —
/// it never rebuilds the index. [`MappedIndex::build`] runs exactly once,
/// inside [`Platform::new`].
///
/// # Examples
///
/// ```
/// use bioseq::DnaSeq;
/// use pim_aligner::{AlignmentOutcome, Platform, PimAlignerConfig};
///
/// # fn main() -> Result<(), bioseq::ParseSeqError> {
/// let reference: DnaSeq = "TGCTA".parse()?;
/// let platform = Platform::new(&reference, PimAlignerConfig::baseline());
/// // Sessions share the one mapped index; each holds only mutable state.
/// let mut session = platform.session();
/// let outcome = session.align_read(&"CTA".parse()?);
/// assert_eq!(outcome, AlignmentOutcome::Exact { positions: vec![2] });
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Platform {
    reference: Arc<DnaSeq>,
    mapped: Arc<MappedIndex>,
    config: PimAlignerConfig,
    /// `true` when the FM-index came from a serialised artifact
    /// ([`Platform::from_index`]) rather than being built in-process;
    /// recorded in the report's index telemetry.
    warm_booted: bool,
}

impl Platform {
    /// Builds the platform over a reference genome: FM-index
    /// construction plus sub-array mapping, exactly once. The one-time
    /// cost is kept in the index's mapping ledger.
    pub fn new(reference: &DnaSeq, config: PimAlignerConfig) -> Platform {
        let mapped = Arc::new(MappedIndex::build(reference, &config));
        Platform {
            reference: Arc::new(reference.clone()),
            mapped,
            config,
            warm_booted: false,
        }
    }

    /// Builds the platform around an already-constructed FM-index — the
    /// warm-boot path used when loading a serialised artifact. Only the
    /// sub-array mapping runs; the index construction (SA-IS, BWT,
    /// tables) is skipped entirely.
    ///
    /// # Panics
    ///
    /// Panics if `index` was not built over `reference` (text length
    /// mismatch) or its bucket width is not 128.
    pub fn from_index(
        reference: DnaSeq,
        index: fmindex::FmIndex,
        config: PimAlignerConfig,
    ) -> Platform {
        assert_eq!(
            index.reference_len(),
            reference.len(),
            "index does not cover the supplied reference"
        );
        let mapped = Arc::new(MappedIndex::from_index(index, &config));
        Platform {
            reference: Arc::new(reference),
            mapped,
            config,
            warm_booted: true,
        }
    }

    /// How this platform's index came to be, for the report's `index`
    /// telemetry: one shard spanning the whole reference, the index's
    /// actual suffix-array sampling rate, its serialisable byte count
    /// and what the size model predicts for that geometry.
    pub fn index_telemetry(&self) -> crate::report::IndexTelemetry {
        let index = self.mapped.index();
        let sa_rate = match index.sa_samples() {
            fmindex::SuffixArraySamples::Full(_) => 1,
            fmindex::SuffixArraySamples::Sampled { rate, .. } => *rate,
        };
        crate::report::IndexTelemetry {
            loaded: self.warm_booted,
            shards: 1,
            sa_rate,
            shard_window: self.reference.len() as u64,
            shard_overlap: 0,
            actual_bytes: index.size_bytes() as u64,
            model_bytes: fmindex::size_model::footprint(
                self.reference.len(),
                index.bucket_width(),
                sa_rate as usize,
            )
            .total_bytes() as u64,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PimAlignerConfig {
        &self.config
    }

    /// The indexed reference genome.
    pub fn reference(&self) -> &DnaSeq {
        &self.reference
    }

    /// The shared mapped index (sub-arrays + software ground truth).
    pub fn mapped(&self) -> &MappedIndex {
        &self.mapped
    }

    /// Spawns a sequential alignment session. Its fault-injection stream
    /// is seeded straight from the campaign, so it replays bit-identically
    /// to the pre-split `PimAligner` behaviour.
    pub fn session(&self) -> AlignSession {
        self.worker_session(0)
    }

    /// Spawns the alignment session for parallel worker `worker`:
    /// worker 0 replays the sequential fault stream, workers > 0 draw
    /// decorrelated sub-seeds
    /// ([`FaultCampaign::for_worker`](mram::faults::FaultCampaign::for_worker)).
    pub fn worker_session(&self, worker: u64) -> AlignSession {
        AlignSession::for_platform(self.clone(), worker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use readsim::genome;

    #[test]
    fn clone_shares_the_mapped_index() {
        let reference = genome::uniform(3_000, 51);
        let platform = Platform::new(&reference, PimAlignerConfig::baseline());
        let before = MappedIndex::build_count();
        let clone = platform.clone();
        assert_eq!(MappedIndex::build_count(), before, "clone must not rebuild");
        assert!(std::ptr::eq(platform.mapped(), clone.mapped()));
        assert!(std::ptr::eq(platform.reference(), clone.reference()));
    }

    #[test]
    fn sessions_share_one_index_build() {
        let reference = genome::uniform(3_000, 52);
        let platform = Platform::new(&reference, PimAlignerConfig::baseline());
        let before = MappedIndex::build_count();
        let read = reference.subseq(100..160);
        for w in 0..4 {
            let mut session = platform.worker_session(w);
            assert!(session.align_read(&read).is_mapped());
        }
        assert_eq!(
            MappedIndex::build_count(),
            before,
            "sessions must never rebuild the index"
        );
    }
}
