//! Platform configuration.

use mram::array::{ArrayModel, ChipOrg};
use mram::faults::{FaultCampaign, FaultModel};
use pimsim::pipeline::PipelineParams;
use pimsim::SimdPolicy;

/// Default kernel batch width: how many reads the parallel engine
/// interleaves into one `LfmBatch` step
/// ([`PimAlignerConfig::with_kernel_batch`]). Eight keeps the shared
/// plane-load amortisation high while the per-batch mask state still
/// fits comfortably in cache.
pub const DEFAULT_KERNEL_BATCH: usize = 8;

/// The verify-and-recover policy (DESIGN.md §8): what the aligner does
/// when a candidate locus fails online verification against the
/// reference.
///
/// The escalation ladder is: re-run the LFM loop (faults re-draw) up to
/// [`max_retries`](RecoveryPolicy::max_retries) times → escalate the
/// difference budget `z` one step at a time up to
/// [`max_escalated_diffs`](RecoveryPolicy::max_escalated_diffs) → fall
/// back to the fault-free host software path when
/// [`host_fallback`](RecoveryPolicy::host_fallback) is set.
///
/// # Examples
///
/// ```
/// use pim_aligner::RecoveryPolicy;
///
/// assert!(!RecoveryPolicy::disabled().is_enabled());
/// let p = RecoveryPolicy::standard();
/// assert!(p.is_enabled() && p.host_fallback);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Master switch; when `false` the aligner emits raw platform
    /// results with zero verification overhead.
    pub enabled: bool,
    /// Same-budget re-runs before escalating.
    pub max_retries: u32,
    /// Ceiling for the escalated difference budget (clamped to the
    /// [`fmindex::EditBudget`] cap of 8).
    pub max_escalated_diffs: u8,
    /// Whether the final rung falls back to the host software aligner
    /// (FM-index search + Smith–Waterman verification), which is
    /// fault-free by construction.
    pub host_fallback: bool,
}

impl RecoveryPolicy {
    /// No verification, no recovery (the raw platform path).
    pub fn disabled() -> RecoveryPolicy {
        RecoveryPolicy {
            enabled: false,
            max_retries: 0,
            max_escalated_diffs: 0,
            host_fallback: false,
        }
    }

    /// The default active policy: 2 retries, escalate one step past the
    /// configured budget, host fallback on.
    pub fn standard() -> RecoveryPolicy {
        RecoveryPolicy {
            enabled: true,
            max_retries: 2,
            max_escalated_diffs: 3,
            host_fallback: true,
        }
    }

    /// Sets the retry count.
    pub fn with_max_retries(mut self, retries: u32) -> RecoveryPolicy {
        self.max_retries = retries;
        self
    }

    /// Sets the escalation ceiling.
    ///
    /// # Panics
    ///
    /// Panics if `z > 8` (the [`fmindex::EditBudget`] cap).
    pub fn with_max_escalated_diffs(mut self, z: u8) -> RecoveryPolicy {
        assert!(z <= 8, "difference budget too large");
        self.max_escalated_diffs = z;
        self
    }

    /// Enables or disables the host-software fallback rung.
    pub fn with_host_fallback(mut self, fallback: bool) -> RecoveryPolicy {
        self.host_fallback = fallback;
        self
    }

    /// Whether recovery is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::disabled()
    }
}

/// Where `IM_ADD` executes (paper §V, Fig. 6d).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddMethod {
    /// Method-I: the addition runs in the same computational sub-array,
    /// blocking its comparison resources.
    InPlace,
    /// Method-II: the sub-array is duplicated and additions run in the
    /// copy, freeing the original's comparison resources (required for
    /// the Fig. 7 pipeline).
    Mirrored,
}

/// Configuration of a [`PimAligner`](crate::PimAligner).
///
/// # Examples
///
/// ```
/// use pim_aligner::{AddMethod, PimAlignerConfig};
///
/// let baseline = PimAlignerConfig::baseline();     // PIM-Aligner-n
/// assert_eq!(baseline.pd(), 1);
/// let pipelined = PimAlignerConfig::pipelined();   // PIM-Aligner-p
/// assert_eq!(pipelined.pd(), 2);
/// assert_eq!(pipelined.method(), AddMethod::Mirrored);
/// ```
#[derive(Debug, Clone)]
pub struct PimAlignerConfig {
    pd: usize,
    method: AddMethod,
    model: ArrayModel,
    chip: ChipOrg,
    pipeline: PipelineParams,
    kernel_batch: usize,
    kernel_simd: SimdPolicy,
    max_diffs: u8,
    allow_indels: bool,
    exhaustive_inexact: bool,
    fault_campaign: FaultCampaign,
    recovery: RecoveryPolicy,
}

impl PimAlignerConfig {
    /// The paper's baseline configuration, **PIM-Aligner-n**: method-I,
    /// no pipelining.
    pub fn baseline() -> PimAlignerConfig {
        PimAlignerConfig {
            pd: 1,
            method: AddMethod::InPlace,
            model: ArrayModel::default(),
            chip: ChipOrg::default(),
            pipeline: PipelineParams::default(),
            kernel_batch: DEFAULT_KERNEL_BATCH,
            kernel_simd: SimdPolicy::Auto,
            max_diffs: 2,
            allow_indels: true,
            exhaustive_inexact: false,
            fault_campaign: FaultCampaign::none(),
            recovery: RecoveryPolicy::disabled(),
        }
    }

    /// The paper's pipelined configuration, **PIM-Aligner-p**: method-II
    /// with `Pd = 2`.
    pub fn pipelined() -> PimAlignerConfig {
        PimAlignerConfig {
            pd: 2,
            method: AddMethod::Mirrored,
            ..PimAlignerConfig::baseline()
        }
    }

    /// Sets the parallelism degree (Fig. 9c sweeps 1..=4).
    ///
    /// `pd >= 2` requires (and implies) [`AddMethod::Mirrored`].
    ///
    /// # Panics
    ///
    /// Panics if `pd == 0`.
    pub fn with_pd(mut self, pd: usize) -> PimAlignerConfig {
        assert!(pd >= 1, "parallelism degree must be at least 1");
        self.pd = pd;
        if pd >= 2 {
            self.method = AddMethod::Mirrored;
        }
        self
    }

    /// Sets the kernel batch width: how many reads the parallel engine
    /// interleaves into one [`LfmBatch`](pimsim::LfmBatch) step so
    /// plane loads shared across reads are charged once per bucket. `1`
    /// selects the single-read path (bit-identical to the pre-batching
    /// engine); the default is [`DEFAULT_KERNEL_BATCH`]. Alignment
    /// results and seeded-fault SAM output are identical at every
    /// width — only the charged compare-stage work and the wall clock
    /// change.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn with_kernel_batch(mut self, batch: usize) -> PimAlignerConfig {
        assert!(batch >= 1, "kernel batch must be at least 1");
        self.kernel_batch = batch;
        self
    }

    /// Sets the kernel SIMD policy (`--kernel-simd`):
    /// [`SimdPolicy::Auto`] (the default) dispatches the plane ops to
    /// the widest lane the CPU supports and enables the rank-checkpoint
    /// cache; [`SimdPolicy::Scalar`] forces the portable word loop with
    /// no cache — the exact pre-SIMD kernel. Alignment results, SAM
    /// output and every simulated counter are byte-identical across
    /// policies — only host wall clock changes.
    pub fn with_kernel_simd(mut self, policy: SimdPolicy) -> PimAlignerConfig {
        self.kernel_simd = policy;
        self
    }

    /// Sets the addition method.
    ///
    /// # Panics
    ///
    /// Panics if method-I is requested with `pd >= 2` (the pipeline
    /// needs the mirrored sub-array).
    pub fn with_method(mut self, method: AddMethod) -> PimAlignerConfig {
        assert!(
            !(method == AddMethod::InPlace && self.pd >= 2),
            "method-I cannot pipeline; use Mirrored for Pd >= 2"
        );
        self.method = method;
        self
    }

    /// Sets the array model (device/energy calibration).
    pub fn with_model(mut self, model: ArrayModel) -> PimAlignerConfig {
        self.model = model;
        self
    }

    /// Sets the chip organisation.
    pub fn with_chip(mut self, chip: ChipOrg) -> PimAlignerConfig {
        self.chip = chip;
        self
    }

    /// Sets the inexact-stage difference budget `z` (paper input:
    /// "number of mismatches-z"; evaluation uses ≤ 2).
    ///
    /// # Panics
    ///
    /// Panics if `z > 8` (same cap as [`fmindex::EditBudget`]).
    pub fn with_max_diffs(mut self, z: u8) -> PimAlignerConfig {
        assert!(z <= 8, "difference budget too large");
        self.max_diffs = z;
        self
    }

    /// Enables or disables indel handling in the inexact stage.
    pub fn with_indels(mut self, allow: bool) -> PimAlignerConfig {
        self.allow_indels = allow;
        self
    }

    /// Switches the inexact stage between first-accept backtracking (the
    /// default, mirroring the hardware's bounded DPU register file) and
    /// exhaustive edit-neighbourhood enumeration (the oracle mode; can be
    /// orders of magnitude slower on long reads).
    pub fn with_exhaustive_inexact(mut self, exhaustive: bool) -> PimAlignerConfig {
        self.exhaustive_inexact = exhaustive;
        self
    }

    /// Whether the inexact stage enumerates exhaustively.
    pub fn exhaustive_inexact(&self) -> bool {
        self.exhaustive_inexact
    }

    /// Injects sensing faults into the platform's `XNOR_Match`
    /// primitives (DESIGN.md §8 failure-injection extension). Derive the
    /// model from Monte-Carlo margins with
    /// [`FaultModel::from_cell`](mram::faults::FaultModel::from_cell) or
    /// set probabilities explicitly. Shorthand for setting the model of
    /// the [`fault_campaign`](PimAlignerConfig::fault_campaign).
    pub fn with_fault_model(mut self, faults: FaultModel) -> PimAlignerConfig {
        self.fault_campaign = self.fault_campaign.with_model(faults);
        self
    }

    /// Installs a full seeded fault campaign (sense misreads, stuck-at
    /// cells, transient row bursts, `IM_ADD` carry faults).
    pub fn with_fault_campaign(mut self, campaign: FaultCampaign) -> PimAlignerConfig {
        self.fault_campaign = campaign;
        self
    }

    /// Re-seeds the active fault campaign (the CLI's `--fault-seed`).
    pub fn with_fault_seed(mut self, seed: u64) -> PimAlignerConfig {
        self.fault_campaign = self.fault_campaign.with_seed(seed);
        self
    }

    /// Sets the verify-and-recover policy.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> PimAlignerConfig {
        self.recovery = recovery;
        self
    }

    /// The active sensing-fault model (the campaign's sense component).
    pub fn fault_model(&self) -> FaultModel {
        self.fault_campaign.model()
    }

    /// The active fault campaign.
    pub fn fault_campaign(&self) -> FaultCampaign {
        self.fault_campaign
    }

    /// The verify-and-recover policy.
    pub fn recovery(&self) -> RecoveryPolicy {
        self.recovery
    }

    /// The parallelism degree.
    pub fn pd(&self) -> usize {
        self.pd
    }

    /// The addition method.
    pub fn method(&self) -> AddMethod {
        self.method
    }

    /// The array model.
    pub fn model(&self) -> &ArrayModel {
        &self.model
    }

    /// The chip organisation.
    pub fn chip(&self) -> ChipOrg {
        self.chip
    }

    /// The pipeline stage timing.
    pub fn pipeline(&self) -> PipelineParams {
        self.pipeline
    }

    /// The kernel batch width.
    pub fn kernel_batch(&self) -> usize {
        self.kernel_batch
    }

    /// The kernel SIMD policy.
    pub fn kernel_simd(&self) -> SimdPolicy {
        self.kernel_simd
    }

    /// The inexact-stage difference budget.
    pub fn max_diffs(&self) -> u8 {
        self.max_diffs
    }

    /// Whether indels are allowed in the inexact stage.
    pub fn allows_indels(&self) -> bool {
        self.allow_indels
    }

    /// The edit budget for the inexact stage.
    pub fn edit_budget(&self) -> fmindex::EditBudget {
        if self.allow_indels {
            fmindex::EditBudget::edits(self.max_diffs)
        } else {
            fmindex::EditBudget::substitutions_only(self.max_diffs)
        }
    }
}

impl Default for PimAlignerConfig {
    fn default() -> Self {
        PimAlignerConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_method_one_unpipelined() {
        let c = PimAlignerConfig::baseline();
        assert_eq!(c.pd(), 1);
        assert_eq!(c.method(), AddMethod::InPlace);
    }

    #[test]
    fn kernel_simd_defaults_to_auto_and_round_trips() {
        let c = PimAlignerConfig::baseline();
        assert_eq!(c.kernel_simd(), SimdPolicy::Auto);
        let c = c.with_kernel_simd(SimdPolicy::Scalar);
        assert_eq!(c.kernel_simd(), SimdPolicy::Scalar);
    }

    #[test]
    fn pipelined_is_method_two_pd2() {
        let c = PimAlignerConfig::pipelined();
        assert_eq!(c.pd(), 2);
        assert_eq!(c.method(), AddMethod::Mirrored);
    }

    #[test]
    fn raising_pd_switches_to_mirrored() {
        let c = PimAlignerConfig::baseline().with_pd(3);
        assert_eq!(c.method(), AddMethod::Mirrored);
    }

    #[test]
    #[should_panic(expected = "method-I cannot pipeline")]
    fn in_place_with_pipeline_rejected() {
        let _ = PimAlignerConfig::pipelined().with_method(AddMethod::InPlace);
    }

    #[test]
    fn fault_model_shorthand_updates_campaign() {
        let model = FaultModel::with_probabilities(0.01, 0.0);
        let c = PimAlignerConfig::baseline()
            .with_fault_campaign(FaultCampaign::seeded(5).with_stuck_at_rate(1e-4))
            .with_fault_model(model)
            .with_fault_seed(9);
        assert_eq!(c.fault_model(), model);
        assert_eq!(c.fault_campaign().seed(), 9);
        assert_eq!(c.fault_campaign().stuck_at_rate(), 1e-4);
    }

    #[test]
    fn recovery_defaults_off() {
        assert!(!PimAlignerConfig::baseline().recovery().is_enabled());
        let c = PimAlignerConfig::baseline().with_recovery(RecoveryPolicy::standard());
        assert!(c.recovery().is_enabled());
        assert_eq!(c.recovery().max_retries, 2);
    }

    #[test]
    #[should_panic(expected = "difference budget too large")]
    fn recovery_escalation_capped() {
        let _ = RecoveryPolicy::standard().with_max_escalated_diffs(9);
    }

    #[test]
    fn edit_budget_reflects_settings() {
        let c = PimAlignerConfig::baseline()
            .with_max_diffs(1)
            .with_indels(false);
        assert_eq!(c.edit_budget(), fmindex::EditBudget::substitutions_only(1));
        let c = c.with_indels(true);
        assert_eq!(c.edit_budget(), fmindex::EditBudget::edits(1));
    }
}
