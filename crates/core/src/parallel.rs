//! Host-parallel batch alignment over one shared platform.
//!
//! The simulated chip is internally parallel (144 pipeline units, see the
//! performance model); this module parallelises the *simulation itself*
//! across host threads so large batches evaluate faster. All workers
//! share the one [`Platform`] — [`MappedIndex`](crate::MappedIndex) is
//! built exactly once per run, never per worker — and each spawns its own
//! [`AlignSession`](crate::AlignSession) holding the mutable per-worker
//! state (DPU, ledger, decorrelated fault stream). Threads model disjoint
//! groups of sub-array pipelines working on disjoint reads — exactly the
//! paper's partitioning — and the ledgers and fault telemetry merge
//! afterwards, so the performance report is identical to a sequential
//! run.
//!
//! Work is distributed dynamically: an atomic cursor hands out small
//! chunks, so a worker that drew cheap reads steals the next chunk
//! instead of idling behind a worker stuck on expensive backtracking.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use bioseq::DnaSeq;
use parking_lot::Mutex;
use pimsim::{CycleLedger, HostHistogram, WorkerStats};

use crate::aligner::{AlignmentOutcome, BatchResult, MappedStrand};
use crate::config::PimAlignerConfig;
use crate::error::AlignError;
use crate::host::{HostTotals, HostTraceConfig};
use crate::metrics::PhaseLfm;
use crate::platform::Platform;
use crate::report::{FaultTelemetry, PerfReport};

/// Workers within one parallel call are decorrelated by worker index;
/// successive streaming chunks (epochs) shift by this stride so chunk 1's
/// worker 0 does not replay chunk 0's worker 0. Epoch 0 / worker 0 is
/// token 0 — the identity seed — so a single-thread run of the first
/// chunk is bit-identical to a sequential session.
const EPOCH_STRIDE: u64 = 65_536;

/// Mergeable accounting for a (possibly streamed) parallel alignment:
/// read/query counters, the merged alignment-time ledger and the
/// session-side fault telemetry.
///
/// Totals accumulate across chunks via [`BatchTotals::merge`];
/// [`Platform::batch_report`] turns the final totals into a
/// [`PerfReport`], adding the platform's one-time build fault counters
/// exactly once.
#[derive(Debug, Clone)]
pub struct BatchTotals {
    /// Input reads aligned (each read counts once, whichever strands
    /// were tried).
    pub reads: u64,
    /// `align_read` invocations (≥ `reads`; the both-strands path may
    /// try a read twice).
    pub queries: u64,
    /// Cumulative `LFM` invocations.
    pub lfm_calls: u64,
    /// Reads resolved by the exact stage. A read that maps exactly on
    /// either strand counts once.
    pub exact_hits: u64,
    /// Merged alignment-time cycle/energy ledger across all workers.
    pub ledger: CycleLedger,
    /// Merged session telemetry (injection + recovery counters); the
    /// platform's one-time build counters are *not* included — they are
    /// added once by [`Platform::batch_report`].
    pub telemetry: FaultTelemetry,
    /// Merged per-phase `LFM` attribution; always sums to `lfm_calls`.
    pub phase_lfm: PhaseLfm,
    /// Merged host-side (wall-clock) telemetry: per-read/per-chunk
    /// latency histograms, worker utilisation and — when tracing was
    /// enabled — wall-clock spans. Nondeterministic; never feeds the
    /// simulated quantities above.
    pub host: HostTotals,
}

impl BatchTotals {
    /// Empty totals, ready to merge into.
    pub fn new() -> BatchTotals {
        BatchTotals {
            reads: 0,
            queries: 0,
            lfm_calls: 0,
            exact_hits: 0,
            ledger: CycleLedger::new(),
            telemetry: FaultTelemetry::default(),
            phase_lfm: PhaseLfm::default(),
            host: HostTotals::new(),
        }
    }

    /// Accumulates another chunk's totals into this one.
    pub fn merge(&mut self, other: &BatchTotals) {
        self.reads += other.reads;
        self.queries += other.queries;
        self.lfm_calls += other.lfm_calls;
        self.exact_hits += other.exact_hits;
        self.ledger.merge(&other.ledger);
        self.telemetry.merge(&other.telemetry);
        self.phase_lfm.merge(&other.phase_lfm);
        self.host.merge(&other.host);
    }

    /// Fraction of *reads* resolved by the exact stage (paper §III).
    ///
    /// Normalised per read, not per `align_read` call: on the
    /// both-strands path a reverse-mapped read issues two queries but is
    /// still one read, and dividing by queries would understate the
    /// stage-1 rate.
    pub fn exact_fraction(&self) -> f64 {
        self.exact_hits as f64 / self.reads as f64
    }
}

impl Default for BatchTotals {
    fn default() -> Self {
        BatchTotals::new()
    }
}

struct WorkerOut {
    /// Claimed chunks as `(start_index, outcomes)`, reassembled into
    /// input order after the scope joins.
    chunks: Vec<(usize, Vec<(AlignmentOutcome, MappedStrand)>)>,
    totals: BatchTotals,
}

fn run_workers(
    platform: &Platform,
    reads: &[DnaSeq],
    threads: usize,
    both_strands: bool,
    epoch: u64,
    host_trace: Option<&HostTraceConfig>,
) -> Result<(Vec<(AlignmentOutcome, MappedStrand)>, BatchTotals), AlignError> {
    if reads.is_empty() {
        return Err(AlignError::EmptyBatch);
    }
    if threads == 0 {
        return Err(AlignError::NoThreads);
    }
    let threads = threads.min(reads.len());
    // Dynamic chunking: ~4 chunks per worker so stragglers rebalance,
    // one chunk total when sequential (no stealing possible).
    let grain = if threads == 1 {
        reads.len()
    } else {
        reads.len().div_ceil(threads * 4).max(1)
    };
    // Kernel-batch groups are carved from global read indices
    // `[m·B, (m+1)·B)`; rounding the grain up to a multiple of B keeps
    // every chunk boundary on a group boundary, so the groups — and the
    // charged cycles and zone heatmap — are invariant to thread count.
    let batch = platform.config().kernel_batch();
    let grain = if batch > 1 {
        grain.div_ceil(batch) * batch
    } else {
        grain
    };
    // A worker's "fair share" of chunks under static round-robin; any
    // chunk claimed beyond it was stolen from a slower worker.
    let fair_share = reads.len().div_ceil(grain).div_ceil(threads) as u64;

    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<WorkerOut>> = Mutex::new(Vec::with_capacity(threads));
    let region_t0 = Instant::now();
    let scope_result = crossbeam::scope(|scope| {
        for w in 0..threads {
            let cursor = &cursor;
            let collected = &collected;
            scope.spawn(move |_| {
                let token = epoch * EPOCH_STRIDE + w as u64;
                let mut session = platform.worker_session(token);
                if let Some(cfg) = host_trace {
                    session.enable_host_tracing(cfg.epoch, w as u32, cfg.capacity_per_worker);
                }
                let mut chunks = Vec::new();
                let mut reads_done = 0u64;
                let mut per_chunk = HostHistogram::new();
                let mut stats = WorkerStats {
                    worker: w as u32,
                    ..WorkerStats::default()
                };
                loop {
                    let start = cursor.fetch_add(grain, Ordering::Relaxed);
                    if start >= reads.len() {
                        break;
                    }
                    let end = (start + grain).min(reads.len());
                    let chunk_t0 = Instant::now();
                    let h_chunk = session.host_start();
                    // Batched kernel path: the group's fault-stream
                    // tokens are the global read indices, so faulted
                    // output is invariant to batch width and threads.
                    let first_token = epoch * EPOCH_STRIDE + start as u64;
                    let outcomes =
                        session.align_group(&reads[start..end], first_token, both_strands);
                    session.host_record("chunk", h_chunk);
                    let chunk_ns = chunk_t0.elapsed().as_nanos() as u64;
                    per_chunk.record_ns(chunk_ns);
                    stats.busy_ns += chunk_ns;
                    stats.chunks_claimed += 1;
                    reads_done += outcomes.len() as u64;
                    chunks.push((start, outcomes));
                }
                stats.steals = stats.chunks_claimed.saturating_sub(fair_share);
                stats.reads = reads_done;
                let mut host = HostTotals::new();
                host.per_read = session.host_histogram().clone();
                host.per_chunk = per_chunk;
                host.absorb_worker(stats);
                let (spans, dropped) = session.take_host_spans();
                host.absorb_spans(spans, dropped);
                collected.lock().push(WorkerOut {
                    chunks,
                    totals: BatchTotals {
                        reads: reads_done,
                        queries: session.queries(),
                        lfm_calls: session.lfm_calls(),
                        exact_hits: session.exact_hits(),
                        ledger: session.ledger().clone(),
                        telemetry: session.session_telemetry(),
                        phase_lfm: session.phase_lfm(),
                        host,
                    },
                });
            });
        }
    });
    if let Err(payload) = scope_result {
        // A worker panicked: re-raise its panic rather than invent a
        // result (the payload keeps the original message).
        std::panic::resume_unwind(payload);
    }
    let region_ns = region_t0.elapsed().as_nanos() as u64;

    let workers = collected.into_inner();
    let mut totals = BatchTotals::new();
    let mut chunks: Vec<(usize, Vec<(AlignmentOutcome, MappedStrand)>)> = Vec::new();
    for w in workers {
        totals.merge(&w.totals);
        chunks.extend(w.chunks);
    }
    // Workers report busy time only; the parallel region's wall time is
    // measured once, around the whole scope.
    totals.host.wall_ns = region_ns;
    chunks.sort_by_key(|&(start, _)| start);
    let mut outcomes = Vec::with_capacity(reads.len());
    for (_, chunk) in chunks {
        outcomes.extend(chunk);
    }
    assert_eq!(outcomes.len(), reads.len(), "every read exactly once");
    assert_eq!(totals.reads, reads.len() as u64);
    // Cross-path accounting consistency: forward-only issues exactly one
    // query per read; both-strands at most two.
    assert!(
        totals.queries >= totals.reads && totals.queries <= 2 * totals.reads,
        "query count {} inconsistent with {} reads",
        totals.queries,
        totals.reads
    );
    if !both_strands {
        assert_eq!(totals.queries, totals.reads);
    }
    Ok((outcomes, totals))
}

impl Platform {
    /// Aligns one chunk of reads across `threads` shared-platform worker
    /// sessions, returning per-read `(outcome, strand)` pairs in input
    /// order plus the chunk's mergeable [`BatchTotals`].
    ///
    /// This is the streaming building block: callers accumulate totals
    /// over chunks (`epoch` decorrelates the fault streams between
    /// chunks) and produce one report at the end with
    /// [`Platform::batch_report`].
    ///
    /// # Errors
    ///
    /// [`AlignError::EmptyBatch`] when `reads` is empty,
    /// [`AlignError::NoThreads`] when `threads == 0`.
    pub fn align_chunk_parallel(
        &self,
        reads: &[DnaSeq],
        threads: usize,
        epoch: u64,
        both_strands: bool,
    ) -> Result<(Vec<(AlignmentOutcome, MappedStrand)>, BatchTotals), AlignError> {
        run_workers(self, reads, threads, both_strands, epoch, None)
    }

    /// [`Platform::align_chunk_parallel`] with wall-clock span tracing:
    /// each worker records host spans (chunks, alignment phases,
    /// recovery rungs) against `trace.epoch` on its own track, collected
    /// into the returned totals' [`BatchTotals::host`] for Chrome-trace
    /// export. The simulated-cycle accounting is unaffected — tracing
    /// only reads the host clock.
    ///
    /// # Errors
    ///
    /// [`AlignError::EmptyBatch`] when `reads` is empty,
    /// [`AlignError::NoThreads`] when `threads == 0`.
    pub fn align_chunk_parallel_traced(
        &self,
        reads: &[DnaSeq],
        threads: usize,
        epoch: u64,
        both_strands: bool,
        trace: &HostTraceConfig,
    ) -> Result<(Vec<(AlignmentOutcome, MappedStrand)>, BatchTotals), AlignError> {
        run_workers(self, reads, threads, both_strands, epoch, Some(trace))
    }

    /// Aligns `reads` (forward strand only) using `threads` worker
    /// sessions over this shared platform.
    ///
    /// # Errors
    ///
    /// [`AlignError::EmptyBatch`] when `reads` is empty,
    /// [`AlignError::NoThreads`] when `threads == 0`.
    pub fn align_batch_parallel(
        &self,
        reads: &[DnaSeq],
        threads: usize,
    ) -> Result<BatchResult, AlignError> {
        let (pairs, totals) = run_workers(self, reads, threads, false, 0, None)?;
        Ok(self.batch_result(pairs, &totals).0)
    }

    /// Like [`Platform::align_batch_parallel`] but each read also
    /// retries as its reverse complement when the forward orientation
    /// fails, returning the mapped strand per read.
    ///
    /// # Errors
    ///
    /// [`AlignError::EmptyBatch`] when `reads` is empty,
    /// [`AlignError::NoThreads`] when `threads == 0`.
    pub fn align_batch_parallel_both_strands(
        &self,
        reads: &[DnaSeq],
        threads: usize,
    ) -> Result<(BatchResult, Vec<MappedStrand>), AlignError> {
        let (pairs, totals) = run_workers(self, reads, threads, true, 0, None)?;
        Ok(self.batch_result(pairs, &totals))
    }

    /// The performance report for accumulated [`BatchTotals`]: the
    /// merged alignment-time ledger and counters, with the platform's
    /// one-time build fault counters (stuck cells planted while mapping)
    /// added exactly once — not once per worker or per chunk.
    pub fn batch_report(&self, totals: &BatchTotals) -> PerfReport {
        let mut report = PerfReport::from_batch(
            self.config(),
            &totals.ledger,
            totals.queries,
            totals.lfm_calls,
        );
        let build = self.mapped().build_fault_counters();
        let mut faults = totals.telemetry;
        faults.stuck_cells += build.stuck_cells;
        faults.xnor_bit_flips += build.xnor_bit_flips;
        faults.transient_row_faults += build.transient_row_faults;
        faults.carry_faults += build.carry_faults;
        report.faults = faults;
        report.breakdown.lfm_by_phase = totals.phase_lfm;
        report.breakdown.index_build_cycles = self.mapped().mapping_ledger().total_busy_cycles();
        report.host = totals.host.clone();
        report.index = self.index_telemetry();
        report
    }

    fn batch_result(
        &self,
        pairs: Vec<(AlignmentOutcome, MappedStrand)>,
        totals: &BatchTotals,
    ) -> (BatchResult, Vec<MappedStrand>) {
        let report = self.batch_report(totals);
        let mut outcomes = Vec::with_capacity(pairs.len());
        let mut strands = Vec::with_capacity(pairs.len());
        for (outcome, strand) in pairs {
            outcomes.push(outcome);
            strands.push(strand);
        }
        (
            BatchResult {
                outcomes,
                report,
                exact_fraction: totals.exact_fraction(),
            },
            strands,
        )
    }
}

/// Aligns `reads` (forward strand only) using `threads` worker threads
/// sharing one platform built over `reference`.
///
/// The index is built exactly once — workers share it through the
/// [`Platform`] — and outcomes are returned in input order, identical to
/// a sequential [`PimAligner::align_batch`](crate::PimAligner::align_batch)
/// run with an ideal fault model
/// (fault injection draws per-worker decorrelated streams, so faulty runs
/// are only statistically equivalent).
///
/// # Errors
///
/// [`AlignError::EmptyBatch`] when `reads` is empty,
/// [`AlignError::NoThreads`] when `threads == 0`.
pub fn align_batch_parallel(
    reference: &DnaSeq,
    config: &PimAlignerConfig,
    reads: &[DnaSeq],
    threads: usize,
) -> Result<BatchResult, AlignError> {
    if reads.is_empty() {
        return Err(AlignError::EmptyBatch);
    }
    if threads == 0 {
        return Err(AlignError::NoThreads);
    }
    Platform::new(reference, config.clone()).align_batch_parallel(reads, threads)
}

/// Like [`align_batch_parallel`] but each read also retries as its
/// reverse complement when the forward orientation fails, returning the
/// mapped strand per read.
///
/// # Errors
///
/// [`AlignError::EmptyBatch`] when `reads` is empty,
/// [`AlignError::NoThreads`] when `threads == 0`.
pub fn align_batch_parallel_both_strands(
    reference: &DnaSeq,
    config: &PimAlignerConfig,
    reads: &[DnaSeq],
    threads: usize,
) -> Result<(BatchResult, Vec<MappedStrand>), AlignError> {
    if reads.is_empty() {
        return Err(AlignError::EmptyBatch);
    }
    if threads == 0 {
        return Err(AlignError::NoThreads);
    }
    Platform::new(reference, config.clone()).align_batch_parallel_both_strands(reads, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aligner::PimAligner;
    use readsim::{genome, ReadSimulator, SimProfile};

    fn workload() -> (DnaSeq, Vec<DnaSeq>) {
        let reference = genome::uniform(60_000, 401);
        let profile = SimProfile::paper_defaults()
            .read_count(48)
            .read_len(80)
            .forward_only();
        let sim = ReadSimulator::new(profile, 402).simulate(&reference);
        let reads = sim.reads.into_iter().map(|r| r.seq).collect();
        (reference, reads)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (reference, reads) = workload();
        // The sequential session API is the single-read kernel, so pin
        // the parallel side to kernel_batch = 1 for an exact ledger
        // match (batched runs charge fewer plane loads by design).
        let config = PimAlignerConfig::baseline().with_kernel_batch(1);
        let mut sequential = PimAligner::new(&reference, config.clone());
        let seq_result = sequential.align_batch(&reads);
        let par_result = align_batch_parallel(&reference, &config, &reads, 4).unwrap();
        assert_eq!(par_result.outcomes, seq_result.outcomes);
        assert_eq!(par_result.exact_fraction, seq_result.exact_fraction);
        // Same merged work ⇒ same intensive report quantities.
        assert!(
            (par_result.report.throughput_qps - seq_result.report.throughput_qps).abs()
                < 1e-6 * seq_result.report.throughput_qps
        );
        assert!((par_result.report.total_power_w - seq_result.report.total_power_w).abs() < 1e-9);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (reference, reads) = workload();
        let config = PimAlignerConfig::pipelined();
        let one = align_batch_parallel(&reference, &config, &reads, 1).unwrap();
        let many = align_batch_parallel(&reference, &config, &reads, 7).unwrap();
        assert_eq!(one.outcomes, many.outcomes);
        assert_eq!(one.report.lfm_calls, many.report.lfm_calls);
    }

    #[test]
    fn more_threads_than_reads_is_fine() {
        let (reference, reads) = workload();
        let config = PimAlignerConfig::baseline();
        let result = align_batch_parallel(&reference, &config, &reads[..3], 16).unwrap();
        assert_eq!(result.outcomes.len(), 3);
    }

    #[test]
    fn zero_threads_is_a_typed_error() {
        let (reference, reads) = workload();
        let err =
            align_batch_parallel(&reference, &PimAlignerConfig::baseline(), &reads, 0).unwrap_err();
        assert_eq!(err, AlignError::NoThreads);
    }

    #[test]
    fn empty_batch_is_a_typed_error() {
        let (reference, _) = workload();
        let err =
            align_batch_parallel(&reference, &PimAlignerConfig::baseline(), &[], 4).unwrap_err();
        assert_eq!(err, AlignError::EmptyBatch);
    }

    #[test]
    fn both_strands_maps_reverse_reads() {
        let reference = genome::uniform(20_000, 403);
        // Forward and reverse-complement substrings of the reference.
        let fwd = reference.subseq(500..560);
        let rev = reference.subseq(3_000..3_060).reverse_complement();
        let reads = vec![fwd, rev];
        let (result, strands) =
            align_batch_parallel_both_strands(&reference, &PimAlignerConfig::baseline(), &reads, 2)
                .unwrap();
        assert!(result.outcomes.iter().all(|o| o.is_mapped()));
        assert_eq!(strands, vec![MappedStrand::Forward, MappedStrand::Reverse]);
    }

    #[test]
    fn exact_fraction_is_per_read_on_both_strands_path() {
        // Two reads, both exact — one forward, one reverse-complement.
        // The reverse read issues two align_read queries; the fraction
        // must still be per read (1.0), not per query (2/3).
        let reference = genome::uniform(20_000, 404);
        let reads = vec![
            reference.subseq(500..560),
            reference.subseq(3_000..3_060).reverse_complement(),
        ];
        let (result, _) =
            align_batch_parallel_both_strands(&reference, &PimAlignerConfig::baseline(), &reads, 2)
                .unwrap();
        assert!(result.outcomes.iter().all(|o| o.is_mapped()));
        assert_eq!(result.exact_fraction, 1.0);
        // The forward-only path agrees with the sequential definition.
        let fwd_only =
            align_batch_parallel(&reference, &PimAlignerConfig::baseline(), &reads, 2).unwrap();
        assert!((0.0..=1.0).contains(&fwd_only.exact_fraction));
    }

    #[test]
    fn chunked_epochs_merge_into_one_report() {
        let (reference, reads) = workload();
        let platform = Platform::new(&reference, PimAlignerConfig::baseline());
        let mut totals = BatchTotals::new();
        let mut outcomes = Vec::new();
        for (epoch, chunk) in reads.chunks(16).enumerate() {
            let (pairs, t) = platform
                .align_chunk_parallel(chunk, 3, epoch as u64, false)
                .unwrap();
            totals.merge(&t);
            outcomes.extend(pairs.into_iter().map(|(o, _)| o));
        }
        let whole = platform.align_batch_parallel(&reads, 3).unwrap();
        assert_eq!(outcomes, whole.outcomes);
        assert_eq!(totals.reads, reads.len() as u64);
        let report = platform.batch_report(&totals);
        assert_eq!(report.lfm_calls, whole.report.lfm_calls);
    }

    #[test]
    fn kernel_batch_widths_agree_on_outcomes_and_differ_in_cycles() {
        let (reference, reads) = workload();
        let narrow = align_batch_parallel(
            &reference,
            &PimAlignerConfig::baseline().with_kernel_batch(1),
            &reads,
            4,
        )
        .unwrap();
        let wide = align_batch_parallel(
            &reference,
            &PimAlignerConfig::baseline().with_kernel_batch(8),
            &reads,
            4,
        )
        .unwrap();
        // Same bits out...
        assert_eq!(narrow.outcomes, wide.outcomes);
        assert_eq!(narrow.report.lfm_calls, wide.report.lfm_calls);
        // ...for strictly fewer charged cycles (shared plane loads),
        // with the stage-queue scheduler active only on the wide path.
        assert!(
            wide.report.breakdown.total_busy_cycles < narrow.report.breakdown.total_busy_cycles
        );
        assert!(wide.report.breakdown.pipeline.issued > 0);
        assert_eq!(narrow.report.breakdown.pipeline.issued, 0);
    }

    #[test]
    fn faulted_output_is_invariant_to_batch_and_threads() {
        use mram::faults::{FaultCampaign, FaultModel};
        let (reference, reads) = workload();
        let campaign = FaultCampaign::seeded(52)
            .with_model(FaultModel::with_probabilities(3e-3, 0.0))
            .with_transient_row_rate(1e-3)
            .with_carry_fault_prob(1e-3);
        let run = |batch: usize, threads: usize| {
            let config = PimAlignerConfig::baseline()
                .with_fault_campaign(campaign)
                .with_kernel_batch(batch);
            align_batch_parallel(&reference, &config, &reads, threads).unwrap()
        };
        let base = run(1, 1);
        assert!(
            base.report.faults.injected_total() > 0,
            "campaign must inject"
        );
        for (batch, threads) in [(1, 8), (8, 1), (8, 8), (3, 5)] {
            let other = run(batch, threads);
            assert_eq!(
                base.outcomes, other.outcomes,
                "batch {batch} × threads {threads} diverged under faults"
            );
        }
    }

    #[test]
    fn parallel_merges_fault_telemetry() {
        use crate::config::RecoveryPolicy;
        use mram::faults::{FaultCampaign, FaultModel};
        let (reference, reads) = workload();
        let config = PimAlignerConfig::baseline()
            .with_fault_campaign(
                FaultCampaign::seeded(9).with_model(FaultModel::with_probabilities(2e-3, 0.0)),
            )
            .with_recovery(RecoveryPolicy::standard());
        let result = align_batch_parallel(&reference, &config, &reads, 4).unwrap();
        let t = result.report.faults;
        assert!(t.xnor_bit_flips > 0, "campaign must inject: {t:?}");
        // Corrupted rungs can come up Unmapped (nothing to verify), so
        // only a lower bound on verification activity is guaranteed.
        assert!(t.verifications > 0, "workers must verify outcomes: {t:?}");
    }

    #[test]
    fn workers_draw_decorrelated_fault_streams() {
        use mram::faults::{FaultCampaign, FaultModel};
        let (reference, reads) = workload();
        let config = PimAlignerConfig::baseline().with_fault_campaign(
            FaultCampaign::seeded(77).with_model(FaultModel::with_probabilities(5e-3, 0.0)),
        );
        let platform = Platform::new(&reference, config);
        // Two workers aligning the *same* reads must not inject the same
        // fault pattern (pre-fix they shared one seed and were fully
        // correlated).
        let mut s0 = platform.worker_session(0);
        let mut s1 = platform.worker_session(1);
        let out0: Vec<AlignmentOutcome> = reads.iter().map(|r| s0.align_read(r)).collect();
        let out1: Vec<AlignmentOutcome> = reads.iter().map(|r| s1.align_read(r)).collect();
        let t0 = s0.session_telemetry();
        let t1 = s1.session_telemetry();
        assert!(t0.xnor_bit_flips > 0 && t1.xnor_bit_flips > 0);
        assert!(
            t0.xnor_bit_flips != t1.xnor_bit_flips || out0 != out1,
            "workers 0 and 1 replayed an identical fault history"
        );
        // Worker 0 replays the sequential session's stream bit-identically:
        // a fresh session from the same platform draws the same faults.
        let mut replay = platform.session();
        let out_replay: Vec<AlignmentOutcome> =
            reads.iter().map(|r| replay.align_read(r)).collect();
        assert_eq!(out0, out_replay);
        assert_eq!(s0.session_telemetry(), replay.session_telemetry());
    }
}
