//! Host-parallel batch alignment.
//!
//! The simulated chip is internally parallel (144 pipeline units, see the
//! performance model); this module parallelises the *simulation itself*
//! across host threads so large batches evaluate faster. Each worker owns
//! a private platform instance (threads model disjoint groups of
//! sub-array pipelines working on disjoint reads — exactly the paper's
//! partitioning), and the ledgers merge afterwards, so the performance
//! report is identical to a sequential run.

use bioseq::DnaSeq;
use parking_lot::Mutex;
use pimsim::CycleLedger;

use crate::aligner::{AlignmentOutcome, BatchResult, PimAligner};
use crate::config::PimAlignerConfig;
use crate::report::PerfReport;

/// Aligns `reads` using `threads` worker threads, each with its own
/// platform instance over `reference`.
///
/// Outcomes are returned in input order and are identical to a
/// sequential [`PimAligner::align_batch`] run with an ideal fault model
/// (fault injection is per-instance pseudo-random, so faulty runs are
/// only statistically equivalent).
///
/// # Panics
///
/// Panics if `reads` is empty or `threads == 0`.
pub fn align_batch_parallel(
    reference: &DnaSeq,
    config: &PimAlignerConfig,
    reads: &[DnaSeq],
    threads: usize,
) -> BatchResult {
    assert!(!reads.is_empty(), "batch must contain at least one read");
    assert!(threads > 0, "at least one worker thread required");
    let threads = threads.min(reads.len());
    let chunk = reads.len().div_ceil(threads);

    struct WorkerOut {
        start: usize,
        outcomes: Vec<AlignmentOutcome>,
        ledger: CycleLedger,
        lfm_calls: u64,
        queries: u64,
        exact_hits: u64,
    }

    let collected: Mutex<Vec<WorkerOut>> = Mutex::new(Vec::with_capacity(threads));
    crossbeam::scope(|scope| {
        for (w, slice) in reads.chunks(chunk).enumerate() {
            let collected = &collected;
            scope.spawn(move |_| {
                let mut aligner = PimAligner::new(reference, config.clone());
                let outcomes: Vec<AlignmentOutcome> =
                    slice.iter().map(|r| aligner.align_read(r)).collect();
                collected.lock().push(WorkerOut {
                    start: w * chunk,
                    outcomes,
                    ledger: aligner.ledger().clone(),
                    lfm_calls: aligner.lfm_calls(),
                    queries: aligner.queries(),
                    exact_hits: aligner.exact_hits(),
                });
            });
        }
    })
    .expect("worker thread panicked");

    let mut workers = collected.into_inner();
    workers.sort_by_key(|w| w.start);
    let mut outcomes = Vec::with_capacity(reads.len());
    let mut ledger = CycleLedger::new();
    let mut lfm_calls = 0u64;
    let mut queries = 0u64;
    let mut exact_hits = 0u64;
    for w in workers {
        outcomes.extend(w.outcomes);
        ledger.merge(&w.ledger);
        lfm_calls += w.lfm_calls;
        queries += w.queries;
        exact_hits += w.exact_hits;
    }
    let report = PerfReport::from_batch(config, &ledger, queries, lfm_calls);
    BatchResult {
        outcomes,
        report,
        exact_fraction: exact_hits as f64 / queries as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use readsim::{genome, ReadSimulator, SimProfile};

    fn workload() -> (DnaSeq, Vec<DnaSeq>) {
        let reference = genome::uniform(60_000, 401);
        let profile = SimProfile::paper_defaults()
            .read_count(48)
            .read_len(80)
            .forward_only();
        let sim = ReadSimulator::new(profile, 402).simulate(&reference);
        let reads = sim.reads.into_iter().map(|r| r.seq).collect();
        (reference, reads)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (reference, reads) = workload();
        let config = PimAlignerConfig::baseline();
        let mut sequential = PimAligner::new(&reference, config.clone());
        let seq_result = sequential.align_batch(&reads);
        let par_result = align_batch_parallel(&reference, &config, &reads, 4);
        assert_eq!(par_result.outcomes, seq_result.outcomes);
        assert_eq!(par_result.exact_fraction, seq_result.exact_fraction);
        // Same merged work ⇒ same intensive report quantities.
        assert!(
            (par_result.report.throughput_qps - seq_result.report.throughput_qps).abs()
                < 1e-6 * seq_result.report.throughput_qps
        );
        assert!(
            (par_result.report.total_power_w - seq_result.report.total_power_w).abs() < 1e-9
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (reference, reads) = workload();
        let config = PimAlignerConfig::pipelined();
        let one = align_batch_parallel(&reference, &config, &reads, 1);
        let many = align_batch_parallel(&reference, &config, &reads, 7);
        assert_eq!(one.outcomes, many.outcomes);
        assert_eq!(one.report.lfm_calls, many.report.lfm_calls);
    }

    #[test]
    fn more_threads_than_reads_is_fine() {
        let (reference, reads) = workload();
        let config = PimAlignerConfig::baseline();
        let result = align_batch_parallel(&reference, &config, &reads[..3], 16);
        assert_eq!(result.outcomes.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let (reference, reads) = workload();
        let _ = align_batch_parallel(&reference, &PimAlignerConfig::baseline(), &reads, 0);
    }
}
