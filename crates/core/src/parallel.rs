//! Host-parallel batch alignment.
//!
//! The simulated chip is internally parallel (144 pipeline units, see the
//! performance model); this module parallelises the *simulation itself*
//! across host threads so large batches evaluate faster. Each worker owns
//! a private platform instance (threads model disjoint groups of
//! sub-array pipelines working on disjoint reads — exactly the paper's
//! partitioning), and the ledgers and fault telemetry merge afterwards,
//! so the performance report is identical to a sequential run.

use bioseq::DnaSeq;
use parking_lot::Mutex;
use pimsim::CycleLedger;

use crate::aligner::{AlignmentOutcome, BatchResult, MappedStrand, PimAligner};
use crate::config::PimAlignerConfig;
use crate::error::AlignError;
use crate::report::{FaultTelemetry, PerfReport};

struct WorkerOut {
    start: usize,
    outcomes: Vec<(AlignmentOutcome, MappedStrand)>,
    ledger: CycleLedger,
    lfm_calls: u64,
    queries: u64,
    exact_hits: u64,
    telemetry: FaultTelemetry,
}

fn run_workers(
    reference: &DnaSeq,
    config: &PimAlignerConfig,
    reads: &[DnaSeq],
    threads: usize,
    both_strands: bool,
) -> Result<(BatchResult, Vec<MappedStrand>), AlignError> {
    if reads.is_empty() {
        return Err(AlignError::EmptyBatch);
    }
    if threads == 0 {
        return Err(AlignError::NoThreads);
    }
    let threads = threads.min(reads.len());
    let chunk = reads.len().div_ceil(threads);

    let collected: Mutex<Vec<WorkerOut>> = Mutex::new(Vec::with_capacity(threads));
    let scope_result = crossbeam::scope(|scope| {
        for (w, slice) in reads.chunks(chunk).enumerate() {
            let collected = &collected;
            scope.spawn(move |_| {
                let mut aligner = PimAligner::new(reference, config.clone());
                let outcomes: Vec<(AlignmentOutcome, MappedStrand)> = slice
                    .iter()
                    .map(|r| {
                        if both_strands {
                            aligner.align_read_both_strands(r)
                        } else {
                            (aligner.align_read(r), MappedStrand::Forward)
                        }
                    })
                    .collect();
                collected.lock().push(WorkerOut {
                    start: w * chunk,
                    outcomes,
                    ledger: aligner.ledger().clone(),
                    lfm_calls: aligner.lfm_calls(),
                    queries: aligner.queries(),
                    exact_hits: aligner.exact_hits(),
                    telemetry: aligner.fault_telemetry(),
                });
            });
        }
    });
    if let Err(payload) = scope_result {
        // A worker panicked: re-raise its panic rather than invent a
        // result (the payload keeps the original message).
        std::panic::resume_unwind(payload);
    }

    let mut workers = collected.into_inner();
    workers.sort_by_key(|w| w.start);
    let mut outcomes = Vec::with_capacity(reads.len());
    let mut strands = Vec::with_capacity(reads.len());
    let mut ledger = CycleLedger::new();
    let mut lfm_calls = 0u64;
    let mut queries = 0u64;
    let mut exact_hits = 0u64;
    let mut telemetry = FaultTelemetry::default();
    for w in workers {
        for (outcome, strand) in w.outcomes {
            outcomes.push(outcome);
            strands.push(strand);
        }
        ledger.merge(&w.ledger);
        lfm_calls += w.lfm_calls;
        queries += w.queries;
        exact_hits += w.exact_hits;
        telemetry.merge(&w.telemetry);
    }
    let mut report = PerfReport::from_batch(config, &ledger, queries, lfm_calls);
    report.faults = telemetry;
    Ok((
        BatchResult {
            outcomes,
            report,
            exact_fraction: exact_hits as f64 / queries as f64,
        },
        strands,
    ))
}

/// Aligns `reads` (forward strand only) using `threads` worker threads,
/// each with its own platform instance over `reference`.
///
/// Outcomes are returned in input order and are identical to a
/// sequential [`PimAligner::align_batch`] run with an ideal fault model
/// (fault injection is per-instance pseudo-random, so faulty runs are
/// only statistically equivalent).
///
/// # Errors
///
/// [`AlignError::EmptyBatch`] when `reads` is empty,
/// [`AlignError::NoThreads`] when `threads == 0`.
pub fn align_batch_parallel(
    reference: &DnaSeq,
    config: &PimAlignerConfig,
    reads: &[DnaSeq],
    threads: usize,
) -> Result<BatchResult, AlignError> {
    run_workers(reference, config, reads, threads, false).map(|(batch, _)| batch)
}

/// Like [`align_batch_parallel`] but each read also retries as its
/// reverse complement when the forward orientation fails, returning the
/// mapped strand per read.
///
/// # Errors
///
/// [`AlignError::EmptyBatch`] when `reads` is empty,
/// [`AlignError::NoThreads`] when `threads == 0`.
pub fn align_batch_parallel_both_strands(
    reference: &DnaSeq,
    config: &PimAlignerConfig,
    reads: &[DnaSeq],
    threads: usize,
) -> Result<(BatchResult, Vec<MappedStrand>), AlignError> {
    run_workers(reference, config, reads, threads, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use readsim::{genome, ReadSimulator, SimProfile};

    fn workload() -> (DnaSeq, Vec<DnaSeq>) {
        let reference = genome::uniform(60_000, 401);
        let profile = SimProfile::paper_defaults()
            .read_count(48)
            .read_len(80)
            .forward_only();
        let sim = ReadSimulator::new(profile, 402).simulate(&reference);
        let reads = sim.reads.into_iter().map(|r| r.seq).collect();
        (reference, reads)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (reference, reads) = workload();
        let config = PimAlignerConfig::baseline();
        let mut sequential = PimAligner::new(&reference, config.clone());
        let seq_result = sequential.align_batch(&reads);
        let par_result = align_batch_parallel(&reference, &config, &reads, 4).unwrap();
        assert_eq!(par_result.outcomes, seq_result.outcomes);
        assert_eq!(par_result.exact_fraction, seq_result.exact_fraction);
        // Same merged work ⇒ same intensive report quantities.
        assert!(
            (par_result.report.throughput_qps - seq_result.report.throughput_qps).abs()
                < 1e-6 * seq_result.report.throughput_qps
        );
        assert!(
            (par_result.report.total_power_w - seq_result.report.total_power_w).abs() < 1e-9
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (reference, reads) = workload();
        let config = PimAlignerConfig::pipelined();
        let one = align_batch_parallel(&reference, &config, &reads, 1).unwrap();
        let many = align_batch_parallel(&reference, &config, &reads, 7).unwrap();
        assert_eq!(one.outcomes, many.outcomes);
        assert_eq!(one.report.lfm_calls, many.report.lfm_calls);
    }

    #[test]
    fn more_threads_than_reads_is_fine() {
        let (reference, reads) = workload();
        let config = PimAlignerConfig::baseline();
        let result = align_batch_parallel(&reference, &config, &reads[..3], 16).unwrap();
        assert_eq!(result.outcomes.len(), 3);
    }

    #[test]
    fn zero_threads_is_a_typed_error() {
        let (reference, reads) = workload();
        let err = align_batch_parallel(&reference, &PimAlignerConfig::baseline(), &reads, 0)
            .unwrap_err();
        assert_eq!(err, AlignError::NoThreads);
    }

    #[test]
    fn empty_batch_is_a_typed_error() {
        let (reference, _) = workload();
        let err = align_batch_parallel(&reference, &PimAlignerConfig::baseline(), &[], 4)
            .unwrap_err();
        assert_eq!(err, AlignError::EmptyBatch);
    }

    #[test]
    fn both_strands_maps_reverse_reads() {
        let reference = genome::uniform(20_000, 403);
        // Forward and reverse-complement substrings of the reference.
        let fwd = reference.subseq(500..560);
        let rev = reference.subseq(3_000..3_060).reverse_complement();
        let reads = vec![fwd, rev];
        let (result, strands) = align_batch_parallel_both_strands(
            &reference,
            &PimAlignerConfig::baseline(),
            &reads,
            2,
        )
        .unwrap();
        assert!(result.outcomes.iter().all(|o| o.is_mapped()));
        assert_eq!(
            strands,
            vec![MappedStrand::Forward, MappedStrand::Reverse]
        );
    }

    #[test]
    fn parallel_merges_fault_telemetry() {
        use crate::config::RecoveryPolicy;
        use mram::faults::{FaultCampaign, FaultModel};
        let (reference, reads) = workload();
        let config = PimAlignerConfig::baseline()
            .with_fault_campaign(
                FaultCampaign::seeded(9)
                    .with_model(FaultModel::with_probabilities(2e-3, 0.0)),
            )
            .with_recovery(RecoveryPolicy::standard());
        let result = align_batch_parallel(&reference, &config, &reads, 4).unwrap();
        let t = result.report.faults;
        assert!(t.xnor_bit_flips > 0, "campaign must inject: {t:?}");
        // Corrupted rungs can come up Unmapped (nothing to verify), so
        // only a lower bound on verification activity is guaranteed.
        assert!(t.verifications > 0, "workers must verify outcomes: {t:?}");
    }
}
