//! **PIM-Aligner** — a processing-in-MRAM platform for biological
//! sequence alignment (reproduction of Angizi et al., DATE 2020).
//!
//! This crate is the paper's primary contribution: the reconstructed
//! BWT/FM-index alignment algorithm executed entirely on simulated
//! SOT-MRAM computational sub-arrays.
//!
//! * [`MappedIndex`] — the correlated data partitioning and mapping of
//!   §V: BWT buckets, `CRef` rows and the vertical marker table
//!   co-located per sub-array, with the `LFM(MT, nt, id)` procedure
//!   executed by `XNOR_Match` + popcount + `MEM` + `IM_ADD`;
//! * [`exact_search`] — Algorithm 1 (exact alignment-in-memory);
//! * [`inexact_search`] — Algorithm 2 (≤ z differences via DPU
//!   backtracking);
//! * [`PimAligner`] — the end-to-end two-stage aligner with the paper's
//!   two configurations, [`PimAlignerConfig::baseline`] (PIM-Aligner-n)
//!   and [`PimAlignerConfig::pipelined`] (PIM-Aligner-p, Pd = 2);
//! * [`PerfReport`] — throughput, power, MBR and RUR, the quantities of
//!   Figs. 8–10.
//!
//! Everything the platform computes is validated bit-exactly against the
//! `fmindex` software oracle.
//!
//! # Examples
//!
//! ```
//! use bioseq::DnaSeq;
//! use pim_aligner::{PimAligner, PimAlignerConfig};
//!
//! # fn main() -> Result<(), bioseq::ParseSeqError> {
//! // The paper's Fig. 1 example: read CTA against reference TGCTA.
//! let reference: DnaSeq = "TGCTA".parse()?;
//! let mut aligner = PimAligner::new(&reference, PimAlignerConfig::pipelined());
//! let outcome = aligner.align_read(&"CTA".parse()?);
//! assert_eq!(outcome.positions(), Some(&[2usize][..]));
//!
//! let report = aligner.report();
//! assert!(report.throughput_qps > 0.0);
//! # Ok(())
//! # }
//! ```

mod aligner;
mod artifact;
mod config;
mod error;
mod exact;
mod host;
mod hybrid;
mod inexact;
mod mapping;
mod paired;
mod parallel;
mod platform;
mod report;
mod verify;

pub mod metrics;
pub mod sam;
pub mod service;

pub use aligner::{AlignSession, AlignmentOutcome, BatchResult, MappedStrand, PimAligner};
pub use artifact::{
    sa_rate_for_budget, ArtifactShard, IndexArtifact, LoadArtifactError, ShardedPlatform,
    ARTIFACT_MAGIC, BUDGET_RATES,
};
pub use config::{AddMethod, PimAlignerConfig, RecoveryPolicy, DEFAULT_KERNEL_BATCH};
pub use error::AlignError;
pub use exact::{exact_search, exact_search_batch, ExactStats};
pub use host::{HostTotals, HostTraceConfig, MAX_TRACE_SPANS};
pub use hybrid::{seed_and_extend, HybridHit, SeedExtendConfig};
pub use inexact::{inexact_search, inexact_search_first, InexactStats};
pub use mapping::{LfmBatchScratch, LfmRequest, MappedIndex};
pub use metrics::{
    host_section_json, index_section_json, obs_section_json, service_section_json,
    MetricsBreakdown, PhaseLfm, PrimitiveMetrics, ResourceMetrics, StageOccupancy,
    METRICS_SCHEMA_VERSION,
};
pub use paired::{align_pair, Mate, PairConstraints, PairOutcome};
pub use parallel::{align_batch_parallel, align_batch_parallel_both_strands, BatchTotals};
pub use platform::Platform;
pub use report::{
    FaultTelemetry, IndexTelemetry, ObsTelemetry, PerfReport, ServiceTelemetry, SlowRequest,
    BACKGROUND_W_PER_SUBARRAY,
};
pub use service::{ServiceConfig, ServiceError};
