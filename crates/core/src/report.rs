//! Performance reporting: the quantities behind Figs. 8–10.

use pimsim::{CycleLedger, Resource};
use serde::{Deserialize, Serialize};

use crate::config::PimAlignerConfig;
use crate::host::HostTotals;
use crate::metrics::MetricsBreakdown;

/// Background (leakage + clocking) power per active sub-array, watts.
/// Part of the DESIGN.md §6 calibration.
pub const BACKGROUND_W_PER_SUBARRAY: f64 = 0.005;

/// Per-batch fault telemetry (DESIGN.md §8): what the fault campaign
/// injected and what the verify-and-recover path did about it.
///
/// Injection counters come from the platform's
/// [`FaultInjector`](pimsim::FaultInjector); recovery counters from the
/// aligner's verification state machine. All-zero when the campaign is
/// inactive and recovery is disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultTelemetry {
    /// Data-zone cells frozen by stuck-at injection at mapping time.
    pub stuck_cells: u64,
    /// `XNOR_Match` bits flipped by sense misreads.
    pub xnor_bit_flips: u64,
    /// Transient row-read burst events.
    pub transient_row_faults: u64,
    /// `IM_ADD` carry-chain faults.
    pub carry_faults: u64,
    /// Candidate outcomes checked against the reference.
    pub verifications: u64,
    /// Verifications in which at least one candidate position was wrong.
    pub verify_failures: u64,
    /// Same-budget LFM re-runs.
    pub retries: u64,
    /// Difference-budget escalations.
    pub escalations: u64,
    /// Reads resolved by the host software fallback.
    pub host_fallbacks: u64,
    /// Reads the recovery ladder exhausted without a trusted answer.
    pub unrecoverable: u64,
}

impl FaultTelemetry {
    /// Adds `other`'s counts into `self` (parallel worker merge).
    pub fn merge(&mut self, other: &FaultTelemetry) {
        self.stuck_cells += other.stuck_cells;
        self.xnor_bit_flips += other.xnor_bit_flips;
        self.transient_row_faults += other.transient_row_faults;
        self.carry_faults += other.carry_faults;
        self.verifications += other.verifications;
        self.verify_failures += other.verify_failures;
        self.retries += other.retries;
        self.escalations += other.escalations;
        self.host_fallbacks += other.host_fallbacks;
        self.unrecoverable += other.unrecoverable;
    }

    /// Total fault events injected into the platform.
    pub fn injected_total(&self) -> u64 {
        self.stuck_cells + self.xnor_bit_flips + self.transient_row_faults + self.carry_faults
    }

    /// `true` when nothing was injected and nothing recovered.
    pub fn is_quiet(&self) -> bool {
        *self == FaultTelemetry::default()
    }
}

/// Service-layer robustness telemetry (DESIGN.md §13): what the
/// `pimserve` admission queue, deadline enforcement, panic quarantine
/// and drain machinery did over a serving run.
///
/// All-zero for one-shot CLI runs — the counters only move when requests
/// flow through the service layer. Kept separate from [`FaultTelemetry`]
/// (simulated device faults) and [`HostTotals`] (wall-clock latencies):
/// these are *control-plane decisions*, deterministic given an arrival
/// sequence, and the metrics JSON emits them under their own `service`
/// section so SLO enforcement is measurable rather than aspirational.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceTelemetry {
    /// Align requests that reached admission control.
    pub received: u64,
    /// Requests admitted into the bounded queue.
    pub accepted: u64,
    /// Requests shed because the queue was at its depth limit.
    pub shed_queue_full: u64,
    /// Requests shed because in-flight payload bytes hit their limit.
    pub shed_inflight_bytes: u64,
    /// Requests rejected because the server was draining.
    pub rejected_draining: u64,
    /// Requests rejected as malformed before admission.
    pub rejected_invalid: u64,
    /// Accepted requests whose deadline expired while queued — dropped
    /// before batching and answered with a typed deadline error.
    pub expired_in_queue: u64,
    /// Requests aligned to completion but answered after their deadline
    /// (the work was already in flight when the deadline passed).
    pub late_responses: u64,
    /// Reads quarantined by `catch_unwind` into typed error responses.
    pub panics_quarantined: u64,
    /// `align_chunk_parallel` calls issued by the batcher.
    pub batches: u64,
    /// Responses written (every accepted request gets exactly one).
    pub responses: u64,
    /// High-water mark of the admission queue depth.
    pub peak_queue_depth: u64,
    /// High-water mark of in-flight payload bytes.
    pub peak_inflight_bytes: u64,
}

impl ServiceTelemetry {
    /// Adds `other`'s counts into `self`; peaks take the maximum.
    pub fn merge(&mut self, other: &ServiceTelemetry) {
        self.received += other.received;
        self.accepted += other.accepted;
        self.shed_queue_full += other.shed_queue_full;
        self.shed_inflight_bytes += other.shed_inflight_bytes;
        self.rejected_draining += other.rejected_draining;
        self.rejected_invalid += other.rejected_invalid;
        self.expired_in_queue += other.expired_in_queue;
        self.late_responses += other.late_responses;
        self.panics_quarantined += other.panics_quarantined;
        self.batches += other.batches;
        self.responses += other.responses;
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.peak_inflight_bytes = self.peak_inflight_bytes.max(other.peak_inflight_bytes);
    }

    /// Requests rejected by load shedding (either limit).
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full + self.shed_inflight_bytes
    }

    /// Requests that missed their deadline, whether dropped in the
    /// queue or answered late.
    pub fn deadline_misses(&self) -> u64 {
        self.expired_in_queue + self.late_responses
    }

    /// `true` when no request ever touched the service layer.
    pub fn is_quiet(&self) -> bool {
        *self == ServiceTelemetry::default()
    }
}

/// Provenance and footprint of the index a run aligned against
/// (DESIGN.md §14): whether it was loaded from a serialised artifact or
/// built in-process, how the reference was sharded, and how the actual
/// storage compares to the analytic
/// [`size_model`](fmindex::size_model) prediction.
///
/// Default-zero for callers that never describe their index; the
/// `pimalign`/`pimserve` paths always fill it in, and the metrics JSON
/// emits it under its own `index` section (schema v4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexTelemetry {
    /// `true` when the index came from a serialised artifact rather
    /// than an in-process build.
    pub loaded: bool,
    /// Reference shards aligned against (1 = unsharded).
    pub shards: u64,
    /// Suffix-array sampling rate (1 = full SA, the paper's setup).
    pub sa_rate: u32,
    /// Shard window, bases (0 when unsharded).
    pub shard_window: u64,
    /// Shard overlap, bases (0 when unsharded).
    pub shard_overlap: u64,
    /// Bytes of index storage actually held, summed over shards.
    pub actual_bytes: u64,
    /// Bytes the analytic size model predicts for the same geometry.
    pub model_bytes: u64,
}

impl IndexTelemetry {
    /// `true` when no index was ever described.
    pub fn is_quiet(&self) -> bool {
        *self == IndexTelemetry::default()
    }
}

/// One entry of the bounded slow-request log (DESIGN.md §17): the
/// per-stage wall-clock breakdown of a single served request, keyed by
/// the `trace_id` minted at admission so the entry is joinable with the
/// request's span track in the Chrome trace export.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlowRequest {
    /// Trace id minted at admission (also the span track id).
    pub trace_id: u64,
    /// Client-chosen request id (for joining with client-side logs).
    pub req_id: u64,
    /// End-to-end latency, frame receipt to response write, ns.
    pub total_ns: u64,
    /// Frame decode + admission decision, ns.
    pub admit_ns: u64,
    /// Time spent waiting in the admission queue, ns.
    pub queued_ns: u64,
    /// Batch assembly + deadline gate ahead of alignment, ns.
    pub batched_ns: u64,
    /// Time inside `align_chunk_parallel` (or the quarantine retry), ns.
    pub aligned_ns: u64,
    /// Response encode + socket write, ns.
    pub respond_ns: u64,
}

/// Drain-time summary of the live observability plane (DESIGN.md §17):
/// ring geometry, watchdog verdicts and the top-K slow-request log.
/// All-zero/empty for one-shot CLI runs, like [`ServiceTelemetry`]. The
/// *live* windowed views are exposed over the wire by `Request::Stats`;
/// this struct is what survives into the drain-time metrics JSON under
/// the `obs` section (schema v7).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsTelemetry {
    /// Rolling-window ring capacity, seconds.
    pub window_secs: u32,
    /// Per-second buckets evicted from the ring into the retired
    /// aggregate over the run (0 until the run outlives the window).
    pub buckets_retired: u64,
    /// Distinct batcher-stall episodes the watchdog recorded.
    pub watchdog_stalls: u64,
    /// Worst head-of-queue age the watchdog ever observed, ms.
    pub watchdog_max_head_age_ms: u64,
    /// Stall threshold the watchdog enforced, ms (0 = disabled).
    pub watchdog_threshold_ms: u32,
    /// Top-K slowest requests by end-to-end latency, sorted descending.
    pub slow: Vec<SlowRequest>,
}

impl ObsTelemetry {
    /// `true` when the observability plane never saw a request.
    pub fn is_quiet(&self) -> bool {
        self.buckets_retired == 0 && self.watchdog_stalls == 0 && self.slow.is_empty()
    }
}

/// The performance report of one alignment batch — throughput, power and
/// the utilisation ratios of Fig. 10.
///
/// Derivation:
///
/// * the batch's `LFM` count is spread over the chip's parallel pipeline
///   units; each unit issues `LFM`s at the pipeline rate for the
///   configured `Pd` (Fig. 7 model);
/// * dynamic power = simulated dynamic energy ÷ simulated time;
///   total power adds [`BACKGROUND_W_PER_SUBARRAY`] per active
///   sub-array (`units × Pd`);
/// * MBR = memory/transfer cycles visible on the critical path per
///   `LFM` ÷ the `LFM` issue rate;
/// * RUR = busy cycles per unit ÷ (2 compute resources × makespan).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Reads aligned.
    pub queries: u64,
    /// Total `LFM` invocations across the batch.
    pub lfm_calls: u64,
    /// Wall-clock seconds for the batch on the modelled chip.
    pub time_s: f64,
    /// Queries per second.
    pub throughput_qps: f64,
    /// Dynamic power, watts.
    pub dynamic_power_w: f64,
    /// Total power (dynamic + background), watts.
    pub total_power_w: f64,
    /// Dynamic energy per query, joules.
    pub energy_per_query_j: f64,
    /// Memory Bottleneck Ratio, percent (Fig. 10b).
    pub mbr_pct: f64,
    /// Resource Utilization Ratio, percent (Fig. 10c).
    pub rur_pct: f64,
    /// Die area of the modelled chip, mm².
    pub area_mm2: f64,
    /// Off-chip memory required during alignment, GB (≈0 for PIM:
    /// tables live in the computational arrays).
    pub offchip_gb: f64,
    /// Throughput per watt (Fig. 9a).
    pub throughput_per_watt: f64,
    /// Throughput per watt per mm² (Fig. 9b).
    pub throughput_per_watt_mm2: f64,
    /// Fault-injection and recovery telemetry for the batch (all-zero
    /// for fault-free, recovery-off runs).
    pub faults: FaultTelemetry,
    /// Hierarchical cycle/energy breakdown: per-primitive counters,
    /// per-resource busy cycles, phase-attributed `LFM`s, pipeline stage
    /// occupancy and traced spans (the metrics layer behind
    /// `pimalign --metrics` and `perfdump`).
    pub breakdown: MetricsBreakdown,
    /// Host-side wall-clock telemetry (latency histograms, worker
    /// utilisation, trace spans). Nondeterministic by nature; kept
    /// strictly apart from the simulated quantities above and emitted
    /// under its own `host` section in the metrics JSON. Default-empty
    /// for callers that never measured wall time.
    pub host: HostTotals,
    /// Service-layer admission/deadline/panic/drain counters
    /// (all-zero outside `pimserve` runs).
    pub service: ServiceTelemetry,
    /// Index provenance and footprint (artifact vs in-process build,
    /// shard geometry, size-model reconciliation). Default-zero unless
    /// the caller described its index.
    pub index: IndexTelemetry,
    /// Observability-plane summary (rolling-window ring geometry,
    /// watchdog verdicts, slow-request log). Default-empty outside
    /// `pimserve` runs.
    pub obs: ObsTelemetry,
}

impl PerfReport {
    /// Builds the report from the simulated batch.
    ///
    /// # Panics
    ///
    /// Panics if `queries == 0`.
    pub fn from_batch(
        config: &PimAlignerConfig,
        ledger: &CycleLedger,
        queries: u64,
        lfm_calls: u64,
    ) -> PerfReport {
        assert!(queries > 0, "report requires at least one query");
        let model = config.model();
        let pipeline = config.pipeline();
        let pd = config.pd();
        let units = config.chip().parallel_units as f64;

        // Issue rate and makespan. A batch smaller than the unit count
        // can only occupy one pipeline unit per read (iterations within
        // a read are serially dependent), so both the work division and
        // the utilisation accounting use the *active* unit count.
        let rate = pipeline.cycles_per_lfm(pd);
        let active_units = units.min(queries as f64);
        let lfm_per_unit = lfm_calls as f64 / active_units;
        let makespan_cycles = lfm_per_unit * rate;
        let time_s = makespan_cycles * model.cycle_ns() * 1e-9;
        let throughput_qps = queries as f64 / time_s;

        // Energy and power. Method-II operand streaming is already in the
        // ledger (the mapper charges the transfer row-writes per LFM).
        let dynamic_j = ledger.energy_pj() * 1e-12;
        let dynamic_power_w = dynamic_j / time_s;
        let active_subarrays = units * pd as f64;
        let total_power_w = dynamic_power_w + active_subarrays * BACKGROUND_W_PER_SUBARRAY;

        // MBR: memory/transfer cycles visible on the critical path.
        let visible_memory = if pd == 1 {
            // Sequential: all memory cycles are on the path.
            (ledger.busy_cycles(Resource::Memory) + ledger.busy_cycles(Resource::Transfer)) as f64
                / lfm_calls.max(1) as f64
        } else {
            // Pipelined: the marker read hides under the other read's add;
            // the transfer and index update remain exposed on the adder
            // port (see pimsim::pipeline).
            pipeline.transfer_cycles as f64 + 2.0
        };
        let mbr_pct = 100.0 * visible_memory / rate;

        // RUR: busy cycles per active unit over two compute resources.
        let busy_per_unit = ledger.total_busy_cycles() as f64 / active_units;
        let rur_pct = 100.0 * (busy_per_unit / (2.0 * makespan_cycles)).min(1.0);

        let area_mm2 = config.chip().area_mm2(model);
        let throughput_per_watt = throughput_qps / total_power_w;
        PerfReport {
            queries,
            lfm_calls,
            time_s,
            throughput_qps,
            dynamic_power_w,
            total_power_w,
            energy_per_query_j: dynamic_j / queries as f64,
            mbr_pct,
            rur_pct,
            area_mm2,
            offchip_gb: 0.0,
            throughput_per_watt,
            throughput_per_watt_mm2: throughput_per_watt / area_mm2,
            faults: FaultTelemetry::default(),
            breakdown: MetricsBreakdown::from_ledger(config, ledger, lfm_calls),
            host: HostTotals::default(),
            service: ServiceTelemetry::default(),
            index: IndexTelemetry::default(),
            obs: ObsTelemetry::default(),
        }
    }

    /// Rescales the report to a different query count, assuming the
    /// simulated per-query behaviour is representative (used to quote
    /// paper-scale 10 M-read numbers from a smaller simulated batch).
    /// Throughput, power and ratios are intensive and unchanged. The
    /// cycle breakdown stays at the simulated batch's scale — it
    /// describes work that actually ran, never extrapolated work.
    pub fn scaled_to_queries(&self, queries: u64) -> PerfReport {
        let factor = queries as f64 / self.queries as f64;
        PerfReport {
            queries,
            lfm_calls: (self.lfm_calls as f64 * factor) as u64,
            time_s: self.time_s * factor,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mram::array::{ArrayModel, ArrayOp};
    use pimsim::costs;

    /// A synthetic ledger equivalent to `lfm_calls` perfect LFMs.
    fn ledger_for(lfm_calls: u64, pd: usize) -> CycleLedger {
        let model = ArrayModel::default();
        let mut ledger = CycleLedger::new();
        for _ in 0..lfm_calls {
            costs::charge_lfm(&model, &mut ledger);
            if pd >= 2 {
                for _ in 0..7 {
                    pimsim::costs::LogicalOp::RowWrite.charge(&model, &mut ledger);
                }
            }
        }
        ledger
    }

    fn report(pd: usize, queries: u64) -> PerfReport {
        let config = if pd == 1 {
            PimAlignerConfig::baseline()
        } else {
            PimAlignerConfig::pipelined().with_pd(pd)
        };
        // The paper's workload shape: 100-bp reads, 2 LFMs per base.
        let lfm_calls = queries * 200;
        PerfReport::from_batch(&config, &ledger_for(lfm_calls, pd), queries, lfm_calls)
    }

    #[test]
    fn baseline_lands_in_paper_range() {
        // PIM-Aligner-n: ~4.7 M queries/s at ~19 W (DESIGN.md §6
        // calibration against Figs. 8–9).
        let r = report(1, 1_000);
        assert!(
            (4.0e6..5.5e6).contains(&r.throughput_qps),
            "baseline throughput {:.3e}",
            r.throughput_qps
        );
        assert!(
            (14.0..24.0).contains(&r.total_power_w),
            "baseline power {:.1}",
            r.total_power_w
        );
    }

    #[test]
    fn pipelined_lands_on_fig9c_annotation() {
        // Fig. 9c annotates Pd=2 at 6.7e6 queries/s and 28.4 W.
        let r = report(2, 1_000);
        assert!(
            (6.0e6..7.4e6).contains(&r.throughput_qps),
            "Pd=2 throughput {:.3e}",
            r.throughput_qps
        );
        assert!(
            (24.0..33.0).contains(&r.total_power_w),
            "Pd=2 power {:.1}",
            r.total_power_w
        );
    }

    #[test]
    fn pipeline_speedup_about_forty_percent() {
        let n = report(1, 1_000);
        let p = report(2, 1_000);
        let gain = p.throughput_qps / n.throughput_qps;
        assert!((1.30..1.55).contains(&gain), "pipeline gain {gain:.3}");
        assert!(p.total_power_w > n.total_power_w, "power must rise with Pd");
    }

    #[test]
    fn mbr_below_eighteen_percent() {
        // Fig. 10b: "PIM-Aligner spends less than ∼18% time for memory
        // access and data transfer".
        for pd in [1, 2] {
            let r = report(pd, 500);
            assert!(r.mbr_pct < 18.0, "Pd={pd} MBR {:.1}%", r.mbr_pct);
            assert!(r.mbr_pct > 5.0, "MBR implausibly low: {:.1}%", r.mbr_pct);
        }
    }

    #[test]
    fn rur_highest_when_pipelined() {
        // Fig. 10c: "PIM-Aligner-p shows the highest resource utilization
        // with up to ∼86%".
        let n = report(1, 500);
        let p = report(2, 500);
        assert!(p.rur_pct > n.rur_pct);
        assert!((65.0..95.0).contains(&p.rur_pct), "RUR-p {:.1}%", p.rur_pct);
    }

    #[test]
    fn pim_has_no_offchip_memory() {
        // Fig. 10a: the PIM platforms hold all tables in-array.
        assert_eq!(report(1, 100).offchip_gb, 0.0);
    }

    #[test]
    fn scaling_preserves_intensive_quantities() {
        let r = report(2, 1_000);
        let s = r.scaled_to_queries(10_000_000);
        assert_eq!(s.queries, 10_000_000);
        assert!((s.throughput_qps - r.throughput_qps).abs() < 1e-6);
        assert!((s.total_power_w - r.total_power_w).abs() < 1e-9);
        assert!(s.time_s > r.time_s);
    }

    #[test]
    fn throughput_saturates_with_pd() {
        let t: Vec<f64> = [1, 2, 3, 4]
            .iter()
            .map(|&pd| report(pd, 500).throughput_qps)
            .collect();
        assert!(t[1] > t[0] && t[2] >= t[1] && t[3] >= t[2]);
        // Fig. 9c: diminishing returns.
        let g1 = t[1] / t[0];
        let g3 = t[3] / t[2];
        assert!(g3 < g1, "gains must diminish: {t:?}");
    }

    #[test]
    fn service_telemetry_merges_counters_and_peaks() {
        let mut a = ServiceTelemetry {
            received: 10,
            accepted: 8,
            shed_queue_full: 1,
            shed_inflight_bytes: 1,
            expired_in_queue: 2,
            late_responses: 1,
            responses: 8,
            peak_queue_depth: 4,
            peak_inflight_bytes: 1_000,
            ..ServiceTelemetry::default()
        };
        let b = ServiceTelemetry {
            received: 5,
            accepted: 5,
            responses: 5,
            peak_queue_depth: 7,
            peak_inflight_bytes: 500,
            ..ServiceTelemetry::default()
        };
        a.merge(&b);
        assert_eq!(a.received, 15);
        assert_eq!(a.shed_total(), 2);
        assert_eq!(a.deadline_misses(), 3);
        assert_eq!(a.peak_queue_depth, 7, "peaks take the max");
        assert_eq!(a.peak_inflight_bytes, 1_000);
        assert!(!a.is_quiet());
        assert!(ServiceTelemetry::default().is_quiet());
    }

    #[test]
    fn energy_per_query_is_microjoule_scale() {
        let r = report(1, 100);
        assert!(
            (1e-6..1e-5).contains(&r.energy_per_query_j),
            "energy/query {:.2e} J",
            r.energy_per_query_j
        );
        let _ = ArrayOp::ALL; // keep the import used
    }
}
