//! Exact alignment-in-memory (paper Algorithm 1).

use bioseq::DnaSeq;
use fmindex::SaInterval;
use pimsim::{CycleLedger, Dpu, FaultInjector};

use crate::mapping::MappedIndex;

/// Statistics of one exact search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactStats {
    /// `LFM` invocations issued (two per consumed base).
    pub lfm_calls: u64,
    /// Read bases consumed before success or early failure.
    pub bases_consumed: usize,
}

/// Runs Algorithm 1 on the platform: initialises the DPU interval to
/// `[0, N)`, walks the read right-to-left, and updates both bounds with
/// the in-memory `LFM` procedure, stopping early when `low ≥ high`.
///
/// The index is shared and immutable; the caller supplies the session's
/// own fault-injection stream, DPU and ledger.
///
/// Returns the final interval (empty = no exact match) plus statistics
/// for the performance model.
pub fn exact_search(
    mapped: &MappedIndex,
    injector: &mut FaultInjector,
    dpu: &mut Dpu,
    read: &DnaSeq,
    ledger: &mut CycleLedger,
) -> (SaInterval, ExactStats) {
    dpu.init_interval(mapped.index().text_len() as u32, ledger);
    let mut stats = ExactStats {
        lfm_calls: 0,
        bases_consumed: 0,
    };
    for &nt in read.iter().rev() {
        let t_lfm = dpu.tracer().start(ledger);
        let low = mapped.lfm(nt, dpu.low() as usize, injector, ledger);
        let high = mapped.lfm(nt, dpu.high() as usize, injector, ledger);
        dpu.set_interval(low, high, ledger);
        dpu.tracer_mut().record("lfm", t_lfm, ledger);
        stats.lfm_calls += 2;
        stats.bases_consumed += 1;
        if dpu.interval_empty() {
            // Algorithm 1: "if low ≥ high, it has failed to find a match".
            return (SaInterval::new(low, low), stats);
        }
    }
    (SaInterval::new(dpu.low(), dpu.high()), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PimAlignerConfig;
    use readsim::genome;

    fn setup(reference: &DnaSeq) -> (MappedIndex, FaultInjector, Dpu, CycleLedger) {
        let config = PimAlignerConfig::baseline();
        let mapped = MappedIndex::build(reference, &config);
        let injector = mapped.session_injector();
        let dpu = Dpu::new(*config.model());
        (mapped, injector, dpu, CycleLedger::new())
    }

    #[test]
    fn paper_example_cta() {
        let reference: DnaSeq = "TGCTA".parse().unwrap();
        let (mapped, mut injector, mut dpu, mut ledger) = setup(&reference);
        let read: DnaSeq = "CTA".parse().unwrap();
        let (interval, stats) = exact_search(&mapped, &mut injector, &mut dpu, &read, &mut ledger);
        assert_eq!(interval.count(), 1);
        assert_eq!(mapped.locate(interval, &mut ledger), vec![2]);
        assert_eq!(stats.lfm_calls, 6);
        assert_eq!(stats.bases_consumed, 3);
    }

    #[test]
    fn platform_agrees_with_software_search_on_random_reads() {
        let reference = genome::uniform(50_000, 11);
        let (mapped, mut injector, mut dpu, mut ledger) = setup(&reference);
        let oracle = mapped.index().clone();
        for start in (0..49_000).step_by(1_777) {
            let read = reference.subseq(start..start + 60);
            let (interval, _) = exact_search(&mapped, &mut injector, &mut dpu, &read, &mut ledger);
            let sw = oracle.backward_search(&read);
            match sw {
                Some(expected) => assert_eq!(interval, expected, "read at {start}"),
                None => assert!(interval.is_empty()),
            }
        }
    }

    #[test]
    fn early_exit_saves_lfm_calls() {
        // A read whose suffix never occurs fails immediately.
        let reference: DnaSeq = "AAAAAAAAAA".parse().unwrap();
        let (mapped, mut injector, mut dpu, mut ledger) = setup(&reference);
        let read: DnaSeq = "AAAAAAAACT".parse().unwrap(); // rightmost T absent
        let (interval, stats) = exact_search(&mapped, &mut injector, &mut dpu, &read, &mut ledger);
        assert!(interval.is_empty());
        assert_eq!(stats.bases_consumed, 1);
        assert_eq!(stats.lfm_calls, 2);
    }

    #[test]
    fn multi_subarray_reads_cross_boundaries() {
        // Genome spanning 3 sub-arrays; reads straddling 32768-base
        // boundaries must still match.
        let reference = genome::uniform(80_000, 13);
        let (mapped, mut injector, mut dpu, mut ledger) = setup(&reference);
        assert!(mapped.subarray_count() >= 3);
        for &start in &[32_700usize, 32_760, 65_500] {
            let read = reference.subseq(start..start + 100);
            let (interval, _) = exact_search(&mapped, &mut injector, &mut dpu, &read, &mut ledger);
            assert!(!interval.is_empty(), "boundary read at {start} failed");
            assert!(mapped.locate(interval, &mut ledger).contains(&start));
        }
    }
}
