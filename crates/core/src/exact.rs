//! Exact alignment-in-memory (paper Algorithm 1).

use bioseq::DnaSeq;
use fmindex::SaInterval;
use pimsim::{CycleLedger, Dpu, FaultInjector, KernelCache, SimdPolicy};

use crate::mapping::{LfmBatchScratch, LfmRequest, MappedIndex};

/// Statistics of one exact search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactStats {
    /// `LFM` invocations issued (two per consumed base).
    pub lfm_calls: u64,
    /// Read bases consumed before success or early failure.
    pub bases_consumed: usize,
}

/// Runs Algorithm 1 on the platform: initialises the DPU interval to
/// `[0, N)`, walks the read right-to-left, and updates both bounds with
/// the in-memory `LFM` procedure, stopping early when `low ≥ high`.
///
/// The index is shared and immutable; the caller supplies the session's
/// own fault-injection stream, DPU and ledger.
///
/// Returns the final interval (empty = no exact match) plus statistics
/// for the performance model.
pub fn exact_search(
    mapped: &MappedIndex,
    injector: &mut FaultInjector,
    dpu: &mut Dpu,
    read: &DnaSeq,
    ledger: &mut CycleLedger,
) -> (SaInterval, ExactStats) {
    exact_search_with(
        mapped,
        injector,
        dpu,
        read,
        SimdPolicy::Scalar,
        None,
        ledger,
    )
}

/// [`exact_search`] under a SIMD policy and an optional rank-checkpoint
/// cache, both threaded into every `LFM` (see
/// [`MappedIndex::lfm_with`]). Intervals, statistics and all simulated
/// charges are byte-identical across policies.
pub fn exact_search_with(
    mapped: &MappedIndex,
    injector: &mut FaultInjector,
    dpu: &mut Dpu,
    read: &DnaSeq,
    policy: SimdPolicy,
    mut cache: Option<&mut KernelCache>,
    ledger: &mut CycleLedger,
) -> (SaInterval, ExactStats) {
    dpu.init_interval(mapped.index().text_len() as u32, ledger);
    let mut stats = ExactStats {
        lfm_calls: 0,
        bases_consumed: 0,
    };
    for &nt in read.iter().rev() {
        let t_lfm = dpu.tracer().start(ledger);
        let low = mapped.lfm_with(
            nt,
            dpu.low() as usize,
            injector,
            policy,
            cache.as_deref_mut(),
            ledger,
        );
        let high = mapped.lfm_with(
            nt,
            dpu.high() as usize,
            injector,
            policy,
            cache.as_deref_mut(),
            ledger,
        );
        dpu.set_interval(low, high, ledger);
        dpu.tracer_mut().record("lfm", t_lfm, ledger);
        stats.lfm_calls += 2;
        stats.bases_consumed += 1;
        if dpu.interval_empty() {
            // Algorithm 1: "if low ≥ high, it has failed to find a match".
            return (SaInterval::new(low, low), stats);
        }
    }
    (SaInterval::new(dpu.low(), dpu.high()), stats)
}

/// Runs Algorithm 1 for `reads.len()` reads in lock-step through the
/// batched kernel: at each step every still-active read contributes its
/// `low` then its `high` LFM request (read order), and the whole step
/// executes as one [`MappedIndex::lfm_batch`] so plane loads shared
/// across reads are charged once. Results and statistics are
/// bit-identical to running [`exact_search`] per read — including under
/// seeded faults when `injectors` holds one per-read injector (indexed
/// by read; pass an empty slice for a clean run), because the per-read
/// draw order (low before high, steps ascending) is preserved.
///
/// Each read gets its own transient DPU (interval registers), charged
/// exactly like the single-read path: one `IndexUpdate` at
/// initialisation, one per consumed step. Reads drop out of the batch
/// on early failure (`low ≥ high`) or exhaustion, exactly like the
/// single-read early exit.
pub fn exact_search_batch(
    mapped: &MappedIndex,
    injectors: &mut [FaultInjector],
    reads: &[&DnaSeq],
    ledger: &mut CycleLedger,
) -> Vec<(SaInterval, ExactStats)> {
    exact_search_batch_with(mapped, injectors, reads, SimdPolicy::Scalar, None, ledger)
}

/// [`exact_search_batch`] under a SIMD policy and an optional
/// rank-checkpoint cache (see [`MappedIndex::lfm_batch_into_with`]).
/// Results, statistics and all simulated charges are byte-identical
/// across policies.
pub fn exact_search_batch_with(
    mapped: &MappedIndex,
    injectors: &mut [FaultInjector],
    reads: &[&DnaSeq],
    policy: SimdPolicy,
    mut cache: Option<&mut KernelCache>,
    ledger: &mut CycleLedger,
) -> Vec<(SaInterval, ExactStats)> {
    let n = mapped.index().text_len() as u32;
    let mut dpus: Vec<Dpu> = (0..reads.len()).map(|_| Dpu::new(mapped.model())).collect();
    let mut stats = vec![
        ExactStats {
            lfm_calls: 0,
            bases_consumed: 0,
        };
        reads.len()
    ];
    let mut results: Vec<Option<SaInterval>> = vec![None; reads.len()];
    // Right-to-left base order per read, indexable by step.
    let suffixes: Vec<Vec<bioseq::Base>> = reads
        .iter()
        .map(|r| r.iter().rev().copied().collect())
        .collect();
    for (r, dpu) in dpus.iter_mut().enumerate() {
        dpu.init_interval(n, ledger);
        if suffixes[r].is_empty() {
            results[r] = Some(SaInterval::new(dpu.low(), dpu.high()));
        }
    }
    let max_len = suffixes.iter().map(Vec::len).max().unwrap_or(0);
    let mut requests = Vec::new();
    let mut active = Vec::new();
    let mut scratch = LfmBatchScratch::new();
    let mut sums = Vec::new();
    for step in 0..max_len {
        requests.clear();
        active.clear();
        for (r, suffix) in suffixes.iter().enumerate() {
            if results[r].is_some() {
                continue;
            }
            let nt = suffix[step];
            requests.push(LfmRequest {
                stream: r,
                nt,
                id: dpus[r].low() as usize,
            });
            requests.push(LfmRequest {
                stream: r,
                nt,
                id: dpus[r].high() as usize,
            });
            active.push(r);
        }
        if requests.is_empty() {
            break;
        }
        mapped.lfm_batch_into_with(
            &requests,
            injectors,
            policy,
            cache.as_deref_mut(),
            ledger,
            &mut scratch,
            &mut sums,
        );
        for (k, &r) in active.iter().enumerate() {
            let (low, high) = (sums[2 * k], sums[2 * k + 1]);
            dpus[r].set_interval(low, high, ledger);
            stats[r].lfm_calls += 2;
            stats[r].bases_consumed += 1;
            if dpus[r].interval_empty() {
                // Algorithm 1: "if low ≥ high, it has failed to find a
                // match".
                results[r] = Some(SaInterval::new(low, low));
            } else if step + 1 == suffixes[r].len() {
                results[r] = Some(SaInterval::new(low, high));
            }
        }
    }
    results
        .into_iter()
        .zip(stats)
        .map(|(interval, st)| (interval.expect("every read resolves"), st))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PimAlignerConfig;
    use readsim::genome;

    fn setup(reference: &DnaSeq) -> (MappedIndex, FaultInjector, Dpu, CycleLedger) {
        let config = PimAlignerConfig::baseline();
        let mapped = MappedIndex::build(reference, &config);
        let injector = mapped.session_injector();
        let dpu = Dpu::new(*config.model());
        (mapped, injector, dpu, CycleLedger::new())
    }

    #[test]
    fn paper_example_cta() {
        let reference: DnaSeq = "TGCTA".parse().unwrap();
        let (mapped, mut injector, mut dpu, mut ledger) = setup(&reference);
        let read: DnaSeq = "CTA".parse().unwrap();
        let (interval, stats) = exact_search(&mapped, &mut injector, &mut dpu, &read, &mut ledger);
        assert_eq!(interval.count(), 1);
        assert_eq!(mapped.locate(interval, &mut ledger), vec![2]);
        assert_eq!(stats.lfm_calls, 6);
        assert_eq!(stats.bases_consumed, 3);
    }

    #[test]
    fn platform_agrees_with_software_search_on_random_reads() {
        let reference = genome::uniform(50_000, 11);
        let (mapped, mut injector, mut dpu, mut ledger) = setup(&reference);
        let oracle = mapped.index().clone();
        for start in (0..49_000).step_by(1_777) {
            let read = reference.subseq(start..start + 60);
            let (interval, _) = exact_search(&mapped, &mut injector, &mut dpu, &read, &mut ledger);
            let sw = oracle.backward_search(&read);
            match sw {
                Some(expected) => assert_eq!(interval, expected, "read at {start}"),
                None => assert!(interval.is_empty()),
            }
        }
    }

    #[test]
    fn early_exit_saves_lfm_calls() {
        // A read whose suffix never occurs fails immediately.
        let reference: DnaSeq = "AAAAAAAAAA".parse().unwrap();
        let (mapped, mut injector, mut dpu, mut ledger) = setup(&reference);
        let read: DnaSeq = "AAAAAAAACT".parse().unwrap(); // rightmost T absent
        let (interval, stats) = exact_search(&mapped, &mut injector, &mut dpu, &read, &mut ledger);
        assert!(interval.is_empty());
        assert_eq!(stats.bases_consumed, 1);
        assert_eq!(stats.lfm_calls, 2);
    }

    #[test]
    fn batched_search_matches_single_reads_exactly() {
        let reference = genome::uniform(60_000, 21);
        let (mapped, mut injector, mut dpu, mut _ledger) = setup(&reference);
        // Mixed lengths + one guaranteed miss + one empty read.
        let mut reads: Vec<DnaSeq> = (0..6)
            .map(|k| reference.subseq(k * 7_919..k * 7_919 + 40 + 10 * k))
            .collect();
        reads.push("".parse().unwrap());
        let refs: Vec<&DnaSeq> = reads.iter().collect();
        let mut batch_ledger = CycleLedger::new();
        let batched = exact_search_batch(&mapped, &mut [], &refs, &mut batch_ledger);
        assert_eq!(batched.len(), reads.len());
        let mut single_ledger = CycleLedger::new();
        for (read, (interval, stats)) in reads.iter().zip(&batched) {
            let (expected, expected_stats) =
                exact_search(&mapped, &mut injector, &mut dpu, read, &mut single_ledger);
            assert_eq!(*interval, expected);
            assert_eq!(*stats, expected_stats);
        }
        // The lock-step batch shares early-step plane loads (every read
        // starts from [0, N), so step 0 groups collapse hard).
        assert!(batch_ledger.total_busy_cycles() < single_ledger.total_busy_cycles());
        // ...but issues exactly the same per-request LFM work.
        use pimsim::costs::LogicalOp;
        for op in [
            LogicalOp::Popcount,
            LogicalOp::ImAdd32,
            LogicalOp::IndexUpdate,
        ] {
            assert_eq!(
                batch_ledger.primitives().count(op),
                single_ledger.primitives().count(op),
                "{op:?} must reconcile exactly"
            );
        }
    }

    #[test]
    fn batched_search_replays_per_read_fault_streams() {
        use mram::faults::{FaultCampaign, FaultModel};
        let config = PimAlignerConfig::baseline().with_fault_campaign(
            FaultCampaign::seeded(41)
                .with_model(FaultModel::with_probabilities(0.02, 0.0))
                .with_transient_row_rate(0.05)
                .with_carry_fault_prob(0.02),
        );
        let reference = genome::uniform(30_000, 23);
        let mapped = MappedIndex::build(&reference, &config);
        let reads: Vec<DnaSeq> = (0..4)
            .map(|k| reference.subseq(k * 5_003..k * 5_003 + 50))
            .collect();
        let refs: Vec<&DnaSeq> = reads.iter().collect();
        let mut injectors: Vec<FaultInjector> = (0..reads.len())
            .map(|r| mapped.read_injector(r as u64))
            .collect();
        let mut ledger = CycleLedger::new();
        let batched = exact_search_batch(&mapped, &mut injectors, &refs, &mut ledger);
        for (r, read) in reads.iter().enumerate() {
            let mut oracle = mapped.read_injector(r as u64);
            let mut dpu = Dpu::new(mapped.model());
            let (expected, expected_stats) =
                exact_search(&mapped, &mut oracle, &mut dpu, read, &mut ledger);
            assert_eq!(batched[r], (expected, expected_stats), "read {r}");
            assert_eq!(injectors[r].counters(), oracle.counters(), "read {r}");
        }
    }

    #[test]
    fn multi_subarray_reads_cross_boundaries() {
        // Genome spanning 3 sub-arrays; reads straddling 32768-base
        // boundaries must still match.
        let reference = genome::uniform(80_000, 13);
        let (mapped, mut injector, mut dpu, mut ledger) = setup(&reference);
        assert!(mapped.subarray_count() >= 3);
        for &start in &[32_700usize, 32_760, 65_500] {
            let read = reference.subseq(start..start + 100);
            let (interval, _) = exact_search(&mapped, &mut injector, &mut dpu, &read, &mut ledger);
            assert!(!interval.is_empty(), "boundary read at {start} failed");
            assert!(mapped.locate(interval, &mut ledger).contains(&start));
        }
    }
}
