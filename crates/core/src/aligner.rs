//! The end-to-end PIM-Aligner: two-stage alignment plus performance
//! reporting.

use std::time::Instant;

use bioseq::DnaSeq;
use fmindex::{EditBudget, SaInterval};
use pimsim::{
    CycleLedger, Dpu, FaultInjector, HostEpoch, HostHistogram, HostSpan, HostSpanLog, KernelCache,
    SimdPolicy, Span, SpanTracer,
};

use crate::config::PimAlignerConfig;
use crate::error::AlignError;
use crate::exact::{exact_search_batch_with, exact_search_with, ExactStats};
use crate::inexact::inexact_search;
use crate::mapping::MappedIndex;
use crate::metrics::PhaseLfm;
use crate::platform::Platform;
use crate::report::{FaultTelemetry, PerfReport};
use crate::verify::{verify_exact, verify_inexact};

/// Which rung of the alignment state machine issued a platform pass —
/// decides the [`PhaseLfm`] bucket its `LFM` calls land in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LfmAttr {
    /// The first pass over a read (exact + inexact stages attribute to
    /// their own buckets).
    Primary,
    /// A same-budget recovery retry.
    Retry,
    /// A difference-budget escalation rung.
    Escalate,
}

/// Which orientation of the read produced a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappedStrand {
    /// The read mapped as given.
    Forward,
    /// The read mapped as its reverse complement.
    Reverse,
}

/// The outcome of aligning one read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlignmentOutcome {
    /// The read matched the reference exactly (stage 1); positions are
    /// sorted reference coordinates.
    Exact {
        /// Sorted reference positions of all exact occurrences.
        positions: Vec<usize>,
    },
    /// The read matched with `diffs > 0` differences (stage 2).
    Inexact {
        /// Sorted reference positions of the best (fewest-difference)
        /// hits.
        positions: Vec<usize>,
        /// Differences used by the best hits.
        diffs: u8,
    },
    /// No alignment within the configured budget.
    Unmapped,
}

impl AlignmentOutcome {
    /// `true` unless the read is unmapped.
    pub fn is_mapped(&self) -> bool {
        !matches!(self, AlignmentOutcome::Unmapped)
    }

    /// The best positions, if mapped.
    pub fn positions(&self) -> Option<&[usize]> {
        match self {
            AlignmentOutcome::Exact { positions } | AlignmentOutcome::Inexact { positions, .. } => {
                Some(positions)
            }
            AlignmentOutcome::Unmapped => None,
        }
    }
}

/// The result of aligning a batch of reads.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-read outcomes, in input order.
    pub outcomes: Vec<AlignmentOutcome>,
    /// The platform performance report for the batch.
    pub report: PerfReport,
    /// Fraction of reads resolved by the exact stage (paper §III: "up to
    /// ∼70% of short reads should be exactly aligned … after stage one").
    pub exact_fraction: f64,
}

/// A mutable alignment session over a shared [`Platform`], executing the
/// paper's two-stage alignment.
///
/// The session holds only per-worker state: the DPU registers, the
/// alignment-time cycle ledger, the seeded fault-injection stream and the
/// telemetry counters. The reference and the mapped FM-index live in the
/// shared platform — [`MappedIndex::build`] runs exactly once per
/// [`Platform::new`], no matter how many sessions are spawned.
///
/// [`PimAligner`] is an alias for this type: constructing one with
/// [`AlignSession::new`] builds a single-session platform, which keeps
/// the pre-split API working unchanged.
///
/// # Examples
///
/// ```
/// use bioseq::DnaSeq;
/// use pim_aligner::{AlignmentOutcome, PimAligner, PimAlignerConfig};
///
/// # fn main() -> Result<(), bioseq::ParseSeqError> {
/// let reference: DnaSeq = "TGCTA".parse()?;
/// let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline());
/// let outcome = aligner.align_read(&"CTA".parse()?);
/// assert_eq!(outcome, AlignmentOutcome::Exact { positions: vec![2] });
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AlignSession {
    platform: Platform,
    /// Alignment-time fault stream (deterministic per campaign seed and
    /// worker index).
    injector: FaultInjector,
    dpu: Dpu,
    ledger: CycleLedger,
    lfm_calls: u64,
    queries: u64,
    exact_hits: u64,
    /// Recovery-path counters (injection counters live in the session's
    /// fault injector; [`AlignSession::fault_telemetry`] combines both
    /// with the platform's one-time build counters).
    telemetry: FaultTelemetry,
    /// `LFM` calls attributed per alignment phase; always sums to
    /// `lfm_calls`.
    phase_lfm: PhaseLfm,
    /// Wall-clock latency of every entry-point align call (always on:
    /// one `Instant` read pair per read is noise next to an alignment).
    host_per_read: HostHistogram,
    /// Wall-clock span recorder mirroring the simulated-cycle tracer
    /// sites; `None` (the default) costs one branch per site.
    host_log: Option<HostSpanLog>,
    /// Kernel SIMD policy from the config, threaded into every exact
    /// phase's `LFM`s.
    simd_policy: SimdPolicy,
    /// The session's rank-checkpoint cache; `Some` exactly when the
    /// policy enables it. Per-session mutable state — the shared
    /// `MappedIndex` stays immutable.
    kernel_cache: Option<KernelCache>,
}

/// The pre-split name for [`AlignSession`]: one platform, one session.
pub type PimAligner = AlignSession;

impl AlignSession {
    /// Builds a fresh single-session platform over a reference genome
    /// (index construction + sub-array mapping; the one-time cost is
    /// kept in the mapping ledger). To share one index across sessions,
    /// build a [`Platform`] instead and spawn sessions from it.
    pub fn new(reference: &DnaSeq, config: PimAlignerConfig) -> AlignSession {
        Platform::new(reference, config).session()
    }

    /// Spawns the session for `worker` over an existing platform
    /// (called by [`Platform::session`] / [`Platform::worker_session`]).
    pub(crate) fn for_platform(platform: Platform, worker: u64) -> AlignSession {
        let injector = platform.mapped().worker_injector(worker);
        let dpu = Dpu::new(*platform.config().model());
        let simd_policy = platform.config().kernel_simd();
        AlignSession {
            platform,
            injector,
            dpu,
            ledger: CycleLedger::new(),
            lfm_calls: 0,
            queries: 0,
            exact_hits: 0,
            telemetry: FaultTelemetry::default(),
            phase_lfm: PhaseLfm::default(),
            host_per_read: HostHistogram::new(),
            host_log: None,
            simd_policy,
            kernel_cache: simd_policy.cache_enabled().then(KernelCache::new),
        }
    }

    /// Enables span tracing, keeping the newest `capacity` spans in a
    /// ring (the paper's phases — index build, exact/inexact passes,
    /// recovery rungs, individual `LFM`s — show up in
    /// `PerfReport::breakdown.spans`). Tracing is off by default and
    /// costs one predictable branch per instrumentation point when
    /// disabled.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn enable_tracing(&mut self, capacity: usize) {
        *self.dpu.tracer_mut() = SpanTracer::with_capacity(capacity);
        // The one-time index mapping predates the session; replay it as
        // a synthetic span over the platform's mapping ledger.
        self.dpu
            .tracer_mut()
            .record("index_build", 0, self.platform.mapped().mapping_ledger());
    }

    /// Spans recorded so far (empty unless
    /// [`enable_tracing`](AlignSession::enable_tracing) was called).
    pub fn spans(&self) -> Vec<Span> {
        self.dpu.tracer().spans()
    }

    /// Enables wall-clock span recording on track `tid`, mirroring the
    /// simulated-cycle tracer sites (exact/inexact passes, locate,
    /// recovery rungs) with host timestamps measured from `epoch` — the
    /// raw material for Chrome-trace export. Off by default; the per-read
    /// latency histogram is always on regardless.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn enable_host_tracing(&mut self, epoch: HostEpoch, tid: u32, capacity: usize) {
        self.host_log = Some(HostSpanLog::new(epoch, tid, capacity));
    }

    /// Wall-clock per-read latency recorded so far.
    pub fn host_histogram(&self) -> &HostHistogram {
        &self.host_per_read
    }

    /// Drains the host span log: `(spans, dropped)`; empty/zero when
    /// host tracing was never enabled. Draining disables tracing —
    /// callers drain once, when the session retires.
    pub fn take_host_spans(&mut self) -> (Vec<HostSpan>, u64) {
        match self.host_log.take() {
            Some(log) => log.into_parts(),
            None => (Vec::new(), 0),
        }
    }

    #[inline]
    pub(crate) fn host_start(&self) -> u64 {
        self.host_log.as_ref().map_or(0, |log| log.start())
    }

    #[inline]
    pub(crate) fn host_record(&mut self, name: &'static str, start_ns: u64) {
        if let Some(log) = self.host_log.as_mut() {
            log.record(name, start_ns);
        }
    }

    /// `LFM` calls attributed per alignment phase.
    pub fn phase_lfm(&self) -> PhaseLfm {
        self.phase_lfm
    }

    /// The shared platform this session aligns on.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The active configuration.
    pub fn config(&self) -> &PimAlignerConfig {
        self.platform.config()
    }

    /// The mapped index (sub-arrays + software ground truth).
    pub fn mapped(&self) -> &MappedIndex {
        self.platform.mapped()
    }

    /// The indexed reference genome (kept for seed-and-extend windows).
    pub fn reference(&self) -> &DnaSeq {
        self.platform.reference()
    }

    /// Access to the platform internals — the shared mapped index plus
    /// the session's fault injector, DPU and alignment-time ledger — for
    /// composed engines such as
    /// [`seed_and_extend`](crate::seed_and_extend) that issue their own
    /// platform searches.
    pub fn platform_parts(
        &mut self,
    ) -> (&MappedIndex, &mut FaultInjector, &mut Dpu, &mut CycleLedger) {
        (
            self.platform.mapped(),
            &mut self.injector,
            &mut self.dpu,
            &mut self.ledger,
        )
    }

    /// Aligns one read: exact stage first, then — if it fails — the
    /// inexact stage with the configured difference budget.
    ///
    /// With an enabled [`RecoveryPolicy`](crate::RecoveryPolicy) every
    /// candidate locus is verified against the reference before it is
    /// emitted, and failures walk the retry → escalate → host-fallback
    /// ladder (DESIGN.md §8); otherwise this is the raw platform path
    /// with zero verification overhead.
    pub fn align_read(&mut self, read: &DnaSeq) -> AlignmentOutcome {
        let t0 = Instant::now();
        let outcome = self.align_read_inner(read);
        self.host_per_read.record_ns(t0.elapsed().as_nanos() as u64);
        outcome
    }

    /// [`align_read`](AlignSession::align_read) minus the wall-clock
    /// sample, so each entry point — single- or both-strands — records
    /// exactly one per-read latency.
    fn align_read_inner(&mut self, read: &DnaSeq) -> AlignmentOutcome {
        self.align_read_seeded(read, None)
    }

    /// [`align_read_inner`](AlignSession::align_read_inner) with an
    /// optional pre-computed exact-stage result. The batched kernel
    /// path runs the exact phase of a whole read group as one
    /// [`exact_search_batch`] and hands each read its `(interval,
    /// stats)` here; the seed replaces attempt 0's exact pass only —
    /// recovery retries and escalations always recompute on the
    /// platform.
    fn align_read_seeded(
        &mut self,
        read: &DnaSeq,
        seed: Option<(SaInterval, ExactStats)>,
    ) -> AlignmentOutcome {
        self.queries += 1;
        let outcome = if self.config().recovery().is_enabled() {
            self.align_read_recovered(read, seed)
        } else {
            self.raw_align(read, self.config().max_diffs(), LfmAttr::Primary, seed)
        };
        if matches!(outcome, AlignmentOutcome::Exact { .. }) {
            self.exact_hits += 1;
        }
        outcome
    }

    /// Buckets `n` `LFM` calls into the phase counter `attr` selects
    /// (`exact_stage` distinguishes the two primary-pass stages).
    fn note_lfm(&mut self, attr: LfmAttr, exact_stage: bool, n: u64) {
        match attr {
            LfmAttr::Primary if exact_stage => self.phase_lfm.exact += n,
            LfmAttr::Primary => self.phase_lfm.inexact += n,
            LfmAttr::Retry => self.phase_lfm.recovery_retry += n,
            LfmAttr::Escalate => self.phase_lfm.recovery_escalate += n,
        }
    }

    /// One unverified platform pass at difference budget `max_diffs`.
    /// When `seed` is set the exact stage was already executed (by the
    /// batched kernel) and its cycles charged; only the bookkeeping —
    /// `LFM` attribution, locate, the inexact stage — runs here.
    fn raw_align(
        &mut self,
        read: &DnaSeq,
        max_diffs: u8,
        attr: LfmAttr,
        seed: Option<(SaInterval, ExactStats)>,
    ) -> AlignmentOutcome {
        let exhaustive = self.config().exhaustive_inexact();
        let (interval, stats) = match seed {
            Some(seeded) => seeded,
            None => {
                let t_exact = self.dpu.tracer().start(&self.ledger);
                let h_exact = self.host_start();
                let result = exact_search_with(
                    self.platform.mapped(),
                    &mut self.injector,
                    &mut self.dpu,
                    read,
                    self.simd_policy,
                    self.kernel_cache.as_mut(),
                    &mut self.ledger,
                );
                self.dpu
                    .tracer_mut()
                    .record("exact_pass", t_exact, &self.ledger);
                self.host_record("exact_pass", h_exact);
                result
            }
        };
        self.lfm_calls += stats.lfm_calls;
        self.note_lfm(attr, true, stats.lfm_calls);
        if !interval.is_empty() {
            let t_locate = self.dpu.tracer().start(&self.ledger);
            let h_locate = self.host_start();
            let positions = self.platform.mapped().locate(interval, &mut self.ledger);
            self.dpu
                .tracer_mut()
                .record("locate", t_locate, &self.ledger);
            self.host_record("locate", h_locate);
            return AlignmentOutcome::Exact { positions };
        }
        if max_diffs == 0 {
            return AlignmentOutcome::Unmapped;
        }
        let budget = self.edit_budget_for(max_diffs);
        let t_inexact = self.dpu.tracer().start(&self.ledger);
        let h_inexact = self.host_start();
        let hits = {
            let (mapped, injector, dpu, ledger) = self.platform_parts();
            if exhaustive {
                let (hits, istats) = inexact_search(mapped, injector, dpu, read, budget, ledger);
                (hits, istats)
            } else {
                let (hit, istats) = crate::inexact::inexact_search_first(
                    mapped, injector, dpu, read, budget, ledger,
                );
                (hit.into_iter().collect(), istats)
            }
        };
        self.dpu
            .tracer_mut()
            .record("inexact_pass", t_inexact, &self.ledger);
        self.host_record("inexact_pass", h_inexact);
        let (hits, istats) = hits;
        self.lfm_calls += istats.lfm_calls;
        self.note_lfm(attr, false, istats.lfm_calls);
        let Some(best) = hits.first() else {
            return AlignmentOutcome::Unmapped;
        };
        let best_diffs = best.diffs;
        let mut positions = Vec::new();
        for hit in hits.iter().filter(|h| h.diffs == best_diffs) {
            positions.extend(
                self.platform
                    .mapped()
                    .locate(hit.interval, &mut self.ledger),
            );
        }
        positions.sort_unstable();
        positions.dedup();
        AlignmentOutcome::Inexact {
            positions,
            diffs: best_diffs,
        }
    }

    fn edit_budget_for(&self, max_diffs: u8) -> EditBudget {
        if self.config().allows_indels() {
            EditBudget::edits(max_diffs)
        } else {
            EditBudget::substitutions_only(max_diffs)
        }
    }

    /// The verify-and-recover state machine: every rung runs a platform
    /// pass, verifies the candidate loci against the reference, and only
    /// a verified outcome escapes. Rungs, in order: same-budget retries
    /// (faults re-draw), difference-budget escalation, host software
    /// fallback (fault-free by construction). A `seed` (pre-computed
    /// exact-stage result from the batched kernel) feeds attempt 0 only.
    fn align_read_recovered(
        &mut self,
        read: &DnaSeq,
        mut seed: Option<(SaInterval, ExactStats)>,
    ) -> AlignmentOutcome {
        let policy = self.config().recovery();
        let base_z = self.config().max_diffs();
        let faults_possible = self.mapped().faults_active();

        for attempt in 0..=policy.max_retries {
            let attr = if attempt > 0 {
                self.telemetry.retries += 1;
                LfmAttr::Retry
            } else {
                LfmAttr::Primary
            };
            let t_rung = self.dpu.tracer().start(&self.ledger);
            let h_rung = self.host_start();
            let outcome = self.raw_align(read, base_z, attr, seed.take());
            if attempt > 0 {
                self.dpu
                    .tracer_mut()
                    .record("recovery.retry", t_rung, &self.ledger);
                self.host_record("recovery.retry", h_rung);
            }
            if let Some(verified) = self.verified(read, outcome, faults_possible) {
                return verified;
            }
            if !faults_possible {
                // Deterministic platform: a retry cannot change the
                // result, so go straight to the next rung.
                break;
            }
        }
        let ceiling = policy.max_escalated_diffs.max(base_z);
        for z in (base_z + 1)..=ceiling {
            self.telemetry.escalations += 1;
            let t_rung = self.dpu.tracer().start(&self.ledger);
            let h_rung = self.host_start();
            let outcome = self.raw_align(read, z, LfmAttr::Escalate, None);
            self.dpu
                .tracer_mut()
                .record("recovery.escalate", t_rung, &self.ledger);
            self.host_record("recovery.escalate", h_rung);
            if let Some(verified) = self.verified(read, outcome, faults_possible) {
                return verified;
            }
        }
        if policy.host_fallback {
            self.telemetry.host_fallbacks += 1;
            // Host work is uncharged; the zero-length span still marks
            // that the ladder bottomed out here.
            let t_host = self.dpu.tracer().start(&self.ledger);
            let h_host = self.host_start();
            let outcome = self.host_fallback_align(read, ceiling);
            self.dpu
                .tracer_mut()
                .record("recovery.host_fallback", t_host, &self.ledger);
            self.host_record("recovery.host_fallback", h_host);
            return outcome;
        }
        self.telemetry.unrecoverable += 1;
        AlignmentOutcome::Unmapped
    }

    /// Verifies an outcome's positions against the reference. Returns
    /// the outcome (possibly trimmed to its verified positions) when it
    /// can be trusted, `None` when the rung must escalate. An `Unmapped`
    /// result is trusted only when no faults can fire: under an active
    /// campaign a corrupted interval can just as well hide a real hit.
    fn verified(
        &mut self,
        read: &DnaSeq,
        outcome: AlignmentOutcome,
        faults_possible: bool,
    ) -> Option<AlignmentOutcome> {
        match outcome {
            AlignmentOutcome::Exact { positions } => {
                self.telemetry.verifications += 1;
                let total = positions.len();
                let kept: Vec<usize> = positions
                    .into_iter()
                    .filter(|&p| verify_exact(self.platform.reference(), read, p))
                    .collect();
                if kept.len() < total {
                    self.telemetry.verify_failures += 1;
                }
                if kept.is_empty() {
                    None
                } else {
                    Some(AlignmentOutcome::Exact { positions: kept })
                }
            }
            AlignmentOutcome::Inexact { positions, diffs } => {
                self.telemetry.verifications += 1;
                let allow_indels = self.config().allows_indels();
                let total = positions.len();
                let kept: Vec<usize> = positions
                    .into_iter()
                    .filter(|&p| {
                        verify_inexact(self.platform.reference(), read, p, diffs, allow_indels)
                    })
                    .collect();
                if kept.len() < total {
                    self.telemetry.verify_failures += 1;
                }
                if kept.is_empty() {
                    None
                } else {
                    Some(AlignmentOutcome::Inexact {
                        positions: kept,
                        diffs,
                    })
                }
            }
            AlignmentOutcome::Unmapped => {
                if faults_possible {
                    None
                } else {
                    Some(AlignmentOutcome::Unmapped)
                }
            }
        }
    }

    /// The last rung: the host software path — FM-index search over the
    /// fault-free index plus `swalign`-backed verification for inexact
    /// hits. Host work is not charged to the platform ledger (it runs on
    /// the controller, like the SA read-back).
    fn host_fallback_align(&mut self, read: &DnaSeq, max_diffs: u8) -> AlignmentOutcome {
        let exact = self.mapped().index().find(read);
        if !exact.is_empty() {
            return AlignmentOutcome::Exact { positions: exact };
        }
        if max_diffs == 0 {
            return AlignmentOutcome::Unmapped;
        }
        let hits = self
            .mapped()
            .index()
            .find_inexact(read, self.edit_budget_for(max_diffs));
        let Some(best) = hits.iter().map(|&(_, d)| d).min() else {
            return AlignmentOutcome::Unmapped;
        };
        let allow_indels = self.config().allows_indels();
        let mut positions: Vec<usize> = hits
            .iter()
            .filter(|&&(_, d)| d == best)
            .map(|&(p, _)| p)
            .filter(|&p| verify_inexact(self.platform.reference(), read, p, best, allow_indels))
            .collect();
        positions.sort_unstable();
        positions.dedup();
        if positions.is_empty() {
            AlignmentOutcome::Unmapped
        } else {
            AlignmentOutcome::Inexact {
                positions,
                diffs: best,
            }
        }
    }

    /// Aligns a read against both genome strands: the forward
    /// orientation first, then — if unmapped — its reverse complement
    /// (the index covers the forward strand; real samples sequence both,
    /// paper §I: "two twistings, paired strands").
    pub fn align_read_both_strands(&mut self, read: &DnaSeq) -> (AlignmentOutcome, MappedStrand) {
        // One wall-clock sample per *read*, covering both orientations —
        // timing the inner calls separately would double-count the read
        // in the per-read latency histogram.
        let t0 = Instant::now();
        let result = self.align_both_inner(read);
        self.host_per_read.record_ns(t0.elapsed().as_nanos() as u64);
        result
    }

    /// [`align_read_both_strands`](AlignSession::align_read_both_strands)
    /// minus the wall-clock sample (group paths time their reads
    /// themselves).
    fn align_both_inner(&mut self, read: &DnaSeq) -> (AlignmentOutcome, MappedStrand) {
        match self.align_read_inner(read) {
            AlignmentOutcome::Unmapped => match self.align_read_inner(&read.reverse_complement()) {
                // Neither orientation mapped: the read is unmapped as
                // given, so report the forward strand (SAM leaves 0x10
                // clear on unmapped records).
                AlignmentOutcome::Unmapped => (AlignmentOutcome::Unmapped, MappedStrand::Forward),
                hit => (hit, MappedStrand::Reverse),
            },
            hit => (hit, MappedStrand::Forward),
        }
    }

    /// Aligns a contiguous group of reads through the batched kernel
    /// path (DESIGN.md §15). Reads are processed in groups of
    /// `kernel_batch`: each group's initial exact phase runs as one
    /// interleaved [`exact_search_batch`] (shared plane loads, the Pd
    /// stage-queue scheduler), and each read then completes — locate,
    /// inexact stage, recovery ladder, reverse-complement round —
    /// through the single-read machinery, seeded with its batched
    /// exact-stage result.
    ///
    /// `first_token` is the global fault-stream token of `reads[0]`:
    /// read `r` draws from [`MappedIndex::read_injector`] with token
    /// `first_token + r`, so faulted output is a function of the read's
    /// global index alone — invariant to batch width and worker count.
    /// The per-read streams' injection counters are absorbed into the
    /// session's telemetry before returning. With `kernel_batch == 1`
    /// the kernel path is exactly today's single-read call sequence
    /// (the per-read fault streams remain).
    ///
    /// One wall-clock sample per read lands in the per-read histogram:
    /// its own completion time plus an equal share of each batched
    /// phase it took part in.
    pub fn align_group(
        &mut self,
        reads: &[DnaSeq],
        first_token: u64,
        both_strands: bool,
    ) -> Vec<(AlignmentOutcome, MappedStrand)> {
        if reads.is_empty() {
            return Vec::new();
        }
        let faults = self.mapped().faults_active();
        let mut streams: Vec<FaultInjector> = if faults {
            (0..reads.len())
                .map(|r| self.mapped().read_injector(first_token + r as u64))
                .collect()
        } else {
            Vec::new()
        };
        let batch = self.config().kernel_batch();
        let mut results = Vec::with_capacity(reads.len());
        if batch < 2 {
            // The single-read kernel, with per-read fault streams.
            for (r, read) in reads.iter().enumerate() {
                let t0 = Instant::now();
                if faults {
                    std::mem::swap(&mut self.injector, &mut streams[r]);
                }
                let result = if both_strands {
                    self.align_both_inner(read)
                } else {
                    (self.align_read_inner(read), MappedStrand::Forward)
                };
                if faults {
                    std::mem::swap(&mut self.injector, &mut streams[r]);
                }
                self.host_per_read.record_ns(t0.elapsed().as_nanos() as u64);
                results.push(result);
            }
        } else {
            for (g, chunk) in reads.chunks(batch).enumerate() {
                let base = g * batch;
                let chunk_streams = if faults {
                    &mut streams[base..base + chunk.len()]
                } else {
                    &mut []
                };
                results.extend(self.align_chunk_batched(chunk, chunk_streams, both_strands));
            }
        }
        for stream in &streams {
            self.injector.absorb_counters(&stream.counters());
        }
        results
    }

    /// One kernel-batch group: batched forward exact phase, per-read
    /// completion, then a batched reverse-complement round over the
    /// forward misses. `streams` is the group's per-read injector slice
    /// (empty when the campaign is inactive).
    fn align_chunk_batched(
        &mut self,
        chunk: &[DnaSeq],
        streams: &mut [FaultInjector],
        both_strands: bool,
    ) -> Vec<(AlignmentOutcome, MappedStrand)> {
        let n = chunk.len();
        let t_phase = Instant::now();
        let refs: Vec<&DnaSeq> = chunk.iter().collect();
        let seeds = self.exact_batch_phase(&refs, streams);
        // Each read's histogram sample gets an equal share of the
        // batched phase it rode in.
        let mut host_extra = vec![t_phase.elapsed().as_nanos() as u64 / n as u64; n];
        let mut out: Vec<Option<(AlignmentOutcome, MappedStrand)>> = (0..n).map(|_| None).collect();
        let mut completion_ns = vec![0u64; n];
        let mut misses: Vec<usize> = Vec::new();
        for (r, read) in chunk.iter().enumerate() {
            let t0 = Instant::now();
            if !streams.is_empty() {
                std::mem::swap(&mut self.injector, &mut streams[r]);
            }
            let outcome = self.align_read_seeded(read, Some(seeds[r]));
            if !streams.is_empty() {
                std::mem::swap(&mut self.injector, &mut streams[r]);
            }
            completion_ns[r] = t0.elapsed().as_nanos() as u64;
            match outcome {
                AlignmentOutcome::Unmapped if both_strands => misses.push(r),
                AlignmentOutcome::Unmapped => {
                    out[r] = Some((AlignmentOutcome::Unmapped, MappedStrand::Forward))
                }
                hit => out[r] = Some((hit, MappedStrand::Forward)),
            }
        }
        if !misses.is_empty() {
            let t_phase = Instant::now();
            let revs: Vec<DnaSeq> = misses
                .iter()
                .map(|&r| chunk[r].reverse_complement())
                .collect();
            let refs: Vec<&DnaSeq> = revs.iter().collect();
            // Re-index the miss streams 0..m for the batched call; draw
            // order within each stream is unchanged.
            let mut miss_streams: Vec<FaultInjector> = Vec::new();
            if !streams.is_empty() {
                for (k, &r) in misses.iter().enumerate() {
                    miss_streams.push(self.mapped().session_injector());
                    std::mem::swap(&mut miss_streams[k], &mut streams[r]);
                }
            }
            let seeds = self.exact_batch_phase(&refs, &mut miss_streams);
            let share = t_phase.elapsed().as_nanos() as u64 / misses.len() as u64;
            for (k, &r) in misses.iter().enumerate() {
                let t0 = Instant::now();
                if !miss_streams.is_empty() {
                    std::mem::swap(&mut self.injector, &mut miss_streams[k]);
                }
                let outcome = self.align_read_seeded(&revs[k], Some(seeds[k]));
                if !miss_streams.is_empty() {
                    std::mem::swap(&mut self.injector, &mut miss_streams[k]);
                }
                completion_ns[r] += t0.elapsed().as_nanos() as u64;
                host_extra[r] += share;
                out[r] = Some(match outcome {
                    AlignmentOutcome::Unmapped => {
                        (AlignmentOutcome::Unmapped, MappedStrand::Forward)
                    }
                    hit => (hit, MappedStrand::Reverse),
                });
            }
            if !streams.is_empty() {
                for (k, &r) in misses.iter().enumerate() {
                    std::mem::swap(&mut miss_streams[k], &mut streams[r]);
                }
            }
        }
        for r in 0..n {
            self.host_per_read
                .record_ns(completion_ns[r] + host_extra[r]);
        }
        out.into_iter()
            .map(|o| o.expect("every read resolves"))
            .collect()
    }

    /// Runs one batched exact phase and records its span.
    fn exact_batch_phase(
        &mut self,
        reads: &[&DnaSeq],
        streams: &mut [FaultInjector],
    ) -> Vec<(SaInterval, ExactStats)> {
        let t_exact = self.dpu.tracer().start(&self.ledger);
        let h_exact = self.host_start();
        let seeds = exact_search_batch_with(
            self.platform.mapped(),
            streams,
            reads,
            self.simd_policy,
            self.kernel_cache.as_mut(),
            &mut self.ledger,
        );
        self.dpu
            .tracer_mut()
            .record("exact_batch", t_exact, &self.ledger);
        self.host_record("exact_batch", h_exact);
        seeds
    }

    /// Aligns a batch of reads and produces the performance report, or
    /// a typed error for an empty batch.
    pub fn try_align_batch(&mut self, reads: &[DnaSeq]) -> Result<BatchResult, AlignError> {
        if reads.is_empty() {
            return Err(AlignError::EmptyBatch);
        }
        let q0 = self.queries;
        let e0 = self.exact_hits;
        let outcomes: Vec<AlignmentOutcome> = reads.iter().map(|r| self.align_read(r)).collect();
        let report = self.report();
        let exact_fraction = (self.exact_hits - e0) as f64 / (self.queries - q0) as f64;
        Ok(BatchResult {
            outcomes,
            report,
            exact_fraction,
        })
    }

    /// Aligns a batch of reads and produces the performance report.
    ///
    /// # Panics
    ///
    /// Panics if `reads` is empty (use
    /// [`try_align_batch`](PimAligner::try_align_batch) for a typed
    /// error).
    pub fn align_batch(&mut self, reads: &[DnaSeq]) -> BatchResult {
        self.try_align_batch(reads)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The cumulative performance report for all reads aligned so far,
    /// including fault telemetry.
    ///
    /// # Panics
    ///
    /// Panics if no read has been aligned yet.
    pub fn report(&self) -> PerfReport {
        let mut report =
            PerfReport::from_batch(self.config(), &self.ledger, self.queries, self.lfm_calls);
        report.faults = self.fault_telemetry();
        report.breakdown.lfm_by_phase = self.phase_lfm;
        report.breakdown.index_build_cycles = self.mapped().mapping_ledger().total_busy_cycles();
        report.breakdown.attach_spans(self.dpu.tracer());
        report.host.per_read = self.host_per_read.clone();
        report
    }

    /// Combined fault telemetry: the session's injection counters plus
    /// the platform's one-time build counters (stuck cells planted while
    /// mapping) plus the recovery path's verification counters.
    pub fn fault_telemetry(&self) -> FaultTelemetry {
        let mut counters = self.injector.counters();
        counters.merge(&self.mapped().build_fault_counters());
        FaultTelemetry {
            stuck_cells: counters.stuck_cells,
            xnor_bit_flips: counters.xnor_bit_flips,
            transient_row_faults: counters.transient_row_faults,
            carry_faults: counters.carry_faults,
            ..self.telemetry
        }
    }

    /// This session's own telemetry only — injection counters from its
    /// fault stream plus its recovery counters, *without* the platform's
    /// one-time build counters. The parallel engine merges these across
    /// workers and adds the build counters exactly once.
    pub(crate) fn session_telemetry(&self) -> FaultTelemetry {
        let counters = self.injector.counters();
        FaultTelemetry {
            stuck_cells: counters.stuck_cells,
            xnor_bit_flips: counters.xnor_bit_flips,
            transient_row_faults: counters.transient_row_faults,
            carry_faults: counters.carry_faults,
            ..self.telemetry
        }
    }

    /// Cumulative `LFM` invocations.
    pub fn lfm_calls(&self) -> u64 {
        self.lfm_calls
    }

    /// Reads aligned so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Reads resolved by the exact stage so far.
    pub fn exact_hits(&self) -> u64 {
        self.exact_hits
    }

    /// The alignment-time ledger (cycles and energy of every query so
    /// far; the one-time mapping cost is kept separately in
    /// [`MappedIndex::mapping_ledger`]).
    pub fn ledger(&self) -> &CycleLedger {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmindex::EditBudget;
    use readsim::{genome, ReadSimulator, SimProfile};

    #[test]
    fn exact_and_inexact_stages_cooperate() {
        let reference = genome::uniform(5_000, 31);
        let mut aligner = PimAligner::new(
            &reference,
            PimAlignerConfig::baseline().with_exhaustive_inexact(true),
        );
        // Clean read: exact.
        let clean = reference.subseq(1_000..1_050);
        assert!(matches!(
            aligner.align_read(&clean),
            AlignmentOutcome::Exact { .. }
        ));
        // One substitution: inexact with diffs = 1.
        let mut bases = reference.subseq(2_000..2_050).into_bases();
        bases[25] = bioseq::Base::from_rank((bases[25].rank() + 2) % 4);
        let mutated = DnaSeq::from_bases(bases);
        match aligner.align_read(&mutated) {
            AlignmentOutcome::Inexact { positions, diffs } => {
                assert_eq!(diffs, 1);
                assert!(positions.contains(&2_000));
            }
            other => panic!("expected inexact hit, got {other:?}"),
        }
    }

    #[test]
    fn unmappable_read_reported() {
        let reference: DnaSeq = "AAAAAAAAAAAAAAAAAAAA".parse().unwrap();
        let mut aligner = PimAligner::new(
            &reference,
            PimAlignerConfig::baseline()
                .with_max_diffs(1)
                .with_indels(false),
        );
        let read: DnaSeq = "GGGGGGGG".parse().unwrap();
        assert_eq!(aligner.align_read(&read), AlignmentOutcome::Unmapped);
    }

    #[test]
    fn platform_positions_match_software_oracle() {
        let reference = genome::uniform(8_000, 32);
        let mut aligner = PimAligner::new(
            &reference,
            PimAlignerConfig::baseline()
                .with_max_diffs(1)
                .with_exhaustive_inexact(true),
        );
        let oracle = aligner.mapped().index().clone();
        let profile = SimProfile::paper_defaults()
            .read_count(40)
            .read_len(50)
            .forward_only();
        let sim = ReadSimulator::new(profile, 33).simulate(&reference);
        for read in &sim.reads {
            let outcome = aligner.align_read(&read.seq);
            match &outcome {
                AlignmentOutcome::Exact { positions } => {
                    let sw = oracle.find(&read.seq);
                    assert_eq!(positions, &sw);
                }
                AlignmentOutcome::Inexact { positions, diffs } => {
                    let sw = oracle.find_inexact(&read.seq, EditBudget::edits(1));
                    let best = sw.iter().map(|(_, d)| *d).min().unwrap();
                    assert_eq!(*diffs, best);
                    let sw_best: Vec<usize> = sw
                        .iter()
                        .filter(|(_, d)| *d == best)
                        .map(|(p, _)| *p)
                        .collect();
                    for p in positions {
                        assert!(sw_best.contains(p));
                    }
                }
                AlignmentOutcome::Unmapped => {
                    assert!(oracle
                        .find_inexact(&read.seq, EditBudget::edits(1))
                        .is_empty());
                }
            }
        }
    }

    #[test]
    fn batch_reports_exact_fraction() {
        let reference = genome::uniform(20_000, 34);
        let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline());
        let profile = SimProfile::paper_defaults()
            .read_count(60)
            .read_len(60)
            .forward_only();
        let sim = ReadSimulator::new(profile, 35).simulate(&reference);
        let reads: Vec<DnaSeq> = sim.reads.iter().map(|r| r.seq.clone()).collect();
        let result = aligner.align_batch(&reads);
        assert_eq!(result.outcomes.len(), 60);
        // Paper §III: most reads align exactly in stage 1 (0.2 % error,
        // 0.1 % variation ⇒ the bulk of 60-bp reads are clean).
        assert!(
            result.exact_fraction > 0.5,
            "exact fraction {:.2}",
            result.exact_fraction
        );
        assert!(result.report.throughput_qps > 0.0);
    }

    #[test]
    fn pipelined_config_beats_baseline_throughput() {
        let reference = genome::uniform(4_000, 36);
        let reads: Vec<DnaSeq> = (0..20)
            .map(|i| reference.subseq(i * 100..i * 100 + 50))
            .collect();
        let mut n = PimAligner::new(&reference, PimAlignerConfig::baseline());
        let mut p = PimAligner::new(&reference, PimAlignerConfig::pipelined());
        let rn = n.align_batch(&reads).report;
        let rp = p.align_batch(&reads).report;
        let gain = rp.throughput_qps / rn.throughput_qps;
        assert!((1.25..1.60).contains(&gain), "pipeline gain {gain:.3}");
    }

    #[test]
    fn both_strands_double_miss_reports_forward() {
        // A read that maps on neither strand is unmapped *as given*: the
        // strand must come back Forward (SAM leaves 0x10 clear on
        // unmapped records), not Reverse as the pre-fix code claimed.
        let reference: DnaSeq = "AAAAAAAAAAAAAAAAAAAA".parse().unwrap();
        let mut aligner = PimAligner::new(
            &reference,
            PimAlignerConfig::baseline()
                .with_max_diffs(1)
                .with_indels(false),
        );
        let read: DnaSeq = "GGGGGGGG".parse().unwrap();
        assert_eq!(
            aligner.align_read_both_strands(&read),
            (AlignmentOutcome::Unmapped, MappedStrand::Forward)
        );
        // A reverse-complement hit still reports Reverse.
        let reference = genome::uniform(4_000, 48);
        let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline());
        let rev = reference.subseq(1_000..1_060).reverse_complement();
        let (outcome, strand) = aligner.align_read_both_strands(&rev);
        assert!(outcome.is_mapped());
        assert_eq!(strand, MappedStrand::Reverse);
    }

    #[test]
    #[should_panic(expected = "at least one read")]
    fn empty_batch_panics() {
        let reference = genome::uniform(1_000, 37);
        let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline());
        let _ = aligner.align_batch(&[]);
    }

    #[test]
    fn empty_batch_yields_typed_error() {
        let reference = genome::uniform(1_000, 38);
        let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline());
        assert_eq!(
            aligner.try_align_batch(&[]).unwrap_err(),
            crate::error::AlignError::EmptyBatch
        );
    }

    #[test]
    fn recovery_is_transparent_without_faults() {
        use crate::config::RecoveryPolicy;
        let reference = genome::uniform(6_000, 39);
        let reads: Vec<DnaSeq> = (0..12)
            .map(|i| reference.subseq(i * 400..i * 400 + 60))
            .collect();
        let mut raw = PimAligner::new(&reference, PimAlignerConfig::baseline());
        let mut recovering = PimAligner::new(
            &reference,
            PimAlignerConfig::baseline().with_recovery(RecoveryPolicy::standard()),
        );
        let raw_out = raw.align_batch(&reads);
        let rec_out = recovering.align_batch(&reads);
        assert_eq!(raw_out.outcomes, rec_out.outcomes);
        let t = rec_out.report.faults;
        assert_eq!(t.injected_total(), 0);
        assert_eq!(t.verify_failures, 0);
        assert_eq!(
            t.retries + t.escalations + t.host_fallbacks + t.unrecoverable,
            0
        );
        assert_eq!(t.verifications, reads.len() as u64);
        assert!(raw_out.report.faults.is_quiet());
    }

    #[test]
    fn recovery_survives_a_hostile_campaign() {
        use crate::config::RecoveryPolicy;
        use mram::faults::{FaultCampaign, FaultModel};
        let reference = genome::uniform(30_000, 40);
        let reads: Vec<DnaSeq> = (0..20)
            .map(|i| reference.subseq(i * 1_400..i * 1_400 + 80))
            .collect();
        // A brutal campaign: every fault class firing hard.
        let campaign = FaultCampaign::seeded(41)
            .with_model(FaultModel::with_probabilities(0.01, 0.0))
            .with_transient_row_rate(0.05)
            .with_carry_fault_prob(0.02)
            .with_stuck_at_rate(1e-4);
        let mut aligner = PimAligner::new(
            &reference,
            PimAlignerConfig::baseline()
                .with_fault_campaign(campaign)
                .with_recovery(RecoveryPolicy::standard()),
        );
        for (i, read) in reads.iter().enumerate() {
            let outcome = aligner.align_read(read);
            let positions = outcome.positions().expect("read must map");
            assert!(
                positions.contains(&(i * 1_400)),
                "read {i} placed at {positions:?}"
            );
        }
        let t = aligner.fault_telemetry();
        assert!(t.injected_total() > 0, "campaign must inject: {t:?}");
        assert!(
            t.retries + t.host_fallbacks > 0,
            "recovery must have worked: {t:?}"
        );
    }
}
