//! Correlated data partitioning and mapping (paper §V, Fig. 6).
//!
//! "Given a BWT index range, the accessed memory region of MT and BWT
//! could be readily predicted and computation could be localized if we
//! store such correlated region into the same memory sub-array." Each
//! sub-array holds 256 consecutive BWT buckets (rows) *and* the 256
//! marker sets for exactly those buckets (vertical columns), so every
//! `LFM` is fully local: `XNOR_Match`, marker `MEM` and (method-I)
//! `IM_ADD` all happen inside one sub-array.

use std::sync::atomic::{AtomicU64, Ordering};

use bioseq::{Base, DnaSeq};
use fmindex::{FmIndex, SaInterval};
use mram::array::ArrayModel;
use mram::faults::FaultCampaign;
use pimsim::costs::LogicalOp;
use pimsim::pipeline::{PipelineParams, PipelineSim};
use pimsim::{
    CycleLedger, FaultCounters, FaultInjector, KernelCache, LfmBatch, MatchMask, SimdPolicy,
    SubArray, SubArrayLayout,
};

use crate::config::{AddMethod, PimAlignerConfig};

/// Process-wide count of [`MappedIndex::build`] invocations. The
/// shared-platform contract — "the index is mapped into sub-arrays
/// *once* and then queried in place" — is asserted against this counter
/// by the integration tests; it has no runtime role.
static BUILD_COUNT: AtomicU64 = AtomicU64::new(0);

/// BWT bases (= Occ buckets × 128) one sub-array covers.
const BASES_PER_SUBARRAY: usize = 256 * SubArrayLayout::BASES_PER_ROW;

/// One request of a batched LFM step: read stream `stream` asks for
/// `LFM(nt, id)` (Algorithm 1 line 9). See [`MappedIndex::lfm_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LfmRequest {
    /// Read stream the request belongs to — indexes the caller's
    /// per-read injector table and names the pipeline stream.
    pub stream: usize,
    /// Query base.
    pub nt: Base,
    /// FM-index position (`0 ..= text_len`).
    pub id: usize,
}

/// Caller-owned scratch for [`MappedIndex::lfm_batch_into`]: the
/// per-sub-array [`LfmBatch`] pool, the request locator table and the
/// stage-queue scheduler, all recycled across calls so the hot batched
/// path allocates nothing per step once warm.
#[derive(Debug)]
pub struct LfmBatchScratch {
    /// Sub-array key of each pool entry; only the first `active` are
    /// live this call.
    keys: Vec<usize>,
    /// One reusable batch per touched sub-array, parallel to `keys`.
    pool: Vec<LfmBatch>,
    /// Live entry count this call.
    active: usize,
    /// Per request: `(pool slot, request index)`, or `(u32::MAX, 0)`
    /// for a boundary checkpoint request.
    locator: Vec<(u32, u32)>,
    /// The Pd stage-queue scheduler, reset each call.
    sim: PipelineSim,
}

impl LfmBatchScratch {
    /// Fresh, empty scratch.
    pub fn new() -> LfmBatchScratch {
        LfmBatchScratch {
            keys: Vec::new(),
            pool: Vec::new(),
            active: 0,
            locator: Vec::new(),
            sim: PipelineSim::new(1, PipelineParams::default()),
        }
    }

    /// Rewinds for a new call at degree `pd`.
    fn begin(&mut self, pd: usize, params: PipelineParams) {
        self.active = 0;
        self.locator.clear();
        self.sim.reset(pd, params);
    }

    /// The pool slot batching sub-array `s`, reusing a retired entry's
    /// capacity when possible. Linear scan: a call touches at most a
    /// handful of sub-arrays.
    fn slot_for(&mut self, s: usize) -> usize {
        match self.keys[..self.active].iter().position(|&k| k == s) {
            Some(t) => t,
            None => {
                if self.active == self.pool.len() {
                    self.pool.push(LfmBatch::new());
                    self.keys.push(s);
                } else {
                    self.pool[self.active].clear();
                    self.keys[self.active] = s;
                }
                self.active += 1;
                self.active - 1
            }
        }
    }
}

impl Default for LfmBatchScratch {
    fn default() -> LfmBatchScratch {
        LfmBatchScratch::new()
    }
}

/// The FM-index tables distributed across computational sub-arrays.
///
/// Holds the software [`FmIndex`] (the ground truth and the SA source)
/// plus the loaded sub-arrays. The one-time pre-computation/mapping cost
/// is recorded in its own ledger, separate from alignment-time work.
///
/// A built index is **immutable**: every query method takes `&self`, so
/// one index can be shared (behind an `Arc`, see
/// [`Platform`](crate::Platform)) by any number of concurrent alignment
/// sessions. The only mutable alignment-time state — the seeded
/// fault-injection stream — lives in the per-session
/// [`FaultInjector`] that callers thread into [`MappedIndex::lfm`].
///
/// # Examples
///
/// ```
/// use bioseq::DnaSeq;
/// use pim_aligner::{MappedIndex, PimAlignerConfig};
///
/// # fn main() -> Result<(), bioseq::ParseSeqError> {
/// let reference: DnaSeq = "TGCTA".parse()?;
/// let mapped = MappedIndex::build(&reference, &PimAlignerConfig::baseline());
/// assert_eq!(mapped.subarray_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MappedIndex {
    index: FmIndex,
    subarrays: Vec<SubArray>,
    /// Mirror sub-arrays for method-II (empty for method-I).
    mirrors: Vec<SubArray>,
    method: AddMethod,
    /// Parallelism degree for the batched path's stage-queue scheduler.
    pd: usize,
    /// Stage timing for the batched path's stage-queue scheduler.
    pipeline: PipelineParams,
    mapping_ledger: CycleLedger,
    /// The fault campaign the index was built under; sessions derive
    /// their alignment-time injectors from it.
    campaign: FaultCampaign,
    /// Faults frozen into the arrays at mapping time (stuck-at cells);
    /// counted once per build, not per session.
    build_counters: FaultCounters,
}

impl MappedIndex {
    /// Builds the FM-index over `reference` (Fig. 2 pre-computation) and
    /// maps BWT + MT into sub-arrays (Fig. 6a partitioning). The bucket
    /// width is fixed at 128, one word line.
    pub fn build(reference: &DnaSeq, config: &PimAlignerConfig) -> MappedIndex {
        let index = FmIndex::builder()
            .bucket_width(SubArrayLayout::BASES_PER_ROW)
            .build(reference);
        MappedIndex::from_index(index, config)
    }

    /// Maps an already-built FM-index — e.g. one deserialised from a
    /// [`fmindex::io`] artifact — into sub-arrays, skipping the index
    /// construction itself. The mapping (table loads, mirrors, stuck-cell
    /// injection) is identical to [`MappedIndex::build`], so a loaded
    /// index produces the same sub-array state and mapping ledger as an
    /// in-process build of the same index.
    ///
    /// # Panics
    ///
    /// Panics if the index's bucket width is not 128 (one sub-array word
    /// line) — the mapping's bucket-per-row correspondence requires it.
    pub fn from_index(index: FmIndex, config: &PimAlignerConfig) -> MappedIndex {
        BUILD_COUNT.fetch_add(1, Ordering::SeqCst);
        assert_eq!(
            index.bucket_width(),
            SubArrayLayout::BASES_PER_ROW,
            "sub-array mapping requires one Occ bucket per word line"
        );
        let mut ledger = CycleLedger::new();
        let model = *config.model();
        let n = index.text_len();
        let subarray_count = n.div_ceil(BASES_PER_SUBARRAY);
        let mut subarrays = Vec::with_capacity(subarray_count);
        let (packed, _sentinel) = index.bwt().to_packed();
        // Marker buckets include the final checkpoint at n/d, one past the
        // last (possibly partial) BWT row.
        let total_marker_buckets = n / SubArrayLayout::BASES_PER_ROW + 1;
        for s in 0..subarray_count {
            let mut sa = SubArray::new(model);
            sa.load_cref_rows(&mut ledger);
            let base_start = s * BASES_PER_SUBARRAY;
            let bwt_buckets = (n - base_start)
                .div_ceil(SubArrayLayout::BASES_PER_ROW)
                .min(256);
            for lb in 0..bwt_buckets {
                let start = base_start + lb * SubArrayLayout::BASES_PER_ROW;
                let count = SubArrayLayout::BASES_PER_ROW.min(n - start);
                let codes = packed.codes(start, count);
                sa.load_bwt_row(lb, &codes, &mut ledger);
            }
            let marker_buckets = (total_marker_buckets - s * 256).min(256);
            for lb in 0..marker_buckets {
                let bucket = s * 256 + lb;
                for base in Base::ALL {
                    sa.store_marker(
                        lb,
                        base,
                        index.marker_table().marker(base, bucket),
                        &mut ledger,
                    );
                }
            }
            subarrays.push(sa);
        }
        let mut mirrors = match config.method() {
            AddMethod::InPlace => Vec::new(),
            AddMethod::Mirrored => {
                // Method-II: "essentially duplicates the number of
                // sub-arrays, where only in-memory addition computation is
                // transferred to a second sub-array".
                let mut mirrors = subarrays.clone();
                for (src, dst) in subarrays.iter().zip(mirrors.iter_mut()) {
                    // Account the duplication as row copies.
                    for row in 0..model.geometry().rows {
                        src.copy_row_to(row, dst, row, &mut ledger);
                    }
                }
                mirrors
            }
        };
        // Stuck-at injection: each physical array (primaries and
        // mirrors alike) draws its own defect plan after its tables are
        // written. The data zones are write-once, so a post-load force
        // is behaviourally a stuck cell. The build-time injector is
        // consumed here; alignment-time fault streams are per-session
        // (see [`MappedIndex::session_injector`]).
        let mut injector = FaultInjector::new(config.fault_campaign());
        let cols = model.geometry().cols;
        for sa in subarrays.iter_mut().chain(mirrors.iter_mut()) {
            for (row, col, value) in injector.stuck_cell_plan(sa.data_zone_rows(), cols) {
                sa.force_bit(row, col, value);
            }
        }
        MappedIndex {
            index,
            subarrays,
            mirrors,
            method: config.method(),
            pd: config.pd(),
            pipeline: config.pipeline(),
            mapping_ledger: ledger,
            campaign: config.fault_campaign(),
            build_counters: injector.counters(),
        }
    }

    /// Process-wide number of [`MappedIndex::build`] invocations so far
    /// (monotone; used by tests asserting the index is built exactly
    /// once per run regardless of worker-thread count).
    pub fn build_count() -> u64 {
        BUILD_COUNT.load(Ordering::SeqCst)
    }

    /// The underlying software index (ground truth, SA storage).
    pub fn index(&self) -> &FmIndex {
        &self.index
    }

    /// Number of primary computational sub-arrays used.
    pub fn subarray_count(&self) -> usize {
        self.subarrays.len()
    }

    /// Total sub-arrays including method-II mirrors.
    pub fn total_subarrays(&self) -> usize {
        self.subarrays.len() + self.mirrors.len()
    }

    /// The one-time mapping cost ledger (pre-computation, excluded from
    /// alignment-time figures as in the paper: "it is just a one-step
    /// computation").
    pub fn mapping_ledger(&self) -> &CycleLedger {
        &self.mapping_ledger
    }

    /// Faults frozen into the arrays when the tables were mapped
    /// (stuck-at cells). One-time build state: telemetry layers count
    /// these once per platform, never per session.
    pub fn build_fault_counters(&self) -> FaultCounters {
        self.build_counters
    }

    /// The fault campaign the index was built under.
    pub fn campaign(&self) -> FaultCampaign {
        self.campaign
    }

    /// A fresh alignment-time fault injector seeded from the campaign
    /// (the stream a sequential session replays).
    pub fn session_injector(&self) -> FaultInjector {
        FaultInjector::new(self.campaign)
    }

    /// A fresh alignment-time injector for parallel worker `worker`:
    /// worker 0 replays the sequential stream bit-identically, higher
    /// workers draw decorrelated sub-seeds
    /// ([`FaultCampaign::for_worker`]).
    pub fn worker_injector(&self, worker: u64) -> FaultInjector {
        FaultInjector::new(self.campaign.for_worker(worker))
    }

    /// A fresh alignment-time injector for globally indexed read
    /// `token`: the batched kernel gives every read its own
    /// decorrelated fault stream so faulted output is invariant to
    /// batch width and worker count ([`FaultCampaign::for_read`]).
    pub fn read_injector(&self, token: u64) -> FaultInjector {
        FaultInjector::new(self.campaign.for_read(token))
    }

    /// `true` when the fault campaign can inject faults.
    pub fn faults_active(&self) -> bool {
        self.campaign.is_active()
    }

    /// Executes the hardware `LFM(MT, nt, id)` procedure (Algorithm 1
    /// line 9) entirely on the mapped sub-arrays:
    ///
    /// 1. `XNOR_Match` of the bucket row against `CRef[nt]`;
    /// 2. DPU popcount of matches before `id` within the bucket;
    /// 3. `MEM` read of the bucket's marker for `nt`;
    /// 4. `IM_ADD` of marker + count (in the mirror for method-II,
    ///    charging the operand transfer).
    ///
    /// The index itself is read-only; the session's `injector` supplies
    /// the alignment-time fault stream (transient bursts, sense
    /// misreads, carry kills) and accumulates the injection counters.
    ///
    /// # Panics
    ///
    /// Panics if `id` exceeds the indexed text length.
    pub fn lfm(
        &self,
        nt: Base,
        id: usize,
        injector: &mut FaultInjector,
        ledger: &mut CycleLedger,
    ) -> u32 {
        self.lfm_with(nt, id, injector, SimdPolicy::Scalar, None, ledger)
    }

    /// [`MappedIndex::lfm`] under a SIMD policy and an optional
    /// rank-checkpoint cache. The cache memoizes the compare stage —
    /// `(sub-array, bucket, nt) → (post-sentinel match mask, marker)`,
    /// both pure functions of the immutable index — so a hit skips the
    /// plane load and the 32-row marker gather on the host while
    /// charging the platform the exact op sequence a recompute pays
    /// (`XNOR_Match`, popcount, marker `MEM`, in that order). Results,
    /// every simulated counter and the seeded fault stream are
    /// byte-identical across policies, pinned by test.
    ///
    /// # Panics
    ///
    /// Panics if `id` exceeds the indexed text length.
    pub fn lfm_with(
        &self,
        nt: Base,
        id: usize,
        injector: &mut FaultInjector,
        policy: SimdPolicy,
        cache: Option<&mut KernelCache>,
        ledger: &mut CycleLedger,
    ) -> u32 {
        assert!(id <= self.index.text_len(), "LFM index {id} out of range");
        let bucket = id / SubArrayLayout::BASES_PER_ROW;
        let within = id % SubArrayLayout::BASES_PER_ROW;
        let s = bucket / 256;
        let lb = bucket % 256;
        // `id` may equal the text length, landing exactly on a bucket
        // boundary past the last row; the count contribution is then zero
        // and the marker row is the final checkpoint.
        let (count, marker) = if s >= self.subarrays.len() {
            // Boundary bucket holds no BWT bases; its marker equals the
            // final checkpoint stored in the last sub-array's next column.
            // The builder always allocates the checkpoint bucket because
            // buckets() = n/d + 1 columns fit in 256 only when the text
            // fills sub-arrays exactly; fall back to the software marker
            // (a local MEM read in hardware).
            LogicalOp::MarkerRead.charge(self.subarrays[0].model(), ledger);
            // Heatmap: the checkpoint read activates the final primary
            // sub-array (where the last marker column lives).
            ledger.note_zone_many(self.subarrays.len() - 1, 1);
            (0, self.index.marker_table().marker(nt, bucket))
        } else {
            let sub = &self.subarrays[s];
            let cached = cache
                .as_deref()
                .and_then(|c| c.lookup(s as u32, lb, nt.rank()));
            let (mut matches, marker) = match cached {
                Some((words, marker)) => {
                    // Host work skipped; the platform is billed the
                    // identical charge sequence the recompute pays below
                    // (`XNOR_Match` → popcount → marker `MEM`).
                    ledger.note_kernel_cache_hit();
                    LogicalOp::XnorMatch.charge(sub.model(), ledger);
                    LogicalOp::Popcount.charge(sub.model(), ledger);
                    LogicalOp::MarkerRead.charge(sub.model(), ledger);
                    (MatchMask(words), marker)
                }
                None => {
                    // Stack-allocated packed match mask: the whole
                    // compare stage runs on [u64; 2] words, no heap
                    // traffic per LFM.
                    let mut matches = sub.xnor_match_with(lb, nt, policy, ledger);
                    // The 2-bit code space cannot represent `$`, so the
                    // sentinel cell is stored with a placeholder code
                    // (T). The DPU knows the sentinel's position and
                    // masks it out of the match vector before counting.
                    let sentinel = self.index.bwt().sentinel_pos();
                    if sentinel / SubArrayLayout::BASES_PER_ROW == bucket {
                        matches.set(sentinel % SubArrayLayout::BASES_PER_ROW, false);
                    }
                    LogicalOp::Popcount.charge(sub.model(), ledger);
                    let marker = sub.read_marker(lb, nt, ledger);
                    if let Some(c) = cache {
                        ledger.note_kernel_cache_miss();
                        if c.insert(s as u32, lb, nt.rank(), matches.0, marker) {
                            ledger.note_kernel_cache_eviction();
                        }
                    }
                    (matches, marker)
                }
            };
            // Heatmap: the XNOR match and the marker read each activate
            // sub-array `s` (the popcount runs in the DPU, not the
            // array).
            ledger.note_zone_many(s, 2);
            // Fault injection (DESIGN.md §8): a whole-row transient
            // burst may corrupt this read, and each match bit may
            // additionally misread with the campaign's XNOR probability.
            // The mask APIs draw the identical RNG stream as the boolean
            // ones, so seeded replays are unchanged by the packing —
            // and always corrupt this request's private copy, never the
            // cached entry.
            if injector.is_active() {
                injector.transient_row_mask(&mut matches);
                injector.corrupt_match_mask(&mut matches, within);
            }
            let count = matches.count_prefix_with(within, policy);
            (count, marker)
        };
        let carry_fault = injector.carry_fault_bit();
        let sum = match self.method {
            AddMethod::InPlace => {
                let idx = s.min(self.subarrays.len() - 1);
                let sub = &self.subarrays[idx];
                // Heatmap: the in-place add activates the same zone.
                ledger.note_zone_many(idx, 1);
                match carry_fault {
                    Some(k) => sub.im_add32_shared_faulty(marker, count, k, ledger),
                    None => sub.im_add32_shared(marker, count, ledger),
                }
            }
            AddMethod::Mirrored => {
                // Operand transfer into the mirror's write port.
                let idx = s.min(self.mirrors.len() - 1);
                let mirror = &self.mirrors[idx];
                LogicalOp::RowWrite.charge_many(mirror.model(), ledger, 7);
                // Heatmap: mirror zones are indexed after the primaries
                // (7 operand-transfer writes + the add = 8 activations).
                ledger.note_zone_many(self.subarrays.len() + idx, 8);
                match carry_fault {
                    Some(k) => mirror.im_add32_shared_faulty(marker, count, k, ledger),
                    None => mirror.im_add32_shared(marker, count, ledger),
                }
            }
        };
        // The DPU's index registers saturate at N: a sensing fault can
        // inflate the count past the table range, and the controller
        // clamps rather than address outside the mapped region. A no-op
        // under ideal sensing.
        sum.min(self.index.text_len() as u32)
    }

    /// Executes one interleaved batch of `LFM` requests — the batched
    /// kernel path (DESIGN.md §15). Requests are partitioned per
    /// sub-array into [`LfmBatch`]es whose shared compare stage
    /// (`XNOR_Match` plane load, sentinel masking, marker read) is
    /// charged once per distinct `(bucket, nt)` group instead of once
    /// per request; the per-request stages (popcount, fault sensing,
    /// `IM_ADD`) then run in request order, bit-identical to the same
    /// sequence of single [`MappedIndex::lfm`] calls. Issue timing
    /// flows through a [`PipelineSim`] stage-queue scheduler (`Pd` from
    /// the config) whose counters are recorded on `ledger`.
    ///
    /// `injectors` is indexed by request `stream`; pass an empty slice
    /// when the fault campaign is inactive. Per-stream draw order is
    /// request order, so push a read's low request before its high
    /// request to replay the single-read injector stream exactly.
    ///
    /// # Panics
    ///
    /// Panics if any `id` exceeds the indexed text length.
    pub fn lfm_batch(
        &self,
        requests: &[LfmRequest],
        injectors: &mut [FaultInjector],
        ledger: &mut CycleLedger,
    ) -> Vec<u32> {
        let mut scratch = LfmBatchScratch::new();
        let mut sums = Vec::new();
        self.lfm_batch_into(requests, injectors, ledger, &mut scratch, &mut sums);
        sums
    }

    /// [`MappedIndex::lfm_batch`] with caller-owned scratch: `scratch`
    /// keeps the partition tables, group masks and scheduler between
    /// calls (no per-call allocation on the hot path) and `sums` is
    /// cleared then filled with one result per request. Lock-step
    /// drivers ([`crate::exact::exact_search_batch`]) reuse one scratch
    /// across every step of a batch.
    pub fn lfm_batch_into(
        &self,
        requests: &[LfmRequest],
        injectors: &mut [FaultInjector],
        ledger: &mut CycleLedger,
        scratch: &mut LfmBatchScratch,
        sums: &mut Vec<u32>,
    ) {
        self.lfm_batch_into_with(
            requests,
            injectors,
            SimdPolicy::Scalar,
            None,
            ledger,
            scratch,
            sums,
        )
    }

    /// [`MappedIndex::lfm_batch_into`] under a SIMD policy and an
    /// optional rank-checkpoint cache (see [`MappedIndex::lfm_with`]):
    /// the shared compare stage consults/feeds the cache per
    /// `(sub-array, bucket, nt)` group and the per-request popcounts
    /// dispatch to the policy's lane. Sums, charges and fault draws are
    /// byte-identical across policies and cache states.
    #[allow(clippy::too_many_arguments)]
    pub fn lfm_batch_into_with(
        &self,
        requests: &[LfmRequest],
        injectors: &mut [FaultInjector],
        policy: SimdPolicy,
        mut cache: Option<&mut KernelCache>,
        ledger: &mut CycleLedger,
        scratch: &mut LfmBatchScratch,
        sums: &mut Vec<u32>,
    ) {
        sums.clear();
        if requests.is_empty() {
            return;
        }
        let text_len = self.index.text_len();
        let model = self.subarrays[0].model();
        scratch.begin(self.pd, self.pipeline);
        // Partition into one batch per touched sub-array; boundary
        // requests (the final checkpoint bucket past the mapped rows)
        // stay unbatched. BASES_PER_ROW and the 256-bucket column count
        // are powers of two, so the bucket math is shift-and-mask.
        let mut boundary = 0u64;
        for req in requests {
            assert!(req.id <= text_len, "LFM index {} out of range", req.id);
            let bucket = req.id / SubArrayLayout::BASES_PER_ROW;
            let s = bucket / 256;
            if s >= self.subarrays.len() {
                boundary += 1;
                scratch.locator.push((u32::MAX, 0));
                continue;
            }
            let slot = scratch.slot_for(s);
            let idx = scratch.pool[slot].push(
                req.stream,
                bucket % 256,
                req.nt,
                req.id % SubArrayLayout::BASES_PER_ROW,
            );
            scratch.locator.push((slot as u32, idx as u32));
        }
        // Boundary checkpoint reads land in the final primary sub-array:
        // one marker read each, plus that request's add activation.
        if boundary > 0 {
            LogicalOp::MarkerRead.charge_many(model, ledger, boundary);
            ledger.note_zone_many(self.subarrays.len() - 1, boundary);
            match self.method {
                AddMethod::InPlace => {
                    ledger.note_zone_many(self.subarrays.len() - 1, boundary);
                }
                AddMethod::Mirrored => {
                    let idx = self.mirrors.len() - 1;
                    LogicalOp::RowWrite.charge_many(model, ledger, 7 * boundary);
                    ledger.note_zone_many(self.subarrays.len() + idx, 8 * boundary);
                }
            }
        }
        // Shared compare stage, once per group per touched sub-array —
        // plus the per-request charges that are a pure function of the
        // partition (one popcount per request, the add-stage activations
        // and method-II operand transfers), folded in with `charge_many`
        // (integer-exact to the per-request charges of the single-read
        // path).
        let sentinel = self.index.bwt().sentinel_pos();
        let sentinel_bucket = sentinel / SubArrayLayout::BASES_PER_ROW;
        for t in 0..scratch.active {
            let s = scratch.keys[t];
            let batch = &mut scratch.pool[t];
            let local_sentinel = (sentinel_bucket / 256 == s).then_some((
                sentinel_bucket % 256,
                sentinel % SubArrayLayout::BASES_PER_ROW,
            ));
            let groups = batch.run_compare_with(
                &self.subarrays[s],
                local_sentinel,
                policy,
                cache.as_deref_mut(),
                s as u32,
                ledger,
            );
            let n = batch.len() as u64;
            // Heatmap: one XNOR match + one marker read per group.
            ledger.note_zone_many(s, 2 * groups as u64);
            LogicalOp::Popcount.charge_many(model, ledger, n);
            match self.method {
                AddMethod::InPlace => {
                    ledger.note_zone_many(s.min(self.subarrays.len() - 1), n);
                }
                AddMethod::Mirrored => {
                    let idx = s.min(self.mirrors.len() - 1);
                    LogicalOp::RowWrite.charge_many(model, ledger, 7 * n);
                    ledger.note_zone_many(self.subarrays.len() + idx, 8 * n);
                }
            }
        }
        // Per-request stages in request order: popcount + fault sensing,
        // then the add — with the pipeline scheduler timing each issue
        // (a follower's compare result is already resident, so it skips
        // straight to the addition queue). Disjoint field borrows: the
        // loop reads the partition while driving the scheduler.
        let LfmBatchScratch {
            pool, locator, sim, ..
        } = scratch;
        if injectors.is_empty() {
            // Clean fast path: no per-request fault draws, and a clean
            // ripple add is value-exact to a wrapping add — charge all
            // the adds in one step and skip the bit loops.
            LogicalOp::ImAdd32.charge_many(model, ledger, requests.len() as u64);
            for (req, &(slot, idx)) in requests.iter().zip(locator.iter()) {
                let (count, marker, shares_compare) = if slot == u32::MAX {
                    let bucket = req.id / SubArrayLayout::BASES_PER_ROW;
                    (0, self.index.marker_table().marker(req.nt, bucket), false)
                } else {
                    let batch = &pool[slot as usize];
                    let i = idx as usize;
                    (
                        batch.mask(i).count_prefix_with(batch.within(i), policy),
                        batch.marker(i),
                        !batch.is_leader(i),
                    )
                };
                sim.issue(req.stream, shares_compare);
                sums.push(marker.wrapping_add(count).min(text_len as u32));
            }
        } else {
            for (req, &(slot, idx)) in requests.iter().zip(locator.iter()) {
                let (count, marker, shares_compare) = if slot == u32::MAX {
                    let bucket = req.id / SubArrayLayout::BASES_PER_ROW;
                    (0, self.index.marker_table().marker(req.nt, bucket), false)
                } else {
                    let batch = &pool[slot as usize];
                    let i = idx as usize;
                    let within = batch.within(i);
                    let count = match injectors.get_mut(req.stream) {
                        Some(injector) if injector.is_active() => {
                            let mut mask = *batch.mask(i);
                            injector.transient_row_mask(&mut mask);
                            injector.corrupt_match_mask(&mut mask, within);
                            mask.count_prefix_with(within, policy)
                        }
                        _ => batch.mask(i).count_prefix_with(within, policy),
                    };
                    (count, batch.marker(i), !batch.is_leader(i))
                };
                // Same draw as the single-read path; returns `None`
                // without consuming the stream when the carry rate is
                // zero, so a present-but-inactive injector stays
                // equivalent to the clean path.
                let carry_fault = match injectors.get_mut(req.stream) {
                    Some(injector) => injector.carry_fault_bit(),
                    None => None,
                };
                sim.issue(req.stream, shares_compare);
                // Every sub-array and mirror shares one ArrayModel, so
                // the shared add's charge is position-independent.
                let sum = match carry_fault {
                    Some(k) => self.subarrays[0].im_add32_shared_faulty(marker, count, k, ledger),
                    None => {
                        LogicalOp::ImAdd32.charge(model, ledger);
                        marker.wrapping_add(count)
                    }
                };
                sums.push(sum.min(text_len as u32));
            }
        }
        ledger.record_pipeline(&sim.counters());
    }

    /// Reads suffix-array entries for an interval (`MEM` on the SA
    /// region) and returns the sorted reference positions.
    pub fn locate(&self, interval: SaInterval, ledger: &mut CycleLedger) -> Vec<usize> {
        LogicalOp::SaEntryRead.charge_many(
            self.subarrays[0].model(),
            ledger,
            interval.rows().count() as u64,
        );
        self.index.locate(interval)
    }

    /// The array model in use.
    pub fn model(&self) -> ArrayModel {
        *self.subarrays[0].model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use readsim::genome;

    fn mapped(reference: &DnaSeq, method: AddMethod) -> MappedIndex {
        let config = match method {
            AddMethod::InPlace => PimAlignerConfig::baseline(),
            AddMethod::Mirrored => PimAlignerConfig::pipelined(),
        };
        MappedIndex::build(reference, &config)
    }

    #[test]
    fn subarray_count_scales_with_genome() {
        let small = mapped(&genome::uniform(1_000, 1), AddMethod::InPlace);
        assert_eq!(small.subarray_count(), 1);
        let big = mapped(&genome::uniform(100_000, 1), AddMethod::InPlace);
        assert_eq!(big.subarray_count(), (100_001usize).div_ceil(32_768));
        assert_eq!(big.total_subarrays(), big.subarray_count());
    }

    #[test]
    fn mirrored_doubles_subarrays() {
        let m = mapped(&genome::uniform(40_000, 2), AddMethod::Mirrored);
        assert_eq!(m.total_subarrays(), 2 * m.subarray_count());
    }

    #[test]
    fn hardware_lfm_matches_software_oracle() {
        let reference = genome::uniform(70_000, 3);
        let m = mapped(&reference, AddMethod::InPlace);
        let oracle = m.index().clone();
        let mut injector = m.session_injector();
        let mut ledger = CycleLedger::new();
        // Dense sweep near bucket boundaries plus random interior points.
        let mut ids: Vec<usize> = (0..40).map(|k| k * 1_777 % oracle.text_len()).collect();
        for b in [0usize, 127, 128, 129, 255, 256, 32_767, 32_768, 32_769] {
            if b <= oracle.text_len() {
                ids.push(b);
            }
        }
        ids.push(oracle.text_len());
        for id in ids {
            for base in Base::ALL {
                let hw = m.lfm(base, id, &mut injector, &mut ledger);
                let sw = oracle.marker_table().lfm(oracle.bwt(), base, id);
                assert_eq!(hw, sw, "LFM mismatch at id={id} base={base}");
            }
        }
    }

    #[test]
    fn mirrored_lfm_matches_software_oracle() {
        let reference = genome::uniform(20_000, 4);
        let m = mapped(&reference, AddMethod::Mirrored);
        let oracle = m.index().clone();
        let mut injector = m.session_injector();
        let mut ledger = CycleLedger::new();
        for id in (0..oracle.text_len()).step_by(977) {
            for base in Base::ALL {
                assert_eq!(
                    m.lfm(base, id, &mut injector, &mut ledger),
                    oracle.marker_table().lfm(oracle.bwt(), base, id)
                );
            }
        }
    }

    #[test]
    fn mapping_cost_recorded_separately() {
        let m = mapped(&genome::uniform(5_000, 5), AddMethod::InPlace);
        assert!(m.mapping_ledger().total_busy_cycles() > 0);
    }

    #[test]
    fn locate_charges_sa_reads() {
        let reference: DnaSeq = "TGCTA".parse().unwrap();
        let m = mapped(&reference, AddMethod::InPlace);
        let interval = m.index().backward_search(&"CTA".parse().unwrap()).unwrap();
        let mut ledger = CycleLedger::new();
        assert_eq!(m.locate(interval, &mut ledger), vec![2]);
        assert!(ledger.total_busy_cycles() > 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lfm_past_text_panics() {
        let reference: DnaSeq = "ACGT".parse().unwrap();
        let m = mapped(&reference, AddMethod::InPlace);
        let mut injector = m.session_injector();
        let mut ledger = CycleLedger::new();
        let _ = m.lfm(Base::A, 99, &mut injector, &mut ledger);
    }

    #[test]
    fn build_count_increments_per_build() {
        let before = MappedIndex::build_count();
        let _ = mapped(&genome::uniform(2_000, 6), AddMethod::InPlace);
        assert!(MappedIndex::build_count() > before);
    }

    #[test]
    fn batched_lfm_matches_single_calls_and_saves_plane_loads() {
        // text_len (raw + sentinel) fills exactly two sub-arrays, so
        // `id = n` lands on the final checkpoint bucket (the unbatched
        // boundary path).
        let reference = genome::uniform(65_535, 3);
        let m = mapped(&reference, AddMethod::InPlace);
        let n = m.index().text_len();
        // Three streams: a shared (bucket, base) pair, a second
        // sub-array, and the boundary checkpoint.
        let requests = vec![
            LfmRequest {
                stream: 0,
                nt: Base::A,
                id: 130,
            },
            LfmRequest {
                stream: 1,
                nt: Base::A,
                id: 180,
            },
            LfmRequest {
                stream: 1,
                nt: Base::C,
                id: 33_000,
            },
            LfmRequest {
                stream: 2,
                nt: Base::C,
                id: 33_100,
            },
            LfmRequest {
                stream: 2,
                nt: Base::T,
                id: n,
            },
        ];
        let mut batch_ledger = CycleLedger::new();
        let sums = m.lfm_batch(&requests, &mut [], &mut batch_ledger);
        let mut single_ledger = CycleLedger::new();
        let mut injector = m.session_injector();
        let singles: Vec<u32> = requests
            .iter()
            .map(|r| m.lfm(r.nt, r.id, &mut injector, &mut single_ledger))
            .collect();
        assert_eq!(sums, singles);
        // requests 0 and 1 share one plane load: 3 XNORs, not 4.
        assert_eq!(
            batch_ledger.primitives().count(LogicalOp::XnorMatch),
            3,
            "shared bucket must be loaded once"
        );
        assert_eq!(single_ledger.primitives().count(LogicalOp::XnorMatch), 4);
        assert!(batch_ledger.total_busy_cycles() < single_ledger.total_busy_cycles());
        let pipe = batch_ledger.pipeline_counters();
        assert_eq!(pipe.issued, 5);
        assert!(pipe.makespan_cycles > 0);
        assert_eq!(single_ledger.pipeline_counters().issued, 0);
    }

    #[test]
    fn batched_lfm_replays_per_read_fault_streams() {
        use mram::faults::FaultModel;
        let config = PimAlignerConfig::baseline().with_fault_campaign(
            FaultCampaign::seeded(29)
                .with_model(FaultModel::with_probabilities(0.04, 0.0))
                .with_transient_row_rate(0.15)
                .with_carry_fault_prob(0.1),
        );
        let m = MappedIndex::build(&genome::uniform(40_000, 9), &config);
        // Streams interleaved low/high, sharing bucket 1 across streams.
        let requests = vec![
            LfmRequest {
                stream: 0,
                nt: Base::A,
                id: 140,
            },
            LfmRequest {
                stream: 1,
                nt: Base::A,
                id: 170,
            },
            LfmRequest {
                stream: 0,
                nt: Base::A,
                id: 5_000,
            },
            LfmRequest {
                stream: 1,
                nt: Base::G,
                id: 9_000,
            },
        ];
        let mut injectors = vec![m.read_injector(0), m.read_injector(1)];
        let mut ledger = CycleLedger::new();
        let batched = m.lfm_batch(&requests, &mut injectors, &mut ledger);
        // Oracle: single-read replay per stream in per-stream order.
        let mut oracle = [m.read_injector(0), m.read_injector(1)];
        let expected: Vec<u32> = requests
            .iter()
            .map(|r| m.lfm(r.nt, r.id, &mut oracle[r.stream], &mut ledger))
            .collect();
        assert_eq!(batched, expected);
        for s in 0..2 {
            assert_eq!(injectors[s].counters(), oracle[s].counters(), "stream {s}");
        }
    }

    #[test]
    fn worker_zero_injector_replays_the_sequential_stream() {
        use mram::faults::FaultModel;
        let config = PimAlignerConfig::baseline().with_fault_campaign(
            FaultCampaign::seeded(17).with_model(FaultModel::with_probabilities(0.05, 0.0)),
        );
        let m = MappedIndex::build(&genome::uniform(2_000, 7), &config);
        let mut a = m.session_injector();
        let mut b = m.worker_injector(0);
        let mut c = m.worker_injector(1);
        let mut same = true;
        let mut diverged = false;
        for _ in 0..64 {
            let mut ra = vec![false; 128];
            let mut rb = vec![false; 128];
            let mut rc = vec![false; 128];
            a.corrupt_match_bits(&mut ra);
            b.corrupt_match_bits(&mut rb);
            c.corrupt_match_bits(&mut rc);
            same &= ra == rb;
            diverged |= ra != rc;
        }
        assert!(same, "worker 0 must replay the sequential stream");
        assert!(diverged, "worker 1 must draw a decorrelated stream");
    }
}
