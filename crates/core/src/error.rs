//! Typed errors for the batch alignment entry points.

use std::fmt;

/// Why a batch alignment request could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlignError {
    /// The read batch was empty.
    EmptyBatch,
    /// Zero worker threads were requested.
    NoThreads,
    /// A read is longer than the shard overlap can guarantee to cover:
    /// a hit starting near the end of a shard's owned window would run
    /// past the shard's slice and be silently missed. The overlap must
    /// be at least `read_len + max_diffs`.
    ReadExceedsShardOverlap {
        /// Length of the offending read (bases).
        read_len: usize,
        /// The largest read length the shard overlap covers
        /// (`overlap - max_diffs`).
        budget: usize,
    },
}

impl fmt::Display for AlignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignError::EmptyBatch => write!(f, "batch must contain at least one read"),
            AlignError::NoThreads => write!(f, "at least one worker thread required"),
            AlignError::ReadExceedsShardOverlap { read_len, budget } => write!(
                f,
                "read of {read_len} bases exceeds the shard overlap budget \
                 ({budget} bases max); rebuild the artifact with a larger \
                 --shard-overlap"
            ),
        }
    }
}

impl std::error::Error for AlignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_messages() {
        assert_eq!(
            AlignError::EmptyBatch.to_string(),
            "batch must contain at least one read"
        );
        assert_eq!(
            AlignError::NoThreads.to_string(),
            "at least one worker thread required"
        );
        let e = AlignError::ReadExceedsShardOverlap {
            read_len: 200,
            budget: 125,
        };
        assert!(e.to_string().contains("200 bases"));
        assert!(e.to_string().contains("125 bases max"));
    }
}
