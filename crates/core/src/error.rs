//! Typed errors for the batch alignment entry points.

use std::fmt;

/// Why a batch alignment request could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlignError {
    /// The read batch was empty.
    EmptyBatch,
    /// Zero worker threads were requested.
    NoThreads,
}

impl fmt::Display for AlignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignError::EmptyBatch => write!(f, "batch must contain at least one read"),
            AlignError::NoThreads => write!(f, "at least one worker thread required"),
        }
    }
}

impl std::error::Error for AlignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_messages() {
        assert_eq!(
            AlignError::EmptyBatch.to_string(),
            "batch must contain at least one read"
        );
        assert_eq!(
            AlignError::NoThreads.to_string(),
            "at least one worker thread required"
        );
    }
}
