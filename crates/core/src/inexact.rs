//! Inexact alignment-in-memory (paper Algorithm 2) with DPU-controlled
//! backtracking.
//!
//! "To handle one and two mismatch alignment based on input-z, we exploit
//! an additional control logic (in DPU) to perform bi-directional
//! backtracking. For each allowed mismatch, DPU's registers store the
//! state (i.e. symbol, low and high)." The search is implemented as an
//! explicit DFS over the DPU's backtracking register file — the hardware
//! form of `fmindex`'s recursive Algorithm 2 — and is tested for
//! interval-exact agreement with that software oracle.

use std::collections::HashMap;

use bioseq::{Base, DnaSeq};
use fmindex::{EditBudget, InexactHit, SaInterval};
use pimsim::{CycleLedger, Dpu, FaultInjector};

use crate::mapping::MappedIndex;

/// Statistics of one inexact search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InexactStats {
    /// `LFM` invocations issued.
    pub lfm_calls: u64,
    /// Backtracking states explored.
    pub states_explored: u64,
    /// Peak DPU register-file depth.
    pub max_stack_depth: usize,
}

/// One explicit DFS frame: read position, remaining budget, interval.
#[derive(Debug, Clone, Copy)]
struct Frame {
    i: isize,
    z: i16,
    low: u32,
    high: u32,
}

/// Runs Algorithm 2 on the platform exhaustively: finds **all** SA
/// intervals matching `read` with at most `budget.max_diffs()`
/// differences, driving every interval update through the in-memory
/// `LFM` procedure and the DPU state registers.
///
/// Hits are deduplicated per interval (minimum difference count) and
/// sorted `(diffs, interval)`, matching the software oracle's contract.
///
/// Exhaustive enumeration is the oracle mode; the production alignment
/// path uses [`inexact_search_first`], which mirrors the hardware's
/// bounded backtracking.
pub fn inexact_search(
    mapped: &MappedIndex,
    injector: &mut FaultInjector,
    dpu: &mut Dpu,
    read: &DnaSeq,
    budget: EditBudget,
    ledger: &mut CycleLedger,
) -> (Vec<InexactHit>, InexactStats) {
    search_impl(mapped, injector, dpu, read, budget, ledger, false)
}

/// First-accept variant of Algorithm 2: depth-first with the match
/// branch explored first, returning as soon as one full-length interval
/// is found. This is the hardware-faithful production mode — the DPU's
/// small register file bounds the backtracking, and the paper's platform
/// reports hits as they are located rather than enumerating the entire
/// edit neighbourhood.
///
/// The returned hit (if any) is always a member of the exhaustive hit
/// set, though not necessarily the minimum-difference one.
pub fn inexact_search_first(
    mapped: &MappedIndex,
    injector: &mut FaultInjector,
    dpu: &mut Dpu,
    read: &DnaSeq,
    budget: EditBudget,
    ledger: &mut CycleLedger,
) -> (Option<InexactHit>, InexactStats) {
    let (hits, stats) = search_impl(mapped, injector, dpu, read, budget, ledger, true);
    (hits.into_iter().next(), stats)
}

#[allow(clippy::too_many_arguments)]
fn search_impl(
    mapped: &MappedIndex,
    injector: &mut FaultInjector,
    dpu: &mut Dpu,
    read: &DnaSeq,
    budget: EditBudget,
    ledger: &mut CycleLedger,
    first_only: bool,
) -> (Vec<InexactHit>, InexactStats) {
    let mut stats = InexactStats::default();
    let mut best: HashMap<SaInterval, u8> = HashMap::new();
    let n = mapped.index().text_len() as u32;
    let mut stack = vec![Frame {
        i: read.len() as isize - 1,
        z: budget.max_diffs() as i16,
        low: 0,
        high: n,
    }];
    dpu.init_interval(n, ledger);
    'dfs: while let Some(frame) = stack.pop() {
        stats.states_explored += 1;
        stats.max_stack_depth = stats.max_stack_depth.max(stack.len() + 1);
        if frame.z < 0 {
            continue;
        }
        if frame.i < 0 {
            let diffs = budget.max_diffs() - frame.z as u8;
            let interval = SaInterval::new(frame.low, frame.high);
            best.entry(interval)
                .and_modify(|d| *d = (*d).min(diffs))
                .or_insert(diffs);
            if first_only {
                break 'dfs;
            }
            continue;
        }
        // Insertion in the read: skip read[i] without an LFM step.
        // Pushed first so cheaper (match) branches are popped earlier.
        if budget.allows_indels() {
            stack.push(Frame {
                i: frame.i - 1,
                z: frame.z - 1,
                ..frame
            });
        }
        let current = read[frame.i as usize];
        // Defer the match branch so it lands on top of the stack and is
        // explored first (depth-first greedy continuation).
        let mut match_branch: Option<Frame> = None;
        for b in Base::ALL {
            let low = mapped.lfm(b, frame.low as usize, injector, ledger);
            let high = mapped.lfm(b, frame.high as usize, injector, ledger);
            stats.lfm_calls += 2;
            dpu.set_interval(low, high, ledger);
            if dpu.interval_empty() {
                continue;
            }
            // Save the branch state in the DPU register file (hardware
            // bookkeeping for the backtracking).
            dpu.push_state(
                pimsim::BacktrackState {
                    position: frame.i as u32,
                    low,
                    high,
                    budget: frame.z as i8,
                    symbol: b.rank() as u8,
                },
                ledger,
            );
            if budget.allows_indels() {
                // Deletion from the read: consume a reference base only.
                stack.push(Frame {
                    i: frame.i,
                    z: frame.z - 1,
                    low,
                    high,
                });
            }
            if b == current {
                match_branch = Some(Frame {
                    i: frame.i - 1,
                    z: frame.z,
                    low,
                    high,
                });
            } else {
                stack.push(Frame {
                    i: frame.i - 1,
                    z: frame.z - 1,
                    low,
                    high,
                });
            }
            let _ = dpu.pop_state(ledger);
        }
        if let Some(m) = match_branch {
            stack.push(m);
        }
    }
    let mut hits: Vec<InexactHit> = best
        .into_iter()
        .map(|(interval, diffs)| InexactHit { interval, diffs })
        .collect();
    hits.sort_by_key(|h| (h.diffs, h.interval));
    (hits, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PimAlignerConfig;
    use readsim::genome;

    fn setup(reference: &DnaSeq) -> (MappedIndex, FaultInjector, Dpu, CycleLedger) {
        let config = PimAlignerConfig::baseline();
        let mapped = MappedIndex::build(reference, &config);
        let injector = mapped.session_injector();
        let dpu = Dpu::new(*config.model());
        (mapped, injector, dpu, CycleLedger::new())
    }

    #[test]
    fn platform_matches_software_oracle_substitutions() {
        let reference = genome::uniform(3_000, 21);
        let (mapped, mut injector, mut dpu, mut ledger) = setup(&reference);
        let oracle = mapped.index().clone();
        for (start, z) in [(100usize, 0u8), (500, 1), (1_200, 2)] {
            let mut read = reference.subseq(start..start + 24);
            // Mutate z positions.
            for k in 0..z as usize {
                let pos = 5 + 7 * k;
                let b = read[pos];
                let mut bases = read.clone().into_bases();
                bases[pos] = Base::from_rank((b.rank() + 1) % 4);
                read = DnaSeq::from_bases(bases);
            }
            let budget = EditBudget::substitutions_only(z);
            let (hw, _) =
                inexact_search(&mapped, &mut injector, &mut dpu, &read, budget, &mut ledger);
            let sw = oracle.search_inexact(&read, budget);
            assert_eq!(hw, sw, "mismatch at start {start} z {z}");
        }
    }

    #[test]
    fn platform_matches_software_oracle_with_indels() {
        let reference = genome::uniform(1_500, 22);
        let (mapped, mut injector, mut dpu, mut ledger) = setup(&reference);
        let oracle = mapped.index().clone();
        // Read with one deleted base relative to the reference.
        let mut bases = reference.subseq(300..320).into_bases();
        bases.remove(10);
        let read = DnaSeq::from_bases(bases);
        let budget = EditBudget::edits(1);
        let (hw, _) = inexact_search(&mapped, &mut injector, &mut dpu, &read, budget, &mut ledger);
        let sw = oracle.search_inexact(&read, budget);
        assert_eq!(hw, sw);
        assert!(!hw.is_empty());
    }

    #[test]
    fn stats_grow_with_budget() {
        let reference = genome::uniform(2_000, 23);
        let (mapped, mut injector, mut dpu, mut ledger) = setup(&reference);
        let read = reference.subseq(700..720);
        let (_, s0) = inexact_search(
            &mapped,
            &mut injector,
            &mut dpu,
            &read,
            EditBudget::substitutions_only(0),
            &mut ledger,
        );
        let (_, s2) = inexact_search(
            &mapped,
            &mut injector,
            &mut dpu,
            &read,
            EditBudget::substitutions_only(2),
            &mut ledger,
        );
        assert!(s2.lfm_calls > s0.lfm_calls);
        assert!(s2.states_explored > s0.states_explored);
        assert!(s2.max_stack_depth >= s0.max_stack_depth);
    }

    #[test]
    fn first_accept_hit_is_in_exhaustive_set() {
        let reference = genome::uniform(3_000, 25);
        let (mapped, mut injector, mut dpu, mut ledger) = setup(&reference);
        // One substitution at position 12.
        let mut bases = reference.subseq(900..940).into_bases();
        bases[12] = Base::from_rank((bases[12].rank() + 1) % 4);
        let read = DnaSeq::from_bases(bases);
        let budget = EditBudget::substitutions_only(2);
        let (first, fstats) =
            inexact_search_first(&mapped, &mut injector, &mut dpu, &read, budget, &mut ledger);
        let (all, astats) =
            inexact_search(&mapped, &mut injector, &mut dpu, &read, budget, &mut ledger);
        let first = first.expect("mutated read must map");
        assert!(
            all.iter().any(|h| h.interval == first.interval),
            "first hit must be in the exhaustive set"
        );
        assert!(
            fstats.lfm_calls < astats.lfm_calls,
            "first-accept must prune: {} vs {}",
            fstats.lfm_calls,
            astats.lfm_calls
        );
    }

    #[test]
    fn first_accept_cost_is_linear_in_read_length() {
        // The production mode must stay O(m)-ish on a clean read: the
        // match-first DFS walks straight down.
        let reference = genome::uniform(8_000, 26);
        let (mapped, mut injector, mut dpu, mut ledger) = setup(&reference);
        let read = reference.subseq(2_000..2_100);
        let (hit, stats) = inexact_search_first(
            &mapped,
            &mut injector,
            &mut dpu,
            &read,
            EditBudget::edits(2),
            &mut ledger,
        );
        assert!(hit.is_some());
        // 8 LFMs per level (4 bases × 2 bounds) + bounded backtracking.
        assert!(
            stats.lfm_calls < 20 * read.len() as u64,
            "first-accept LFM count {} too high",
            stats.lfm_calls
        );
    }

    #[test]
    fn zero_budget_reduces_to_exact() {
        let reference = genome::uniform(2_000, 24);
        let (mapped, mut injector, mut dpu, mut ledger) = setup(&reference);
        let oracle = mapped.index().clone();
        let read = reference.subseq(100..140);
        let (hits, _) = inexact_search(
            &mapped,
            &mut injector,
            &mut dpu,
            &read,
            EditBudget::substitutions_only(0),
            &mut ledger,
        );
        let exact = oracle.backward_search(&read).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].interval, exact);
        assert_eq!(hits[0].diffs, 0);
    }
}
