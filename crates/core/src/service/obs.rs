//! Live observability plane for the service stack (DESIGN.md §17).
//!
//! Three jobs, one lock:
//!
//! * **Rolling-window telemetry** — a ring of per-second [`ObsBucket`]s
//!   ([`BucketRing`]) aggregated into 1 s / 10 s / 60 s views. The ring
//!   and the lifetime [`ServiceTelemetry`] live under a *single* mutex
//!   ([`ObsState`]) so every event updates both in one critical
//!   section: `retired ⊕ Σ(live buckets) == lifetime` holds *exactly*
//!   at any snapshot, never approximately. Buckets evicted by ring
//!   wrap-around are folded into a `retired` aggregate rather than
//!   discarded, which is what makes the reconciliation an invariant
//!   instead of a window-length accident.
//! * **Request-scoped tracing support** — the monotonic `trace_id`
//!   mint, and the bounded top-K slow-request log fed by the server's
//!   response path (the stage spans themselves ride the existing
//!   `HostSpanLog`/Chrome-trace machinery in `HostTotals`).
//! * **Live exposition** — the `Request::Stats` JSON snapshot and a
//!   hand-rolled Prometheus text exposition, both answered inline by
//!   connection readers so they are never queued and never shed.
//!
//! Everything here is host-side wall clock. Nothing touches the
//! simulated cycle ledgers, so SAM output and every simulated counter
//! stay byte-identical with the plane enabled.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use pimsim::{HostEpoch, HostHistogram};

use crate::metrics::{json_f64, service_section_json};
use crate::report::{ObsTelemetry, ServiceTelemetry, SlowRequest};

/// Default rolling-window ring capacity, seconds (`--obs-window`).
pub const DEFAULT_OBS_WINDOW_SECS: u32 = 60;

/// Default watchdog head-of-queue stall threshold, ms
/// (`--watchdog-ms`; 0 disables the watchdog thread).
pub const DEFAULT_WATCHDOG_THRESHOLD_MS: u32 = 1000;

/// Entries kept in the slow-request log (top-K by end-to-end latency).
pub const SLOW_LOG_CAPACITY: usize = 16;

/// One second of service-layer activity. Counters mirror the counting
/// fields of [`ServiceTelemetry`] one-for-one (peaks are queue-lifetime
/// quantities and stay out of the ring); gauges record the high-water
/// mark observed during the second; `latency` merges every response's
/// end-to-end latency recorded in the second.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsBucket {
    pub received: u64,
    pub accepted: u64,
    pub shed_queue_full: u64,
    pub shed_inflight_bytes: u64,
    pub rejected_draining: u64,
    pub rejected_invalid: u64,
    pub expired_in_queue: u64,
    pub late_responses: u64,
    pub panics_quarantined: u64,
    pub batches: u64,
    pub responses: u64,
    /// Reads summed over the second's batches (mean width = reads/batches).
    pub batch_reads: u64,
    /// High-water queue depth observed at admission during the second.
    pub max_queue_depth: u64,
    /// High-water in-flight payload bytes observed during the second.
    pub max_inflight_bytes: u64,
    /// End-to-end latency of every response recorded in the second.
    pub latency: HostHistogram,
}

impl ObsBucket {
    /// Adds `other` into `self`. Counters and histograms add, gauges
    /// take the max — every component is associative and commutative,
    /// so bucket merge order never changes an aggregate (pinned by
    /// test).
    pub fn merge(&mut self, other: &ObsBucket) {
        self.received += other.received;
        self.accepted += other.accepted;
        self.shed_queue_full += other.shed_queue_full;
        self.shed_inflight_bytes += other.shed_inflight_bytes;
        self.rejected_draining += other.rejected_draining;
        self.rejected_invalid += other.rejected_invalid;
        self.expired_in_queue += other.expired_in_queue;
        self.late_responses += other.late_responses;
        self.panics_quarantined += other.panics_quarantined;
        self.batches += other.batches;
        self.responses += other.responses;
        self.batch_reads += other.batch_reads;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        self.max_inflight_bytes = self.max_inflight_bytes.max(other.max_inflight_bytes);
        self.latency.merge(&other.latency);
    }

    /// Requests shed by load shedding (either limit).
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full + self.shed_inflight_bytes
    }
}

/// Fixed ring of per-second buckets indexed by absolute epoch second.
/// Slot reuse folds the evicted bucket into `retired`, so
/// `retired ⊕ Σ(live)` ([`BucketRing::cumulative`]) accounts for every
/// event ever recorded, regardless of run length vs window.
///
/// Kept free of clocks on purpose: callers pass the absolute second,
/// which makes the eviction/reconciliation logic directly property-
/// testable with synthetic time.
#[derive(Debug)]
pub struct BucketRing {
    window: usize,
    slots: Vec<ObsBucket>,
    /// Absolute second each slot holds; `u64::MAX` = never used.
    slot_sec: Vec<u64>,
    retired: ObsBucket,
    retired_count: u64,
}

impl BucketRing {
    /// A ring covering `window` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> BucketRing {
        assert!(window > 0, "bucket ring needs at least one slot");
        BucketRing {
            window,
            slots: vec![ObsBucket::default(); window],
            slot_sec: vec![u64::MAX; window],
            retired: ObsBucket::default(),
            retired_count: 0,
        }
    }

    /// Ring capacity, seconds.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Buckets evicted into the retired aggregate so far.
    pub fn retired_count(&self) -> u64 {
        self.retired_count
    }

    /// The live bucket for absolute second `sec`, evicting whatever
    /// previously occupied its slot. O(1); this is the per-event hot
    /// path.
    pub fn bucket_at(&mut self, sec: u64) -> &mut ObsBucket {
        let slot = (sec % self.window as u64) as usize;
        if self.slot_sec[slot] != sec {
            if self.slot_sec[slot] != u64::MAX {
                let old = std::mem::take(&mut self.slots[slot]);
                self.retired.merge(&old);
                self.retired_count += 1;
            }
            self.slots[slot] = ObsBucket::default();
            self.slot_sec[slot] = sec;
        }
        &mut self.slots[slot]
    }

    /// Aggregate over the trailing `secs` seconds ending at `now_sec`
    /// (inclusive). Slots older than the span — possible when traffic
    /// went quiet and nothing recycled them — are filtered by their
    /// recorded second, not their slot position.
    pub fn window_view(&self, now_sec: u64, secs: u64) -> ObsBucket {
        assert!(secs > 0, "window view needs at least one second");
        let lo = now_sec.saturating_sub(secs - 1);
        let mut acc = ObsBucket::default();
        for (i, bucket) in self.slots.iter().enumerate() {
            let at = self.slot_sec[i];
            if at != u64::MAX && at >= lo && at <= now_sec {
                acc.merge(bucket);
            }
        }
        acc
    }

    /// Everything ever recorded: retired aggregate ⊕ all live buckets.
    /// Field-for-field equal to the lifetime counters when every event
    /// goes through [`ObsState`] (pinned by test and by the
    /// `benchdiff --kind obs` gate).
    pub fn cumulative(&self) -> ObsBucket {
        let mut acc = self.retired.clone();
        for (i, bucket) in self.slots.iter().enumerate() {
            if self.slot_sec[i] != u64::MAX {
                acc.merge(bucket);
            }
        }
        acc
    }
}

/// Why admission shed or rejected a request — selects which bucket and
/// lifetime counters one [`ObsState::not_admitted`] call moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    QueueFull,
    InflightBytes,
    Draining,
    Invalid,
}

struct ObsInner {
    lifetime: ServiceTelemetry,
    ring: BucketRing,
    /// Sorted descending by `total_ns`, truncated to
    /// [`SLOW_LOG_CAPACITY`].
    slow: Vec<SlowRequest>,
    watchdog_stalls: u64,
    watchdog_max_head_age_ms: u64,
}

/// The shared observability state: lifetime telemetry + bucket ring +
/// slow log under one mutex, plus the lock-free trace-id mint.
pub struct ObsState {
    epoch: HostEpoch,
    watchdog_threshold_ms: u32,
    next_trace_id: AtomicU64,
    inner: Mutex<ObsInner>,
}

impl ObsState {
    /// A fresh plane with a `window_secs`-deep ring.
    pub fn new(window_secs: u32, watchdog_threshold_ms: u32) -> ObsState {
        ObsState {
            epoch: HostEpoch::new(),
            watchdog_threshold_ms,
            next_trace_id: AtomicU64::new(1),
            inner: Mutex::new(ObsInner {
                lifetime: ServiceTelemetry::default(),
                ring: BucketRing::new(window_secs.max(1) as usize),
                slow: Vec::new(),
                watchdog_stalls: 0,
                watchdog_max_head_age_ms: 0,
            }),
        }
    }

    /// Monotonic ns since the plane was created — the time base for
    /// every stage span, so one request's spans line up on one track.
    pub fn now_ns(&self) -> u64 {
        self.epoch.now_ns()
    }

    /// The span-log epoch (same origin as [`ObsState::now_ns`]).
    pub fn epoch(&self) -> HostEpoch {
        self.epoch
    }

    /// Watchdog stall threshold, ms (0 = disabled).
    pub fn watchdog_threshold_ms(&self) -> u32 {
        self.watchdog_threshold_ms
    }

    /// Mints the next request trace id (monotonic from 1; lock-free).
    pub fn mint_trace_id(&self) -> u64 {
        self.next_trace_id.fetch_add(1, Ordering::Relaxed)
    }

    fn with<R>(&self, f: impl FnOnce(&mut ObsInner, u64) -> R) -> R {
        let sec = self.epoch.now_ns() / 1_000_000_000;
        let mut inner = self.inner.lock().expect("obs mutex poisoned");
        f(&mut inner, sec)
    }

    /// An Align request reached admission control.
    pub fn received(&self) -> u64 {
        self.with(|inner, sec| {
            inner.lifetime.received += 1;
            inner.ring.bucket_at(sec).received += 1;
            inner.lifetime.received
        })
    }

    /// A request was admitted; `queue_depth`/`inflight_bytes` are the
    /// post-admission gauges feeding the bucket's high-water marks.
    pub fn accepted(&self, queue_depth: u64, inflight_bytes: u64) {
        self.with(|inner, sec| {
            inner.lifetime.accepted += 1;
            let bucket = inner.ring.bucket_at(sec);
            bucket.accepted += 1;
            bucket.max_queue_depth = bucket.max_queue_depth.max(queue_depth);
            bucket.max_inflight_bytes = bucket.max_inflight_bytes.max(inflight_bytes);
        });
    }

    /// A request was shed or rejected at admission.
    pub fn not_admitted(&self, reason: ShedReason) {
        self.with(|inner, sec| {
            let bucket = inner.ring.bucket_at(sec);
            match reason {
                ShedReason::QueueFull => {
                    bucket.shed_queue_full += 1;
                    inner.lifetime.shed_queue_full += 1;
                }
                ShedReason::InflightBytes => {
                    bucket.shed_inflight_bytes += 1;
                    inner.lifetime.shed_inflight_bytes += 1;
                }
                ShedReason::Draining => {
                    bucket.rejected_draining += 1;
                    inner.lifetime.rejected_draining += 1;
                }
                ShedReason::Invalid => {
                    bucket.rejected_invalid += 1;
                    inner.lifetime.rejected_invalid += 1;
                }
            }
        });
    }

    /// An accepted request expired while queued.
    pub fn expired_in_queue(&self) {
        self.with(|inner, sec| {
            inner.lifetime.expired_in_queue += 1;
            inner.ring.bucket_at(sec).expired_in_queue += 1;
        });
    }

    /// The batcher issued one `align_chunk_parallel` call over `width`
    /// reads.
    pub fn batch(&self, width: u64) {
        self.with(|inner, sec| {
            inner.lifetime.batches += 1;
            let bucket = inner.ring.bucket_at(sec);
            bucket.batches += 1;
            bucket.batch_reads += width;
        });
    }

    /// A read was quarantined into a typed error response.
    pub fn panic_quarantined(&self) {
        self.with(|inner, sec| {
            inner.lifetime.panics_quarantined += 1;
            inner.ring.bucket_at(sec).panics_quarantined += 1;
        });
    }

    /// A response was written. One call covers the lifetime counters,
    /// the bucket's latency histogram, and the slow-log insertion —
    /// single critical section, so a snapshot can never observe half
    /// the update.
    pub fn response(&self, late: bool, entry: SlowRequest) {
        self.with(|inner, sec| {
            inner.lifetime.responses += 1;
            if late {
                inner.lifetime.late_responses += 1;
            }
            let bucket = inner.ring.bucket_at(sec);
            bucket.responses += 1;
            if late {
                bucket.late_responses += 1;
            }
            bucket.latency.record_ns(entry.total_ns);
            // Bounded top-K by total latency, sorted descending.
            let pos = inner.slow.partition_point(|s| s.total_ns >= entry.total_ns);
            if pos < SLOW_LOG_CAPACITY {
                inner.slow.insert(pos, entry);
                inner.slow.truncate(SLOW_LOG_CAPACITY);
            }
        });
    }

    /// The watchdog observed the current head-of-queue age (tracks the
    /// high-water mark).
    pub fn watchdog_observe(&self, head_age_ms: u64) {
        self.with(|inner, _| {
            inner.watchdog_max_head_age_ms = inner.watchdog_max_head_age_ms.max(head_age_ms);
        });
    }

    /// The watchdog opened a stall episode; returns the episode count.
    pub fn watchdog_stall(&self, head_age_ms: u64) -> u64 {
        self.with(|inner, _| {
            inner.watchdog_stalls += 1;
            inner.watchdog_max_head_age_ms = inner.watchdog_max_head_age_ms.max(head_age_ms);
            inner.watchdog_stalls
        })
    }

    /// The lifetime service counters (peaks zero — the queue owns them;
    /// the server folds queue peaks in at snapshot time).
    pub fn lifetime(&self) -> ServiceTelemetry {
        self.with(|inner, _| inner.lifetime)
    }

    /// The drain-time summary destined for `PerfReport.obs`.
    pub fn telemetry(&self) -> ObsTelemetry {
        self.with(|inner, _| ObsTelemetry {
            window_secs: inner.ring.window() as u32,
            buckets_retired: inner.ring.retired_count(),
            watchdog_stalls: inner.watchdog_stalls,
            watchdog_max_head_age_ms: inner.watchdog_max_head_age_ms,
            watchdog_threshold_ms: self.watchdog_threshold_ms,
            slow: inner.slow.clone(),
        })
    }

    /// The `Request::Stats` JSON snapshot. `lifetime_with_peaks` is the
    /// lifetime telemetry with queue peaks folded in (the server owns
    /// the queue); `queue_depth`/`inflight_bytes` are the live gauges.
    ///
    /// Shape (stable, parsed by `loadgen` and the obs gate):
    /// `service` (the schema-v7 service section), `cumulative`
    /// (ring-derived, must equal `service`'s counters exactly),
    /// `windows.w1|w10|w60`, `gauges`, `watchdog`, `slow[]`.
    pub fn stats_json(
        &self,
        lifetime_with_peaks: &ServiceTelemetry,
        queue_depth: u64,
        inflight_bytes: u64,
    ) -> String {
        self.with(|inner, sec| {
            let cumulative = inner.ring.cumulative();
            let uptime_secs = sec + 1; // current partial second counts as one
            let w1 = inner.ring.window_view(sec, 1);
            let w10 = inner.ring.window_view(sec, 10);
            let w60 = inner.ring.window_view(sec, 60);
            let slow_rows = slow_json(&inner.slow, "    ");
            format!(
                "{{\n  \"uptime_secs\": {},\n  \"window_secs\": {},\n  \"service\": {},\n  \
                 \"cumulative\": {},\n  \"windows\": {{\n    \"w1\": {},\n    \"w10\": {},\n    \
                 \"w60\": {}\n  }},\n  \"gauges\": {{ \"queue_depth\": {}, \"inflight_bytes\": {} \
                 }},\n  \"watchdog\": {{ \"stalls\": {}, \"max_head_age_ms\": {}, \
                 \"threshold_ms\": {} }},\n  \"slow\": {}\n}}\n",
                uptime_secs,
                inner.ring.window(),
                indent_block(&service_section_json(lifetime_with_peaks), "  "),
                bucket_json(&cumulative, uptime_secs, "  "),
                bucket_json(&w1, 1, "    "),
                bucket_json(&w10, 10.min(uptime_secs), "    "),
                bucket_json(&w60, 60.min(uptime_secs), "    "),
                queue_depth,
                inflight_bytes,
                inner.watchdog_stalls,
                inner.watchdog_max_head_age_ms,
                self.watchdog_threshold_ms,
                slow_rows,
            )
        })
    }

    /// Hand-rolled Prometheus text exposition (version 0.0.4 format) —
    /// counters from the lifetime telemetry, gauges from the queue,
    /// the latency histogram from the ring's cumulative aggregate.
    pub fn prometheus_text(
        &self,
        lifetime_with_peaks: &ServiceTelemetry,
        queue_depth: u64,
        inflight_bytes: u64,
    ) -> String {
        self.with(|inner, _| {
            let t = lifetime_with_peaks;
            let cumulative = inner.ring.cumulative();
            let mut out = String::with_capacity(2048);
            out.push_str(
                "# HELP pimserve_requests_total Align requests by admission outcome.\n\
                 # TYPE pimserve_requests_total counter\n",
            );
            for (outcome, n) in [
                ("received", t.received),
                ("accepted", t.accepted),
                ("shed_queue_full", t.shed_queue_full),
                ("shed_inflight_bytes", t.shed_inflight_bytes),
                ("rejected_draining", t.rejected_draining),
                ("rejected_invalid", t.rejected_invalid),
            ] {
                out.push_str(&format!(
                    "pimserve_requests_total{{outcome=\"{outcome}\"}} {n}\n"
                ));
            }
            out.push_str(
                "# HELP pimserve_responses_total Responses written by terminal state.\n\
                 # TYPE pimserve_responses_total counter\n",
            );
            for (state, n) in [
                ("answered", t.responses),
                ("expired_in_queue", t.expired_in_queue),
                ("late", t.late_responses),
                ("panic_quarantined", t.panics_quarantined),
            ] {
                out.push_str(&format!(
                    "pimserve_responses_total{{state=\"{state}\"}} {n}\n"
                ));
            }
            out.push_str(&format!(
                "# HELP pimserve_batches_total align_chunk_parallel calls issued.\n\
                 # TYPE pimserve_batches_total counter\npimserve_batches_total {}\n",
                t.batches
            ));
            out.push_str(&format!(
                "# HELP pimserve_watchdog_stalls_total Batcher stall episodes detected.\n\
                 # TYPE pimserve_watchdog_stalls_total counter\n\
                 pimserve_watchdog_stalls_total {}\n",
                inner.watchdog_stalls
            ));
            out.push_str(&format!(
                "# HELP pimserve_queue_depth Admission queue depth right now.\n\
                 # TYPE pimserve_queue_depth gauge\npimserve_queue_depth {queue_depth}\n"
            ));
            out.push_str(&format!(
                "# HELP pimserve_inflight_bytes In-flight payload bytes right now.\n\
                 # TYPE pimserve_inflight_bytes gauge\npimserve_inflight_bytes {inflight_bytes}\n"
            ));
            out.push_str(
                "# HELP pimserve_request_latency_seconds End-to-end request latency.\n\
                 # TYPE pimserve_request_latency_seconds histogram\n",
            );
            let mut cum = 0u64;
            for (upper_ns, n) in cumulative.latency.nonzero_buckets() {
                cum += n;
                out.push_str(&format!(
                    "pimserve_request_latency_seconds_bucket{{le=\"{}\"}} {cum}\n",
                    json_f64(upper_ns as f64 * 1e-9)
                ));
            }
            out.push_str(&format!(
                "pimserve_request_latency_seconds_bucket{{le=\"+Inf\"}} {}\n\
                 pimserve_request_latency_seconds_sum {}\n\
                 pimserve_request_latency_seconds_count {}\n",
                cumulative.latency.count(),
                json_f64(cumulative.latency.sum_ns() as f64 * 1e-9),
                cumulative.latency.count()
            ));
            out
        })
    }
}

/// One windowed (or cumulative) bucket as JSON. `secs` scales the rate
/// fields; every field is always present so the shape is stable for
/// `bench::json` consumers.
fn bucket_json(b: &ObsBucket, secs: u64, indent: &str) -> String {
    let secs_f = secs.max(1) as f64;
    let rps = b.responses as f64 / secs_f;
    let mean_width = if b.batches > 0 {
        b.batch_reads as f64 / b.batches as f64
    } else {
        0.0
    };
    format!(
        "{{\n{i}  \"secs\": {}, \"received\": {}, \"accepted\": {}, \"shed_queue_full\": {}, \
         \"shed_inflight_bytes\": {},\n{i}  \"rejected_draining\": {}, \"rejected_invalid\": {}, \
         \"expired_in_queue\": {}, \"late_responses\": {},\n{i}  \"panics_quarantined\": {}, \
         \"batches\": {}, \"responses\": {}, \"batch_reads\": {},\n{i}  \"max_queue_depth\": {}, \
         \"max_inflight_bytes\": {}, \"rps\": {}, \"mean_batch_width\": {},\n{i}  \"latency\": {{ \
         \"count\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \
         \"max_ns\": {} }}\n{i}}}",
        secs,
        b.received,
        b.accepted,
        b.shed_queue_full,
        b.shed_inflight_bytes,
        b.rejected_draining,
        b.rejected_invalid,
        b.expired_in_queue,
        b.late_responses,
        b.panics_quarantined,
        b.batches,
        b.responses,
        b.batch_reads,
        b.max_queue_depth,
        b.max_inflight_bytes,
        json_f64(rps),
        json_f64(mean_width),
        b.latency.count(),
        json_f64(b.latency.mean_ns()),
        b.latency.quantile_upper_ns(0.50),
        b.latency.quantile_upper_ns(0.90),
        b.latency.quantile_upper_ns(0.99),
        b.latency.max_ns(),
        i = indent,
    )
}

/// The slow-request log as a JSON array (shared by the stats snapshot
/// and the metrics `obs` section).
pub(crate) fn slow_json(slow: &[SlowRequest], indent: &str) -> String {
    if slow.is_empty() {
        return "[]".to_string();
    }
    let rows: Vec<String> = slow
        .iter()
        .map(|s| {
            format!(
                "{indent}  {{ \"trace_id\": {}, \"req_id\": {}, \"total_ns\": {}, \
                 \"admit_ns\": {}, \"queued_ns\": {}, \"batched_ns\": {}, \"aligned_ns\": {}, \
                 \"respond_ns\": {} }}",
                s.trace_id,
                s.req_id,
                s.total_ns,
                s.admit_ns,
                s.queued_ns,
                s.batched_ns,
                s.aligned_ns,
                s.respond_ns
            )
        })
        .collect();
    format!("[\n{}\n{indent}]", rows.join(",\n"))
}

/// Re-indents a multi-line JSON block so it nests under `indent`.
fn indent_block(json: &str, indent: &str) -> String {
    json.trim_end()
        .lines()
        .enumerate()
        .map(|(i, line)| {
            if i == 0 {
                line.to_string()
            } else {
                format!("{indent}{line}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Emits one structured `key=value` log record on stderr:
/// `pimserve: event=<event> k=v ...`. Values containing whitespace or
/// quotes are debug-quoted so every record stays a single greppable
/// line, joinable with trace spans via `trace_id=`/`req_id=` keys.
pub fn log_kv(event: &str, fields: &[(&str, String)]) {
    let mut line = format!("pimserve: event={event}");
    for (key, value) in fields {
        let needs_quoting =
            value.is_empty() || value.contains(|c: char| c.is_whitespace() || c == '"');
        if needs_quoting {
            line.push_str(&format!(" {key}={value:?}"));
        } else {
            line.push_str(&format!(" {key}={value}"));
        }
    }
    eprintln!("{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG so property-style tests need no rand dep.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    fn random_bucket(rng: &mut Lcg) -> ObsBucket {
        let mut b = ObsBucket {
            received: rng.next() % 100,
            accepted: rng.next() % 100,
            shed_queue_full: rng.next() % 10,
            shed_inflight_bytes: rng.next() % 10,
            rejected_draining: rng.next() % 10,
            rejected_invalid: rng.next() % 10,
            expired_in_queue: rng.next() % 10,
            late_responses: rng.next() % 10,
            panics_quarantined: rng.next() % 3,
            batches: rng.next() % 20,
            responses: rng.next() % 100,
            batch_reads: rng.next() % 400,
            max_queue_depth: rng.next() % 64,
            max_inflight_bytes: rng.next() % 4096,
            latency: HostHistogram::new(),
        };
        for _ in 0..rng.next() % 8 {
            b.latency.record_ns(rng.next() % 1_000_000);
        }
        b
    }

    #[test]
    fn bucket_merge_is_associative_and_commutative() {
        let mut rng = Lcg(4207);
        for _ in 0..64 {
            let (a, b, c) = (
                random_bucket(&mut rng),
                random_bucket(&mut rng),
                random_bucket(&mut rng),
            );
            // (a ⊕ b) ⊕ c
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            // a ⊕ (b ⊕ c)
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right, "merge must be associative");
            // a ⊕ b == b ⊕ a
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "merge must be commutative");
        }
    }

    #[test]
    fn ring_cumulative_survives_eviction_exactly() {
        let mut rng = Lcg(99);
        let mut ring = BucketRing::new(8);
        let mut oracle = ObsBucket::default();
        // 200 seconds of traffic through an 8-second ring: most buckets
        // get evicted, the cumulative aggregate must not lose a single
        // event.
        for sec in 0..200u64 {
            let events = rng.next() % 5;
            for _ in 0..events {
                let bucket = ring.bucket_at(sec);
                bucket.accepted += 1;
                bucket.responses += 1;
                bucket.latency.record_ns(rng.next() % 10_000);
                oracle.accepted += 1;
                oracle.responses += 1;
            }
        }
        let cum = ring.cumulative();
        assert_eq!(cum.accepted, oracle.accepted);
        assert_eq!(cum.responses, oracle.responses);
        assert_eq!(cum.latency.count(), oracle.responses);
        assert!(ring.retired_count() > 0, "eviction must have happened");
    }

    #[test]
    fn window_view_filters_stale_slots() {
        let mut ring = BucketRing::new(60);
        ring.bucket_at(3).accepted += 7;
        // 100 quiet seconds later the slot for sec 3 still physically
        // holds its bucket, but no trailing window may count it.
        let now = 103;
        assert_eq!(ring.window_view(now, 1).accepted, 0);
        assert_eq!(ring.window_view(now, 60).accepted, 0);
        assert_eq!(ring.cumulative().accepted, 7);
        // At sec 3 itself every window sees it.
        assert_eq!(ring.window_view(3, 1).accepted, 7);
    }

    #[test]
    fn obs_state_reconciles_windows_with_lifetime() {
        let obs = ObsState::new(60, 0);
        obs.received();
        obs.accepted(3, 1024);
        obs.not_admitted(ShedReason::QueueFull);
        obs.not_admitted(ShedReason::Invalid);
        obs.batch(2);
        obs.response(
            false,
            SlowRequest {
                trace_id: 1,
                req_id: 10,
                total_ns: 5_000,
                ..SlowRequest::default()
            },
        );
        obs.response(
            true,
            SlowRequest {
                trace_id: 2,
                req_id: 11,
                total_ns: 9_000,
                ..SlowRequest::default()
            },
        );
        let lifetime = obs.lifetime();
        let doc = obs.stats_json(&lifetime, 1, 64);
        // The snapshot must carry every section.
        for key in [
            "\"service\"",
            "\"cumulative\"",
            "\"windows\"",
            "\"gauges\"",
            "\"watchdog\"",
            "\"slow\"",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
        assert_eq!(lifetime.received, 1);
        assert_eq!(lifetime.accepted, 1);
        assert_eq!(lifetime.shed_queue_full, 1);
        assert_eq!(lifetime.rejected_invalid, 1);
        assert_eq!(lifetime.responses, 2);
        assert_eq!(lifetime.late_responses, 1);
        // Cumulative view mirrors the lifetime counters exactly.
        let t = obs.telemetry();
        assert_eq!(t.slow.len(), 2);
        assert_eq!(t.slow[0].total_ns, 9_000, "slow log sorted descending");
    }

    #[test]
    fn slow_log_is_bounded_topk() {
        let obs = ObsState::new(60, 0);
        for i in 0..(SLOW_LOG_CAPACITY as u64 + 20) {
            obs.response(
                false,
                SlowRequest {
                    trace_id: i,
                    req_id: i,
                    total_ns: i * 100,
                    ..SlowRequest::default()
                },
            );
        }
        let t = obs.telemetry();
        assert_eq!(t.slow.len(), SLOW_LOG_CAPACITY);
        // The kept entries are the slowest ones, descending.
        let worst = (SLOW_LOG_CAPACITY as u64 + 19) * 100;
        assert_eq!(t.slow[0].total_ns, worst);
        assert!(t.slow.windows(2).all(|w| w[0].total_ns >= w[1].total_ns));
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let obs = ObsState::new(60, 1000);
        obs.received();
        obs.accepted(1, 48);
        obs.response(
            false,
            SlowRequest {
                trace_id: 1,
                req_id: 1,
                total_ns: 123_456,
                ..SlowRequest::default()
            },
        );
        let text = obs.prometheus_text(&obs.lifetime(), 0, 0);
        let mut samples = 0;
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment line: {line}"
                );
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("sample has value");
            let name = name_part.split('{').next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name: {name}"
            );
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "bad sample value: {line}"
            );
            samples += 1;
        }
        assert!(samples >= 10, "expected a real exposition, got {samples}");
        assert!(text.contains("pimserve_request_latency_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("pimserve_request_latency_seconds_count 1"));
    }

    #[test]
    fn log_kv_quotes_values_with_spaces() {
        // Only shape-checkable indirectly; exercise the quoting branch
        // by formatting the same way log_kv does.
        let v = "bind failed: address in use".to_string();
        assert!(v.contains(' '));
        let formatted = format!("{v:?}");
        assert!(formatted.starts_with('"') && formatted.ends_with('"'));
    }

    /// Builds a bucket from 14 counter seeds and a latency sample list,
    /// shared by the merge-law properties below.
    fn bucket_from(seeds: &[u16], samples: &[u64]) -> ObsBucket {
        let s = |i: usize| u64::from(seeds[i]);
        let mut b = ObsBucket {
            received: s(0),
            accepted: s(1),
            shed_queue_full: s(2),
            shed_inflight_bytes: s(3),
            rejected_draining: s(4),
            rejected_invalid: s(5),
            expired_in_queue: s(6),
            late_responses: s(7),
            panics_quarantined: s(8),
            batches: s(9),
            responses: s(10),
            batch_reads: s(11),
            max_queue_depth: s(12),
            max_inflight_bytes: s(13),
            latency: HostHistogram::default(),
        };
        for &ns in samples {
            b.latency.record_ns(ns);
        }
        b
    }

    mod properties {
        use proptest::collection::vec;
        use proptest::prelude::*;

        use super::*;

        proptest! {
            #[test]
            fn bucket_merge_is_associative(
                sa in vec(any::<u16>(), 14), la in vec(0u64..10_000_000_000, 0..16),
                sb in vec(any::<u16>(), 14), lb in vec(0u64..10_000_000_000, 0..16),
                sc in vec(any::<u16>(), 14), lc in vec(0u64..10_000_000_000, 0..16)
            ) {
                let (a, b, c) = (
                    bucket_from(&sa, &la),
                    bucket_from(&sb, &lb),
                    bucket_from(&sc, &lc),
                );
                let mut left = a.clone();
                left.merge(&b);
                left.merge(&c);
                let mut bc = b.clone();
                bc.merge(&c);
                let mut right = a;
                right.merge(&bc);
                prop_assert_eq!(left, right);
            }

            #[test]
            fn bucket_merge_is_commutative(
                sa in vec(any::<u16>(), 14), la in vec(0u64..10_000_000_000, 0..16),
                sb in vec(any::<u16>(), 14), lb in vec(0u64..10_000_000_000, 0..16)
            ) {
                let (a, b) = (bucket_from(&sa, &la), bucket_from(&sb, &lb));
                let mut ab = a.clone();
                ab.merge(&b);
                let mut ba = b;
                ba.merge(&a);
                prop_assert_eq!(ab, ba);
            }

            /// Whatever second each event lands on — including seconds
            /// far enough apart to evict every live slot many times over
            /// — the ring's `retired ⊕ live` aggregate equals the
            /// straight lifetime sum. This is the exact-reconciliation
            /// law the Stats snapshot and the obs CI gate rely on.
            #[test]
            fn ring_cumulative_equals_lifetime_for_any_event_schedule(
                secs in vec(0u64..500, 1..200),
                kinds in vec(0usize..4, 1..200)
            ) {
                let mut ring = BucketRing::new(8);
                let mut lifetime = ObsBucket::default();
                for (&sec, &kind) in secs.iter().zip(&kinds) {
                    let b = ring.bucket_at(sec);
                    match kind {
                        0 => { b.received += 1; lifetime.received += 1; }
                        1 => { b.accepted += 1; lifetime.accepted += 1; }
                        2 => {
                            b.responses += 1;
                            b.latency.record_ns(sec * 1_000 + 1);
                            lifetime.responses += 1;
                            lifetime.latency.record_ns(sec * 1_000 + 1);
                        }
                        _ => { b.batches += 1; b.batch_reads += 7;
                               lifetime.batches += 1; lifetime.batch_reads += 7; }
                    }
                }
                let cumulative = ring.cumulative();
                prop_assert_eq!(cumulative.received, lifetime.received);
                prop_assert_eq!(cumulative.accepted, lifetime.accepted);
                prop_assert_eq!(cumulative.responses, lifetime.responses);
                prop_assert_eq!(cumulative.batches, lifetime.batches);
                prop_assert_eq!(cumulative.batch_reads, lifetime.batch_reads);
                prop_assert_eq!(cumulative.latency.count(), lifetime.latency.count());
                prop_assert_eq!(cumulative.latency.sum_ns(), lifetime.latency.sum_ns());
            }
        }
    }
}
