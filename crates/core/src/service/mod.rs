//! Alignment-as-a-service: the overload-safe daemon core behind the
//! `pimserve` binary (DESIGN.md §13).
//!
//! One warm [`Platform`](crate::Platform) is shared by a small set of
//! blocking threads that together make the service robust under load
//! rather than merely fast when idle:
//!
//! * [`protocol`] — the length-prefixed wire format and a blocking
//!   [`Client`](protocol::Client) shared by server, `loadgen` and tests;
//! * [`queue`] — the bounded, byte-accounted admission queue with
//!   load-shedding and an arrival-rate-adaptive batch take;
//! * [`server`] — acceptor/readers/batcher threads, per-request
//!   deadlines, `catch_unwind` panic quarantine and graceful drain;
//! * [`obs`] — the live observability plane: rolling-window per-second
//!   telemetry buckets, request-scoped trace ids + slow-request log,
//!   the `Stats`/`Prom` live exposition and the batcher-stall watchdog.
//!
//! Everything the control plane decides is counted in
//! [`ServiceTelemetry`](crate::ServiceTelemetry) and lands in the
//! metrics JSON's `service` section, so the SLO story is measurable —
//! and, since PR 10, observable live over the wire mid-run.

use std::error::Error;
use std::fmt;

pub mod obs;
pub mod protocol;
pub mod queue;
pub mod server;

pub use server::{serve, ServeSummary, ServerHandle};

/// Limits and behaviour knobs for one serving run.
///
/// Validation is strict — a queue that can hold nothing or a pool with
/// no threads is a configuration error to reject up front
/// ([`ServiceConfig::validate`]), not a downstream panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads per alignment batch.
    pub threads: usize,
    /// Most reads coalesced into one `align_chunk_parallel` call.
    pub batch_max: usize,
    /// Bounded admission queue depth.
    pub queue_depth: usize,
    /// In-flight payload byte budget (admitted but unanswered).
    pub max_inflight_bytes: usize,
    /// Server-side default deadline applied to requests that carry none
    /// (milliseconds; 0 = no default).
    pub default_deadline_ms: u32,
    /// Base of the retry-after hint on shed rejections.
    pub retry_after_base_ms: u32,
    /// Try the reverse complement when the forward strand fails.
    pub both_strands: bool,
    /// Enable the deterministic test-fault hooks (`__panic__`,
    /// `__stall_ms_N__` read ids). Never enable in production.
    pub test_faults: bool,
    /// Rolling-window ring capacity for the observability plane,
    /// seconds (`--obs-window`).
    pub obs_window_secs: u32,
    /// Watchdog head-of-queue stall threshold, milliseconds
    /// (`--watchdog-ms`; 0 disables the watchdog thread).
    pub watchdog_threshold_ms: u32,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            threads: 2,
            batch_max: 64,
            queue_depth: 256,
            max_inflight_bytes: 8 << 20,
            default_deadline_ms: 0,
            retry_after_base_ms: 20,
            both_strands: true,
            test_faults: false,
            obs_window_secs: obs::DEFAULT_OBS_WINDOW_SECS,
            watchdog_threshold_ms: obs::DEFAULT_WATCHDOG_THRESHOLD_MS,
        }
    }
}

impl ServiceConfig {
    /// Rejects configurations that cannot serve.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.threads == 0 {
            return Err(ServiceError::InvalidConfig(
                "--threads must be at least 1".to_owned(),
            ));
        }
        if self.batch_max == 0 {
            return Err(ServiceError::InvalidConfig(
                "--batch-max must be at least 1".to_owned(),
            ));
        }
        if self.queue_depth == 0 {
            return Err(ServiceError::InvalidConfig(
                "--queue-depth must be at least 1 (a zero-depth queue admits nothing)".to_owned(),
            ));
        }
        if self.max_inflight_bytes == 0 {
            return Err(ServiceError::InvalidConfig(
                "--max-inflight-bytes must be positive".to_owned(),
            ));
        }
        if self.obs_window_secs == 0 || self.obs_window_secs > 3600 {
            return Err(ServiceError::InvalidConfig(
                "--obs-window must be between 1 and 3600 seconds".to_owned(),
            ));
        }
        Ok(())
    }
}

/// Why the service could not start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// A configuration knob fails validation (usage error: fix the
    /// flags).
    InvalidConfig(String),
    /// The listener could not bind (environment error).
    Bind {
        /// The requested listen address.
        addr: String,
        /// The OS error text.
        message: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::InvalidConfig(msg) => write!(f, "invalid service configuration: {msg}"),
            ServiceError::Bind { addr, message } => {
                write!(f, "cannot bind {addr}: {message}")
            }
        }
    }
}

impl Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert_eq!(ServiceConfig::default().validate(), Ok(()));
    }

    #[test]
    fn zero_knobs_are_rejected_with_named_flags() {
        for (field, patch) in [
            (
                "--threads",
                &(|c: &mut ServiceConfig| c.threads = 0) as &dyn Fn(&mut ServiceConfig),
            ),
            ("--batch-max", &|c: &mut ServiceConfig| c.batch_max = 0),
            ("--queue-depth", &|c: &mut ServiceConfig| c.queue_depth = 0),
            ("--max-inflight-bytes", &|c: &mut ServiceConfig| {
                c.max_inflight_bytes = 0
            }),
            ("--obs-window", &|c: &mut ServiceConfig| {
                c.obs_window_secs = 0
            }),
        ] {
            let mut config = ServiceConfig::default();
            patch(&mut config);
            let err = config.validate().unwrap_err();
            match err {
                ServiceError::InvalidConfig(msg) => {
                    assert!(msg.contains(field), "{field} missing from {msg:?}")
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn bind_error_names_the_address() {
        let e = ServiceError::Bind {
            addr: "127.0.0.1:1".to_owned(),
            message: "permission denied".to_owned(),
        };
        let msg = e.to_string();
        assert!(msg.contains("127.0.0.1:1"));
        assert!(msg.contains("permission denied"));
    }
}
