//! The `pimserve` wire protocol: length-prefixed frames with typed
//! request/response payloads (DESIGN.md §13.1).
//!
//! The vendor tree is offline — no HTTP stack — so the daemon speaks a
//! hand-rolled binary protocol over plain TCP. Every message is one
//! *frame*: a big-endian `u32` payload length followed by that many
//! payload bytes, capped at [`MAX_FRAME_BYTES`] so a corrupt or hostile
//! length prefix cannot make the server allocate unbounded memory.
//!
//! Request payloads start with a one-byte opcode (`Align`/`Drain`/
//! `Stats`/`Prom`); response payloads start with the echoed `req_id` followed
//! by a one-byte status. Responses may arrive out of order relative to
//! pipelined requests — the `req_id` is the correlation key — which is
//! what lets the batcher answer whole coalesced batches without
//! per-connection ordering barriers.
//!
//! Both sides of the conversation (server, `loadgen`, tests) share the
//! encoders/decoders here, so a framing change cannot silently desync
//! them.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Hard cap on one frame's payload size. Large enough for any plausible
/// read (reference chunks never travel over this protocol), small enough
/// that a garbage length prefix fails fast instead of OOMing the server.
pub const MAX_FRAME_BYTES: usize = 4 << 20;

/// Opcode bytes (first payload byte of every request).
const OP_ALIGN: u8 = 1;
const OP_DRAIN: u8 = 2;
const OP_STATS: u8 = 3;
const OP_PROM: u8 = 4;

/// Status bytes (ninth payload byte of every response, after `req_id`).
const ST_ALIGNED: u8 = 0;
const ST_OVERLOADED: u8 = 1;
const ST_DEADLINE: u8 = 2;
const ST_INVALID: u8 = 3;
const ST_PANIC: u8 = 4;
const ST_DRAINING: u8 = 5;
const ST_DRAIN_STARTED: u8 = 6;
const ST_STATS: u8 = 7;
const ST_PROM: u8 = 8;

/// A malformed frame payload (unknown opcode/status, truncated fields,
/// bad UTF-8). The connection that produced it is answered with a typed
/// `Invalid` response or closed; the server never panics on wire input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    message: String,
}

impl ProtocolError {
    fn new(message: impl Into<String>) -> ProtocolError {
        ProtocolError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.message)
    }
}

impl Error for ProtocolError {}

/// One alignment request: the client-chosen correlation id, a relative
/// deadline (0 = none; the server may impose its own default), the read
/// id (diagnostics and test-fault hooks) and the read sequence as text
/// (the server parses and rejects invalid bases with a typed response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignRequest {
    /// Client-chosen correlation id, echoed on the response.
    pub req_id: u64,
    /// Relative deadline in milliseconds from admission; 0 = none.
    pub deadline_ms: u32,
    /// Read identifier (shown in diagnostics; not interpreted, except by
    /// the opt-in test-fault hooks).
    pub id: String,
    /// The read sequence, A/C/G/T text.
    pub seq: String,
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Align one read.
    Align(AlignRequest),
    /// Begin graceful drain: stop admissions, flush in-flight requests,
    /// then shut the server down.
    Drain {
        /// Correlation id for the `DrainStarted` acknowledgement.
        req_id: u64,
    },
    /// Snapshot the live observability plane as JSON (lifetime service
    /// counters, windowed views, watchdog, slow log). Answered inline
    /// by connection readers — never queued, never shed.
    Stats {
        /// Correlation id for the `Stats` response.
        req_id: u64,
    },
    /// The same live snapshot as a Prometheus text-format exposition.
    /// Answered inline like `Stats`.
    Prom {
        /// Correlation id for the `Prom` response.
        req_id: u64,
    },
}

/// Why admission control shed a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue was at its depth limit.
    QueueDepth,
    /// In-flight payload bytes were at their limit.
    InflightBytes,
}

/// The alignment outcome carried by an `Aligned` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlignStatus {
    /// The read mapped at the given 0-based reference positions.
    Mapped {
        /// `true` when the reverse complement mapped.
        reverse: bool,
        /// Differences tolerated by the stage that found it (0 = exact).
        diffs: u8,
        /// Matching 0-based reference positions.
        positions: Vec<u64>,
    },
    /// No placement within the configured difference budget.
    Unmapped,
}

/// A server response, correlated to its request by `req_id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The read was aligned (possibly to "unmapped" — that is still a
    /// successful service outcome).
    Aligned {
        /// Echoed correlation id.
        req_id: u64,
        /// The alignment outcome.
        status: AlignStatus,
    },
    /// Load-shed at admission; retry after the hinted backoff.
    Overloaded {
        /// Echoed correlation id.
        req_id: u64,
        /// Suggested client backoff before retrying.
        retry_after_ms: u32,
        /// Which limit shed the request.
        reason: ShedReason,
    },
    /// The deadline expired while the request waited in the queue.
    DeadlineExceeded {
        /// Echoed correlation id.
        req_id: u64,
    },
    /// The request was malformed (bad sequence, bad frame).
    Invalid {
        /// Echoed correlation id (0 when the frame was too corrupt to
        /// carry one).
        req_id: u64,
        /// Human-readable diagnostic.
        message: String,
    },
    /// The read's alignment panicked; the read is quarantined and the
    /// worker pool is still alive.
    WorkerPanic {
        /// Echoed correlation id.
        req_id: u64,
        /// Human-readable diagnostic.
        message: String,
    },
    /// Rejected because the server is draining.
    Draining {
        /// Echoed correlation id.
        req_id: u64,
    },
    /// Acknowledges a `Drain` request: admissions are stopped.
    DrainStarted {
        /// Echoed correlation id.
        req_id: u64,
    },
    /// Live observability snapshot.
    Stats {
        /// Echoed correlation id.
        req_id: u64,
        /// The live obs snapshot as JSON (`service`, `cumulative`,
        /// `windows`, `gauges`, `watchdog`, `slow` sections).
        json: String,
    },
    /// Live observability snapshot, Prometheus text format.
    Prom {
        /// Echoed correlation id.
        req_id: u64,
        /// Prometheus text-format exposition (version 0.0.4).
        text: String,
    },
}

impl Response {
    /// The correlation id this response answers.
    pub fn req_id(&self) -> u64 {
        match *self {
            Response::Aligned { req_id, .. }
            | Response::Overloaded { req_id, .. }
            | Response::DeadlineExceeded { req_id }
            | Response::Invalid { req_id, .. }
            | Response::WorkerPanic { req_id, .. }
            | Response::Draining { req_id }
            | Response::DrainStarted { req_id }
            | Response::Stats { req_id, .. }
            | Response::Prom { req_id, .. } => req_id,
        }
    }
}

/// Writes one frame (length prefix + payload).
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME_BYTES`] as
/// [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame payload {} exceeds cap {MAX_FRAME_BYTES}",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame payload; `Ok(None)` on clean EOF at a frame boundary.
///
/// # Errors
///
/// Propagates I/O errors; an EOF mid-frame is
/// [`io::ErrorKind::UnexpectedEof`]; a length prefix over
/// [`MAX_FRAME_BYTES`] is [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf)? {
        0 => return Ok(None),
        n => r.read_exact(&mut len_buf[n..])?,
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME_BYTES}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Little cursor over a payload slice for the decoders.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ProtocolError::new("truncated payload"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self, len: usize) -> Result<String, ProtocolError> {
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| ProtocolError::new("non-UTF-8 string field"))
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::new("trailing bytes after payload"))
        }
    }
}

/// Encodes a request payload (frame it with [`write_frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Align(a) => {
            out.push(OP_ALIGN);
            out.extend_from_slice(&a.req_id.to_be_bytes());
            out.extend_from_slice(&a.deadline_ms.to_be_bytes());
            out.extend_from_slice(&(a.id.len() as u16).to_be_bytes());
            out.extend_from_slice(a.id.as_bytes());
            out.extend_from_slice(&(a.seq.len() as u32).to_be_bytes());
            out.extend_from_slice(a.seq.as_bytes());
        }
        Request::Drain { req_id } => {
            out.push(OP_DRAIN);
            out.extend_from_slice(&req_id.to_be_bytes());
        }
        Request::Stats { req_id } => {
            out.push(OP_STATS);
            out.extend_from_slice(&req_id.to_be_bytes());
        }
        Request::Prom { req_id } => {
            out.push(OP_PROM);
            out.extend_from_slice(&req_id.to_be_bytes());
        }
    }
    out
}

/// Decodes a request payload.
///
/// # Errors
///
/// [`ProtocolError`] on unknown opcodes, truncated fields, oversized
/// declared lengths, bad UTF-8 or trailing garbage.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    let mut c = Cursor::new(payload);
    let req = match c.u8()? {
        OP_ALIGN => {
            let req_id = c.u64()?;
            let deadline_ms = c.u32()?;
            let id_len = c.u16()? as usize;
            let id = c.string(id_len)?;
            let seq_len = c.u32()? as usize;
            let seq = c.string(seq_len)?;
            Request::Align(AlignRequest {
                req_id,
                deadline_ms,
                id,
                seq,
            })
        }
        OP_DRAIN => Request::Drain { req_id: c.u64()? },
        OP_STATS => Request::Stats { req_id: c.u64()? },
        OP_PROM => Request::Prom { req_id: c.u64()? },
        op => return Err(ProtocolError::new(format!("unknown opcode {op}"))),
    };
    c.finish()?;
    Ok(req)
}

fn shed_reason_byte(reason: ShedReason) -> u8 {
    match reason {
        ShedReason::QueueDepth => 0,
        ShedReason::InflightBytes => 1,
    }
}

/// Encodes a response payload (frame it with [`write_frame`]).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&resp.req_id().to_be_bytes());
    match resp {
        Response::Aligned { status, .. } => {
            out.push(ST_ALIGNED);
            match status {
                AlignStatus::Mapped {
                    reverse,
                    diffs,
                    positions,
                } => {
                    out.push(1);
                    out.push(u8::from(*reverse));
                    out.push(*diffs);
                    out.extend_from_slice(&(positions.len() as u32).to_be_bytes());
                    for p in positions {
                        out.extend_from_slice(&p.to_be_bytes());
                    }
                }
                AlignStatus::Unmapped => out.push(0),
            }
        }
        Response::Overloaded {
            retry_after_ms,
            reason,
            ..
        } => {
            out.push(ST_OVERLOADED);
            out.extend_from_slice(&retry_after_ms.to_be_bytes());
            out.push(shed_reason_byte(*reason));
        }
        Response::DeadlineExceeded { .. } => out.push(ST_DEADLINE),
        Response::Invalid { message, .. } => {
            out.push(ST_INVALID);
            out.extend_from_slice(&(message.len() as u16).to_be_bytes());
            out.extend_from_slice(message.as_bytes());
        }
        Response::WorkerPanic { message, .. } => {
            out.push(ST_PANIC);
            out.extend_from_slice(&(message.len() as u16).to_be_bytes());
            out.extend_from_slice(message.as_bytes());
        }
        Response::Draining { .. } => out.push(ST_DRAINING),
        Response::DrainStarted { .. } => out.push(ST_DRAIN_STARTED),
        Response::Stats { json, .. } => {
            out.push(ST_STATS);
            out.extend_from_slice(&(json.len() as u32).to_be_bytes());
            out.extend_from_slice(json.as_bytes());
        }
        Response::Prom { text, .. } => {
            out.push(ST_PROM);
            out.extend_from_slice(&(text.len() as u32).to_be_bytes());
            out.extend_from_slice(text.as_bytes());
        }
    }
    out
}

/// Decodes a response payload.
///
/// # Errors
///
/// [`ProtocolError`] on unknown status bytes, truncated fields, bad
/// UTF-8 or trailing garbage.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtocolError> {
    let mut c = Cursor::new(payload);
    let req_id = c.u64()?;
    let resp = match c.u8()? {
        ST_ALIGNED => {
            let status = match c.u8()? {
                0 => AlignStatus::Unmapped,
                1 => {
                    let reverse = c.u8()? != 0;
                    let diffs = c.u8()?;
                    let n = c.u32()? as usize;
                    let mut positions = Vec::with_capacity(n.min(4_096));
                    for _ in 0..n {
                        positions.push(c.u64()?);
                    }
                    AlignStatus::Mapped {
                        reverse,
                        diffs,
                        positions,
                    }
                }
                k => return Err(ProtocolError::new(format!("unknown mapped flag {k}"))),
            };
            Response::Aligned { req_id, status }
        }
        ST_OVERLOADED => {
            let retry_after_ms = c.u32()?;
            let reason = match c.u8()? {
                0 => ShedReason::QueueDepth,
                1 => ShedReason::InflightBytes,
                r => return Err(ProtocolError::new(format!("unknown shed reason {r}"))),
            };
            Response::Overloaded {
                req_id,
                retry_after_ms,
                reason,
            }
        }
        ST_DEADLINE => Response::DeadlineExceeded { req_id },
        ST_INVALID => {
            let len = c.u16()? as usize;
            Response::Invalid {
                req_id,
                message: c.string(len)?,
            }
        }
        ST_PANIC => {
            let len = c.u16()? as usize;
            Response::WorkerPanic {
                req_id,
                message: c.string(len)?,
            }
        }
        ST_DRAINING => Response::Draining { req_id },
        ST_DRAIN_STARTED => Response::DrainStarted { req_id },
        ST_STATS => {
            let len = c.u32()? as usize;
            Response::Stats {
                req_id,
                json: c.string(len)?,
            }
        }
        ST_PROM => {
            let len = c.u32()? as usize;
            Response::Prom {
                req_id,
                text: c.string(len)?,
            }
        }
        st => return Err(ProtocolError::new(format!("unknown status {st}"))),
    };
    c.finish()?;
    Ok(resp)
}

/// A blocking client for the `pimserve` protocol, shared by `loadgen`,
/// the CI smoke and the integration tests. One client owns one TCP
/// connection; requests may be pipelined (send several, then receive)
/// and responses are correlated by `req_id`.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Sends one request (non-blocking on the response).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        write_frame(&mut self.stream, &encode_request(req))
    }

    /// Receives one response; `Ok(None)` when the server closed the
    /// connection.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a malformed response payload surfaces as
    /// [`io::ErrorKind::InvalidData`].
    pub fn recv(&mut self) -> io::Result<Option<Response>> {
        match read_frame(&mut self.stream)? {
            None => Ok(None),
            Some(payload) => decode_response(&payload)
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        }
    }

    /// One blocking align round trip. Assumes no other request is in
    /// flight on this connection.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; an unexpected server close is
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn align(
        &mut self,
        req_id: u64,
        id: &str,
        seq: &str,
        deadline_ms: u32,
    ) -> io::Result<Response> {
        self.send(&Request::Align(AlignRequest {
            req_id,
            deadline_ms,
            id: id.to_owned(),
            seq: seq.to_owned(),
        }))?;
        self.recv()?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-request")
        })
    }

    /// Requests a graceful drain and waits for the acknowledgement.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn drain(&mut self, req_id: u64) -> io::Result<Option<Response>> {
        self.send(&Request::Drain { req_id })?;
        self.recv()
    }

    /// Fetches a live `Stats` snapshot and returns its JSON document.
    ///
    /// Answered inline by the server's connection reader — never queued
    /// — so this works mid-overload and mid-drain. Use a dedicated
    /// connection when another thread is receiving on this one.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; an unexpected server close or a non-Stats
    /// reply is [`io::ErrorKind::InvalidData`] / `UnexpectedEof`.
    pub fn stats(&mut self, req_id: u64) -> io::Result<String> {
        self.send(&Request::Stats { req_id })?;
        match self.recv()? {
            Some(Response::Stats { json, .. }) => Ok(json),
            Some(other) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Stats reply, got {other:?}"),
            )),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed mid-request",
            )),
        }
    }

    /// Fetches the Prometheus text exposition (the `Prom` verb).
    ///
    /// Like [`Client::stats`], answered inline and never shed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; an unexpected server close or a non-Prom
    /// reply is [`io::ErrorKind::InvalidData`] / `UnexpectedEof`.
    pub fn prom(&mut self, req_id: u64) -> io::Result<String> {
        self.send(&Request::Prom { req_id })?;
        match self.recv()? {
            Some(Response::Prom { text, .. }) => Ok(text),
            Some(other) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Prom reply, got {other:?}"),
            )),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed mid-request",
            )),
        }
    }

    /// A second handle on the same connection (e.g. a dedicated receiver
    /// thread while this one keeps sending).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn try_clone(&self) -> io::Result<Client> {
        Ok(Client {
            stream: self.stream.try_clone()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let decoded = decode_request(&encode_request(&req)).expect("decodes");
        assert_eq!(decoded, req);
    }

    fn round_trip_response(resp: Response) {
        let decoded = decode_response(&encode_response(&resp)).expect("decodes");
        assert_eq!(decoded, resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Align(AlignRequest {
            req_id: 42,
            deadline_ms: 250,
            id: "read-1".to_owned(),
            seq: "ACGTACGT".to_owned(),
        }));
        round_trip_request(Request::Align(AlignRequest {
            req_id: u64::MAX,
            deadline_ms: 0,
            id: String::new(),
            seq: "A".to_owned(),
        }));
        round_trip_request(Request::Drain { req_id: 7 });
        round_trip_request(Request::Stats { req_id: 8 });
        round_trip_request(Request::Prom { req_id: 9 });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Aligned {
            req_id: 1,
            status: AlignStatus::Mapped {
                reverse: true,
                diffs: 2,
                positions: vec![0, 17, u64::MAX],
            },
        });
        round_trip_response(Response::Aligned {
            req_id: 2,
            status: AlignStatus::Unmapped,
        });
        round_trip_response(Response::Overloaded {
            req_id: 3,
            retry_after_ms: 40,
            reason: ShedReason::QueueDepth,
        });
        round_trip_response(Response::Overloaded {
            req_id: 4,
            retry_after_ms: 1,
            reason: ShedReason::InflightBytes,
        });
        round_trip_response(Response::DeadlineExceeded { req_id: 5 });
        round_trip_response(Response::Invalid {
            req_id: 6,
            message: "bad base 'N'".to_owned(),
        });
        round_trip_response(Response::WorkerPanic {
            req_id: 7,
            message: "poisoned read".to_owned(),
        });
        round_trip_response(Response::Draining { req_id: 8 });
        round_trip_response(Response::DrainStarted { req_id: 9 });
        round_trip_response(Response::Stats {
            req_id: 10,
            json: "{\"received\": 3}".to_owned(),
        });
        round_trip_response(Response::Prom {
            req_id: 11,
            text: "# TYPE pimserve_queue_depth gauge\npimserve_queue_depth 0\n".to_owned(),
        });
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_request(&[]).is_err(), "empty payload");
        assert!(decode_request(&[99]).is_err(), "unknown opcode");
        assert!(decode_response(&[0; 8]).is_err(), "missing status byte");
        assert!(
            decode_response(&[0, 0, 0, 0, 0, 0, 0, 0, 200]).is_err(),
            "unknown status"
        );
        // Truncated declared length.
        let mut p = encode_request(&Request::Align(AlignRequest {
            req_id: 1,
            deadline_ms: 0,
            id: "r".to_owned(),
            seq: "ACGT".to_owned(),
        }));
        p.truncate(p.len() - 2);
        assert!(decode_request(&p).is_err(), "truncated sequence");
        // Trailing garbage.
        let mut p = encode_request(&Request::Drain { req_id: 1 });
        p.push(0);
        assert!(decode_request(&p).is_err(), "trailing byte");
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean_only_at_boundary() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");

        // EOF mid-frame is an error, not a silent truncation.
        let mut torn = Vec::new();
        write_frame(&mut torn, b"abcdef").unwrap();
        torn.truncate(torn.len() - 3);
        let mut r = torn.as_slice();
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_frames_are_rejected_both_ways() {
        let big = vec![0u8; MAX_FRAME_BYTES + 1];
        let mut sink = Vec::new();
        assert_eq!(
            write_frame(&mut sink, &big).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        // A hostile length prefix is rejected before any allocation.
        let wire = u32::MAX.to_be_bytes();
        let mut r = &wire[..];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
