//! The bounded admission queue behind `pimserve` (DESIGN.md §13.2).
//!
//! Admission control is the robustness core of the service: every
//! accepted request charges its payload bytes against an in-flight
//! budget and occupies one slot of a bounded queue. When either limit
//! is hit the request is *shed* — a fast typed rejection with a
//! retry-after hint — instead of growing server memory without bound.
//! The two limits fail differently on purpose: queue depth bounds
//! *latency* (a deep queue is a deadline-miss factory), in-flight bytes
//! bound *memory* (a few giant reads can be worth a thousand small
//! ones).
//!
//! The queue is also the batcher's arrival-rate sensor: an EWMA of
//! accepted inter-arrival times lets [`AdmissionQueue::take_batch`]
//! linger briefly for more arrivals when traffic is dense (bigger
//! coalesced batches amortise the parallel-region overhead) and hand
//! out singletons immediately when traffic is sparse (no idle latency
//! tax).
//!
//! The queue is generic over the queued item so it unit-tests without a
//! socket in sight; the server queues its pending-request records.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long `take_batch` is willing to linger for more arrivals when
/// the arrival rate suggests a fuller batch is imminent.
const LINGER_WINDOW: Duration = Duration::from_millis(2);

/// Condvar re-check slice while lingering or idle.
const WAIT_SLICE: Duration = Duration::from_millis(1);

/// EWMA smoothing factor for accepted inter-arrival times.
const EWMA_ALPHA: f64 = 0.2;

/// The admission limits and shed hint for a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueLimits {
    /// Maximum queued (admitted, not yet batched) requests.
    pub depth: usize,
    /// Maximum payload bytes admitted but not yet answered.
    pub max_inflight_bytes: usize,
    /// Base of the retry-after hint returned with shed rejections.
    pub retry_after_base_ms: u32,
}

/// Admission verdict for one offered item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Accepted: the item is queued and its bytes are charged until
    /// [`AdmissionQueue::release`].
    Accepted,
    /// Shed: the queue is at its depth limit.
    ShedDepth {
        /// Suggested client backoff.
        retry_after_ms: u32,
    },
    /// Shed: the in-flight byte budget is exhausted.
    ShedBytes {
        /// Suggested client backoff.
        retry_after_ms: u32,
    },
    /// Rejected: the server is draining and admits nothing new.
    Draining,
}

#[derive(Debug)]
struct State<T> {
    /// `(item, cost_bytes, arrival)` — the arrival instant feeds the
    /// watchdog's head-of-queue age probe.
    queue: VecDeque<(T, usize, Instant)>,
    inflight_bytes: usize,
    draining: bool,
    peak_depth: usize,
    peak_inflight_bytes: usize,
    ewma_interarrival_ns: f64,
    last_arrival: Option<Instant>,
}

/// A bounded, drain-aware MPSC admission queue with byte accounting and
/// an arrival-rate-adaptive batch take.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    limits: QueueLimits,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue with the given limits.
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `max_inflight_bytes` is zero — a zero-size
    /// queue admits nothing and is a configuration error the CLI layer
    /// must reject first.
    pub fn new(limits: QueueLimits) -> AdmissionQueue<T> {
        assert!(limits.depth > 0, "queue depth must be positive");
        assert!(
            limits.max_inflight_bytes > 0,
            "in-flight byte budget must be positive"
        );
        AdmissionQueue {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                inflight_bytes: 0,
                draining: false,
                peak_depth: 0,
                peak_inflight_bytes: 0,
                ewma_interarrival_ns: 0.0,
                last_arrival: None,
            }),
            ready: Condvar::new(),
            limits,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // The mutex only guards plain data updates; a poisoned lock
        // means a panic mid-update, which the service treats as fatal.
        self.state.lock().expect("admission queue lock poisoned")
    }

    /// Backoff hint scaled by how saturated admission currently is.
    fn retry_after_ms(&self, s: &State<T>) -> u32 {
        let base = self.limits.retry_after_base_ms.max(1);
        let depth_pressure = (s.queue.len() / self.limits.depth.max(1)) as u32;
        let byte_pressure = (s.inflight_bytes / self.limits.max_inflight_bytes.max(1)) as u32;
        base * (1 + depth_pressure + byte_pressure)
    }

    /// Offers one item costing `cost_bytes` of the in-flight budget.
    /// Anything but [`Admit::Accepted`] means the item was NOT queued
    /// and nothing was charged.
    pub fn offer(&self, item: T, cost_bytes: usize) -> Admit {
        let mut s = self.lock();
        if s.draining {
            return Admit::Draining;
        }
        if s.queue.len() >= self.limits.depth {
            return Admit::ShedDepth {
                retry_after_ms: self.retry_after_ms(&s),
            };
        }
        if s.inflight_bytes.saturating_add(cost_bytes) > self.limits.max_inflight_bytes {
            return Admit::ShedBytes {
                retry_after_ms: self.retry_after_ms(&s),
            };
        }
        let now = Instant::now();
        if let Some(last) = s.last_arrival {
            let gap = now.duration_since(last).as_nanos() as f64;
            s.ewma_interarrival_ns = if s.ewma_interarrival_ns == 0.0 {
                gap
            } else {
                EWMA_ALPHA * gap + (1.0 - EWMA_ALPHA) * s.ewma_interarrival_ns
            };
        }
        s.last_arrival = Some(now);
        s.queue.push_back((item, cost_bytes, now));
        s.inflight_bytes += cost_bytes;
        s.peak_depth = s.peak_depth.max(s.queue.len());
        s.peak_inflight_bytes = s.peak_inflight_bytes.max(s.inflight_bytes);
        drop(s);
        self.ready.notify_one();
        Admit::Accepted
    }

    /// Expected arrivals within the linger window at the current EWMA
    /// rate, clamped to `[1, batch_max]`.
    fn adaptive_target(&self, s: &State<T>, batch_max: usize) -> usize {
        if s.ewma_interarrival_ns <= 0.0 {
            return 1;
        }
        let expected = LINGER_WINDOW.as_nanos() as f64 / s.ewma_interarrival_ns;
        (expected as usize).clamp(1, batch_max)
    }

    /// Takes the next batch (up to `batch_max` items), blocking until at
    /// least one item is available. Under dense arrivals it lingers up
    /// to [`LINGER_WINDOW`] waiting for the adaptive target to fill;
    /// under sparse arrivals it returns singletons immediately. Returns
    /// `None` exactly once the queue is draining *and* empty — the
    /// batcher's signal to flush and exit.
    pub fn take_batch(&self, batch_max: usize) -> Option<Vec<T>> {
        let batch_max = batch_max.max(1);
        let mut s = self.lock();
        loop {
            if s.queue.is_empty() {
                if s.draining {
                    return None;
                }
                let (next, _) = self
                    .ready
                    .wait_timeout(s, WAIT_SLICE)
                    .expect("admission queue lock poisoned");
                s = next;
                continue;
            }
            let target = self.adaptive_target(&s, batch_max);
            let linger_deadline = Instant::now() + LINGER_WINDOW;
            while s.queue.len() < target && !s.draining && Instant::now() < linger_deadline {
                let (next, _) = self
                    .ready
                    .wait_timeout(s, WAIT_SLICE)
                    .expect("admission queue lock poisoned");
                s = next;
            }
            let n = s.queue.len().min(batch_max);
            let batch = s.queue.drain(..n).map(|(item, _, _)| item).collect();
            return Some(batch);
        }
    }

    /// Returns `cost_bytes` to the in-flight budget once the item's
    /// response has been written.
    pub fn release(&self, cost_bytes: usize) {
        let mut s = self.lock();
        s.inflight_bytes = s.inflight_bytes.saturating_sub(cost_bytes);
    }

    /// Stops admissions; queued items still drain through `take_batch`.
    pub fn begin_drain(&self) {
        self.lock().draining = true;
        self.ready.notify_all();
    }

    /// `true` once [`AdmissionQueue::begin_drain`] has run.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Currently queued items.
    pub fn depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// Currently charged in-flight bytes.
    pub fn inflight_bytes(&self) -> usize {
        self.lock().inflight_bytes
    }

    /// High-water marks `(queue depth, in-flight bytes)` over the
    /// queue's lifetime.
    pub fn peaks(&self) -> (usize, usize) {
        let s = self.lock();
        (s.peak_depth, s.peak_inflight_bytes)
    }

    /// How long the oldest queued item has been waiting (`None` when
    /// empty). The watchdog's stall probe: a head that only ages means
    /// the batcher stopped taking.
    pub fn head_age(&self) -> Option<Duration> {
        let s = self.lock();
        s.queue.front().map(|&(_, _, arrived)| arrived.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn limits(depth: usize, bytes: usize) -> QueueLimits {
        QueueLimits {
            depth,
            max_inflight_bytes: bytes,
            retry_after_base_ms: 10,
        }
    }

    #[test]
    fn sheds_at_depth_limit_with_retry_hint() {
        let q = AdmissionQueue::new(limits(2, 1_000));
        assert_eq!(q.offer("a", 1), Admit::Accepted);
        assert_eq!(q.offer("b", 1), Admit::Accepted);
        match q.offer("c", 1) {
            Admit::ShedDepth { retry_after_ms } => {
                assert!(retry_after_ms >= 10, "hint {retry_after_ms}")
            }
            other => panic!("expected depth shed, got {other:?}"),
        }
        assert_eq!(q.depth(), 2, "shed items are never queued");
    }

    #[test]
    fn sheds_at_byte_limit_and_release_restores_budget() {
        let q = AdmissionQueue::new(limits(10, 100));
        assert_eq!(q.offer("big", 80), Admit::Accepted);
        assert!(matches!(q.offer("too-much", 30), Admit::ShedBytes { .. }));
        // A smaller item still fits under the remaining budget.
        assert_eq!(q.offer("small", 20), Admit::Accepted);
        assert_eq!(q.inflight_bytes(), 100);
        // Taking a batch does NOT release bytes — responses do.
        let batch = q.take_batch(10).unwrap();
        assert_eq!(batch, vec!["big", "small"]);
        assert_eq!(q.inflight_bytes(), 100);
        q.release(80);
        q.release(20);
        assert_eq!(q.inflight_bytes(), 0);
        assert_eq!(q.offer("next", 100), Admit::Accepted);
        assert_eq!(q.peaks(), (2, 100));
    }

    #[test]
    fn drain_rejects_new_but_flushes_queued() {
        let q = AdmissionQueue::new(limits(10, 1_000));
        assert_eq!(q.offer(1, 1), Admit::Accepted);
        assert_eq!(q.offer(2, 1), Admit::Accepted);
        q.begin_drain();
        assert!(q.is_draining());
        assert_eq!(q.offer(3, 1), Admit::Draining);
        assert_eq!(q.take_batch(1).unwrap(), vec![1]);
        assert_eq!(q.take_batch(8).unwrap(), vec![2]);
        assert_eq!(q.take_batch(8), None, "drained and empty");
        assert_eq!(q.take_batch(8), None, "None is sticky");
    }

    #[test]
    fn take_batch_blocks_until_an_item_arrives() {
        let q = Arc::new(AdmissionQueue::new(limits(4, 100)));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                assert_eq!(q.offer(99, 1), Admit::Accepted);
            })
        };
        let start = Instant::now();
        let batch = q.take_batch(4).unwrap();
        assert_eq!(batch, vec![99]);
        assert!(
            start.elapsed() >= Duration::from_millis(10),
            "take_batch returned before the producer ran"
        );
        producer.join().unwrap();
    }

    #[test]
    fn dense_arrivals_coalesce_into_one_batch() {
        // A burst queued before the take must come out as one batch,
        // bounded by batch_max.
        let q = AdmissionQueue::new(limits(64, 10_000));
        for i in 0..10 {
            assert_eq!(q.offer(i, 1), Admit::Accepted);
        }
        let batch = q.take_batch(8).unwrap();
        assert_eq!(batch, (0..8).collect::<Vec<_>>());
        let rest = q.take_batch(8).unwrap();
        assert_eq!(rest, vec![8, 9]);
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_is_a_constructor_error() {
        let _ = AdmissionQueue::<u8>::new(limits(0, 1));
    }

    #[test]
    fn head_age_tracks_the_oldest_item() {
        let q = AdmissionQueue::new(limits(4, 100));
        assert_eq!(q.head_age(), None, "empty queue has no head");
        assert_eq!(q.offer("old", 1), Admit::Accepted);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(q.offer("young", 1), Admit::Accepted);
        let age = q.head_age().expect("head exists");
        assert!(
            age >= Duration::from_millis(10),
            "head age {age:?} must reflect the oldest arrival"
        );
        // Taking the old head resets the age to the younger item.
        assert_eq!(q.take_batch(1).unwrap(), vec!["old"]);
        let younger = q.head_age().expect("one item left");
        assert!(younger < age, "age must drop once the old head is taken");
    }
}
