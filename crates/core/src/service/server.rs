//! The `pimserve` server core: acceptor, connection readers, adaptive
//! batcher, panic quarantine and graceful drain (DESIGN.md §13.3–13.5).
//!
//! Thread topology (all blocking `std::net`; the vendor tree has no
//! async runtime):
//!
//! * one **acceptor** polls the non-blocking listener and spawns a
//!   reader thread per connection;
//! * each **connection reader** decodes frames, runs admission control
//!   and writes shed/invalid/drain responses inline — rejection never
//!   waits behind alignment work;
//! * one **batcher** owns all [`AlignSession`](crate::AlignSession)
//!   state: it takes adaptive batches from the queue, drops queue-expired
//!   deadlines, aligns the rest via
//!   [`Platform::align_chunk_parallel`] inside `catch_unwind`, and
//!   writes responses back through each request's connection.
//!
//! A batch that panics is retried read-by-read, each read in its own
//! `catch_unwind` — only the poisoned read is answered with a typed
//! `WorkerPanic`; every other in-flight read still gets its real
//! outcome and the pool keeps serving. Drain (`Drain` opcode or
//! [`ServerHandle::begin_drain`]) stops admissions, flushes everything
//! already accepted, then stops the threads; [`ServerHandle::join`]
//! returns a [`ServeSummary`] whose invariant — every accepted request
//! answered exactly once — is pinned by the integration tests.
//!
//! The observability plane ([`super::obs`], DESIGN.md §17) threads
//! through all of it: admission mints a `trace_id` per request, every
//! control-plane decision lands in the rolling-window bucket ring in
//! the same critical section as the lifetime counters, the response
//! path emits per-stage spans (admit/queued/batched/aligned/respond)
//! onto one Chrome-trace track per request, and a **watchdog** thread
//! probes the queue's head-of-queue age to catch a stalled batcher.
//! Everything is wall-clock only — simulated cycle counters and SAM
//! bytes are untouched by the plane.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bioseq::DnaSeq;
use pimsim::HostSpan;

use crate::metrics::{obs_section_json, service_section_json, METRICS_SCHEMA_VERSION};
use crate::parallel::BatchTotals;
use crate::platform::Platform;
use crate::report::{ObsTelemetry, PerfReport, ServiceTelemetry, SlowRequest};
use crate::{AlignmentOutcome, MappedStrand};

use super::obs::{log_kv, ObsState, ShedReason as ObsShed};
use super::protocol::{
    decode_request, encode_response, write_frame, AlignRequest, Request, Response, ShedReason,
};
use super::queue::{AdmissionQueue, Admit, QueueLimits};
use super::{ServiceConfig, ServiceError};

/// Read-timeout slice for connection readers; bounds how long a blocked
/// reader takes to notice the stop flag.
const READ_POLL: Duration = Duration::from_millis(25);

/// Acceptor poll interval on the non-blocking listener.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Test-fault hook ids (active only with `ServiceConfig::test_faults`):
/// a read with this id panics inside the batcher's unwind boundary.
const FAULT_PANIC_ID: &str = "__panic__";
/// Prefix for the stall hook: `__stall_ms_50__` sleeps the batcher 50 ms
/// before aligning, letting tests saturate the queue deterministically.
const FAULT_STALL_PREFIX: &str = "__stall_ms_";

/// One admitted request waiting for the batcher. The `t_*_ns` fields
/// are stage timestamps on the obs epoch clock; the batcher fills the
/// later ones as the request moves through its pipeline, and the
/// response path turns them into stage spans + the slow-log entry.
struct Pending {
    req_id: u64,
    /// Observability trace id (monotonic, minted at admission); also
    /// the request's span-track id in the Chrome trace export.
    trace_id: u64,
    read_id: String,
    seq: DnaSeq,
    cost_bytes: usize,
    conn: Arc<ConnWriter>,
    deadline: Option<Instant>,
    /// Frame decoded, admission started.
    t_recv_ns: u64,
    /// Admission decided (queued from here on).
    t_admit_ns: u64,
    /// Taken out of the queue by the batcher.
    t_taken_ns: u64,
    /// Alignment call started (== `t_taken_ns` for queue-expired reads).
    t_align_start_ns: u64,
    /// Alignment call returned.
    t_align_end_ns: u64,
}

/// Serialised response writer for one connection. Cloned into every
/// pending request so the batcher can answer out of order; writes are
/// best-effort (a client that hung up still counts as answered — the
/// server's obligation is to produce the response, not to force the
/// client to read it).
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    fn send(&self, resp: &Response) {
        let payload = encode_response(resp);
        let mut stream = self.stream.lock().expect("connection writer poisoned");
        let _ = write_frame(&mut *stream, &payload);
    }
}

struct Shared {
    platform: Platform,
    config: ServiceConfig,
    queue: AdmissionQueue<Pending>,
    /// Set once the batcher has flushed everything after drain; tells
    /// the acceptor, connection readers and watchdog to exit.
    stop: AtomicBool,
    /// The observability plane — owns the lifetime [`ServiceTelemetry`]
    /// and the rolling bucket ring under one lock, so snapshots always
    /// reconcile exactly.
    obs: ObsState,
}

impl Shared {
    /// Current lifetime counters with live queue peaks folded in.
    fn telemetry_snapshot(&self) -> ServiceTelemetry {
        let mut t = self.obs.lifetime();
        let (depth, bytes) = self.queue.peaks();
        t.peak_queue_depth = t.peak_queue_depth.max(depth as u64);
        t.peak_inflight_bytes = t.peak_inflight_bytes.max(bytes as u64);
        t
    }
}

/// What a completed serving run did, returned by [`ServerHandle::join`].
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Admission/deadline/panic/drain counters for the whole run.
    pub telemetry: ServiceTelemetry,
    /// Drain-time observability summary (ring geometry, watchdog
    /// verdicts, slow-request log).
    pub obs: ObsTelemetry,
    /// The batch performance report over every read actually aligned;
    /// `None` when the run aligned nothing (the simulated report is
    /// undefined at zero queries).
    pub report: Option<PerfReport>,
}

impl ServeSummary {
    /// The final metrics document. With aligned work this is the full
    /// [`PerfReport::to_metrics_json`] (service counters included);
    /// with none, a reduced document that still carries the service
    /// and obs sections — a drain must always account for what it
    /// admitted and observed.
    pub fn metrics_json(&self) -> String {
        match &self.report {
            Some(r) => r.to_metrics_json(),
            None => format!(
                "{{\n  \"schema_version\": {},\n  \"service\": {},\n  \"obs\": {}\n}}\n",
                METRICS_SCHEMA_VERSION,
                service_section_json(&self.telemetry),
                obs_section_json(&self.obs),
            ),
        }
    }
}

/// A running `pimserve` instance: the listener address plus the handles
/// needed to drain and join it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<ServeSummary>>,
    acceptor: Option<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound listener address (useful with port-0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Programmatic graceful drain — the in-process equivalent of the
    /// protocol's `Drain` opcode (and of SIGTERM, which a dependency-free
    /// binary cannot hook; see DESIGN.md §13.5). Idempotent.
    pub fn begin_drain(&self) {
        self.shared.queue.begin_drain();
    }

    /// Waits for the drain to complete and returns the run summary.
    /// Blocks until someone initiates a drain ([`Self::begin_drain`] or
    /// a client `Drain` request).
    ///
    /// # Panics
    ///
    /// Panics if a service thread itself panicked — the batcher's
    /// quarantine should make that impossible, so it is a bug worth
    /// crashing on.
    pub fn join(mut self) -> ServeSummary {
        let summary = self
            .batcher
            .take()
            .expect("join called once")
            .join()
            .expect("batcher thread panicked");
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().expect("acceptor thread panicked");
        }
        if let Some(watchdog) = self.watchdog.take() {
            watchdog.join().expect("watchdog thread panicked");
        }
        let conns = std::mem::take(&mut *self.conns.lock().expect("conn registry poisoned"));
        for c in conns {
            c.join().expect("connection thread panicked");
        }
        summary
    }
}

/// Binds the service and starts its threads.
///
/// # Errors
///
/// [`ServiceError::InvalidConfig`] when the configuration fails
/// validation; [`ServiceError::Bind`] when the listener cannot bind.
pub fn serve(
    platform: Platform,
    config: ServiceConfig,
    addr: &str,
) -> Result<ServerHandle, ServiceError> {
    config.validate()?;
    let listener = TcpListener::bind(addr).map_err(|e| ServiceError::Bind {
        addr: addr.to_owned(),
        message: e.to_string(),
    })?;
    let local = listener.local_addr().map_err(|e| ServiceError::Bind {
        addr: addr.to_owned(),
        message: e.to_string(),
    })?;
    listener
        .set_nonblocking(true)
        .map_err(|e| ServiceError::Bind {
            addr: addr.to_owned(),
            message: e.to_string(),
        })?;

    let shared = Arc::new(Shared {
        platform,
        queue: AdmissionQueue::new(QueueLimits {
            depth: config.queue_depth,
            max_inflight_bytes: config.max_inflight_bytes,
            retry_after_base_ms: config.retry_after_base_ms,
        }),
        config,
        stop: AtomicBool::new(false),
        obs: ObsState::new(config.obs_window_secs, config.watchdog_threshold_ms),
    });

    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let batcher = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("pimserve-batcher".into())
            .spawn(move || batcher_loop(&shared))
            .expect("spawn batcher thread")
    };
    let acceptor = {
        let shared = Arc::clone(&shared);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new()
            .name("pimserve-acceptor".into())
            .spawn(move || acceptor_loop(&listener, &shared, &conns))
            .expect("spawn acceptor thread")
    };
    let watchdog = (config.watchdog_threshold_ms > 0).then(|| {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("pimserve-watchdog".into())
            .spawn(move || watchdog_loop(&shared))
            .expect("spawn watchdog thread")
    });

    Ok(ServerHandle {
        addr: local,
        shared,
        batcher: Some(batcher),
        acceptor: Some(acceptor),
        watchdog,
        conns,
    })
}

/// Probes the queue's head-of-queue age: a head that only ages past the
/// configured threshold means the batcher stopped taking (stalled,
/// wedged on one batch, or starved). Each crossing opens one stall
/// *episode* — counted once, logged once — and the episode closes when
/// the head drains below the threshold. Exits with the stop flag.
fn watchdog_loop(shared: &Arc<Shared>) {
    let threshold_ms = u64::from(shared.config.watchdog_threshold_ms);
    let poll = Duration::from_millis((threshold_ms / 4).clamp(10, 250));
    let mut in_stall = false;
    while !shared.stop.load(Ordering::Relaxed) {
        std::thread::sleep(poll);
        let age_ms = shared
            .queue
            .head_age()
            .map_or(0, |age| age.as_millis() as u64);
        shared.obs.watchdog_observe(age_ms);
        if age_ms > threshold_ms {
            if !in_stall {
                in_stall = true;
                let stalls = shared.obs.watchdog_stall(age_ms);
                log_kv(
                    "watchdog_stall",
                    &[
                        ("head_age_ms", age_ms.to_string()),
                        ("threshold_ms", threshold_ms.to_string()),
                        ("queue_depth", shared.queue.depth().to_string()),
                        ("stalls", stalls.to_string()),
                    ],
                );
            }
        } else {
            in_stall = false;
        }
    }
}

fn acceptor_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("pimserve-conn".into())
                    .spawn(move || connection_loop(&shared, stream))
                    .expect("spawn connection thread");
                conns.lock().expect("conn registry poisoned").push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// [`super::protocol::read_frame`] against a read-timeout socket:
/// retries timeout slices until a frame arrives, the peer hangs up, or
/// the stop flag is raised. `Ok(None)` covers the latter two — the
/// caller exits either way.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    stop: &AtomicBool,
) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        if stop.load(Ordering::Relaxed) {
            return Ok(None);
        }
        match stream.read(&mut len_buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None) // clean EOF at a frame boundary
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > super::protocol::MAX_FRAME_BYTES {
        return Err(io::ErrorKind::InvalidData.into());
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        if stop.load(Ordering::Relaxed) {
            return Ok(None);
        }
        match stream.read(&mut payload[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_POLL)).ok();
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(ConnWriter {
            stream: Mutex::new(w),
        }),
        Err(_) => return,
    };
    let mut reader = stream;
    loop {
        match read_frame_interruptible(&mut reader, &shared.stop) {
            Ok(Some(payload)) => handle_request(shared, &writer, &payload),
            Ok(None) | Err(_) => return,
        }
    }
}

fn handle_request(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, payload: &[u8]) {
    match decode_request(payload) {
        Err(e) => {
            shared.obs.not_admitted(ObsShed::Invalid);
            writer.send(&Response::Invalid {
                req_id: 0,
                message: e.to_string(),
            });
        }
        // Stats/Prom are answered inline by the connection reader: they
        // never enter the admission queue, so they are never shed and
        // stay answerable while the queue is saturated or draining.
        Ok(Request::Stats { req_id }) => {
            let json = shared.obs.stats_json(
                &shared.telemetry_snapshot(),
                shared.queue.depth() as u64,
                shared.queue.inflight_bytes() as u64,
            );
            writer.send(&Response::Stats { req_id, json });
        }
        Ok(Request::Prom { req_id }) => {
            let text = shared.obs.prometheus_text(
                &shared.telemetry_snapshot(),
                shared.queue.depth() as u64,
                shared.queue.inflight_bytes() as u64,
            );
            writer.send(&Response::Prom { req_id, text });
        }
        Ok(Request::Drain { req_id }) => {
            shared.queue.begin_drain();
            log_kv("drain_started", &[("req_id", req_id.to_string())]);
            writer.send(&Response::DrainStarted { req_id });
        }
        Ok(Request::Align(req)) => admit_align(shared, writer, req),
    }
}

fn admit_align(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, req: AlignRequest) {
    let t_recv_ns = shared.obs.now_ns();
    shared.obs.received();
    let seq: DnaSeq = match req.seq.parse() {
        Ok(s) => s,
        Err(e) => {
            shared.obs.not_admitted(ObsShed::Invalid);
            writer.send(&Response::Invalid {
                req_id: req.req_id,
                message: format!("read {:?}: {e}", req.id),
            });
            return;
        }
    };
    if seq.is_empty() {
        shared.obs.not_admitted(ObsShed::Invalid);
        writer.send(&Response::Invalid {
            req_id: req.req_id,
            message: format!("read {:?}: empty sequence", req.id),
        });
        return;
    }
    let deadline_ms = if req.deadline_ms > 0 {
        req.deadline_ms
    } else {
        shared.config.default_deadline_ms
    };
    let deadline =
        (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(u64::from(deadline_ms)));
    let cost_bytes = req.seq.len().max(1);
    let t_admit_ns = shared.obs.now_ns();
    let pending = Pending {
        req_id: req.req_id,
        trace_id: shared.obs.mint_trace_id(),
        read_id: req.id,
        seq,
        cost_bytes,
        conn: Arc::clone(writer),
        deadline,
        t_recv_ns,
        t_admit_ns,
        t_taken_ns: t_admit_ns,
        t_align_start_ns: t_admit_ns,
        t_align_end_ns: t_admit_ns,
    };
    let req_id = pending.req_id;
    match shared.queue.offer(pending, cost_bytes) {
        Admit::Accepted => shared.obs.accepted(
            shared.queue.depth() as u64,
            shared.queue.inflight_bytes() as u64,
        ),
        Admit::ShedDepth { retry_after_ms } => {
            shared.obs.not_admitted(ObsShed::QueueFull);
            writer.send(&Response::Overloaded {
                req_id,
                retry_after_ms,
                reason: ShedReason::QueueDepth,
            });
        }
        Admit::ShedBytes { retry_after_ms } => {
            shared.obs.not_admitted(ObsShed::InflightBytes);
            writer.send(&Response::Overloaded {
                req_id,
                retry_after_ms,
                reason: ShedReason::InflightBytes,
            });
        }
        Admit::Draining => {
            shared.obs.not_admitted(ObsShed::Draining);
            writer.send(&Response::Draining { req_id });
        }
    }
}

/// Writes one response to an *accepted* request: latency lands in the
/// per-request histogram and the obs bucket ring, the request's bytes
/// return to the budget, the answered-exactly-once counter moves, and
/// the request's five stage spans (admit/queued/batched/aligned/
/// respond) land on its own trace track (`tid == trace_id`).
fn respond(shared: &Shared, totals: &mut BatchTotals, p: Pending, resp: &Response) {
    let late =
        matches!(resp, Response::Aligned { .. }) && p.deadline.is_some_and(|d| Instant::now() > d);
    p.conn.send(resp);
    let t_done_ns = shared.obs.now_ns();
    let total_ns = t_done_ns.saturating_sub(p.t_recv_ns);
    totals.host.per_request.record_ns(total_ns);
    shared.queue.release(p.cost_bytes);
    let entry = SlowRequest {
        trace_id: p.trace_id,
        req_id: p.req_id,
        total_ns,
        admit_ns: p.t_admit_ns.saturating_sub(p.t_recv_ns),
        queued_ns: p.t_taken_ns.saturating_sub(p.t_admit_ns),
        batched_ns: p.t_align_start_ns.saturating_sub(p.t_taken_ns),
        aligned_ns: p.t_align_end_ns.saturating_sub(p.t_align_start_ns),
        respond_ns: t_done_ns.saturating_sub(p.t_align_end_ns),
    };
    shared.obs.response(late, entry);
    let tid = p.trace_id as u32;
    totals.host.absorb_spans(
        vec![
            HostSpan {
                name: "admit",
                tid,
                start_ns: p.t_recv_ns,
                dur_ns: entry.admit_ns,
            },
            HostSpan {
                name: "queued",
                tid,
                start_ns: p.t_admit_ns,
                dur_ns: entry.queued_ns,
            },
            HostSpan {
                name: "batched",
                tid,
                start_ns: p.t_taken_ns,
                dur_ns: entry.batched_ns,
            },
            HostSpan {
                name: "aligned",
                tid,
                start_ns: p.t_align_start_ns,
                dur_ns: entry.aligned_ns,
            },
            HostSpan {
                name: "respond",
                tid,
                start_ns: p.t_align_end_ns,
                dur_ns: entry.respond_ns,
            },
        ],
        0,
    );
}

fn aligned_response(req_id: u64, outcome: &AlignmentOutcome, strand: MappedStrand) -> Response {
    use super::protocol::AlignStatus;
    let status = match outcome {
        AlignmentOutcome::Exact { positions } => AlignStatus::Mapped {
            reverse: strand == MappedStrand::Reverse,
            diffs: 0,
            positions: positions.iter().map(|&p| p as u64).collect(),
        },
        AlignmentOutcome::Inexact { positions, diffs } => AlignStatus::Mapped {
            reverse: strand == MappedStrand::Reverse,
            diffs: *diffs,
            positions: positions.iter().map(|&p| p as u64).collect(),
        },
        AlignmentOutcome::Unmapped => AlignStatus::Unmapped,
    };
    Response::Aligned { req_id, status }
}

fn batcher_loop(shared: &Arc<Shared>) -> ServeSummary {
    let mut totals = BatchTotals::new();
    let mut epoch: u64 = 0;
    while let Some(mut batch) = shared.queue.take_batch(shared.config.batch_max) {
        let t_taken_ns = shared.obs.now_ns();
        for p in &mut batch {
            p.t_taken_ns = t_taken_ns;
        }
        // Opt-in stall hook: lets tests hold the batcher busy while the
        // queue saturates, deterministically.
        if shared.config.test_faults {
            for p in &batch {
                if let Some(ms) = p
                    .read_id
                    .strip_prefix(FAULT_STALL_PREFIX)
                    .and_then(|s| s.trim_end_matches('_').parse::<u64>().ok())
                {
                    std::thread::sleep(Duration::from_millis(ms));
                }
            }
        }
        // Deadline gate: a request that expired while queued never
        // reaches alignment.
        let now = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        for mut p in batch {
            if p.deadline.is_some_and(|d| d <= now) {
                shared.obs.expired_in_queue();
                let t = shared.obs.now_ns();
                p.t_align_start_ns = t;
                p.t_align_end_ns = t;
                let resp = Response::DeadlineExceeded { req_id: p.req_id };
                respond(shared, &mut totals, p, &resp);
            } else {
                live.push(p);
            }
        }
        if live.is_empty() {
            continue;
        }
        epoch += 1;
        align_batch(shared, &mut totals, live, epoch);
    }
    // Drained and flushed: release the acceptor and connection readers,
    // then summarise.
    shared.stop.store(true, Ordering::Relaxed);
    let telemetry = shared.telemetry_snapshot();
    let obs = shared.obs.telemetry();
    let report = (totals.queries > 0).then(|| {
        let mut report = shared.platform.batch_report(&totals);
        report.service = telemetry;
        report.obs = obs.clone();
        report
    });
    ServeSummary {
        telemetry,
        obs,
        report,
    }
}

fn align_batch(shared: &Arc<Shared>, totals: &mut BatchTotals, live: Vec<Pending>, epoch: u64) {
    let mut live = live;
    shared.obs.batch(live.len() as u64);
    let t_start = shared.obs.now_ns();
    for p in &mut live {
        p.t_align_start_ns = t_start;
    }
    let inject_panic =
        shared.config.test_faults && live.iter().any(|p| p.read_id == FAULT_PANIC_ID);
    let seqs: Vec<DnaSeq> = live.iter().map(|p| p.seq.clone()).collect();
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        if inject_panic {
            panic!("injected worker fault");
        }
        shared.platform.align_chunk_parallel(
            &seqs,
            shared.config.threads,
            epoch,
            shared.config.both_strands,
        )
    }));
    let t_end = shared.obs.now_ns();
    for p in &mut live {
        p.t_align_end_ns = t_end;
    }
    match attempt {
        Ok(Ok((outcomes, batch_totals))) => {
            totals.merge(&batch_totals);
            for (p, (outcome, strand)) in live.into_iter().zip(outcomes) {
                let resp = aligned_response(p.req_id, &outcome, strand);
                respond(shared, totals, p, &resp);
            }
        }
        // An AlignError cannot happen here (the batch is non-empty and
        // threads were validated positive), but a typed response beats
        // an unreachable!: treat it like a quarantined batch.
        Ok(Err(_)) | Err(_) => {
            for p in live {
                align_one_quarantined(shared, totals, p, epoch);
            }
        }
    }
}

/// Retries one read from a panicked batch inside its own unwind
/// boundary. Only the read that actually panics is answered with a
/// typed `WorkerPanic`; its neighbours still get real outcomes.
fn align_one_quarantined(shared: &Arc<Shared>, totals: &mut BatchTotals, p: Pending, epoch: u64) {
    let mut p = p;
    let inject = shared.config.test_faults && p.read_id == FAULT_PANIC_ID;
    p.t_align_start_ns = shared.obs.now_ns();
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        if inject {
            panic!("injected worker fault");
        }
        shared.platform.align_chunk_parallel(
            std::slice::from_ref(&p.seq),
            1,
            epoch,
            shared.config.both_strands,
        )
    }));
    p.t_align_end_ns = shared.obs.now_ns();
    let resp = match attempt {
        Ok(Ok((outcomes, batch_totals))) => {
            totals.merge(&batch_totals);
            let (outcome, strand) = &outcomes[0];
            aligned_response(p.req_id, outcome, *strand)
        }
        Ok(Err(e)) => Response::WorkerPanic {
            req_id: p.req_id,
            message: format!("alignment error for read {:?}: {e}", p.read_id),
        },
        Err(_) => {
            shared.obs.panic_quarantined();
            log_kv(
                "panic_quarantined",
                &[
                    ("trace_id", p.trace_id.to_string()),
                    ("req_id", p.req_id.to_string()),
                    ("read_id", format!("{:?}", p.read_id)),
                ],
            );
            Response::WorkerPanic {
                req_id: p.req_id,
                message: format!(
                    "alignment panicked for read {:?}; read quarantined",
                    p.read_id
                ),
            }
        }
    };
    respond(shared, totals, p, &resp);
}
