//! The `pimserve` server core: acceptor, connection readers, adaptive
//! batcher, panic quarantine and graceful drain (DESIGN.md §13.3–13.5).
//!
//! Thread topology (all blocking `std::net`; the vendor tree has no
//! async runtime):
//!
//! * one **acceptor** polls the non-blocking listener and spawns a
//!   reader thread per connection;
//! * each **connection reader** decodes frames, runs admission control
//!   and writes shed/invalid/drain responses inline — rejection never
//!   waits behind alignment work;
//! * one **batcher** owns all [`AlignSession`](crate::AlignSession)
//!   state: it takes adaptive batches from the queue, drops queue-expired
//!   deadlines, aligns the rest via
//!   [`Platform::align_chunk_parallel`] inside `catch_unwind`, and
//!   writes responses back through each request's connection.
//!
//! A batch that panics is retried read-by-read, each read in its own
//! `catch_unwind` — only the poisoned read is answered with a typed
//! `WorkerPanic`; every other in-flight read still gets its real
//! outcome and the pool keeps serving. Drain (`Drain` opcode or
//! [`ServerHandle::begin_drain`]) stops admissions, flushes everything
//! already accepted, then stops the threads; [`ServerHandle::join`]
//! returns a [`ServeSummary`] whose invariant — every accepted request
//! answered exactly once — is pinned by the integration tests.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bioseq::DnaSeq;

use crate::metrics::{service_section_json, METRICS_SCHEMA_VERSION};
use crate::parallel::BatchTotals;
use crate::platform::Platform;
use crate::report::{PerfReport, ServiceTelemetry};
use crate::{AlignmentOutcome, MappedStrand};

use super::protocol::{
    decode_request, encode_response, write_frame, AlignRequest, Request, Response, ShedReason,
};
use super::queue::{AdmissionQueue, Admit, QueueLimits};
use super::{ServiceConfig, ServiceError};

/// Read-timeout slice for connection readers; bounds how long a blocked
/// reader takes to notice the stop flag.
const READ_POLL: Duration = Duration::from_millis(25);

/// Acceptor poll interval on the non-blocking listener.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Test-fault hook ids (active only with `ServiceConfig::test_faults`):
/// a read with this id panics inside the batcher's unwind boundary.
const FAULT_PANIC_ID: &str = "__panic__";
/// Prefix for the stall hook: `__stall_ms_50__` sleeps the batcher 50 ms
/// before aligning, letting tests saturate the queue deterministically.
const FAULT_STALL_PREFIX: &str = "__stall_ms_";

/// One admitted request waiting for the batcher.
struct Pending {
    req_id: u64,
    read_id: String,
    seq: DnaSeq,
    cost_bytes: usize,
    conn: Arc<ConnWriter>,
    admitted: Instant,
    deadline: Option<Instant>,
}

/// Serialised response writer for one connection. Cloned into every
/// pending request so the batcher can answer out of order; writes are
/// best-effort (a client that hung up still counts as answered — the
/// server's obligation is to produce the response, not to force the
/// client to read it).
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    fn send(&self, resp: &Response) {
        let payload = encode_response(resp);
        let mut stream = self.stream.lock().expect("connection writer poisoned");
        let _ = write_frame(&mut *stream, &payload);
    }
}

struct Shared {
    platform: Platform,
    config: ServiceConfig,
    queue: AdmissionQueue<Pending>,
    /// Set once the batcher has flushed everything after drain; tells
    /// the acceptor and connection readers to exit.
    stop: AtomicBool,
    telemetry: Mutex<ServiceTelemetry>,
}

impl Shared {
    fn tally(&self, f: impl FnOnce(&mut ServiceTelemetry)) {
        f(&mut self.telemetry.lock().expect("telemetry lock poisoned"));
    }

    /// Current counters with live queue peaks folded in.
    fn telemetry_snapshot(&self) -> ServiceTelemetry {
        let mut t = *self.telemetry.lock().expect("telemetry lock poisoned");
        let (depth, bytes) = self.queue.peaks();
        t.peak_queue_depth = t.peak_queue_depth.max(depth as u64);
        t.peak_inflight_bytes = t.peak_inflight_bytes.max(bytes as u64);
        t
    }
}

/// What a completed serving run did, returned by [`ServerHandle::join`].
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Admission/deadline/panic/drain counters for the whole run.
    pub telemetry: ServiceTelemetry,
    /// The batch performance report over every read actually aligned;
    /// `None` when the run aligned nothing (the simulated report is
    /// undefined at zero queries).
    pub report: Option<PerfReport>,
}

impl ServeSummary {
    /// The final metrics document. With aligned work this is the full
    /// [`PerfReport::to_metrics_json`] (service counters included);
    /// with none, a reduced document that still carries the service
    /// section — a drain must always account for what it admitted.
    pub fn metrics_json(&self) -> String {
        match &self.report {
            Some(r) => r.to_metrics_json(),
            None => format!(
                "{{\n  \"schema_version\": {},\n  \"service\": {}\n}}\n",
                METRICS_SCHEMA_VERSION,
                service_section_json(&self.telemetry),
            ),
        }
    }
}

/// A running `pimserve` instance: the listener address plus the handles
/// needed to drain and join it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<ServeSummary>>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound listener address (useful with port-0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Programmatic graceful drain — the in-process equivalent of the
    /// protocol's `Drain` opcode (and of SIGTERM, which a dependency-free
    /// binary cannot hook; see DESIGN.md §13.5). Idempotent.
    pub fn begin_drain(&self) {
        self.shared.queue.begin_drain();
    }

    /// Waits for the drain to complete and returns the run summary.
    /// Blocks until someone initiates a drain ([`Self::begin_drain`] or
    /// a client `Drain` request).
    ///
    /// # Panics
    ///
    /// Panics if a service thread itself panicked — the batcher's
    /// quarantine should make that impossible, so it is a bug worth
    /// crashing on.
    pub fn join(mut self) -> ServeSummary {
        let summary = self
            .batcher
            .take()
            .expect("join called once")
            .join()
            .expect("batcher thread panicked");
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().expect("acceptor thread panicked");
        }
        let conns = std::mem::take(&mut *self.conns.lock().expect("conn registry poisoned"));
        for c in conns {
            c.join().expect("connection thread panicked");
        }
        summary
    }
}

/// Binds the service and starts its threads.
///
/// # Errors
///
/// [`ServiceError::InvalidConfig`] when the configuration fails
/// validation; [`ServiceError::Bind`] when the listener cannot bind.
pub fn serve(
    platform: Platform,
    config: ServiceConfig,
    addr: &str,
) -> Result<ServerHandle, ServiceError> {
    config.validate()?;
    let listener = TcpListener::bind(addr).map_err(|e| ServiceError::Bind {
        addr: addr.to_owned(),
        message: e.to_string(),
    })?;
    let local = listener.local_addr().map_err(|e| ServiceError::Bind {
        addr: addr.to_owned(),
        message: e.to_string(),
    })?;
    listener
        .set_nonblocking(true)
        .map_err(|e| ServiceError::Bind {
            addr: addr.to_owned(),
            message: e.to_string(),
        })?;

    let shared = Arc::new(Shared {
        platform,
        queue: AdmissionQueue::new(QueueLimits {
            depth: config.queue_depth,
            max_inflight_bytes: config.max_inflight_bytes,
            retry_after_base_ms: config.retry_after_base_ms,
        }),
        config,
        stop: AtomicBool::new(false),
        telemetry: Mutex::new(ServiceTelemetry::default()),
    });

    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let batcher = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("pimserve-batcher".into())
            .spawn(move || batcher_loop(&shared))
            .expect("spawn batcher thread")
    };
    let acceptor = {
        let shared = Arc::clone(&shared);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new()
            .name("pimserve-acceptor".into())
            .spawn(move || acceptor_loop(&listener, &shared, &conns))
            .expect("spawn acceptor thread")
    };

    Ok(ServerHandle {
        addr: local,
        shared,
        batcher: Some(batcher),
        acceptor: Some(acceptor),
        conns,
    })
}

fn acceptor_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("pimserve-conn".into())
                    .spawn(move || connection_loop(&shared, stream))
                    .expect("spawn connection thread");
                conns.lock().expect("conn registry poisoned").push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// [`super::protocol::read_frame`] against a read-timeout socket:
/// retries timeout slices until a frame arrives, the peer hangs up, or
/// the stop flag is raised. `Ok(None)` covers the latter two — the
/// caller exits either way.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    stop: &AtomicBool,
) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        if stop.load(Ordering::Relaxed) {
            return Ok(None);
        }
        match stream.read(&mut len_buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None) // clean EOF at a frame boundary
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > super::protocol::MAX_FRAME_BYTES {
        return Err(io::ErrorKind::InvalidData.into());
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        if stop.load(Ordering::Relaxed) {
            return Ok(None);
        }
        match stream.read(&mut payload[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_POLL)).ok();
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(ConnWriter {
            stream: Mutex::new(w),
        }),
        Err(_) => return,
    };
    let mut reader = stream;
    loop {
        match read_frame_interruptible(&mut reader, &shared.stop) {
            Ok(Some(payload)) => handle_request(shared, &writer, &payload),
            Ok(None) | Err(_) => return,
        }
    }
}

fn handle_request(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, payload: &[u8]) {
    match decode_request(payload) {
        Err(e) => {
            shared.tally(|t| t.rejected_invalid += 1);
            writer.send(&Response::Invalid {
                req_id: 0,
                message: e.to_string(),
            });
        }
        Ok(Request::Stats { req_id }) => {
            let json = service_section_json(&shared.telemetry_snapshot());
            writer.send(&Response::Stats { req_id, json });
        }
        Ok(Request::Drain { req_id }) => {
            shared.queue.begin_drain();
            writer.send(&Response::DrainStarted { req_id });
        }
        Ok(Request::Align(req)) => admit_align(shared, writer, req),
    }
}

fn admit_align(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, req: AlignRequest) {
    shared.tally(|t| t.received += 1);
    let seq: DnaSeq = match req.seq.parse() {
        Ok(s) => s,
        Err(e) => {
            shared.tally(|t| t.rejected_invalid += 1);
            writer.send(&Response::Invalid {
                req_id: req.req_id,
                message: format!("read {:?}: {e}", req.id),
            });
            return;
        }
    };
    if seq.is_empty() {
        shared.tally(|t| t.rejected_invalid += 1);
        writer.send(&Response::Invalid {
            req_id: req.req_id,
            message: format!("read {:?}: empty sequence", req.id),
        });
        return;
    }
    let deadline_ms = if req.deadline_ms > 0 {
        req.deadline_ms
    } else {
        shared.config.default_deadline_ms
    };
    let deadline =
        (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(u64::from(deadline_ms)));
    let cost_bytes = req.seq.len().max(1);
    let pending = Pending {
        req_id: req.req_id,
        read_id: req.id,
        seq,
        cost_bytes,
        conn: Arc::clone(writer),
        admitted: Instant::now(),
        deadline,
    };
    let req_id = pending.req_id;
    match shared.queue.offer(pending, cost_bytes) {
        Admit::Accepted => shared.tally(|t| t.accepted += 1),
        Admit::ShedDepth { retry_after_ms } => {
            shared.tally(|t| t.shed_queue_full += 1);
            writer.send(&Response::Overloaded {
                req_id,
                retry_after_ms,
                reason: ShedReason::QueueDepth,
            });
        }
        Admit::ShedBytes { retry_after_ms } => {
            shared.tally(|t| t.shed_inflight_bytes += 1);
            writer.send(&Response::Overloaded {
                req_id,
                retry_after_ms,
                reason: ShedReason::InflightBytes,
            });
        }
        Admit::Draining => {
            shared.tally(|t| t.rejected_draining += 1);
            writer.send(&Response::Draining { req_id });
        }
    }
}

/// Writes one response to an *accepted* request: latency lands in the
/// per-request histogram, the request's bytes return to the budget, and
/// the answered-exactly-once counter moves.
fn respond(shared: &Shared, totals: &mut BatchTotals, p: Pending, resp: &Response) {
    let late =
        matches!(resp, Response::Aligned { .. }) && p.deadline.is_some_and(|d| Instant::now() > d);
    p.conn.send(resp);
    totals
        .host
        .per_request
        .record_ns(p.admitted.elapsed().as_nanos() as u64);
    shared.queue.release(p.cost_bytes);
    shared.tally(|t| {
        t.responses += 1;
        if late {
            t.late_responses += 1;
        }
    });
}

fn aligned_response(req_id: u64, outcome: &AlignmentOutcome, strand: MappedStrand) -> Response {
    use super::protocol::AlignStatus;
    let status = match outcome {
        AlignmentOutcome::Exact { positions } => AlignStatus::Mapped {
            reverse: strand == MappedStrand::Reverse,
            diffs: 0,
            positions: positions.iter().map(|&p| p as u64).collect(),
        },
        AlignmentOutcome::Inexact { positions, diffs } => AlignStatus::Mapped {
            reverse: strand == MappedStrand::Reverse,
            diffs: *diffs,
            positions: positions.iter().map(|&p| p as u64).collect(),
        },
        AlignmentOutcome::Unmapped => AlignStatus::Unmapped,
    };
    Response::Aligned { req_id, status }
}

fn batcher_loop(shared: &Arc<Shared>) -> ServeSummary {
    let mut totals = BatchTotals::new();
    let mut epoch: u64 = 0;
    while let Some(batch) = shared.queue.take_batch(shared.config.batch_max) {
        // Opt-in stall hook: lets tests hold the batcher busy while the
        // queue saturates, deterministically.
        if shared.config.test_faults {
            for p in &batch {
                if let Some(ms) = p
                    .read_id
                    .strip_prefix(FAULT_STALL_PREFIX)
                    .and_then(|s| s.trim_end_matches('_').parse::<u64>().ok())
                {
                    std::thread::sleep(Duration::from_millis(ms));
                }
            }
        }
        // Deadline gate: a request that expired while queued never
        // reaches alignment.
        let now = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        for p in batch {
            if p.deadline.is_some_and(|d| d <= now) {
                shared.tally(|t| t.expired_in_queue += 1);
                let resp = Response::DeadlineExceeded { req_id: p.req_id };
                respond(shared, &mut totals, p, &resp);
            } else {
                live.push(p);
            }
        }
        if live.is_empty() {
            continue;
        }
        epoch += 1;
        align_batch(shared, &mut totals, live, epoch);
    }
    // Drained and flushed: release the acceptor and connection readers,
    // then summarise.
    shared.stop.store(true, Ordering::Relaxed);
    let telemetry = shared.telemetry_snapshot();
    let report = (totals.queries > 0).then(|| {
        let mut report = shared.platform.batch_report(&totals);
        report.service = telemetry;
        report
    });
    ServeSummary { telemetry, report }
}

fn align_batch(shared: &Arc<Shared>, totals: &mut BatchTotals, live: Vec<Pending>, epoch: u64) {
    shared.tally(|t| t.batches += 1);
    let inject_panic =
        shared.config.test_faults && live.iter().any(|p| p.read_id == FAULT_PANIC_ID);
    let seqs: Vec<DnaSeq> = live.iter().map(|p| p.seq.clone()).collect();
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        if inject_panic {
            panic!("injected worker fault");
        }
        shared.platform.align_chunk_parallel(
            &seqs,
            shared.config.threads,
            epoch,
            shared.config.both_strands,
        )
    }));
    match attempt {
        Ok(Ok((outcomes, batch_totals))) => {
            totals.merge(&batch_totals);
            for (p, (outcome, strand)) in live.into_iter().zip(outcomes) {
                let resp = aligned_response(p.req_id, &outcome, strand);
                respond(shared, totals, p, &resp);
            }
        }
        // An AlignError cannot happen here (the batch is non-empty and
        // threads were validated positive), but a typed response beats
        // an unreachable!: treat it like a quarantined batch.
        Ok(Err(_)) | Err(_) => {
            for p in live {
                align_one_quarantined(shared, totals, p, epoch);
            }
        }
    }
}

/// Retries one read from a panicked batch inside its own unwind
/// boundary. Only the read that actually panics is answered with a
/// typed `WorkerPanic`; its neighbours still get real outcomes.
fn align_one_quarantined(shared: &Arc<Shared>, totals: &mut BatchTotals, p: Pending, epoch: u64) {
    let inject = shared.config.test_faults && p.read_id == FAULT_PANIC_ID;
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        if inject {
            panic!("injected worker fault");
        }
        shared.platform.align_chunk_parallel(
            std::slice::from_ref(&p.seq),
            1,
            epoch,
            shared.config.both_strands,
        )
    }));
    let resp = match attempt {
        Ok(Ok((outcomes, batch_totals))) => {
            totals.merge(&batch_totals);
            let (outcome, strand) = &outcomes[0];
            aligned_response(p.req_id, outcome, *strand)
        }
        Ok(Err(e)) => Response::WorkerPanic {
            req_id: p.req_id,
            message: format!("alignment error for read {:?}: {e}", p.read_id),
        },
        Err(_) => {
            shared.tally(|t| t.panics_quarantined += 1);
            Response::WorkerPanic {
                req_id: p.req_id,
                message: format!(
                    "alignment panicked for read {:?}; read quarantined",
                    p.read_id
                ),
            }
        }
    };
    respond(shared, totals, p, &resp);
}
