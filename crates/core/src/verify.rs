//! Online verification of candidate loci against the reference
//! (DESIGN.md §8).
//!
//! Under fault injection the platform's `LFM` chain can silently corrupt
//! an interval and report a wrong locus. Before a position is emitted,
//! the verifier re-checks it against the reference held by the host:
//! direct substring comparison for exact hits, Hamming distance for
//! substitution-only budgets, and the banded `swalign` edit distance
//! when indels are allowed. In a deployed PIM this is the
//! cheap host-side read-back the paper's controller already performs for
//! SA lookups.

use bioseq::DnaSeq;
use swalign::banded_edit_distance;

/// `true` when `read` occurs verbatim at `pos`.
pub fn verify_exact(reference: &DnaSeq, read: &DnaSeq, pos: usize) -> bool {
    pos + read.len() <= reference.len() && reference.subseq(pos..pos + read.len()) == *read
}

/// `true` when `read` aligns at `pos` with at most `max_diffs`
/// differences — Hamming distance when `allow_indels` is `false`, edit
/// distance (a banded `swalign` computation over the candidate windows)
/// when it is `true`.
pub fn verify_inexact(
    reference: &DnaSeq,
    read: &DnaSeq,
    pos: usize,
    max_diffs: u8,
    allow_indels: bool,
) -> bool {
    if pos >= reference.len() || read.is_empty() {
        return false;
    }
    let z = max_diffs as usize;
    if !allow_indels {
        if pos + read.len() > reference.len() {
            return false;
        }
        let window = reference.subseq(pos..pos + read.len());
        let hamming = window
            .iter()
            .zip(read.iter())
            .filter(|(a, b)| a != b)
            .count();
        return hamming <= z;
    }
    // With indels the reference span may be read.len() ± z; accept the
    // position when any span aligns within the budget.
    let min_span = read.len().saturating_sub(z).max(1);
    let max_span = (read.len() + z).min(reference.len() - pos);
    for span in min_span..=max_span {
        if banded_edit_distance(&reference.subseq(pos..pos + span), read, z).is_some() {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::Base;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    #[test]
    fn exact_verification_is_substring_equality() {
        let reference = seq("TGCTAGGA");
        assert!(verify_exact(&reference, &seq("CTA"), 2));
        assert!(!verify_exact(&reference, &seq("CTA"), 3));
        assert!(verify_exact(&reference, &seq("GGA"), 5));
        assert!(!verify_exact(&reference, &seq("GGA"), 6)); // past the end
        assert!(!verify_exact(&reference, &seq("GGAT"), 5)); // past the end
    }

    #[test]
    fn substitution_verification_counts_hamming() {
        let reference = seq("ACGTACGT");
        assert!(verify_inexact(&reference, &seq("ACGG"), 0, 1, false));
        assert!(!verify_inexact(&reference, &seq("AGGG"), 0, 1, false));
        assert!(verify_inexact(&reference, &seq("AGGG"), 0, 2, false));
    }

    #[test]
    fn indel_verification_accepts_shifted_spans() {
        let reference = seq("ACGTTACGT");
        // Read is the reference with the double-T collapsed: one deletion.
        let read = seq("ACGTACGT");
        assert!(verify_inexact(&reference, &read, 0, 1, true));
        assert!(!verify_inexact(&reference, &read, 0, 0, true));
        // An insertion relative to the reference also verifies.
        let reference2 = seq("ACGTACGT");
        let read2 = seq("ACGGTACGT");
        assert!(verify_inexact(&reference2, &read2, 0, 1, true));
    }

    #[test]
    fn out_of_range_positions_fail_closed() {
        let reference = seq("ACGT");
        assert!(!verify_exact(&reference, &seq("ACGT"), 1));
        assert!(!verify_inexact(&reference, &seq("ACGT"), 4, 2, true));
        assert!(!verify_inexact(
            &reference,
            &DnaSeq::from_bases(vec![]),
            0,
            2,
            true
        ));
        let _ = Base::A; // keep the import used
    }
}
