//! Batch-level aggregation of host-side (wall-clock) telemetry.
//!
//! The per-session pieces live in [`pimsim::host`]; this module merges
//! them across workers and streamed chunks the same way
//! [`BatchTotals`](crate::BatchTotals) merges the simulated ledgers.
//! Host numbers are nondeterministic wall-clock nanoseconds and are kept
//! strictly apart from the simulated-cycle accounting (DESIGN.md §12):
//! they ride in their own [`HostTotals`] field and their own `host`
//! section of the metrics JSON.

use pimsim::{HostEpoch, HostHistogram, HostSpan, WorkerStats};

/// Upper bound on retained trace spans per run; spans beyond it are
/// counted in [`HostTotals::spans_dropped`] rather than growing the
/// buffer without bound on long streaming runs.
pub const MAX_TRACE_SPANS: usize = 65_536;

/// Host-side tracing knobs for a parallel run. Absent (the default in
/// the non-`_traced` entry points) only the always-on histograms and
/// worker stats are collected; present, workers also record wall-clock
/// spans for Chrome-trace export.
#[derive(Debug, Clone, Copy)]
pub struct HostTraceConfig {
    /// The run's shared monotonic time origin; create it before the
    /// index build so the build lands at `t ≈ 0` on the trace.
    pub epoch: HostEpoch,
    /// Span capacity per worker *per chunk*; beyond it spans are counted
    /// as dropped, never silently lost.
    pub capacity_per_worker: usize,
}

impl HostTraceConfig {
    /// A config anchored at `epoch` with the default per-worker span
    /// capacity (4096).
    pub fn new(epoch: HostEpoch) -> HostTraceConfig {
        HostTraceConfig {
            epoch,
            capacity_per_worker: 4096,
        }
    }
}

/// Mergeable wall-clock accounting for a (possibly streamed) parallel
/// run: latency histograms, per-worker utilisation, and optional trace
/// spans. The host analogue of [`BatchTotals`](crate::BatchTotals) —
/// and a field of it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HostTotals {
    /// Wall-clock latency of every `align_read` entry call (one sample
    /// per read, even on the both-strands path).
    pub per_read: HostHistogram,
    /// Wall-clock latency of every claimed work chunk.
    pub per_chunk: HostHistogram,
    /// End-to-end request latency (admission to response write) for
    /// service runs (`pimserve`); empty for one-shot CLI runs. Unlike
    /// `per_read`, this includes queueing delay — the quantity SLOs are
    /// written against.
    pub per_request: HostHistogram,
    /// Per-worker utilisation, indexed by worker id (merged across
    /// chunks; a worker keeps its id for the whole run).
    pub workers: Vec<WorkerStats>,
    /// Wall-clock ns spent inside parallel regions (summed across
    /// streamed chunks — chunks run back-to-back, so the sum is the
    /// align-phase wall time).
    pub wall_ns: u64,
    /// Collected trace spans (empty unless tracing was enabled).
    pub spans: Vec<HostSpan>,
    /// Spans dropped at any level (per-worker log capacity or the
    /// [`MAX_TRACE_SPANS`] run cap).
    pub spans_dropped: u64,
}

impl HostTotals {
    /// Empty totals, ready to merge into.
    pub fn new() -> HostTotals {
        HostTotals::default()
    }

    /// Records one worker's chunk-level contribution.
    pub fn absorb_worker(&mut self, stats: WorkerStats) {
        match self.workers.iter_mut().find(|w| w.worker == stats.worker) {
            Some(w) => w.merge(&stats),
            None => {
                self.workers.push(stats);
                self.workers.sort_by_key(|w| w.worker);
            }
        }
    }

    /// Appends trace spans, honouring the run cap.
    pub fn absorb_spans(&mut self, spans: Vec<HostSpan>, dropped: u64) {
        self.spans_dropped += dropped;
        let room = MAX_TRACE_SPANS.saturating_sub(self.spans.len());
        if spans.len() > room {
            self.spans_dropped += (spans.len() - room) as u64;
        }
        self.spans.extend(spans.into_iter().take(room));
    }

    /// Accumulates another run segment's totals into this one.
    pub fn merge(&mut self, other: &HostTotals) {
        self.per_read.merge(&other.per_read);
        self.per_chunk.merge(&other.per_chunk);
        self.per_request.merge(&other.per_request);
        for w in &other.workers {
            self.absorb_worker(*w);
        }
        self.wall_ns += other.wall_ns;
        self.absorb_spans(other.spans.clone(), other.spans_dropped);
    }

    /// Mean busy fraction across workers over the parallel-region wall
    /// time (1.0 = perfectly utilised; 0 with no workers or wall time).
    pub fn mean_busy_fraction(&self) -> f64 {
        if self.workers.is_empty() || self.wall_ns == 0 {
            return 0.0;
        }
        self.workers
            .iter()
            .map(|w| w.busy_fraction(self.wall_ns))
            .sum::<f64>()
            / self.workers.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_stats_merge_by_id_and_stay_sorted() {
        let mut t = HostTotals::new();
        t.absorb_worker(WorkerStats {
            worker: 1,
            chunks_claimed: 2,
            steals: 0,
            reads: 10,
            busy_ns: 100,
        });
        t.absorb_worker(WorkerStats {
            worker: 0,
            chunks_claimed: 1,
            steals: 0,
            reads: 5,
            busy_ns: 50,
        });
        t.absorb_worker(WorkerStats {
            worker: 1,
            chunks_claimed: 3,
            steals: 1,
            reads: 12,
            busy_ns: 70,
        });
        assert_eq!(t.workers.len(), 2);
        assert_eq!(t.workers[0].worker, 0);
        assert_eq!(t.workers[1].chunks_claimed, 5);
        assert_eq!(t.workers[1].reads, 22);
    }

    #[test]
    fn span_cap_counts_overflow_as_dropped() {
        let mut t = HostTotals::new();
        let span = HostSpan {
            name: "chunk",
            tid: 0,
            start_ns: 0,
            dur_ns: 1,
        };
        t.absorb_spans(vec![span; MAX_TRACE_SPANS + 5], 2);
        assert_eq!(t.spans.len(), MAX_TRACE_SPANS);
        assert_eq!(t.spans_dropped, 7);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = HostTotals::new();
        a.per_read.record_ns(100);
        a.wall_ns = 500;
        let mut b = HostTotals::new();
        b.per_read.record_ns(200);
        b.per_chunk.record_ns(1_000);
        b.wall_ns = 700;
        b.spans_dropped = 1;
        a.merge(&b);
        assert_eq!(a.per_read.count(), 2);
        assert_eq!(a.per_chunk.count(), 1);
        assert_eq!(a.wall_ns, 1_200);
        assert_eq!(a.spans_dropped, 1);
    }

    #[test]
    fn busy_fraction_averages_over_workers() {
        let mut t = HostTotals::new();
        t.wall_ns = 1_000;
        t.absorb_worker(WorkerStats {
            worker: 0,
            busy_ns: 1_000,
            ..WorkerStats::default()
        });
        t.absorb_worker(WorkerStats {
            worker: 1,
            busy_ns: 500,
            ..WorkerStats::default()
        });
        assert!((t.mean_busy_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(HostTotals::new().mean_busy_fraction(), 0.0);
    }
}
