//! SAM-format output (beyond-paper extension).
//!
//! "Most genomic pipelines rely on the alignment of sequencing reads"
//! (§I) — and those pipelines consume SAM. This module renders platform
//! outcomes as SAM records so downstream tooling can be driven directly
//! from the simulator (see the `pimalign` CLI binary).

use std::fmt::Write as _;

use bioseq::quality::QualityString;
use bioseq::DnaSeq;

use crate::aligner::{AlignmentOutcome, MappedStrand};

/// SAM FLAG bits used by this writer.
pub mod flags {
    /// Segment unmapped.
    pub const UNMAPPED: u16 = 0x4;
    /// Sequence reverse-complemented in the alignment.
    pub const REVERSE: u16 = 0x10;
}

/// One SAM alignment line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamRecord {
    /// Query (read) name.
    pub qname: String,
    /// Bitwise flags.
    pub flag: u16,
    /// Reference name (`*` when unmapped).
    pub rname: String,
    /// 1-based leftmost mapping position (0 when unmapped).
    pub pos: usize,
    /// Mapping quality.
    pub mapq: u8,
    /// CIGAR string (`*` when unmapped).
    pub cigar: String,
    /// Read sequence (as aligned: reverse-complemented for reverse hits).
    pub seq: String,
    /// Quality string (`*` when absent).
    pub qual: String,
    /// Edit distance, when known (`NM:i:` tag).
    pub edit_distance: Option<u8>,
}

impl SamRecord {
    /// Renders the record as one SAM line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut line = String::new();
        write!(
            line,
            "{}\t{}\t{}\t{}\t{}\t{}\t*\t0\t0\t{}\t{}",
            self.qname, self.flag, self.rname, self.pos, self.mapq, self.cigar, self.seq, self.qual
        )
        .expect("write to String");
        if let Some(nm) = self.edit_distance {
            write!(line, "\tNM:i:{nm}").expect("write to String");
        }
        line
    }
}

/// The SAM header for a single-reference alignment run.
pub fn header(reference_name: &str, reference_len: usize) -> String {
    format!(
        "@HD\tVN:1.6\tSO:unknown\n@SQ\tSN:{reference_name}\tLN:{reference_len}\n@PG\tID:pim-aligner\tPN:pim-aligner\n"
    )
}

/// Mapping quality from hit multiplicity: a unique hit is confident
/// (Q60); two equally good hits leave ~50 % error probability (Q3); more
/// are unresolvable (Q0).
pub fn mapq_for(hit_count: usize) -> u8 {
    match hit_count {
        0 => 0,
        1 => 60,
        2 => 3,
        _ => 0,
    }
}

/// Builds the SAM record for one aligned read.
///
/// The primary position is the first (lowest) hit; multiplicity feeds
/// [`mapq_for`]. Substitution-only differences stay inside a single `M`
/// run per the SAM specification (`M` = alignment match *or* mismatch);
/// the edit distance is carried in `NM:i:`.
pub fn record_for(
    qname: &str,
    reference_name: &str,
    read: &DnaSeq,
    quality: Option<&QualityString>,
    outcome: &AlignmentOutcome,
    strand: MappedStrand,
) -> SamRecord {
    match outcome {
        AlignmentOutcome::Unmapped => SamRecord {
            qname: qname.to_owned(),
            flag: flags::UNMAPPED,
            rname: "*".to_owned(),
            pos: 0,
            mapq: 0,
            cigar: "*".to_owned(),
            seq: read.to_string(),
            qual: quality.map_or_else(|| "*".to_owned(), QualityString::to_fastq),
            edit_distance: None,
        },
        AlignmentOutcome::Exact { positions } | AlignmentOutcome::Inexact { positions, .. } => {
            let diffs = match outcome {
                AlignmentOutcome::Inexact { diffs, .. } => *diffs,
                _ => 0,
            };
            let mut flag = 0u16;
            // SAM stores SEQ/QUAL in reference orientation: a 0x10 record
            // carries the reverse complement of the read as sequenced,
            // with the quality string reversed to match.
            let (seq, qual) = match strand {
                MappedStrand::Forward => (
                    read.to_string(),
                    quality.map_or_else(|| "*".to_owned(), QualityString::to_fastq),
                ),
                MappedStrand::Reverse => {
                    flag |= flags::REVERSE;
                    (
                        read.reverse_complement().to_string(),
                        quality.map_or_else(|| "*".to_owned(), |q| q.reversed().to_fastq()),
                    )
                }
            };
            SamRecord {
                qname: qname.to_owned(),
                flag,
                rname: reference_name.to_owned(),
                pos: positions.first().map_or(0, |p| p + 1),
                mapq: mapq_for(positions.len()),
                cigar: format!("{}M", read.len()),
                seq,
                qual,
                edit_distance: Some(diffs),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read() -> DnaSeq {
        "ACGTACGT".parse().unwrap()
    }

    #[test]
    fn exact_unique_hit_record() {
        let outcome = AlignmentOutcome::Exact {
            positions: vec![41],
        };
        let r = record_for("r1", "chr1", &read(), None, &outcome, MappedStrand::Forward);
        assert_eq!(r.flag, 0);
        assert_eq!(r.pos, 42, "SAM positions are 1-based");
        assert_eq!(r.mapq, 60);
        assert_eq!(r.cigar, "8M");
        assert_eq!(r.edit_distance, Some(0));
        let line = r.to_line();
        assert!(line.starts_with("r1\t0\tchr1\t42\t60\t8M\t*\t0\t0\tACGTACGT\t*"));
        assert!(line.ends_with("NM:i:0"));
    }

    #[test]
    fn multi_hit_lowers_mapq() {
        let outcome = AlignmentOutcome::Exact {
            positions: vec![10, 50, 90],
        };
        let r = record_for("r2", "chr1", &read(), None, &outcome, MappedStrand::Forward);
        assert_eq!(r.pos, 11);
        assert_eq!(r.mapq, 0);
    }

    #[test]
    fn inexact_carries_edit_distance() {
        let outcome = AlignmentOutcome::Inexact {
            positions: vec![7],
            diffs: 2,
        };
        let r = record_for("r3", "chr1", &read(), None, &outcome, MappedStrand::Reverse);
        assert_eq!(r.flag & flags::REVERSE, flags::REVERSE);
        assert_eq!(r.edit_distance, Some(2));
        assert!(r.to_line().contains("NM:i:2"));
    }

    #[test]
    fn reverse_record_reverse_complements_seq_and_reverses_qual() {
        use bioseq::quality::Phred;
        // Non-palindromic read so the orientation bug is visible.
        let read: DnaSeq = "AAACCG".parse().unwrap();
        assert_ne!(read.reverse_complement(), read);
        let quality: QualityString = (10..16).map(Phred::new).collect();
        let outcome = AlignmentOutcome::Exact { positions: vec![4] };
        let r = record_for(
            "r5",
            "chr1",
            &read,
            Some(&quality),
            &outcome,
            MappedStrand::Reverse,
        );
        assert_eq!(r.flag & flags::REVERSE, flags::REVERSE);
        assert_eq!(r.seq, "CGGTTT", "SEQ must be the reverse complement");
        assert_eq!(
            r.qual,
            quality.reversed().to_fastq(),
            "QUAL must be reversed"
        );
        // Forward records are untouched.
        let f = record_for(
            "r5",
            "chr1",
            &read,
            Some(&quality),
            &outcome,
            MappedStrand::Forward,
        );
        assert_eq!(f.seq, "AAACCG");
        assert_eq!(f.qual, quality.to_fastq());
    }

    #[test]
    fn unmapped_record_keeps_read_orientation() {
        // An unmapped read has no alignment orientation: SEQ stays as
        // sequenced even though the both-strands path tried the reverse
        // complement too.
        let read: DnaSeq = "AAACCG".parse().unwrap();
        let r = record_for(
            "r6",
            "chr1",
            &read,
            None,
            &AlignmentOutcome::Unmapped,
            MappedStrand::Forward,
        );
        assert_eq!(r.seq, "AAACCG");
        assert_eq!(r.flag, flags::UNMAPPED);
    }

    #[test]
    fn unmapped_record_uses_stars() {
        let r = record_for(
            "r4",
            "chr1",
            &read(),
            None,
            &AlignmentOutcome::Unmapped,
            MappedStrand::Forward,
        );
        assert_eq!(r.flag, flags::UNMAPPED);
        assert_eq!(r.rname, "*");
        assert_eq!(r.pos, 0);
        assert_eq!(r.cigar, "*");
        assert_eq!(r.edit_distance, None);
    }

    #[test]
    fn header_names_reference() {
        let h = header("chrT", 1234);
        assert!(h.contains("SN:chrT"));
        assert!(h.contains("LN:1234"));
        assert!(h.lines().all(|l| l.starts_with('@')));
    }

    #[test]
    fn mapq_scale() {
        assert_eq!(mapq_for(1), 60);
        assert_eq!(mapq_for(2), 3);
        assert_eq!(mapq_for(7), 0);
        assert_eq!(mapq_for(0), 0);
    }
}
