//! The metrics/observability layer behind `PerfReport::breakdown`.
//!
//! Figs. 8–10 of the paper are all derived from *where cycles and energy
//! go*; this module turns the simulator's hierarchical counters
//! ([`pimsim::PrimCounters`], recorded by every logical-op charge) into a
//! reviewable breakdown: per-primitive counts/cycles, per-resource busy
//! cycles, `LFM` attribution per alignment phase, sub-array activations,
//! `IM_ADD` carry cycles, pipeline stage occupancy for the configured
//! `Pd`, and any spans captured by the session tracer.
//!
//! The JSON emitters here are **stable interfaces**: `pimalign
//! --metrics` and the `perfdump` bench bin both write
//! [`PerfReport::to_metrics_json`], whose schema is pinned by a
//! golden-file test (`tests/metrics_json.rs`). Change the schema only
//! together with that golden file and `benchdiff` consumers.

use pimsim::costs::LogicalOp;
use pimsim::{CycleLedger, HostHistogram, KernelCacheCounters, Resource, Span, SpanTracer};

use crate::config::PimAlignerConfig;
use crate::host::HostTotals;
use crate::report::{FaultTelemetry, IndexTelemetry, ObsTelemetry, PerfReport, ServiceTelemetry};

/// Version tag embedded in every metrics JSON document.
///
/// v2 added the per-zone activation `heatmap` to the breakdown and the
/// top-level `host` section (wall-clock latency histograms, worker
/// utilisation, trace-span counts). v3 added the top-level `service`
/// section (admission/deadline/panic/drain counters from the `pimserve`
/// service layer, all-zero for one-shot CLI runs) and the
/// `per_request_latency` histogram to the `host` section. v4 added the
/// top-level `index` section (artifact-vs-rebuild provenance, shard
/// geometry, SA sampling rate and the size-model reconciliation,
/// all-zero when the run never described its index). v5 added the
/// batched-kernel scheduler counters to `breakdown.pipeline` (`issued`,
/// `makespan_cycles`, `sequential_cycles`, `overlap_saved_cycles`,
/// all-zero on the single-read kernel path). v6 added
/// `breakdown.kernel_cache` (rank-checkpoint cache `hits`/`misses`/
/// `evictions`/`hit_rate` — host-side counters, all-zero under
/// `--kernel-simd=scalar`). v7 added the top-level `obs` section
/// (observability-plane summary: rolling-window ring geometry, watchdog
/// stall verdicts and the bounded slow-request log — all-zero/empty for
/// one-shot CLI runs; the *live* windowed views travel over the wire
/// via `Request::Stats`, not through this document). Each version
/// only *adds* paths, so consumers that address fields by name keep
/// working across versions.
pub const METRICS_SCHEMA_VERSION: u32 = 7;

/// `LFM` invocations attributed to the alignment phase that issued them.
///
/// `exact`/`inexact` cover the primary two-stage pass; the recovery
/// counters cover re-runs issued by the verify-and-recover ladder
/// (DESIGN.md §8). The total always equals the batch's `lfm_calls`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseLfm {
    /// Stage-1 exact search (Algorithm 1) of the primary pass.
    pub exact: u64,
    /// Stage-2 inexact backtracking (Algorithm 2) of the primary pass.
    pub inexact: u64,
    /// Same-budget recovery retries (both stages of the re-run).
    pub recovery_retry: u64,
    /// Difference-budget escalation rungs (both stages of the re-run).
    pub recovery_escalate: u64,
}

impl PhaseLfm {
    /// Sum over all phases; reconciles with the batch `lfm_calls`.
    pub fn total(&self) -> u64 {
        self.exact + self.inexact + self.recovery_retry + self.recovery_escalate
    }

    /// Adds `other`'s counts into `self` (parallel worker merge).
    pub fn merge(&mut self, other: &PhaseLfm) {
        self.exact += other.exact;
        self.inexact += other.inexact;
        self.recovery_retry += other.recovery_retry;
        self.recovery_escalate += other.recovery_escalate;
    }
}

/// One primitive's row in the breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimitiveMetrics {
    /// Stable snake-case primitive label ([`LogicalOp::name`]).
    pub name: &'static str,
    /// The resource class the primitive occupies ([`Resource::name`]).
    pub resource: &'static str,
    /// Primitives issued.
    pub count: u64,
    /// Busy cycles occupied.
    pub busy_cycles: u64,
}

/// One resource class's busy-cycle total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceMetrics {
    /// Stable resource label ([`Resource::name`]).
    pub name: &'static str,
    /// Busy cycles attributed to the resource.
    pub busy_cycles: u64,
}

/// Steady-state pipeline stage occupancy for the configured `Pd`
/// (Fig. 7 model): the fraction of each `LFM` issue interval the compare
/// stage and the adder copies are busy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageOccupancy {
    /// Parallelism degree.
    pub pd: usize,
    /// Steady-state cycles per `LFM` at this `Pd`.
    pub cycles_per_lfm: f64,
    /// Compare-stage cycles per `LFM`.
    pub stage_a_cycles: u64,
    /// Inter-sub-array transfer cycles per `LFM` (method-II only).
    pub transfer_cycles: u64,
    /// Add-stage cycles per `LFM`.
    pub stage_b_cycles: u64,
    /// Compare-stage occupancy, percent of the issue interval.
    pub compare_occupancy_pct: f64,
    /// Adder-copy occupancy (transfer + add per copy), percent.
    pub adder_occupancy_pct: f64,
    /// LFM issues the batched kernel routed through the stage-queue
    /// scheduler (0 on the single-read path, which has no overlap).
    pub issued: u64,
    /// Scheduled makespan of those issues (simulated cycles).
    pub makespan_cycles: u64,
    /// What the same issues would cost fully serialised.
    pub sequential_cycles: u64,
    /// Cycles the `Pd` overlap hid (`sequential - makespan`).
    pub overlap_saved_cycles: u64,
}

/// The hierarchical cycle/energy breakdown of one simulated batch.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsBreakdown {
    /// Per-primitive rows, in [`LogicalOp::ALL`] order.
    pub primitives: Vec<PrimitiveMetrics>,
    /// Per-resource busy-cycle totals, in [`Resource::ALL`] order.
    pub resources: Vec<ResourceMetrics>,
    /// The ledger's resource-level busy-cycle aggregate.
    pub total_busy_cycles: u64,
    /// Sum of the per-primitive busy cycles. Equals
    /// [`total_busy_cycles`](MetricsBreakdown::total_busy_cycles) when
    /// every charge flowed through a logical op (the production path).
    pub primitive_cycles_total: u64,
    /// Total dynamic energy, pJ.
    pub energy_pj: f64,
    /// Word-line-driving primitives issued to sub-arrays.
    pub subarray_activations: u64,
    /// Non-overlapped `IM_ADD` carry/write-back cycles.
    pub im_add_carry_cycles: u64,
    /// Total `LFM` invocations.
    pub lfm_calls: u64,
    /// `LFM` attribution per alignment phase (zero for synthetic
    /// ledgers that never ran the aligner).
    pub lfm_by_phase: PhaseLfm,
    /// Pipeline stage occupancy at the configured `Pd`.
    pub pipeline: StageOccupancy,
    /// Rank-checkpoint cache totals (host-side hit/miss/eviction
    /// counts; all-zero when the cache is disabled).
    pub kernel_cache: KernelCacheCounters,
    /// One-time index mapping cost (busy cycles); 0 when not attached.
    pub index_build_cycles: u64,
    /// Spans captured by the session tracer (empty when disabled or for
    /// merged multi-worker reports).
    pub spans: Vec<Span>,
    /// Spans lost to ring overwrite.
    pub spans_dropped: u64,
    /// Per-zone activation heatmap (primary sub-arrays first, then
    /// method-II mirrors), accumulated by the charge sites that know
    /// their target. Sums to at most
    /// [`subarray_activations`](MetricsBreakdown::subarray_activations):
    /// SA locate reads activate an array but are not zone-attributed.
    pub zone_activations: Vec<u64>,
}

impl MetricsBreakdown {
    /// Builds the breakdown from a batch ledger. Phase attribution,
    /// index-build cost and spans are attached afterwards by the session
    /// or platform report path.
    pub fn from_ledger(
        config: &PimAlignerConfig,
        ledger: &CycleLedger,
        lfm_calls: u64,
    ) -> MetricsBreakdown {
        let prims = ledger.primitives();
        let primitives: Vec<PrimitiveMetrics> = LogicalOp::ALL
            .iter()
            .map(|&op| PrimitiveMetrics {
                name: op.name(),
                resource: op.resource().name(),
                count: prims.count(op),
                busy_cycles: prims.cycles(op),
            })
            .collect();
        let resources: Vec<ResourceMetrics> = Resource::ALL
            .iter()
            .map(|&r| ResourceMetrics {
                name: r.name(),
                busy_cycles: ledger.busy_cycles(r),
            })
            .collect();

        let pipeline = config.pipeline();
        let pd = config.pd();
        let rate = pipeline.cycles_per_lfm(pd);
        let adder_busy = if pd == 1 {
            pipeline.stage_b_cycles as f64
        } else {
            pipeline.transfer_cycles as f64 + pipeline.stage_b_cycles as f64 / (pd as f64 - 1.0)
        };
        let scheduled = ledger.pipeline_counters();
        let occupancy = StageOccupancy {
            pd,
            cycles_per_lfm: rate,
            stage_a_cycles: pipeline.stage_a_cycles,
            transfer_cycles: pipeline.transfer_cycles,
            stage_b_cycles: pipeline.stage_b_cycles,
            compare_occupancy_pct: 100.0 * (pipeline.stage_a_cycles as f64 / rate).min(1.0),
            adder_occupancy_pct: 100.0 * (adder_busy / rate).min(1.0),
            issued: scheduled.issued,
            makespan_cycles: scheduled.makespan_cycles,
            sequential_cycles: scheduled.sequential_cycles,
            overlap_saved_cycles: scheduled.overlap_saved_cycles(),
        };

        MetricsBreakdown {
            primitives,
            resources,
            total_busy_cycles: ledger.total_busy_cycles(),
            primitive_cycles_total: prims.total_cycles(),
            energy_pj: ledger.energy_pj(),
            subarray_activations: prims.subarray_activations(),
            im_add_carry_cycles: prims.im_add_carry_cycles(),
            lfm_calls,
            lfm_by_phase: PhaseLfm::default(),
            pipeline: occupancy,
            kernel_cache: ledger.kernel_cache_counters(),
            index_build_cycles: 0,
            spans: Vec::new(),
            spans_dropped: 0,
            zone_activations: ledger.zone_activations().to_vec(),
        }
    }

    /// Attaches the spans harvested from a session tracer.
    pub fn attach_spans(&mut self, tracer: &SpanTracer) {
        self.spans = tracer.spans();
        self.spans_dropped = tracer.dropped();
    }

    /// `true` when the per-primitive cycle total reconciles exactly with
    /// the ledger's resource-level aggregate — the invariant the
    /// production charge path maintains.
    pub fn reconciles(&self) -> bool {
        self.primitive_cycles_total == self.total_busy_cycles
    }

    /// The breakdown object as stable JSON (no trailing newline).
    pub fn to_json(&self) -> String {
        let prim_rows = self
            .primitives
            .iter()
            .map(|p| {
                format!(
                    "      {{ \"name\": \"{}\", \"resource\": \"{}\", \"count\": {}, \
                     \"busy_cycles\": {} }}",
                    p.name, p.resource, p.count, p.busy_cycles
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let res_rows = self
            .resources
            .iter()
            .map(|r| {
                format!(
                    "      {{ \"name\": \"{}\", \"busy_cycles\": {} }}",
                    r.name, r.busy_cycles
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let span_rows = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "      {{ \"name\": \"{}\", \"start_cycles\": {}, \"end_cycles\": {} }}",
                    s.name, s.start_cycles, s.end_cycles
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let spans_json = if self.spans.is_empty() {
            "[]".to_owned()
        } else {
            format!("[\n{span_rows}\n    ]")
        };
        let zone_rows = self
            .zone_activations
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let p = &self.pipeline;
        format!(
            "{{\n    \
             \"total_busy_cycles\": {},\n    \
             \"primitive_cycles_total\": {},\n    \
             \"energy_pj\": {},\n    \
             \"subarray_activations\": {},\n    \
             \"im_add_carry_cycles\": {},\n    \
             \"lfm_calls\": {},\n    \
             \"index_build_cycles\": {},\n    \
             \"primitives\": [\n{}\n    ],\n    \
             \"resources\": [\n{}\n    ],\n    \
             \"lfm_by_phase\": {{ \"exact\": {}, \"inexact\": {}, \"recovery_retry\": {}, \
             \"recovery_escalate\": {} }},\n    \
             \"pipeline\": {{ \"pd\": {}, \"cycles_per_lfm\": {}, \"stage_a_cycles\": {}, \
             \"transfer_cycles\": {}, \"stage_b_cycles\": {}, \"compare_occupancy_pct\": {}, \
             \"adder_occupancy_pct\": {}, \"issued\": {}, \"makespan_cycles\": {}, \
             \"sequential_cycles\": {}, \"overlap_saved_cycles\": {} }},\n    \
             \"kernel_cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \
             \"hit_rate\": {} }},\n    \
             \"spans\": {},\n    \
             \"spans_dropped\": {},\n    \
             \"heatmap\": {{ \"zones\": {}, \"activations\": [{}] }}\n  }}",
            self.total_busy_cycles,
            self.primitive_cycles_total,
            json_f64(self.energy_pj),
            self.subarray_activations,
            self.im_add_carry_cycles,
            self.lfm_calls,
            self.index_build_cycles,
            prim_rows,
            res_rows,
            self.lfm_by_phase.exact,
            self.lfm_by_phase.inexact,
            self.lfm_by_phase.recovery_retry,
            self.lfm_by_phase.recovery_escalate,
            p.pd,
            json_f64(p.cycles_per_lfm),
            p.stage_a_cycles,
            p.transfer_cycles,
            p.stage_b_cycles,
            json_f64(p.compare_occupancy_pct),
            json_f64(p.adder_occupancy_pct),
            p.issued,
            p.makespan_cycles,
            p.sequential_cycles,
            p.overlap_saved_cycles,
            self.kernel_cache.hits,
            self.kernel_cache.misses,
            self.kernel_cache.evictions,
            json_f64(self.kernel_cache.hit_rate()),
            spans_json,
            self.spans_dropped,
            self.zone_activations.len(),
            zone_rows,
        )
    }
}

impl PerfReport {
    /// The full metrics document — batch report, fault telemetry and the
    /// cycle breakdown — as stable JSON (schema pinned by the golden
    /// test; ends with a newline).
    pub fn to_metrics_json(&self) -> String {
        format!(
            "{{\n  \"schema_version\": {},\n  \"report\": {},\n  \"faults\": {},\n  \
             \"breakdown\": {},\n  \"host\": {},\n  \"service\": {},\n  \"index\": {},\n  \
             \"obs\": {}\n}}\n",
            METRICS_SCHEMA_VERSION,
            report_json(self),
            faults_json(&self.faults),
            self.breakdown.to_json(),
            host_section_json(&self.host),
            service_section_json(&self.service),
            index_section_json(&self.index),
            obs_section_json(&self.obs),
        )
    }
}

/// The `obs` section of the metrics document (schema v7): the drain-time
/// summary of the live observability plane — rolling-window ring
/// geometry, watchdog verdicts and the bounded slow-request log.
/// All-zero/empty for one-shot CLI runs, which never start the plane.
pub fn obs_section_json(o: &ObsTelemetry) -> String {
    format!(
        "{{\n    \
         \"window_secs\": {},\n    \
         \"buckets_retired\": {},\n    \
         \"watchdog_stalls\": {},\n    \
         \"watchdog_max_head_age_ms\": {},\n    \
         \"watchdog_threshold_ms\": {},\n    \
         \"slow\": {}\n  }}",
        o.window_secs,
        o.buckets_retired,
        o.watchdog_stalls,
        o.watchdog_max_head_age_ms,
        o.watchdog_threshold_ms,
        crate::service::obs::slow_json(&o.slow, "    "),
    )
}

/// The `index` section of the metrics document (schema v4): where the
/// index came from (artifact vs in-process build), the shard geometry,
/// the SA sampling rate, and the actual-vs-modelled storage bytes.
/// All-zero for callers that never described their index.
pub fn index_section_json(ix: &IndexTelemetry) -> String {
    format!(
        "{{\n    \
         \"loaded\": {},\n    \
         \"shards\": {},\n    \
         \"sa_rate\": {},\n    \
         \"shard_window\": {},\n    \
         \"shard_overlap\": {},\n    \
         \"actual_bytes\": {},\n    \
         \"model_bytes\": {}\n  }}",
        ix.loaded,
        ix.shards,
        ix.sa_rate,
        ix.shard_window,
        ix.shard_overlap,
        ix.actual_bytes,
        ix.model_bytes,
    )
}

/// The `service` section of the metrics document: the admission-control,
/// deadline, panic-quarantine and drain counters a `pimserve` run
/// produced (all-zero for one-shot CLI runs, which never touch the
/// service layer). Shared by [`PerfReport::to_metrics_json`] and the
/// service drain path, which must emit counters even when zero reads
/// aligned.
pub fn service_section_json(s: &ServiceTelemetry) -> String {
    format!(
        "{{\n    \
         \"received\": {},\n    \
         \"accepted\": {},\n    \
         \"shed_queue_full\": {},\n    \
         \"shed_inflight_bytes\": {},\n    \
         \"rejected_draining\": {},\n    \
         \"rejected_invalid\": {},\n    \
         \"expired_in_queue\": {},\n    \
         \"late_responses\": {},\n    \
         \"deadline_misses\": {},\n    \
         \"panics_quarantined\": {},\n    \
         \"batches\": {},\n    \
         \"responses\": {},\n    \
         \"peak_queue_depth\": {},\n    \
         \"peak_inflight_bytes\": {}\n  }}",
        s.received,
        s.accepted,
        s.shed_queue_full,
        s.shed_inflight_bytes,
        s.rejected_draining,
        s.rejected_invalid,
        s.expired_in_queue,
        s.late_responses,
        s.deadline_misses(),
        s.panics_quarantined,
        s.batches,
        s.responses,
        s.peak_queue_depth,
        s.peak_inflight_bytes,
    )
}

/// The `host` section of the metrics document: wall-clock latency
/// histograms, worker utilisation and trace-span counts. Everything here
/// is host time — nondeterministic across runs and machines — which is
/// why it lives in its own top-level section, never mixed into the
/// simulated `report`/`breakdown` quantities (DESIGN.md §12). Shared by
/// [`PerfReport::to_metrics_json`] and the `hostbench` bin.
pub fn host_section_json(host: &HostTotals) -> String {
    let worker_rows = host
        .workers
        .iter()
        .map(|w| {
            format!(
                "      {{ \"worker\": {}, \"chunks_claimed\": {}, \"steals\": {}, \
                 \"reads\": {}, \"busy_ns\": {}, \"busy_pct\": {} }}",
                w.worker,
                w.chunks_claimed,
                w.steals,
                w.reads,
                w.busy_ns,
                json_f64(100.0 * w.busy_fraction(host.wall_ns)),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let workers_json = if host.workers.is_empty() {
        "[]".to_owned()
    } else {
        format!("[\n{worker_rows}\n    ]")
    };
    format!(
        "{{\n    \
         \"wall_ns\": {},\n    \
         \"per_read_latency\": {},\n    \
         \"per_chunk_latency\": {},\n    \
         \"per_request_latency\": {},\n    \
         \"workers\": {},\n    \
         \"trace_spans\": {},\n    \
         \"trace_spans_dropped\": {}\n  }}",
        host.wall_ns,
        histogram_json(&host.per_read),
        histogram_json(&host.per_chunk),
        histogram_json(&host.per_request),
        workers_json,
        host.spans.len(),
        host.spans_dropped,
    )
}

/// One latency histogram as JSON: summary stats, log2-bucket quantile
/// upper bounds, and the sparse list of non-empty buckets.
fn histogram_json(h: &HostHistogram) -> String {
    let buckets = h
        .nonzero_buckets()
        .iter()
        .map(|&(le_ns, count)| format!("{{ \"le_ns\": {le_ns}, \"count\": {count} }}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{ \"count\": {}, \"sum_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}, \
         \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"buckets\": [{}] }}",
        h.count(),
        h.sum_ns(),
        h.max_ns(),
        json_f64(h.mean_ns()),
        h.quantile_upper_ns(0.5),
        h.quantile_upper_ns(0.9),
        h.quantile_upper_ns(0.99),
        buckets,
    )
}

fn report_json(r: &PerfReport) -> String {
    format!(
        "{{ \"queries\": {}, \"lfm_calls\": {}, \"time_s\": {}, \"throughput_qps\": {}, \
         \"dynamic_power_w\": {}, \"total_power_w\": {}, \"energy_per_query_j\": {}, \
         \"mbr_pct\": {}, \"rur_pct\": {}, \"area_mm2\": {}, \"offchip_gb\": {}, \
         \"throughput_per_watt\": {}, \"throughput_per_watt_mm2\": {} }}",
        r.queries,
        r.lfm_calls,
        json_f64(r.time_s),
        json_f64(r.throughput_qps),
        json_f64(r.dynamic_power_w),
        json_f64(r.total_power_w),
        json_f64(r.energy_per_query_j),
        json_f64(r.mbr_pct),
        json_f64(r.rur_pct),
        json_f64(r.area_mm2),
        json_f64(r.offchip_gb),
        json_f64(r.throughput_per_watt),
        json_f64(r.throughput_per_watt_mm2),
    )
}

fn faults_json(t: &FaultTelemetry) -> String {
    format!(
        "{{ \"stuck_cells\": {}, \"xnor_bit_flips\": {}, \"transient_row_faults\": {}, \
         \"carry_faults\": {}, \"verifications\": {}, \"verify_failures\": {}, \
         \"retries\": {}, \"escalations\": {}, \"host_fallbacks\": {}, \
         \"unrecoverable\": {} }}",
        t.stuck_cells,
        t.xnor_bit_flips,
        t.transient_row_faults,
        t.carry_faults,
        t.verifications,
        t.verify_failures,
        t.retries,
        t.escalations,
        t.host_fallbacks,
        t.unrecoverable,
    )
}

/// Deterministic JSON float formatting: scientific notation with six
/// significant decimals (finite values only; the simulator never
/// produces NaN/inf).
pub(crate) fn json_f64(x: f64) -> String {
    debug_assert!(x.is_finite(), "metrics JSON requires finite floats");
    if x == 0.0 {
        "0.0".to_owned()
    } else {
        format!("{x:.6e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mram::array::ArrayModel;
    use pimsim::costs;

    fn synthetic_ledger(lfms: u64) -> CycleLedger {
        let model = ArrayModel::default();
        let mut ledger = CycleLedger::new();
        for _ in 0..lfms {
            costs::charge_lfm(&model, &mut ledger);
        }
        ledger
    }

    #[test]
    fn breakdown_reconciles_for_logical_op_ledgers() {
        let config = PimAlignerConfig::baseline();
        let ledger = synthetic_ledger(10);
        let b = MetricsBreakdown::from_ledger(&config, &ledger, 10);
        assert!(
            b.reconciles(),
            "prim cycles {} vs busy {}",
            b.primitive_cycles_total,
            b.total_busy_cycles
        );
        assert_eq!(b.total_busy_cycles, 760);
        // One LFM = 1 xnor + 1 popcount + 1 marker read + 1 add + 1 update.
        let by_name = |n: &str| b.primitives.iter().find(|p| p.name == n).unwrap();
        assert_eq!(by_name("xnor_match").count, 10);
        assert_eq!(by_name("im_add32").count, 10);
        assert_eq!(by_name("im_add32").busy_cycles, 450);
        assert_eq!(b.im_add_carry_cycles, 130);
        // xnor + marker read + add activate; popcount + update do not.
        assert_eq!(b.subarray_activations, 30);
    }

    #[test]
    fn occupancy_matches_pipeline_model() {
        let ledger = synthetic_ledger(1);
        let n = MetricsBreakdown::from_ledger(&PimAlignerConfig::baseline(), &ledger, 1);
        assert_eq!(n.pipeline.pd, 1);
        assert!((n.pipeline.compare_occupancy_pct - 100.0 * 29.0 / 76.0).abs() < 1e-9);
        assert!((n.pipeline.adder_occupancy_pct - 100.0 * 47.0 / 76.0).abs() < 1e-9);
        let p = MetricsBreakdown::from_ledger(&PimAlignerConfig::pipelined(), &ledger, 1);
        assert_eq!(p.pipeline.pd, 2);
        // Pd=2: adder copy binds (transfer 7 + add 47 = 54 = issue rate).
        assert!((p.pipeline.adder_occupancy_pct - 100.0).abs() < 1e-9);
        assert!((p.pipeline.compare_occupancy_pct - 100.0 * 29.0 / 54.0).abs() < 1e-9);
    }

    #[test]
    fn phase_lfm_merge_and_total() {
        let mut a = PhaseLfm {
            exact: 10,
            inexact: 4,
            recovery_retry: 2,
            recovery_escalate: 1,
        };
        let b = PhaseLfm {
            exact: 5,
            inexact: 0,
            recovery_retry: 3,
            recovery_escalate: 0,
        };
        a.merge(&b);
        assert_eq!(a.exact, 15);
        assert_eq!(a.recovery_retry, 5);
        assert_eq!(a.total(), 25);
    }

    #[test]
    fn json_floats_are_deterministic_and_finite() {
        assert_eq!(json_f64(0.0), "0.0");
        assert_eq!(json_f64(1234.5), "1.234500e3");
        assert_eq!(json_f64(-0.25), "-2.500000e-1");
    }

    #[test]
    fn breakdown_json_contains_every_section() {
        let ledger = synthetic_ledger(3);
        let b = MetricsBreakdown::from_ledger(&PimAlignerConfig::pipelined(), &ledger, 3);
        let json = b.to_json();
        for key in [
            "\"total_busy_cycles\"",
            "\"primitive_cycles_total\"",
            "\"energy_pj\"",
            "\"subarray_activations\"",
            "\"im_add_carry_cycles\"",
            "\"primitives\"",
            "\"resources\"",
            "\"lfm_by_phase\"",
            "\"pipeline\"",
            "\"kernel_cache\"",
            "\"hit_rate\"",
            "\"spans\"",
            "\"spans_dropped\"",
            "\"heatmap\"",
            "\"xnor_match\"",
            "\"compare_occupancy_pct\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn service_section_reports_every_counter() {
        let s = ServiceTelemetry {
            received: 12,
            accepted: 9,
            shed_queue_full: 2,
            shed_inflight_bytes: 1,
            expired_in_queue: 1,
            late_responses: 1,
            panics_quarantined: 1,
            batches: 3,
            responses: 9,
            peak_queue_depth: 6,
            peak_inflight_bytes: 4_096,
            ..ServiceTelemetry::default()
        };
        let json = service_section_json(&s);
        for key in [
            "\"received\": 12",
            "\"shed_queue_full\": 2",
            "\"shed_inflight_bytes\": 1",
            "\"deadline_misses\": 2",
            "\"panics_quarantined\": 1",
            "\"peak_queue_depth\": 6",
            "\"peak_inflight_bytes\": 4096",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The quiet default still emits every field (stable schema).
        let quiet = service_section_json(&ServiceTelemetry::default());
        assert!(quiet.contains("\"received\": 0"));
        assert!(quiet.contains("\"deadline_misses\": 0"));
    }

    #[test]
    fn index_section_reports_every_field() {
        let ix = IndexTelemetry {
            loaded: true,
            shards: 3,
            sa_rate: 8,
            shard_window: 65_536,
            shard_overlap: 256,
            actual_bytes: 123_456,
            model_bytes: 123_400,
        };
        let json = index_section_json(&ix);
        for key in [
            "\"loaded\": true",
            "\"shards\": 3",
            "\"sa_rate\": 8",
            "\"shard_window\": 65536",
            "\"shard_overlap\": 256",
            "\"actual_bytes\": 123456",
            "\"model_bytes\": 123400",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The quiet default still emits every field (stable schema).
        let quiet = index_section_json(&IndexTelemetry::default());
        assert!(quiet.contains("\"loaded\": false"));
        assert!(quiet.contains("\"shards\": 0"));
    }

    #[test]
    fn host_section_carries_histograms_and_workers() {
        use pimsim::WorkerStats;
        let mut host = HostTotals::new();
        host.wall_ns = 2_000;
        host.per_read.record_ns(150);
        host.per_read.record_ns(900);
        host.per_chunk.record_ns(1_800);
        host.absorb_worker(WorkerStats {
            worker: 0,
            chunks_claimed: 2,
            steals: 1,
            reads: 2,
            busy_ns: 1_900,
        });
        let json = host_section_json(&host);
        for key in [
            "\"wall_ns\": 2000",
            "\"per_read_latency\"",
            "\"per_chunk_latency\"",
            "\"p99_ns\"",
            "\"le_ns\"",
            "\"workers\"",
            "\"steals\": 1",
            "\"busy_pct\"",
            "\"trace_spans\": 0",
            "\"trace_spans_dropped\": 0",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Empty totals still emit every section (stable schema).
        let empty = host_section_json(&HostTotals::new());
        assert!(empty.contains("\"workers\": []"));
        assert!(empty.contains("\"buckets\": []"));
    }
}
