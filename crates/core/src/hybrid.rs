//! Seed-and-extend hybrid alignment (beyond-paper extension,
//! DESIGN.md §8).
//!
//! Backtracking explodes beyond the paper's `z ≤ 2`; reads with more
//! damage (long indels, many errors) are where real pipelines switch to
//! seed-and-extend. This module composes the two engines the paper
//! contrasts: the PIM platform's O(m) exact search locates short exact
//! seeds, and the O(n·m) dynamic-programming baseline verifies only the
//! tiny candidate windows those seeds nominate — the FM-index does the
//! search, the DP does the polish.

use bioseq::DnaSeq;
use swalign::{affine_local, Alignment, Scoring};

use crate::aligner::PimAligner;
use crate::exact::exact_search;

/// Configuration of the seed-and-extend stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedExtendConfig {
    /// Seed length (exact-match chunks of the read).
    pub seed_len: usize,
    /// Maximum positions examined per seed (repeat guard).
    pub max_candidates_per_seed: usize,
    /// Extra reference flank on each side of the candidate window.
    pub window_flank: usize,
    /// Scoring for the DP verification.
    pub scoring: Scoring,
    /// Minimum accepted score as a fraction of the perfect-match score.
    pub min_score_fraction: f64,
}

impl Default for SeedExtendConfig {
    fn default() -> Self {
        SeedExtendConfig {
            seed_len: 20,
            max_candidates_per_seed: 8,
            window_flank: 24,
            scoring: Scoring::new(2, -3, -4, -1),
            min_score_fraction: 0.55,
        }
    }
}

/// A verified hybrid alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridHit {
    /// Reference position the alignment starts at.
    pub ref_start: usize,
    /// DP score of the verification.
    pub score: i32,
    /// The full DP alignment (coordinates relative to the candidate
    /// window start = `ref_start` after normalisation).
    pub alignment: Alignment,
}

/// Runs seed-and-extend: platform-searched exact seeds, DP-verified
/// extension. Returns the best-scoring hit at or above the configured
/// score threshold.
///
/// Seed search runs on the simulated platform (its `LFM` work is charged
/// to the aligner's ledger like any other query); only the DP
/// verification runs host-side, mirroring how a deployed PIM would split
/// the work.
///
/// # Panics
///
/// Panics if `config.seed_len` is zero or exceeds the read length.
pub fn seed_and_extend(
    aligner: &mut PimAligner,
    read: &DnaSeq,
    config: SeedExtendConfig,
) -> Option<HybridHit> {
    assert!(config.seed_len > 0, "seed length must be positive");
    assert!(
        config.seed_len <= read.len(),
        "seed length exceeds the read"
    );
    let reference = aligner.reference().clone();
    // Non-overlapping seeds; with e errors, ≥ (#seeds − e) remain exact,
    // so any read with fewer errors than seeds yields a candidate.
    let seed_starts: Vec<usize> = (0..read.len() - config.seed_len + 1)
        .step_by(config.seed_len)
        .collect();
    let mut candidates: Vec<usize> = Vec::new();
    for &offset in &seed_starts {
        let seed = read.subseq(offset..offset + config.seed_len);
        let (interval, _) = {
            let (mapped, injector, dpu, ledger) = aligner.platform_parts();
            exact_search(mapped, injector, dpu, &seed, ledger)
        };
        if interval.is_empty() || interval.count() as usize > config.max_candidates_per_seed {
            continue;
        }
        let positions = {
            let (mapped, _, _, ledger) = aligner.platform_parts();
            mapped.locate(interval, ledger)
        };
        for p in positions {
            // Candidate window start implied by the seed's read offset.
            candidates.push(p.saturating_sub(offset));
        }
    }
    candidates.sort_unstable();
    candidates.dedup();

    let mut best: Option<HybridHit> = None;
    let perfect = read.len() as i32 * config.scoring.match_score as i32;
    let threshold = (perfect as f64 * config.min_score_fraction) as i32;
    for start in candidates {
        let window_start = start.saturating_sub(config.window_flank);
        let window_end = (start + read.len() + config.window_flank).min(reference.len());
        if window_end <= window_start {
            continue;
        }
        let window = reference.subseq(window_start..window_end);
        let alignment = affine_local(&window, read, config.scoring);
        if alignment.score < threshold {
            continue;
        }
        let hit = HybridHit {
            ref_start: window_start + alignment.ref_start,
            score: alignment.score,
            alignment,
        };
        if best.as_ref().is_none_or(|b| hit.score > b.score) {
            best = Some(hit);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aligner::AlignmentOutcome;
    use crate::config::PimAlignerConfig;
    use bioseq::Base;
    use readsim::genome;

    fn damage(read: &DnaSeq, subs: &[usize]) -> DnaSeq {
        let mut bases = read.clone().into_bases();
        for &p in subs {
            bases[p] = Base::from_rank((bases[p].rank() + 1) % 4);
        }
        DnaSeq::from_bases(bases)
    }

    #[test]
    fn recovers_read_beyond_backtracking_budget() {
        let reference = genome::uniform(40_000, 301);
        let mut aligner =
            PimAligner::new(&reference, PimAlignerConfig::baseline().with_max_diffs(2));
        // Five substitutions: far beyond z = 2 (the seed at offset 60
        // stays clean, so seeding still succeeds).
        let read = damage(&reference.subseq(9_000..9_100), &[5, 25, 45, 88, 92]);
        assert_eq!(
            aligner.align_read(&read),
            AlignmentOutcome::Unmapped,
            "z=2 backtracking must give up"
        );
        let hit = seed_and_extend(&mut aligner, &read, SeedExtendConfig::default())
            .expect("hybrid must recover the read");
        assert_eq!(hit.ref_start, 9_000);
    }

    #[test]
    fn recovers_long_deletion() {
        let reference = genome::uniform(30_000, 302);
        let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline());
        // Delete 6 bases from the middle of a 100-bp template.
        let mut bases = reference.subseq(5_000..5_100).into_bases();
        bases.drain(50..56);
        let read = DnaSeq::from_bases(bases);
        let hit = seed_and_extend(&mut aligner, &read, SeedExtendConfig::default())
            .expect("hybrid must bridge a 6-bp deletion");
        assert!(
            hit.ref_start.abs_diff(5_000) <= 2,
            "start {}",
            hit.ref_start
        );
        assert!(hit.alignment.cigar.indel_count() >= 6);
    }

    #[test]
    fn clean_read_scores_perfect() {
        let reference = genome::uniform(10_000, 303);
        let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline());
        let read = reference.subseq(2_000..2_080);
        let config = SeedExtendConfig::default();
        let hit = seed_and_extend(&mut aligner, &read, config).expect("clean read");
        assert_eq!(hit.ref_start, 2_000);
        assert_eq!(
            hit.score,
            read.len() as i32 * config.scoring.match_score as i32
        );
    }

    #[test]
    fn hopeless_read_returns_none() {
        let reference = genome::uniform(10_000, 304);
        let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline());
        let junk: DnaSeq = "ACGT".repeat(25).parse().unwrap();
        // Periodic junk may seed somewhere, but the DP threshold rejects.
        let hit = seed_and_extend(&mut aligner, &junk, SeedExtendConfig::default());
        assert!(hit.is_none());
    }

    #[test]
    #[should_panic(expected = "seed length exceeds")]
    fn oversized_seed_rejected() {
        let reference = genome::uniform(1_000, 305);
        let mut aligner = PimAligner::new(&reference, PimAlignerConfig::baseline());
        let read = reference.subseq(0..10);
        let _ = seed_and_extend(
            &mut aligner,
            &read,
            SeedExtendConfig {
                seed_len: 50,
                ..Default::default()
            },
        );
    }
}
