//! The Burrows–Wheeler transform.

use std::fmt;

use bioseq::{PackedSeq, Symbol};

use crate::text::Text;

/// The Burrows–Wheeler transform of a [`Text`] — the last column of the
/// lexicographically-sorted BW-matrix (paper Fig. 1: `BWT(TGCTA$) =
/// ATGTC$`).
///
/// Stored as symbol ranks. Exactly one position holds the sentinel.
///
/// # Examples
///
/// ```
/// use bioseq::DnaSeq;
/// use fmindex::{suffix_array, Bwt, Text};
///
/// # fn main() -> Result<(), bioseq::ParseSeqError> {
/// let text = Text::from_reference(&"TGCTA".parse::<DnaSeq>()?);
/// let sa = suffix_array(&text);
/// let bwt = Bwt::from_sa(&text, &sa);
/// assert_eq!(bwt.to_string(), "ATGTC$");
/// assert_eq!(bwt.invert(), text); // BWT is reversible (paper §II)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bwt {
    ranks: Vec<u8>,
    sentinel_pos: usize,
}

impl Bwt {
    /// Derives the BWT from a text and its suffix array:
    /// `BWT[i] = text[SA[i] − 1]` (wrapping to the sentinel).
    ///
    /// # Panics
    ///
    /// Panics if `sa` is not a permutation of `0..text.len()`.
    pub fn from_sa(text: &Text, sa: &[usize]) -> Bwt {
        assert_eq!(sa.len(), text.len(), "suffix array length mismatch");
        let n = text.len();
        let mut ranks = Vec::with_capacity(n);
        let mut sentinel_pos = usize::MAX;
        for (i, &p) in sa.iter().enumerate() {
            let prev = if p == 0 { n - 1 } else { p - 1 };
            let r = text.rank(prev);
            if r == 0 {
                sentinel_pos = i;
            }
            ranks.push(r);
        }
        assert_ne!(
            sentinel_pos,
            usize::MAX,
            "suffix array missing sentinel row"
        );
        Bwt {
            ranks,
            sentinel_pos,
        }
    }

    /// Reconstructs a BWT from stored symbol ranks (deserialisation
    /// path).
    pub(crate) fn from_ranks(ranks: Vec<u8>, sentinel_pos: usize) -> Bwt {
        debug_assert_eq!(ranks[sentinel_pos], 0);
        Bwt {
            ranks,
            sentinel_pos,
        }
    }

    /// Length of the BWT (equals the text length).
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// A BWT is never empty (the text always contains the sentinel).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The symbol rank at `pos` (`0` is the sentinel).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= self.len()`.
    #[inline]
    pub fn rank(&self, pos: usize) -> u8 {
        self.ranks[pos]
    }

    /// The symbol at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= self.len()`.
    pub fn symbol(&self, pos: usize) -> Symbol {
        Symbol::from_rank(self.ranks[pos] as usize)
    }

    /// Position of the sentinel within the BWT.
    pub fn sentinel_pos(&self) -> usize {
        self.sentinel_pos
    }

    /// The ranks as a slice.
    pub fn as_ranks(&self) -> &[u8] {
        &self.ranks
    }

    /// Counts occurrences of symbol rank `sym` in `self[range]` — the
    /// software equivalent of the platform's `XNOR_Match` + popcount
    /// over a word-line segment, and word-parallel like it: eight bytes
    /// at a time via SWAR (XOR against a broadcast of `sym` turns
    /// matches into zero bytes, which are detected and counted with the
    /// classic haszero mask + popcount).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn count_in_range(&self, sym: u8, range: std::ops::Range<usize>) -> usize {
        const LO: u64 = 0x0101_0101_0101_0101;
        // Ranks are 0..=4 (sentinel plus four bases), so `rank ^ sym`
        // fits in the low 3 bits of each byte: OR-folding those bits
        // into bit 0 gives an exact per-byte nonzero flag. (The classic
        // haszero SWAR is only a boolean test — its borrow chain
        // overcounts 0x01 bytes that sit above a zero byte.)
        debug_assert!(sym <= 4, "symbol rank out of range: {sym}");
        let bytes = &self.ranks[range];
        let broadcast = u64::from(sym) * LO;
        let mut chunks = bytes.chunks_exact(8);
        let mut count = 0;
        for chunk in chunks.by_ref() {
            let diff = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")) ^ broadcast;
            let nonzero = (diff | (diff >> 1) | (diff >> 2)) & LO;
            count += 8 - nonzero.count_ones() as usize;
        }
        count
            + chunks
                .remainder()
                .iter()
                .map(|&r| usize::from(r == sym))
                .sum::<usize>()
    }

    /// Packs the nucleotide content 2 bits per base for the PIM BWT zone.
    /// The sentinel cannot be represented in 2 bits; the returned vector
    /// gives `(packed sequence, sentinel position)` and the platform treats
    /// the sentinel cell as a never-matching placeholder (encoded as `T`).
    pub fn to_packed(&self) -> (PackedSeq, usize) {
        let packed = self
            .ranks
            .iter()
            .map(|&r| {
                if r == 0 {
                    bioseq::Base::T // placeholder bits for the sentinel cell
                } else {
                    bioseq::Base::from_rank(r as usize - 1)
                }
            })
            .collect();
        (packed, self.sentinel_pos)
    }

    /// Inverts the transform, reconstructing the original text — the
    /// "reversible permutation" property from paper §II.
    pub fn invert(&self) -> Text {
        let n = self.len();
        // LF mapping: stable rank of each symbol occurrence.
        let mut counts = [0usize; crate::text::ALPHABET];
        for &r in &self.ranks {
            counts[r as usize] += 1;
        }
        let mut starts = [0usize; crate::text::ALPHABET];
        let mut sum = 0;
        for (s, &c) in starts.iter_mut().zip(&counts) {
            *s = sum;
            sum += c;
        }
        let mut occ_before = vec![0usize; n];
        let mut running = [0usize; crate::text::ALPHABET];
        for (i, &r) in self.ranks.iter().enumerate() {
            occ_before[i] = running[r as usize];
            running[r as usize] += 1;
        }
        // Reconstruct right-to-left. Row 0 of the BW matrix is always the
        // bare-sentinel suffix, and BWT[row] is the text symbol immediately
        // preceding that row's suffix; LF-stepping walks the text backwards.
        let mut out = vec![0u8; n];
        let mut pos = n - 1;
        out[pos] = 0; // sentinel
        let mut row = 0;
        while pos > 0 {
            let sym = self.ranks[row];
            pos -= 1;
            out[pos] = sym;
            // LF-step to the row of the suffix starting at `pos`.
            row = starts[sym as usize] + occ_before[row];
        }
        let seq: bioseq::DnaSeq = out[..n - 1]
            .iter()
            .map(|&r| bioseq::Base::from_rank(r as usize - 1))
            .collect();
        Text::from_reference(&seq)
    }
}

impl fmt::Display for Bwt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &r in &self.ranks {
            write!(f, "{}", Symbol::from_rank(r as usize).to_char())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::suffix_array;
    use bioseq::DnaSeq;
    use proptest::prelude::*;

    fn bwt_of(s: &str) -> (Text, Bwt) {
        let t = Text::from_reference(&s.parse::<DnaSeq>().unwrap());
        let sa = suffix_array(&t);
        let b = Bwt::from_sa(&t, &sa);
        (t, b)
    }

    #[test]
    fn paper_fig1_bwt() {
        let (_, b) = bwt_of("TGCTA");
        assert_eq!(b.to_string(), "ATGTC$");
    }

    #[test]
    fn sentinel_position_tracked() {
        let (_, b) = bwt_of("TGCTA");
        assert_eq!(b.symbol(b.sentinel_pos()), Symbol::Sentinel);
        assert_eq!(b.count_in_range(0, 0..b.len()), 1);
    }

    #[test]
    fn inversion_recovers_text() {
        for s in ["TGCTA", "A", "ACGTACGT", "GGGGG", "GATTACA"] {
            let (t, b) = bwt_of(s);
            assert_eq!(b.invert(), t, "inversion failed for {s}");
        }
    }

    #[test]
    fn count_in_range_scans() {
        let (_, b) = bwt_of("TGCTA"); // ATGTC$
        let t_rank = Symbol::Base(bioseq::Base::T).rank() as u8;
        assert_eq!(b.count_in_range(t_rank, 0..6), 2);
        assert_eq!(b.count_in_range(t_rank, 0..2), 1);
        assert_eq!(b.count_in_range(t_rank, 2..4), 1);
        assert_eq!(b.count_in_range(t_rank, 4..6), 0);
    }

    #[test]
    fn count_in_range_swar_matches_naive_scan() {
        // The adversarial shape for the SWAR kernel: rank^sym == 1
        // bytes adjacent to matching (zero-diff) bytes, at every
        // alignment and with sub-word remainders.
        let (_, b) = bwt_of("ACGTACGTTTTGGGCCAATGCTAGCTAGGATCCA");
        for sym in 0..=4u8 {
            for start in 0..b.len() {
                for end in start..=b.len() {
                    let naive = b.as_ranks()[start..end]
                        .iter()
                        .map(|&r| usize::from(r == sym))
                        .sum::<usize>();
                    assert_eq!(
                        b.count_in_range(sym, start..end),
                        naive,
                        "sym {sym} range {start}..{end}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_form_substitutes_sentinel() {
        let (_, b) = bwt_of("TGCTA");
        let (packed, pos) = b.to_packed();
        assert_eq!(packed.len(), b.len());
        assert_eq!(pos, b.sentinel_pos());
        // Non-sentinel cells round-trip.
        for i in 0..b.len() {
            if i != pos {
                let expected = bioseq::Base::from_rank(b.rank(i) as usize - 1);
                assert_eq!(packed.get(i), Some(expected));
            }
        }
    }

    proptest! {
        #[test]
        fn bwt_round_trips(bases in proptest::collection::vec(0u8..4, 0..200)) {
            let seq: DnaSeq = bases.iter().map(|&r| bioseq::Base::from_rank(r as usize)).collect();
            let t = Text::from_reference(&seq);
            let sa = suffix_array(&t);
            let b = Bwt::from_sa(&t, &sa);
            prop_assert_eq!(b.invert(), t);
        }

        #[test]
        fn bwt_is_permutation_of_text(bases in proptest::collection::vec(0u8..4, 0..200)) {
            let seq: DnaSeq = bases.iter().map(|&r| bioseq::Base::from_rank(r as usize)).collect();
            let t = Text::from_reference(&seq);
            let sa = suffix_array(&t);
            let b = Bwt::from_sa(&t, &sa);
            let mut tx: Vec<u8> = t.as_ranks().to_vec();
            let mut bw: Vec<u8> = b.as_ranks().to_vec();
            tx.sort_unstable();
            bw.sort_unstable();
            prop_assert_eq!(tx, bw);
        }
    }
}
