//! Suffix-array construction.
//!
//! Two implementations are provided:
//!
//! * [`suffix_array`] — linear-time SA-IS (induced sorting), the
//!   production path used for all index builds;
//! * [`suffix_array_naive`] — O(n² log n) comparison sort, kept as an
//!   independent oracle for the property tests.
//!
//! Both operate on a [`Text`] (reference + sentinel), where the sentinel is
//! the unique lexicographically-smallest symbol, and return the
//! lexicographically-sorted array of suffix start positions (paper §II:
//! "the Suffix Array (SA) of a reference genome-S is a
//! lexicographically-sorted array of the suffixes of S").

use crate::text::{Text, ALPHABET};

/// Builds the suffix array of `text` with the SA-IS algorithm.
///
/// # Examples
///
/// ```
/// use bioseq::DnaSeq;
/// use fmindex::{suffix_array, Text};
///
/// # fn main() -> Result<(), bioseq::ParseSeqError> {
/// let text = Text::from_reference(&"TGCTA".parse::<DnaSeq>()?);
/// // Sorted suffixes of TGCTA$: $  A$  CTA$  GCTA$  TA$  TGCTA$
/// assert_eq!(suffix_array(&text), vec![5, 4, 2, 1, 3, 0]);
/// # Ok(())
/// # }
/// ```
pub fn suffix_array(text: &Text) -> Vec<usize> {
    let s: Vec<usize> = text.as_ranks().iter().map(|&r| r as usize).collect();
    sais(&s, ALPHABET)
}

/// Builds the suffix array by sorting all suffixes directly.
///
/// Quadratic in the worst case — use only as a test oracle or on tiny
/// inputs.
pub fn suffix_array_naive(text: &Text) -> Vec<usize> {
    let mut sa: Vec<usize> = (0..text.len()).collect();
    sa.sort_by(|&a, &b| text.suffix(a).cmp(text.suffix(b)));
    sa
}

/// SA-IS over a rank sequence whose last element is the unique smallest
/// symbol (the sentinel).
fn sais(s: &[usize], alphabet: usize) -> Vec<usize> {
    let n = s.len();
    if n == 1 {
        return vec![0];
    }
    if n == 2 {
        // Sentinel last: suffix 1 ($) < suffix 0.
        return vec![1, 0];
    }

    // --- Classify positions as S-type or L-type. ---
    let mut is_s = vec![false; n];
    is_s[n - 1] = true;
    for i in (0..n - 1).rev() {
        is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
    }
    let is_lms = |i: usize, is_s: &[bool]| i > 0 && is_s[i] && !is_s[i - 1];

    // --- Bucket sizes per symbol. ---
    let mut bucket_sizes = vec![0usize; alphabet];
    for &c in s {
        bucket_sizes[c] += 1;
    }
    let bucket_heads = |sizes: &[usize]| {
        let mut heads = vec![0usize; alphabet];
        let mut sum = 0;
        for (h, &sz) in heads.iter_mut().zip(sizes) {
            *h = sum;
            sum += sz;
        }
        heads
    };
    let bucket_tails = |sizes: &[usize]| {
        let mut tails = vec![0usize; alphabet];
        let mut sum = 0;
        for (t, &sz) in tails.iter_mut().zip(sizes) {
            sum += sz;
            *t = sum;
        }
        tails
    };

    const EMPTY: usize = usize::MAX;

    // Induced sort: place `lms` (already in the desired order) at bucket
    // tails, then induce L-types left-to-right and S-types right-to-left.
    let induce = |lms: &[usize], is_s: &[bool]| -> Vec<usize> {
        let mut sa = vec![EMPTY; n];
        let mut tails = bucket_tails(&bucket_sizes);
        for &p in lms.iter().rev() {
            tails[s[p]] -= 1;
            sa[tails[s[p]]] = p;
        }
        let mut heads = bucket_heads(&bucket_sizes);
        for i in 0..n {
            let p = sa[i];
            if p != EMPTY && p > 0 && !is_s[p - 1] {
                sa[heads[s[p - 1]]] = p - 1;
                heads[s[p - 1]] += 1;
            }
        }
        let mut tails = bucket_tails(&bucket_sizes);
        for i in (0..n).rev() {
            let p = sa[i];
            if p != EMPTY && p > 0 && is_s[p - 1] {
                tails[s[p - 1]] -= 1;
                sa[tails[s[p - 1]]] = p - 1;
            }
        }
        sa
    };

    // --- First pass: sort LMS substrings by inducing from unsorted LMS. ---
    let lms_positions: Vec<usize> = (1..n).filter(|&i| is_lms(i, &is_s)).collect();
    let sa0 = induce(&lms_positions, &is_s);

    // Extract LMS positions in the induced (sorted-substring) order.
    let sorted_lms: Vec<usize> = sa0
        .iter()
        .copied()
        .filter(|&p| p != EMPTY && is_lms(p, &is_s))
        .collect();

    // --- Name LMS substrings. ---
    let lms_substring_end = |start: usize| {
        // The LMS substring runs from one LMS position to the next
        // (inclusive); the sentinel's substring is just itself.
        if start == n - 1 {
            return n - 1;
        }
        let mut j = start + 1;
        while j < n && !is_lms(j, &is_s) {
            j += 1;
        }
        j.min(n - 1)
    };
    let mut names = vec![EMPTY; n];
    let mut current = 0usize;
    let mut prev: Option<usize> = None;
    for &p in &sorted_lms {
        if let Some(q) = prev {
            let (pe, qe) = (lms_substring_end(p), lms_substring_end(q));
            let equal = pe - p == qe - q && s[p..=pe] == s[q..=qe] && is_s[p..=pe] == is_s[q..=qe];
            if !equal {
                current += 1;
            }
        }
        names[p] = current;
        prev = Some(p);
    }
    let unique_names = current + 1;

    // --- Order the LMS positions. ---
    let lms_order: Vec<usize> = if unique_names == sorted_lms.len() {
        // All names unique: the induced order is already correct.
        sorted_lms
    } else {
        // Recurse on the reduced string of LMS names (in text order).
        let reduced: Vec<usize> = lms_positions.iter().map(|&p| names[p]).collect();
        let reduced_sa = sais(&reduced, unique_names);
        reduced_sa.iter().map(|&i| lms_positions[i]).collect()
    };

    induce(&lms_order, &is_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::DnaSeq;
    use proptest::prelude::*;

    fn text_of(s: &str) -> Text {
        Text::from_reference(&s.parse::<DnaSeq>().unwrap())
    }

    #[test]
    fn paper_example_tgcta() {
        let t = text_of("TGCTA");
        let sa = suffix_array(&t);
        assert_eq!(sa, vec![5, 4, 2, 1, 3, 0]);
        assert_eq!(suffix_array_naive(&t), sa);
    }

    #[test]
    fn banana_style_repeats() {
        // GAGAGA$ exercises deep LMS recursion.
        let t = text_of("GAGAGA");
        assert_eq!(suffix_array(&t), suffix_array_naive(&t));
    }

    #[test]
    fn single_base() {
        let t = text_of("A");
        assert_eq!(suffix_array(&t), vec![1, 0]);
    }

    #[test]
    fn empty_reference() {
        let t = Text::from_reference(&DnaSeq::new());
        assert_eq!(suffix_array(&t), vec![0]);
    }

    #[test]
    fn homopolymer_run() {
        let t = text_of(&"A".repeat(100));
        let sa = suffix_array(&t);
        // Suffixes of A^k$ sort by decreasing start position.
        let expected: Vec<usize> = (0..=100).rev().collect();
        assert_eq!(sa, expected);
    }

    #[test]
    fn sa_is_permutation() {
        let t = text_of("ACGTACGTTTGGCCAA");
        let mut sa = suffix_array(&t);
        sa.sort_unstable();
        assert_eq!(sa, (0..t.len()).collect::<Vec<_>>());
    }

    #[test]
    fn suffixes_are_sorted() {
        let t = text_of("CTAGCTAGCATCGATCGAT");
        let sa = suffix_array(&t);
        for w in sa.windows(2) {
            assert!(t.suffix(w[0]) < t.suffix(w[1]));
        }
    }

    #[test]
    fn sentinel_suffix_first() {
        let t = text_of("GGGTTTAAACCC");
        assert_eq!(suffix_array(&t)[0], t.len() - 1);
    }

    proptest! {
        #[test]
        fn sais_matches_naive(bases in proptest::collection::vec(0u8..4, 0..300)) {
            let seq: DnaSeq = bases.iter().map(|&r| bioseq::Base::from_rank(r as usize)).collect();
            let t = Text::from_reference(&seq);
            prop_assert_eq!(suffix_array(&t), suffix_array_naive(&t));
        }

        #[test]
        fn sais_matches_naive_low_entropy(bases in proptest::collection::vec(0u8..2, 0..400)) {
            // Two-symbol texts stress the LMS naming/recursion path.
            let seq: DnaSeq = bases.iter().map(|&r| bioseq::Base::from_rank(r as usize)).collect();
            let t = Text::from_reference(&seq);
            prop_assert_eq!(suffix_array(&t), suffix_array_naive(&t));
        }
    }
}
