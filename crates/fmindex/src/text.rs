//! The indexed text: reference genome plus sentinel.

use std::fmt;

use bioseq::{Base, DnaSeq, Symbol};

/// The alphabet size of the indexed text: `$, A, C, G, T`.
pub const ALPHABET: usize = 5;

/// A reference genome with the `$` sentinel appended, stored as symbol
/// ranks (`$ → 0`, `A → 1`, …, `T → 4`).
///
/// All index structures (suffix array, BWT, Occ) are built over a `Text`.
/// Position `text.len() - 1` always holds the sentinel.
///
/// # Examples
///
/// ```
/// use bioseq::DnaSeq;
/// use fmindex::Text;
///
/// # fn main() -> Result<(), bioseq::ParseSeqError> {
/// let t = Text::from_reference(&"TGCTA".parse::<DnaSeq>()?);
/// assert_eq!(t.len(), 6); // 5 bases + $
/// assert_eq!(t.to_string(), "TGCTA$");
/// assert_eq!(t.rank(5), 0); // sentinel
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Text {
    ranks: Vec<u8>,
}

impl Text {
    /// Builds the text `S$` from reference `S`.
    pub fn from_reference(reference: &DnaSeq) -> Text {
        let mut ranks = Vec::with_capacity(reference.len() + 1);
        ranks.extend(reference.iter().map(|b| Symbol::Base(*b).rank() as u8));
        ranks.push(Symbol::Sentinel.rank() as u8);
        Text { ranks }
    }

    /// Total length including the sentinel (the `n + 1` of the paper's
    /// `n`-bp reference).
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// `Text` always contains at least the sentinel.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Length of the reference without the sentinel.
    pub fn reference_len(&self) -> usize {
        self.ranks.len() - 1
    }

    /// The symbol rank at `pos` (`0` for the sentinel).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= self.len()`.
    #[inline]
    pub fn rank(&self, pos: usize) -> u8 {
        self.ranks[pos]
    }

    /// The symbol at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= self.len()`.
    pub fn symbol(&self, pos: usize) -> Symbol {
        Symbol::from_rank(self.ranks[pos] as usize)
    }

    /// The ranks as a slice (sentinel last).
    pub fn as_ranks(&self) -> &[u8] {
        &self.ranks
    }

    /// Reconstructs the reference sequence (without the sentinel).
    pub fn to_reference(&self) -> DnaSeq {
        self.ranks[..self.reference_len()]
            .iter()
            .map(|&r| Base::from_rank(r as usize - 1))
            .collect()
    }

    /// The suffix starting at `pos`, as symbol ranks.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= self.len()`.
    pub fn suffix(&self, pos: usize) -> &[u8] {
        &self.ranks[pos..]
    }
}

impl fmt::Display for Text {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &r in &self.ranks {
            write!(f, "{}", Symbol::from_rank(r as usize).to_char())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tgcta() -> Text {
        Text::from_reference(&"TGCTA".parse().unwrap())
    }

    #[test]
    fn sentinel_is_appended_last() {
        let t = tgcta();
        assert_eq!(t.len(), 6);
        assert_eq!(t.rank(t.len() - 1), 0);
        assert_eq!(t.symbol(t.len() - 1), Symbol::Sentinel);
    }

    #[test]
    fn ranks_match_symbols() {
        let t = tgcta();
        // T G C T A $ -> 4 3 2 4 1 0
        assert_eq!(t.as_ranks(), &[4, 3, 2, 4, 1, 0]);
    }

    #[test]
    fn round_trip_to_reference() {
        let t = tgcta();
        assert_eq!(t.to_reference().to_string(), "TGCTA");
        assert_eq!(t.reference_len(), 5);
    }

    #[test]
    fn display_shows_sentinel() {
        assert_eq!(tgcta().to_string(), "TGCTA$");
    }

    #[test]
    fn empty_reference_is_just_sentinel() {
        let t = Text::from_reference(&DnaSeq::new());
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.to_string(), "$");
    }

    #[test]
    fn suffixes_are_slices() {
        let t = tgcta();
        assert_eq!(t.suffix(2), &[2, 4, 1, 0]); // CTA$
        assert_eq!(t.suffix(5), &[0]);
    }
}
