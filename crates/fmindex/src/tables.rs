//! Pre-computed FM-index tables (paper Fig. 2).
//!
//! From the BWT we derive, in order:
//!
//! 1. [`CountTable`] — `Count(nt)`: how many symbols in the text are
//!    lexicographically smaller than `nt` ("only 4 elements for DNA");
//! 2. [`OccTable`] — the full FM-index: `Occ[i][nt]` = occurrences of `nt`
//!    in `BWT[0 .. i)`;
//! 3. [`SampledOcc`] — the Occ table check-pointed every `d` positions
//!    (bucket width), shrinking it by a factor of `d`;
//! 4. [`MarkerTable`] — element-wise `SampledOcc + Count`; its [`lfm`]
//!    procedure is the paper's hardware-friendly `LFM(MT, nt, id)`.
//!
//! [`lfm`]: MarkerTable::lfm

use bioseq::Base;

use crate::bwt::Bwt;
use crate::text::ALPHABET;

/// `Count(nt)`: the number of text symbols lexicographically smaller than
/// `nt`. Indexed by [`Base::rank`]; the sentinel contributes one count to
/// every base.
///
/// # Examples
///
/// ```
/// use bioseq::{Base, DnaSeq};
/// use fmindex::{suffix_array, Bwt, CountTable, Text};
///
/// # fn main() -> Result<(), bioseq::ParseSeqError> {
/// let text = Text::from_reference(&"TGCTA".parse::<DnaSeq>()?);
/// let bwt = Bwt::from_sa(&text, &suffix_array(&text));
/// let count = CountTable::from_bwt(&bwt);
/// // TGCTA$ holds: $(1) A(1) C(1) G(1) T(2)
/// assert_eq!(count.get(Base::A), 1); // only $ is smaller than A
/// assert_eq!(count.get(Base::T), 4); // $, A, C, G
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountTable {
    /// `counts[rank]` for base ranks 0..4.
    counts: [u32; 4],
}

impl CountTable {
    /// Accumulates symbol frequencies from the BWT (a permutation of the
    /// text, so frequencies match).
    pub fn from_bwt(bwt: &Bwt) -> CountTable {
        let mut freq = [0u32; ALPHABET];
        for &r in bwt.as_ranks() {
            freq[r as usize] += 1;
        }
        let mut counts = [0u32; 4];
        let mut sum = freq[0]; // the sentinel precedes every base
        for (rank, slot) in counts.iter_mut().enumerate() {
            *slot = sum;
            sum += freq[rank + 1];
        }
        CountTable { counts }
    }

    /// `Count(nt)` for a base.
    #[inline]
    pub fn get(&self, base: Base) -> u32 {
        self.counts[base.rank()]
    }

    /// All four counts in `A, C, G, T` order.
    pub fn as_array(&self) -> [u32; 4] {
        self.counts
    }
}

/// The full Occ table (FM-index): `occ(nt, i)` = occurrences of `nt` in
/// `BWT[0 .. i)`.
///
/// Size is `O(4·n)` — the reason the paper down-samples it into
/// [`SampledOcc`]. Kept here as the exactness oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccTable {
    /// Row-major: `cum[i * 4 + rank]`, `i` in `0 ..= n`.
    cum: Vec<u32>,
    len: usize,
}

impl OccTable {
    /// Builds the full prefix-count table from a BWT.
    pub fn from_bwt(bwt: &Bwt) -> OccTable {
        let n = bwt.len();
        let mut cum = Vec::with_capacity((n + 1) * 4);
        let mut running = [0u32; 4];
        cum.extend_from_slice(&running);
        for i in 0..n {
            let r = bwt.rank(i);
            if r > 0 {
                running[r as usize - 1] += 1;
            }
            cum.extend_from_slice(&running);
        }
        OccTable { cum, len: n }
    }

    /// Occurrences of `base` in `BWT[0 .. i)`.
    ///
    /// # Panics
    ///
    /// Panics if `i > bwt.len()`.
    #[inline]
    pub fn occ(&self, base: Base, i: usize) -> u32 {
        assert!(
            i <= self.len,
            "occ index {i} out of range (len {})",
            self.len
        );
        self.cum[i * 4 + base.rank()]
    }

    /// The BWT length the table covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// An Occ table always covers at least index 0.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The Occ table sampled every `d` positions (paper: "it is sampled every
/// d positions (bucket width) … the table size is reduced by a factor of
/// d").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampledOcc {
    /// Row-major: `samples[bucket * 4 + rank]` = `occ(rank, bucket·d)`.
    samples: Vec<u32>,
    bucket_width: usize,
    len: usize,
}

impl SampledOcc {
    /// Samples `occ` at positions `0, d, 2d, …` up to and including the
    /// bucket that covers index `n`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width == 0`.
    pub fn from_occ(occ: &OccTable, bucket_width: usize) -> SampledOcc {
        assert!(bucket_width > 0, "bucket width must be positive");
        let n = occ.len();
        let buckets = n / bucket_width + 1;
        let mut samples = Vec::with_capacity(buckets * 4);
        for b in 0..buckets {
            for base in Base::ALL {
                samples.push(occ.occ(base, b * bucket_width));
            }
        }
        SampledOcc {
            samples,
            bucket_width,
            len: n,
        }
    }

    /// The bucket width `d`.
    pub fn bucket_width(&self) -> usize {
        self.bucket_width
    }

    /// Number of check-points stored.
    pub fn buckets(&self) -> usize {
        self.samples.len() / 4
    }

    /// The sampled value `occ(base, bucket · d)`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= self.buckets()`.
    #[inline]
    pub fn sample(&self, base: Base, bucket: usize) -> u32 {
        self.samples[bucket * 4 + base.rank()]
    }

    /// The BWT length the table covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Sampled tables always hold bucket 0.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The Marker Table: `MT[bucket][nt] = Count(nt) + SampledOcc[bucket][nt]`
/// (paper Fig. 2: "MT is constructed by element-wise addition of Sampled
/// Occ-table with Count(nt)").
///
/// `MT` directly holds "the matched position of the nucleotides in BWT in
/// the First Column", so a backward-search bound update needs only one
/// marker read plus an occurrence count over the current bucket — the
/// `LFM` procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkerTable {
    /// Row-major: `markers[bucket * 4 + rank]`.
    markers: Vec<u32>,
    bucket_width: usize,
    len: usize,
}

impl MarkerTable {
    /// Element-wise sum of the sampled Occ table and the Count table.
    pub fn new(count: &CountTable, sampled: &SampledOcc) -> MarkerTable {
        let mut markers = Vec::with_capacity(sampled.buckets() * 4);
        for b in 0..sampled.buckets() {
            for base in Base::ALL {
                markers.push(count.get(base) + sampled.sample(base, b));
            }
        }
        MarkerTable {
            markers,
            bucket_width: sampled.bucket_width(),
            len: sampled.len(),
        }
    }

    /// The bucket width `d`.
    pub fn bucket_width(&self) -> usize {
        self.bucket_width
    }

    /// Number of marker rows.
    pub fn buckets(&self) -> usize {
        self.markers.len() / 4
    }

    /// The stored marker `Count(base) + occ(base, bucket · d)`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= self.buckets()`.
    #[inline]
    pub fn marker(&self, base: Base, bucket: usize) -> u32 {
        self.markers[bucket * 4 + base.rank()]
    }

    /// The hardware-friendly `LFM(MT, nt, id)` procedure (paper §III,
    /// Algorithm 1 line 9): the updated interval bound
    /// `Count(nt) + occ(nt, id)`, computed as
    ///
    /// ```text
    /// marker  = MT[id / d][nt]                       (MEM)
    /// matches = count(nt, BWT[d·(id/d) .. id])       (XNOR_Match + popcount)
    /// result  = marker + matches                      (IM_ADD)
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `id > bwt.len()`.
    pub fn lfm(&self, bwt: &Bwt, nt: Base, id: usize) -> u32 {
        assert!(id <= bwt.len(), "LFM index {id} out of range");
        let bucket = id / self.bucket_width;
        let checkpoint = bucket * self.bucket_width;
        let marker = self.marker(nt, bucket);
        let sym = nt.rank() as u8 + 1; // text-alphabet rank
        let matches = bwt.count_in_range(sym, checkpoint..id) as u32;
        marker + matches
    }

    /// Estimated memory footprint in bytes (4 × u32 per bucket) — used for
    /// the off-chip-memory accounting of Fig. 10a.
    pub fn size_bytes(&self) -> usize {
        self.markers.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::suffix_array;
    use crate::text::Text;
    use bioseq::DnaSeq;
    use proptest::prelude::*;

    fn setup(s: &str, d: usize) -> (Bwt, CountTable, OccTable, SampledOcc, MarkerTable) {
        let t = Text::from_reference(&s.parse::<DnaSeq>().unwrap());
        let sa = suffix_array(&t);
        let bwt = Bwt::from_sa(&t, &sa);
        let count = CountTable::from_bwt(&bwt);
        let occ = OccTable::from_bwt(&bwt);
        let sampled = SampledOcc::from_occ(&occ, d);
        let mt = MarkerTable::new(&count, &sampled);
        (bwt, count, occ, sampled, mt)
    }

    #[test]
    fn count_table_paper_example() {
        let (_, count, ..) = setup("TGCTA", 2);
        assert_eq!(count.as_array(), [1, 2, 3, 4]);
    }

    #[test]
    fn occ_prefix_counts() {
        // BWT(TGCTA$) = ATGTC$
        let (_, _, occ, ..) = setup("TGCTA", 2);
        assert_eq!(occ.occ(Base::A, 0), 0);
        assert_eq!(occ.occ(Base::A, 1), 1);
        assert_eq!(occ.occ(Base::T, 4), 2);
        assert_eq!(occ.occ(Base::C, 6), 1);
        assert_eq!(occ.occ(Base::G, 6), 1);
    }

    #[test]
    fn occ_is_monotone_and_bounded() {
        let (bwt, _, occ, ..) = setup("GATTACAGATTACA", 4);
        for base in Base::ALL {
            let mut prev = 0;
            for i in 0..=bwt.len() {
                let v = occ.occ(base, i);
                assert!(v >= prev && v <= i as u32);
                prev = v;
            }
        }
    }

    #[test]
    fn sampled_matches_full_at_checkpoints() {
        let (_, _, occ, sampled, _) = setup("GATTACAGATTACAGGGTTT", 3);
        for b in 0..sampled.buckets() {
            for base in Base::ALL {
                assert_eq!(sampled.sample(base, b), occ.occ(base, b * 3));
            }
        }
    }

    #[test]
    fn sampled_size_reduction() {
        let (bwt, _, occ, ..) = setup(&"ACGT".repeat(64), 128);
        let sampled = SampledOcc::from_occ(&occ, 128);
        assert_eq!(sampled.buckets(), bwt.len() / 128 + 1);
    }

    #[test]
    fn marker_is_count_plus_sample() {
        let (_, count, _, sampled, mt) = setup("TGCTAACG", 2);
        for b in 0..mt.buckets() {
            for base in Base::ALL {
                assert_eq!(
                    mt.marker(base, b),
                    count.get(base) + sampled.sample(base, b)
                );
            }
        }
    }

    #[test]
    fn lfm_equals_count_plus_occ() {
        let (bwt, count, occ, _, mt) = setup("TGCTAACGTTGCAGT", 4);
        for id in 0..=bwt.len() {
            for base in Base::ALL {
                assert_eq!(
                    mt.lfm(&bwt, base, id),
                    count.get(base) + occ.occ(base, id),
                    "LFM mismatch at id={id} base={base}"
                );
            }
        }
    }

    #[test]
    fn lfm_with_bucket_width_one_needs_no_scan() {
        let (bwt, count, occ, _, mt) = setup("ACGTACGT", 1);
        for id in 0..=bwt.len() {
            for base in Base::ALL {
                assert_eq!(mt.lfm(&bwt, base, id), count.get(base) + occ.occ(base, id));
            }
        }
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn zero_bucket_width_rejected() {
        let (_, _, occ, ..) = setup("ACGT", 2);
        let _ = SampledOcc::from_occ(&occ, 0);
    }

    proptest! {
        #[test]
        fn lfm_matches_oracle(
            bases in proptest::collection::vec(0u8..4, 1..150),
            d in 1usize..40,
        ) {
            let seq: DnaSeq = bases.iter().map(|&r| Base::from_rank(r as usize)).collect();
            let t = Text::from_reference(&seq);
            let sa = suffix_array(&t);
            let bwt = Bwt::from_sa(&t, &sa);
            let count = CountTable::from_bwt(&bwt);
            let occ = OccTable::from_bwt(&bwt);
            let mt = MarkerTable::new(&count, &SampledOcc::from_occ(&occ, d));
            for id in 0..=bwt.len() {
                for base in Base::ALL {
                    prop_assert_eq!(mt.lfm(&bwt, base, id), count.get(base) + occ.occ(base, id));
                }
            }
        }
    }
}
