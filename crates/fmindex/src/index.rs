//! The assembled FM-index.

use std::fmt;

use bioseq::DnaSeq;

use crate::bwt::Bwt;
use crate::inexact::{search_inexact, EditBudget, InexactHit};
use crate::locate::{locate, SuffixArraySamples};
use crate::sa::suffix_array;
use crate::search::{backward_search, SaInterval};
use crate::tables::{CountTable, MarkerTable, OccTable, SampledOcc};
use crate::text::Text;

/// How the suffix array is retained for `locate` queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SaStorage {
    /// Keep every entry (the paper's configuration: "BWT, Marker Table
    /// (MT), and SA will be stored in the memory").
    #[default]
    Full,
    /// Keep entries at text positions divisible by the rate; other rows
    /// are recovered by LF-stepping.
    Sampled(u32),
}

/// Why an index could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexBuildError {
    /// The reference exceeds [`FmIndex::MAX_REFERENCE_LEN`]. Text
    /// positions are stored as `u32` with `u32::MAX` reserved as the
    /// unsampled-SA sentinel, so the text (reference + sentinel) must
    /// fit in `u32::MAX` rows.
    ReferenceTooLong {
        /// The offending reference length, bases.
        len: usize,
    },
}

impl fmt::Display for IndexBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexBuildError::ReferenceTooLong { len } => write!(
                f,
                "reference of {len} bases exceeds the u32 position bound \
                 ({} bases max)",
                FmIndex::MAX_REFERENCE_LEN
            ),
        }
    }
}

impl std::error::Error for IndexBuildError {}

/// Builder for [`FmIndex`] (see [`FmIndex::builder`]).
///
/// # Examples
///
/// ```
/// use bioseq::DnaSeq;
/// use fmindex::{FmIndex, SaStorage};
///
/// # fn main() -> Result<(), bioseq::ParseSeqError> {
/// let reference: DnaSeq = "GATTACA".parse()?;
/// let index = FmIndex::builder()
///     .bucket_width(4)
///     .sa_storage(SaStorage::Sampled(4))
///     .build(&reference);
/// assert_eq!(index.bucket_width(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FmIndexBuilder {
    bucket_width: usize,
    sa_storage: SaStorage,
}

impl Default for FmIndexBuilder {
    fn default() -> Self {
        FmIndexBuilder {
            bucket_width: FmIndex::DEFAULT_BUCKET_WIDTH,
            sa_storage: SaStorage::Full,
        }
    }
}

impl FmIndexBuilder {
    /// Sets the Occ-table bucket width `d` (default 128, one sub-array
    /// word line).
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn bucket_width(mut self, d: usize) -> Self {
        assert!(d > 0, "bucket width must be positive");
        self.bucket_width = d;
        self
    }

    /// Sets the suffix-array retention policy (default [`SaStorage::Full`]).
    ///
    /// # Panics
    ///
    /// Panics if a sampled rate of 0 is given.
    pub fn sa_storage(mut self, storage: SaStorage) -> Self {
        if let SaStorage::Sampled(rate) = storage {
            assert!(rate > 0, "SA sampling rate must be positive");
        }
        self.sa_storage = storage;
        self
    }

    /// Builds the index over `reference` (Fig. 2's one-time
    /// pre-computation).
    ///
    /// # Panics
    ///
    /// Panics if the reference exceeds [`FmIndex::MAX_REFERENCE_LEN`];
    /// use [`FmIndexBuilder::try_build`] for a typed error instead.
    pub fn build(self, reference: &DnaSeq) -> FmIndex {
        self.try_build(reference)
            .unwrap_or_else(|e| panic!("cannot build index: {e}"))
    }

    /// Builds the index over `reference`, rejecting references too long
    /// for the `u32` text-position representation.
    ///
    /// # Errors
    ///
    /// [`IndexBuildError::ReferenceTooLong`] when the reference exceeds
    /// [`FmIndex::MAX_REFERENCE_LEN`] (text positions are `u32` with
    /// `u32::MAX` reserved as the unsampled-SA sentinel).
    pub fn try_build(self, reference: &DnaSeq) -> Result<FmIndex, IndexBuildError> {
        if reference.len() > FmIndex::MAX_REFERENCE_LEN {
            return Err(IndexBuildError::ReferenceTooLong {
                len: reference.len(),
            });
        }
        let text = Text::from_reference(reference);
        let sa = suffix_array(&text);
        let bwt = Bwt::from_sa(&text, &sa);
        let count = CountTable::from_bwt(&bwt);
        let occ = OccTable::from_bwt(&bwt);
        let sampled = SampledOcc::from_occ(&occ, self.bucket_width);
        let marker = MarkerTable::new(&count, &sampled);
        let samples = match self.sa_storage {
            SaStorage::Full => SuffixArraySamples::full(&sa),
            SaStorage::Sampled(rate) => SuffixArraySamples::sampled(&sa, rate),
        };
        Ok(FmIndex {
            text_len: text.len(),
            bwt,
            count,
            occ,
            marker,
            samples,
        })
    }
}

/// The assembled FM-index over a reference genome: BWT + Count + Marker
/// Table + suffix-array storage.
///
/// This is the software ground truth the PIM platform is validated
/// against; every query here is answered purely with the pre-computed
/// tables of Fig. 2.
///
/// # Examples
///
/// ```
/// use bioseq::DnaSeq;
/// use fmindex::FmIndex;
///
/// # fn main() -> Result<(), bioseq::ParseSeqError> {
/// let index = FmIndex::builder().build(&"TGCTA".parse::<DnaSeq>()?);
/// let hit = index.backward_search(&"CTA".parse::<DnaSeq>()?).expect("match");
/// assert_eq!(index.locate(hit), vec![2]);
/// assert!(index.backward_search(&"AAA".parse::<DnaSeq>()?).is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FmIndex {
    text_len: usize,
    bwt: Bwt,
    count: CountTable,
    occ: OccTable,
    marker: MarkerTable,
    samples: SuffixArraySamples,
}

impl FmIndex {
    /// Default Occ bucket width: 128 bases, one 256-bit sub-array word
    /// line (paper Fig. 6a).
    pub const DEFAULT_BUCKET_WIDTH: usize = 128;

    /// Longest supported reference, bases. Text positions (reference +
    /// one sentinel) are stored as `u32` and `u32::MAX` is reserved as
    /// the unsampled-SA sentinel, so the text may hold at most
    /// `u32::MAX` rows — a reference of `u32::MAX − 1` bases. Covers any
    /// single chromosome (Hg19's largest is ~249 Mbp; the whole 3.2 Gbp
    /// genome is indexed per-chromosome or sharded).
    pub const MAX_REFERENCE_LEN: usize = u32::MAX as usize - 1;

    /// Starts building an index.
    pub fn builder() -> FmIndexBuilder {
        FmIndexBuilder::default()
    }

    /// Builds with default options (`d = 128`, full SA).
    pub fn new(reference: &DnaSeq) -> FmIndex {
        FmIndexBuilder::default().build(reference)
    }

    /// Length of the indexed text including the sentinel.
    pub fn text_len(&self) -> usize {
        self.text_len
    }

    /// Length of the reference genome.
    pub fn reference_len(&self) -> usize {
        self.text_len - 1
    }

    /// The Occ bucket width `d`.
    pub fn bucket_width(&self) -> usize {
        self.marker.bucket_width()
    }

    /// The BWT.
    pub fn bwt(&self) -> &Bwt {
        &self.bwt
    }

    /// The `Count(nt)` table.
    pub fn count_table(&self) -> &CountTable {
        &self.count
    }

    /// The marker table (sampled Occ + Count).
    pub fn marker_table(&self) -> &MarkerTable {
        &self.marker
    }

    /// The full Occ table (used by locate's LF-stepping and by oracles).
    pub fn occ_table(&self) -> &OccTable {
        &self.occ
    }

    /// The suffix-array storage.
    pub fn sa_samples(&self) -> &SuffixArraySamples {
        &self.samples
    }

    /// Exact backward search; `None` when the read does not occur.
    pub fn backward_search(&self, read: &DnaSeq) -> Option<SaInterval> {
        let interval = backward_search(&self.marker, &self.bwt, read);
        (!interval.is_empty()).then_some(interval)
    }

    /// Number of exact occurrences of `read`.
    pub fn count(&self, read: &DnaSeq) -> u32 {
        self.backward_search(read).map_or(0, |i| i.count())
    }

    /// Resolves an interval to sorted, deduplicated reference positions.
    ///
    /// # Panics
    ///
    /// Panics if the interval is out of range for this index.
    pub fn locate(&self, interval: SaInterval) -> Vec<usize> {
        locate(&self.samples, &self.bwt, &self.count, &self.occ, interval)
    }

    /// Exact search returning reference positions directly.
    pub fn find(&self, read: &DnaSeq) -> Vec<usize> {
        self.backward_search(read)
            .map_or_else(Vec::new, |i| self.locate(i))
    }

    /// Inexact search (Algorithm 2) with the given edit budget.
    pub fn search_inexact(&self, read: &DnaSeq, budget: EditBudget) -> Vec<InexactHit> {
        search_inexact(&self.marker, &self.bwt, read, budget)
    }

    /// Inexact search returning `(position, diffs)` pairs, sorted by
    /// position, keeping the fewest diffs per position.
    pub fn find_inexact(&self, read: &DnaSeq, budget: EditBudget) -> Vec<(usize, u8)> {
        let mut by_pos: std::collections::HashMap<usize, u8> = std::collections::HashMap::new();
        for hit in self.search_inexact(read, budget) {
            for pos in self.locate(hit.interval) {
                by_pos
                    .entry(pos)
                    .and_modify(|d| *d = (*d).min(hit.diffs))
                    .or_insert(hit.diffs);
            }
        }
        let mut out: Vec<(usize, u8)> = by_pos.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Total table footprint in bytes: BWT (2 bits/base rounded up to
    /// bytes) + MT + SA — the quantities the paper counts toward its
    /// "~12 GB of memory space".
    pub fn size_bytes(&self) -> usize {
        self.bwt.len().div_ceil(4) + self.marker.size_bytes() + self.samples.size_bytes()
    }

    /// Reassembles an index from its stored tables (the `io::load`
    /// path), rebuilding the derived Occ table and cross-checking the
    /// stored Count and Marker tables against recomputed values.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub(crate) fn from_stored_parts(
        text_len: usize,
        sentinel_pos: usize,
        packed_bwt: &[u8],
        stored_count: [u32; 4],
        bucket_width: usize,
        stored_markers: Vec<u32>,
        samples: SuffixArraySamples,
    ) -> Result<FmIndex, String> {
        let mut ranks = Vec::with_capacity(text_len);
        for i in 0..text_len {
            if i == sentinel_pos {
                ranks.push(0);
                continue;
            }
            let byte = packed_bwt[i / 4];
            let code = (byte >> ((i % 4) * 2)) & 0b11;
            ranks.push(bioseq::Base::from_code(code).rank() as u8 + 1);
        }
        let bwt = Bwt::from_ranks(ranks, sentinel_pos);
        let count = CountTable::from_bwt(&bwt);
        if count.as_array() != stored_count {
            return Err("count table disagrees with the stored BWT".into());
        }
        let occ = OccTable::from_bwt(&bwt);
        let sampled = SampledOcc::from_occ(&occ, bucket_width);
        let marker = MarkerTable::new(&count, &sampled);
        for bucket in 0..marker.buckets() {
            for base in bioseq::Base::ALL {
                if marker.marker(base, bucket) != stored_markers[bucket * 4 + base.rank()] {
                    return Err(format!(
                        "marker table disagrees at bucket {bucket} base {base}"
                    ));
                }
            }
        }
        if samples.len() != text_len {
            return Err("suffix-array storage length mismatch".into());
        }
        Ok(FmIndex {
            text_len,
            bwt,
            count,
            occ,
            marker,
            samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn idx(s: &str) -> FmIndex {
        FmIndex::builder()
            .bucket_width(3)
            .build(&s.parse::<DnaSeq>().unwrap())
    }

    #[test]
    fn paper_fig1_end_to_end() {
        let index = idx("TGCTA");
        assert_eq!(index.bwt().to_string(), "ATGTC$");
        assert_eq!(index.find(&"CTA".parse().unwrap()), vec![2]);
        assert_eq!(index.count(&"T".parse().unwrap()), 2);
    }

    #[test]
    fn find_lists_all_occurrences_sorted() {
        let index = idx("ACGACGACG");
        assert_eq!(index.find(&"ACG".parse().unwrap()), vec![0, 3, 6]);
    }

    #[test]
    fn default_bucket_width_is_wordline() {
        let index = FmIndex::new(&"ACGT".parse().unwrap());
        assert_eq!(index.bucket_width(), 128);
    }

    #[test]
    fn sampled_sa_gives_same_answers() {
        let reference: DnaSeq = "GATTACAGATTACAGGG".parse().unwrap();
        let full = FmIndex::builder().bucket_width(4).build(&reference);
        let sparse = FmIndex::builder()
            .bucket_width(4)
            .sa_storage(SaStorage::Sampled(4))
            .build(&reference);
        for read in ["GATT", "TACA", "GGG", "TTTT"] {
            let read: DnaSeq = read.parse().unwrap();
            assert_eq!(full.find(&read), sparse.find(&read), "read {read}");
        }
        assert!(sparse.size_bytes() < full.size_bytes());
    }

    #[test]
    fn find_inexact_keeps_best_diff_per_position() {
        let index = idx("GATTACA");
        let hits = index.find_inexact(
            &"GATTACA".parse().unwrap(),
            EditBudget::substitutions_only(1),
        );
        assert_eq!(hits.iter().find(|(p, _)| *p == 0).map(|(_, d)| *d), Some(0));
    }

    #[test]
    fn try_build_matches_build_within_bound() {
        let reference: DnaSeq = "GATTACA".parse().unwrap();
        let index = FmIndex::builder()
            .bucket_width(3)
            .try_build(&reference)
            .expect("small reference builds");
        assert_eq!(index.find(&"TTA".parse().unwrap()), vec![2]);
    }

    #[test]
    fn reference_too_long_error_names_the_bound() {
        // A u32::MAX-base reference cannot be materialised in a test;
        // the typed error itself is the contract.
        let e = IndexBuildError::ReferenceTooLong { len: 1 << 33 };
        let msg = e.to_string();
        assert!(msg.contains("u32 position bound"), "{msg}");
        assert!(
            msg.contains(&FmIndex::MAX_REFERENCE_LEN.to_string()),
            "{msg}"
        );
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<IndexBuildError>();
    }

    #[test]
    fn reference_len_accessor() {
        let index = idx("GATTACA");
        assert_eq!(index.reference_len(), 7);
        assert_eq!(index.text_len(), 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn every_reported_position_is_a_real_match(
            ref_bases in proptest::collection::vec(0u8..4, 5..120),
            read_bases in proptest::collection::vec(0u8..4, 1..8),
        ) {
            let reference: DnaSeq = ref_bases.iter().map(|&r| bioseq::Base::from_rank(r as usize)).collect();
            let read: DnaSeq = read_bases.iter().map(|&r| bioseq::Base::from_rank(r as usize)).collect();
            let index = FmIndex::builder().bucket_width(7).build(&reference);
            for pos in index.find(&read) {
                prop_assert!(pos + read.len() <= reference.len());
                for j in 0..read.len() {
                    prop_assert_eq!(reference[pos + j], read[j]);
                }
            }
        }
    }
}
