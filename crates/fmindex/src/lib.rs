//! Software-reference FM-index for the PIM-Aligner reproduction.
//!
//! This crate is the *algorithmic ground truth* of the workspace: it
//! implements BWT-based read mapping exactly as §II–III of the paper
//! describe it, entirely in software. The `pim-aligner` crate re-executes
//! the same algorithm on the simulated SOT-MRAM platform and is tested for
//! bit-exact agreement with this crate.
//!
//! Pipeline (paper Fig. 2):
//!
//! 1. append the sentinel `$` to the reference and build the **suffix
//!    array** ([`suffix_array`], linear-time SA-IS with a naive
//!    cross-check implementation);
//! 2. derive the **BWT** ([`Bwt`]) — the last column of the sorted
//!    BW-matrix;
//! 3. pre-compute **`Count(nt)`** ([`CountTable`]), the full **Occ**
//!    table ([`OccTable`]), its down-sampled form with bucket width `d`
//!    ([`SampledOcc`]), and the **Marker Table**
//!    ([`MarkerTable`] = `SampledOcc + Count`);
//! 4. answer queries by **backward search** ([`FmIndex::backward_search`])
//!    built on the hardware-friendly [`MarkerTable::lfm`] procedure, with
//!    inexact matching ([`FmIndex::search_inexact`]) via bounded
//!    backtracking (Algorithm 2).
//!
//! # Examples
//!
//! The paper's running example (Fig. 1): read `R = CTA` against reference
//! `S = TGCTA`.
//!
//! ```
//! use bioseq::DnaSeq;
//! use fmindex::FmIndex;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let reference: DnaSeq = "TGCTA".parse()?;
//! let index = FmIndex::builder().bucket_width(2).build(&reference);
//!
//! assert_eq!(index.bwt().to_string(), "ATGTC$");
//!
//! let read: DnaSeq = "CTA".parse()?;
//! let interval = index.backward_search(&read).expect("CTA occurs in TGCTA");
//! assert_eq!(index.locate(interval), vec![2]); // CTA starts at position 2
//! # Ok(())
//! # }
//! ```

pub mod io;
pub mod size_model;

mod bwt;
mod index;
mod inexact;
mod locate;
mod sa;
mod search;
mod tables;
mod text;

pub use bwt::Bwt;
pub use index::{FmIndex, FmIndexBuilder, IndexBuildError, SaStorage};
pub use inexact::{EditBudget, InexactHit};
pub use locate::SuffixArraySamples;
pub use sa::{suffix_array, suffix_array_naive};
pub use search::SaInterval;
pub use tables::{CountTable, MarkerTable, OccTable, SampledOcc};
pub use text::Text;
