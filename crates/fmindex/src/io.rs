//! Binary persistence for the FM-index.
//!
//! Pre-computation is one-off (paper Fig. 2: "it is just a one-step
//! computation") — a deployed platform builds the tables once and loads
//! them at boot. This module defines a compact little-endian format:
//!
//! ```text
//! magic  "PIMFMI1\n"
//! u64    text length (incl. sentinel)
//! u64    sentinel position in the BWT
//! [u8]   BWT nucleotides, 2-bit packed (sentinel cell holds a placeholder)
//! u32×4  Count table
//! u64    bucket width d
//! u64    marker bucket count, then u32×4 per bucket
//! u8     SA tag (0 = full, 1 = sampled) [+ u32 rate when sampled]
//! u64    stored SA entry count, then u32 per entry (sampled: row index
//!        u32 + value u32 pairs)
//! ```
//!
//! The full Occ table is *not* stored; it is rebuilt from the BWT on
//! load (linear time, and 16 bytes/base on disk would dwarf everything
//! else).
//!
//! Functions take `R: Read` / `W: Write` by value; pass `&mut reader` to
//! reuse a stream.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use crate::index::FmIndex;

/// Magic bytes heading every serialised index.
pub const MAGIC: &[u8; 8] = b"PIMFMI1\n";

/// Error returned by [`load`].
#[derive(Debug)]
pub enum LoadIndexError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// Structurally invalid contents.
    Corrupt(String),
}

impl fmt::Display for LoadIndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadIndexError::Io(e) => write!(f, "index read failed: {e}"),
            LoadIndexError::BadMagic => f.write_str("not a PIM-Aligner FM-index stream"),
            LoadIndexError::Corrupt(msg) => write!(f, "corrupt index: {msg}"),
        }
    }
}

impl Error for LoadIndexError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadIndexError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadIndexError {
    fn from(e: io::Error) -> Self {
        LoadIndexError::Io(e)
    }
}

/// Serialises an index.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
///
/// # Examples
///
/// ```
/// use bioseq::DnaSeq;
/// use fmindex::{io as fm_io, FmIndex};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let index = FmIndex::builder().bucket_width(4).build(&"GATTACA".parse::<DnaSeq>()?);
/// let mut buffer = Vec::new();
/// fm_io::save(&index, &mut buffer)?;
/// let restored = fm_io::load(buffer.as_slice())?;
/// assert_eq!(restored.find(&"TTA".parse::<DnaSeq>()?), index.find(&"TTA".parse::<DnaSeq>()?));
/// # Ok(())
/// # }
/// ```
pub fn save<W: Write>(index: &FmIndex, mut writer: W) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    let n = index.text_len() as u64;
    writer.write_all(&n.to_le_bytes())?;
    let bwt = index.bwt();
    writer.write_all(&(bwt.sentinel_pos() as u64).to_le_bytes())?;
    let (packed, _) = bwt.to_packed();
    writer.write_all(packed.as_bytes())?;
    for c in index.count_table().as_array() {
        writer.write_all(&c.to_le_bytes())?;
    }
    let mt = index.marker_table();
    writer.write_all(&(mt.bucket_width() as u64).to_le_bytes())?;
    writer.write_all(&(mt.buckets() as u64).to_le_bytes())?;
    for bucket in 0..mt.buckets() {
        for base in bioseq::Base::ALL {
            writer.write_all(&mt.marker(base, bucket).to_le_bytes())?;
        }
    }
    match index.sa_samples() {
        crate::locate::SuffixArraySamples::Full(values) => {
            writer.write_all(&[0u8])?;
            writer.write_all(&(values.len() as u64).to_le_bytes())?;
            for &v in values {
                writer.write_all(&v.to_le_bytes())?;
            }
        }
        crate::locate::SuffixArraySamples::Sampled { values, rate } => {
            writer.write_all(&[1u8])?;
            writer.write_all(&rate.to_le_bytes())?;
            writer.write_all(&(values.len() as u64).to_le_bytes())?;
            let stored: Vec<(u32, u32)> = values
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != u32::MAX)
                .map(|(row, &v)| (row as u32, v))
                .collect();
            writer.write_all(&(stored.len() as u64).to_le_bytes())?;
            for (row, v) in stored {
                writer.write_all(&row.to_le_bytes())?;
                writer.write_all(&v.to_le_bytes())?;
            }
        }
    }
    writer.flush()
}

/// Deserialises an index previously written by [`save`], rebuilding the
/// derived Occ table.
///
/// # Errors
///
/// Returns [`LoadIndexError`] on I/O failure, a wrong magic, or
/// structurally invalid contents.
pub fn load<R: Read>(mut reader: R) -> Result<FmIndex, LoadIndexError> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(LoadIndexError::BadMagic);
    }
    let n = read_u64(&mut reader)? as usize;
    if n == 0 {
        return Err(LoadIndexError::Corrupt("empty text".into()));
    }
    let sentinel = read_u64(&mut reader)? as usize;
    if sentinel >= n {
        return Err(LoadIndexError::Corrupt("sentinel out of range".into()));
    }
    let mut packed = vec![0u8; n.div_ceil(4)];
    reader.read_exact(&mut packed)?;
    let mut count = [0u32; 4];
    for c in &mut count {
        *c = read_u32(&mut reader)?;
    }
    let bucket_width = read_u64(&mut reader)? as usize;
    if bucket_width == 0 {
        return Err(LoadIndexError::Corrupt("zero bucket width".into()));
    }
    let buckets = read_u64(&mut reader)? as usize;
    if buckets != n / bucket_width + 1 {
        return Err(LoadIndexError::Corrupt("bucket count mismatch".into()));
    }
    let mut markers = Vec::with_capacity(buckets * 4);
    for _ in 0..buckets * 4 {
        markers.push(read_u32(&mut reader)?);
    }
    let mut tag = [0u8; 1];
    reader.read_exact(&mut tag)?;
    let samples = match tag[0] {
        0 => {
            let len = read_u64(&mut reader)? as usize;
            if len != n {
                return Err(LoadIndexError::Corrupt("SA length mismatch".into()));
            }
            let mut values = Vec::with_capacity(len);
            for _ in 0..len {
                values.push(read_u32(&mut reader)?);
            }
            crate::locate::SuffixArraySamples::Full(values)
        }
        1 => {
            let rate = read_u32(&mut reader)?;
            if rate == 0 {
                return Err(LoadIndexError::Corrupt("zero SA rate".into()));
            }
            let len = read_u64(&mut reader)? as usize;
            if len != n {
                return Err(LoadIndexError::Corrupt("SA length mismatch".into()));
            }
            let stored = read_u64(&mut reader)? as usize;
            let mut values = vec![u32::MAX; len];
            for _ in 0..stored {
                let row = read_u32(&mut reader)? as usize;
                let v = read_u32(&mut reader)?;
                if row >= len {
                    return Err(LoadIndexError::Corrupt("SA row out of range".into()));
                }
                values[row] = v;
            }
            crate::locate::SuffixArraySamples::Sampled { values, rate }
        }
        other => {
            return Err(LoadIndexError::Corrupt(format!("unknown SA tag {other}")));
        }
    };
    FmIndex::from_stored_parts(n, sentinel, &packed, count, bucket_width, markers, samples)
        .map_err(LoadIndexError::Corrupt)
}

fn read_u64<R: Read>(reader: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    reader.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32<R: Read>(reader: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    reader.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FmIndex, SaStorage};
    use bioseq::DnaSeq;

    fn sample_index(storage: SaStorage) -> FmIndex {
        let reference: DnaSeq = "GATTACAGATTACAGGGTTTCCCAAATGCA".parse().unwrap();
        FmIndex::builder()
            .bucket_width(4)
            .sa_storage(storage)
            .build(&reference)
    }

    fn round_trip(index: &FmIndex) -> FmIndex {
        let mut buffer = Vec::new();
        save(index, &mut buffer).expect("save");
        load(buffer.as_slice()).expect("load")
    }

    #[test]
    fn full_sa_round_trip_preserves_queries() {
        let index = sample_index(SaStorage::Full);
        let restored = round_trip(&index);
        for read in ["GATT", "TACA", "GGG", "TTTT", "A"] {
            let read: DnaSeq = read.parse().unwrap();
            assert_eq!(restored.find(&read), index.find(&read), "read {read}");
            assert_eq!(restored.count(&read), index.count(&read));
        }
        assert_eq!(restored.bwt().to_string(), index.bwt().to_string());
        assert_eq!(restored.bucket_width(), index.bucket_width());
    }

    #[test]
    fn sampled_sa_round_trip_preserves_queries() {
        let index = sample_index(SaStorage::Sampled(4));
        let restored = round_trip(&index);
        for read in ["GATTACA", "CCC", "ATG"] {
            let read: DnaSeq = read.parse().unwrap();
            assert_eq!(restored.find(&read), index.find(&read), "read {read}");
        }
        assert_eq!(restored.size_bytes(), index.size_bytes());
    }

    #[test]
    fn inexact_queries_survive_round_trip() {
        let index = sample_index(SaStorage::Full);
        let restored = round_trip(&index);
        let read: DnaSeq = "GATGACA".parse().unwrap();
        let budget = crate::EditBudget::substitutions_only(1);
        assert_eq!(
            restored.search_inexact(&read, budget),
            index.search_inexact(&read, budget)
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load(&b"NOTANIDX________"[..]).unwrap_err();
        assert!(matches!(err, LoadIndexError::BadMagic));
        assert!(err.to_string().contains("not a PIM-Aligner"));
    }

    #[test]
    fn truncation_is_an_io_error() {
        let index = sample_index(SaStorage::Full);
        let mut buffer = Vec::new();
        save(&index, &mut buffer).unwrap();
        buffer.truncate(buffer.len() / 2);
        let err = load(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, LoadIndexError::Io(_)), "{err}");
    }

    #[test]
    fn corrupt_bucket_count_detected() {
        let index = sample_index(SaStorage::Full);
        let mut buffer = Vec::new();
        save(&index, &mut buffer).unwrap();
        // Bucket-width field lives after magic(8) + n(8) + sentinel(8) +
        // packed BWT + count(16).
        let n = index.text_len();
        let offset = 8 + 8 + 8 + n.div_ceil(4) + 16;
        buffer[offset] = 0xFF; // mangle the bucket width
        let err = load(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, LoadIndexError::Corrupt(_)), "{err}");
    }

    #[test]
    fn error_type_is_well_behaved() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<LoadIndexError>();
    }
}
